//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate provides the (small) slice of the `rand 0.8` API the
//! workspace actually uses: [`RngCore`], [`Rng::gen_bool`],
//! [`Rng::gen_range`] over integer and float ranges, [`SeedableRng`] and the
//! [`seq::SliceRandom`] shuffle/choose helpers.
//!
//! Determinism is the only contract the workspace relies on (all RNG use is
//! seeded); no attempt is made to reproduce the exact bit streams of the real
//! `rand` crate.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: a stream of `u32`/`u64` words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A range that knows how to sample a uniform value from an [`RngCore`].
pub trait SampleRange<T> {
    /// Draws one uniform sample. Panics on an empty range, like `rand` does.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, bound)` by rejection-free multiply-shift.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // 128-bit multiply-high gives an unbiased-enough uniform mapping for the
    // synthetic-benchmark use here (bias < 2^-64 per draw).
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn uniform_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + uniform_u64_below(rng, span + 1) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u8);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + uniform_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + uniform_f64(rng) * (end - start)
    }
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        uniform_f64(self) < p
    }

    /// A uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sequence helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{uniform_u64_below, RngCore};

    /// Slice shuffling and choosing, as in `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (self.0 >> 32) as u32
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(1.5..=2.5);
            assert!((1.5..=2.5).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(7);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_elements() {
        let mut rng = Counter(9);
        let v = [1, 2, 3, 4];
        for _ in 0..10 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
