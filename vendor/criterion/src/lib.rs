//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the macro/API surface the workspace's benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion::bench_function`],
//! benchmark groups with [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`] and [`black_box`] — backed by a simple adaptive
//! wall-clock timer: each benchmark is calibrated, then sampled in batches,
//! and the median per-iteration time is reported to stdout.
//!
//! Statistical analysis, plots and HTML reports are out of scope; the
//! numbers are honest medians good enough for the repo's before/after
//! comparisons.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time per measurement sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(120);
/// Number of measurement samples taken per benchmark.
const SAMPLES: usize = 7;
/// Hard cap on the total measurement time of one benchmark.
const MAX_TOTAL: Duration = Duration::from_secs(10);

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id naming only the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Median per-iteration time, filled by [`Bencher::iter`].
    result: Option<Duration>,
}

impl Bencher {
    /// Measures `routine`, keeping the median over several samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit in one sample window?
        let started = Instant::now();
        black_box(routine());
        let once = started.elapsed().max(Duration::from_nanos(1));
        let per_sample = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let budget = Instant::now();
        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let sample_started = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            samples.push(sample_started.elapsed() / per_sample as u32);
            if budget.elapsed() > MAX_TOTAL {
                break;
            }
        }
        samples.sort();
        self.result = Some(samples[samples.len() / 2]);
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher { result: None };
    f(&mut bencher);
    match bencher.result {
        Some(median) => println!("{label:<50} time: [{}]", format_duration(median)),
        None => println!("{label:<50} (no measurement: Bencher::iter was not called)"),
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        run_one(id.as_ref(), |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the adaptive runner ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the adaptive runner ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark over one input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.label), |b| f(b, input));
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.as_ref()), |b| f(b));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, as in the real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the `main` function running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("f", 4), &4u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.bench_with_input(BenchmarkId::from_parameter(8), &8u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}
