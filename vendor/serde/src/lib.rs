//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The build environment has no crates.io access, so this vendored crate
//! keeps the workspace's `use serde::{Deserialize, Serialize}` imports and
//! `#[derive(Serialize, Deserialize)]` attributes compiling, and gives
//! [`Serialize`] a real meaning: writing JSON through a [`Serializer`]
//! (which `serde_json::to_string` drives). [`Deserialize`] is a pure marker —
//! nothing in the workspace deserializes.
//!
//! When the real serde becomes available, swapping the path dependency for
//! the crates.io version only requires re-deriving (the derive input shapes
//! are identical); the JSON field layout produced here matches serde_json's
//! externally-tagged default.

// Let the generated `impl ::serde::Serialize` code resolve inside this
// crate's own tests as well as in dependents.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// A minimal JSON writer with automatic comma placement.
#[derive(Debug, Default)]
pub struct Serializer {
    buf: String,
    /// One entry per open container: `true` until the first element is written.
    first: Vec<bool>,
}

impl Serializer {
    /// Creates an empty serializer.
    pub fn new() -> Self {
        Serializer::default()
    }

    /// Finishes and returns the JSON text.
    pub fn into_string(self) -> String {
        self.buf
    }

    fn comma(&mut self) {
        if let Some(first) = self.first.last_mut() {
            if *first {
                *first = false;
            } else {
                self.buf.push(',');
            }
        }
    }

    /// Opens a JSON object.
    pub fn begin_object(&mut self) {
        self.buf.push('{');
        self.first.push(true);
    }

    /// Writes an object key (with its separating comma and colon).
    pub fn key(&mut self, key: &str) {
        self.comma();
        self.write_escaped(key);
        self.buf.push(':');
    }

    /// Closes a JSON object.
    pub fn end_object(&mut self) {
        self.first.pop();
        self.buf.push('}');
    }

    /// Opens a JSON array.
    pub fn begin_array(&mut self) {
        self.buf.push('[');
        self.first.push(true);
    }

    /// Starts the next array element (placing the comma).
    pub fn element(&mut self) {
        self.comma();
    }

    /// Closes a JSON array.
    pub fn end_array(&mut self) {
        self.first.pop();
        self.buf.push(']');
    }

    /// Writes a string value.
    pub fn string(&mut self, value: &str) {
        self.write_escaped(value);
    }

    /// Writes `null`.
    pub fn null(&mut self) {
        self.buf.push_str("null");
    }

    /// Writes a boolean value.
    pub fn boolean(&mut self, value: bool) {
        self.buf.push_str(if value { "true" } else { "false" });
    }

    /// Writes an unsigned integer value.
    pub fn unsigned(&mut self, value: u64) {
        self.buf.push_str(&value.to_string());
    }

    /// Writes a signed integer value.
    pub fn signed(&mut self, value: i64) {
        self.buf.push_str(&value.to_string());
    }

    /// Writes a float value (`null` for non-finite values, as serde_json does).
    pub fn float(&mut self, value: f64) {
        if value.is_finite() {
            let mut text = value.to_string();
            // `f64::to_string` never prints an exponent; extremely large
            // magnitudes are still valid JSON, so only NaN/inf need care.
            if !text.contains('.') && !text.contains('e') && !text.contains("inf") {
                text.push_str(".0");
            }
            self.buf.push_str(&text);
        } else {
            self.null();
        }
    }

    fn write_escaped(&mut self, value: &str) {
        self.buf.push('"');
        for c in value.chars() {
            match c {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                '\r' => self.buf.push_str("\\r"),
                '\t' => self.buf.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.buf.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
    }
}

/// Types that can write themselves as JSON.
pub trait Serialize {
    /// Appends this value's JSON representation to the serializer.
    fn serialize_json(&self, serializer: &mut Serializer);
}

/// Marker trait mirroring serde's `Deserialize`; nothing in the workspace
/// deserializes, so there are no required methods.
pub trait Deserialize<'de>: Sized {}

// ---------------------------------------------------------------------------
// Primitive and container implementations.
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, serializer: &mut Serializer) {
                serializer.unsigned(*self as u64);
            }
        }
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, serializer: &mut Serializer) {
                serializer.signed(*self as i64);
            }
        }
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize_json(&self, serializer: &mut Serializer) {
        serializer.boolean(*self);
    }
}
impl<'de> Deserialize<'de> for bool {}

impl Serialize for f64 {
    fn serialize_json(&self, serializer: &mut Serializer) {
        serializer.float(*self);
    }
}
impl<'de> Deserialize<'de> for f64 {}

impl Serialize for f32 {
    fn serialize_json(&self, serializer: &mut Serializer) {
        serializer.float(f64::from(*self));
    }
}
impl<'de> Deserialize<'de> for f32 {}

impl Serialize for str {
    fn serialize_json(&self, serializer: &mut Serializer) {
        serializer.string(self);
    }
}

impl Serialize for String {
    fn serialize_json(&self, serializer: &mut Serializer) {
        serializer.string(self);
    }
}
impl<'de> Deserialize<'de> for String {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, serializer: &mut Serializer) {
        (**self).serialize_json(serializer);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_json(&self, serializer: &mut Serializer) {
        (**self).serialize_json(serializer);
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, serializer: &mut Serializer) {
        match self {
            Some(value) => value.serialize_json(serializer),
            None => serializer.null(),
        }
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, serializer: &mut Serializer) {
        serializer.begin_array();
        for item in self {
            serializer.element();
            item.serialize_json(serializer);
        }
        serializer.end_array();
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, serializer: &mut Serializer) {
        self.as_slice().serialize_json(serializer);
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_json(&self, serializer: &mut Serializer) {
        serializer.begin_array();
        serializer.element();
        self.0.serialize_json(serializer);
        serializer.element();
        self.1.serialize_json(serializer);
        serializer.end_array();
    }
}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize_json(&self, serializer: &mut Serializer) {
        serializer.begin_array();
        serializer.element();
        self.0.serialize_json(serializer);
        serializer.element();
        self.1.serialize_json(serializer);
        serializer.element();
        self.2.serialize_json(serializer);
        serializer.end_array();
    }
}

/// Renders any serializable value as a JSON object *key*: strings keep their
/// quoting, everything else is stringified and quoted.
fn write_map_key<K: Serialize>(key: &K, serializer: &mut Serializer) {
    let mut probe = Serializer::new();
    key.serialize_json(&mut probe);
    let rendered = probe.into_string();
    if rendered.starts_with('"') {
        serializer.buf.push_str(&rendered);
    } else {
        serializer.write_escaped(&rendered);
    }
    serializer.buf.push(':');
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_json(&self, serializer: &mut Serializer) {
        serializer.begin_object();
        for (key, value) in self {
            serializer.comma();
            write_map_key(key, serializer);
            value.serialize_json(serializer);
        }
        serializer.end_object();
    }
}
impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V> {}

impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn serialize_json(&self, serializer: &mut Serializer) {
        // Sort by rendered key so the output is deterministic.
        let mut entries: Vec<(String, &V)> = self
            .iter()
            .map(|(key, value)| {
                let mut probe = Serializer::new();
                key.serialize_json(&mut probe);
                (probe.into_string(), value)
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        serializer.begin_object();
        for (rendered, value) in entries {
            serializer.comma();
            if rendered.starts_with('"') {
                serializer.buf.push_str(&rendered);
            } else {
                serializer.write_escaped(&rendered);
            }
            serializer.buf.push(':');
            value.serialize_json(serializer);
        }
        serializer.end_object();
    }
}
impl<'de, K, V> Deserialize<'de> for std::collections::HashMap<K, V> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn render<T: Serialize>(value: &T) -> String {
        let mut s = Serializer::new();
        value.serialize_json(&mut s);
        s.into_string()
    }

    #[test]
    fn primitives() {
        assert_eq!(render(&3usize), "3");
        assert_eq!(render(&-4i64), "-4");
        assert_eq!(render(&1.5f64), "1.5");
        assert_eq!(render(&2.0f64), "2.0");
        assert_eq!(render(&f64::NAN), "null");
        assert_eq!(render(&true), "true");
        assert_eq!(render(&"a\"b".to_string()), "\"a\\\"b\"");
        assert_eq!(render(&Some(1u32)), "1");
        assert_eq!(render(&Option::<u32>::None), "null");
    }

    #[test]
    fn containers() {
        assert_eq!(render(&vec![1u32, 2, 3]), "[1,2,3]");
        assert_eq!(render(&(1.0f64, 2.5f64)), "[1.0,2.5]");
        let mut map = std::collections::BTreeMap::new();
        map.insert("k".to_string(), vec![true, false]);
        assert_eq!(render(&map), "{\"k\":[true,false]}");
    }

    #[test]
    fn derived_struct_and_enum() {
        #[derive(Serialize)]
        struct Point {
            x: f64,
            y: f64,
            tags: Vec<String>,
        }
        #[derive(Serialize)]
        enum Kind {
            Unit,
            Wrapped(u32),
            Config { scale: f64 },
        }
        let p = Point {
            x: 1.0,
            y: 2.0,
            tags: vec!["a".into()],
        };
        assert_eq!(render(&p), "{\"x\":1.0,\"y\":2.0,\"tags\":[\"a\"]}");
        assert_eq!(render(&Kind::Unit), "\"Unit\"");
        assert_eq!(render(&Kind::Wrapped(7)), "{\"Wrapped\":7}");
        assert_eq!(
            render(&Kind::Config { scale: 0.5 }),
            "{\"Config\":{\"scale\":0.5}}"
        );
    }

    #[test]
    fn derived_newtype_is_transparent() {
        #[derive(Serialize)]
        struct Id(usize);
        assert_eq!(render(&Id(9)), "9");
    }
}
