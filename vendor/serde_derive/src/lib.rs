//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no crates.io access, so this proc-macro crate
//! (no `syn`/`quote`; it parses the token stream by hand) provides the two
//! derives the workspace uses:
//!
//! * `#[derive(Serialize)]` generates an implementation of the vendored
//!   `serde::Serialize` trait that writes real JSON through
//!   `serde::Serializer` — enough for the report/table JSON artifacts.
//! * `#[derive(Deserialize)]` generates a marker `serde::Deserialize` impl
//!   (nothing in the workspace deserializes, so no parser is generated).
//!
//! Supported shapes — all that appear in this workspace: non-generic named
//! structs, tuple structs, and enums whose variants are unit, tuple, or
//! struct-like. Generic types and `#[serde(...)]` attributes are rejected
//! with a compile error rather than silently mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    Unit,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

/// Skips attributes (`#[...]`), which include doc comments.
fn skip_attributes(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        let text = g.stream().to_string();
                        if text.starts_with("serde") {
                            panic!(
                                "vendored serde_derive does not support #[serde(...)] attributes"
                            );
                        }
                    }
                    other => panic!("expected [...] after '#', got {other:?}"),
                }
            }
            _ => return,
        }
    }
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...), if present.
fn skip_visibility(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if let Some(TokenTree::Ident(id)) = tokens.peek() {
        if id.to_string() == "pub" {
            tokens.next();
            if let Some(TokenTree::Group(g)) = tokens.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    tokens.next();
                }
            }
        }
    }
}

/// Parses the field names of a named-fields body `{ a: T, b: U, ... }`.
fn parse_named_fields(group: proc_macro::Group) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = group.stream().into_iter().peekable();
    loop {
        skip_attributes(&mut tokens);
        skip_visibility(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected field name, got {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected ':' after field `{name}`, got {other:?}"),
        }
        fields.push(name);
        // Consume the type: everything up to a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        loop {
            match tokens.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == '<' {
                        depth += 1;
                    } else if c == '>' {
                        depth -= 1;
                    } else if c == ',' && depth == 0 {
                        tokens.next();
                        break;
                    }
                    tokens.next();
                }
                Some(_) => {
                    tokens.next();
                }
            }
        }
    }
    fields
}

/// Counts the fields of a tuple body `(T, U, ...)`.
fn count_tuple_fields(group: proc_macro::Group) -> usize {
    let mut count = 0usize;
    let mut depth = 0i32;
    let mut saw_token = false;
    for token in group.stream() {
        if let TokenTree::Punct(p) = &token {
            let c = p.as_char();
            if c == '<' {
                depth += 1;
            } else if c == '>' {
                depth -= 1;
            } else if c == ',' && depth == 0 {
                count += 1;
                saw_token = false;
                continue;
            }
        }
        saw_token = true;
    }
    if saw_token {
        count += 1;
    }
    count
}

fn parse_enum_variants(group: proc_macro::Group) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = group.stream().into_iter().peekable();
    loop {
        skip_attributes(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, got {other:?}"),
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = match tokens.next() {
                    Some(TokenTree::Group(g)) => g,
                    _ => unreachable!(),
                };
                VariantShape::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = match tokens.next() {
                    Some(TokenTree::Group(g)) => g,
                    _ => unreachable!(),
                };
                VariantShape::Tuple(count_tuple_fields(g))
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant { name, shape });
        // Consume the trailing comma, if any.
        if let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == ',' {
                tokens.next();
            }
        }
    }
    variants
}

fn parse_input(input: TokenStream) -> Parsed {
    let mut tokens = input.into_iter().peekable();
    skip_attributes(&mut tokens);
    skip_visibility(&mut tokens);
    let keyword = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("vendored serde_derive does not support generic type `{name}`");
        }
    }
    let shape = match keyword.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => panic!("unexpected struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_enum_variants(g))
            }
            other => panic!("unexpected enum body for `{name}`: {other:?}"),
        },
        other => panic!("expected `struct` or `enum`, got `{other}`"),
    };
    Parsed { name, shape }
}

/// Derives the vendored `serde::Serialize` (a JSON writer).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::NamedStruct(fields) => {
            let mut code = String::from("__s.begin_object();\n");
            for field in fields {
                code.push_str(&format!(
                    "__s.key(\"{field}\"); ::serde::Serialize::serialize_json(&self.{field}, __s);\n"
                ));
            }
            code.push_str("__s.end_object();");
            code
        }
        Shape::TupleStruct(1) => "::serde::Serialize::serialize_json(&self.0, __s);".to_string(),
        Shape::TupleStruct(n) => {
            let mut code = String::from("__s.begin_array();\n");
            for i in 0..*n {
                code.push_str(&format!(
                    "__s.element(); ::serde::Serialize::serialize_json(&self.{i}, __s);\n"
                ));
            }
            code.push_str("__s.end_array();");
            code
        }
        Shape::Unit => format!("__s.string(\"{name}\");"),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for variant in variants {
                let vname = &variant.name;
                match &variant.shape {
                    VariantShape::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vname} => {{ __s.string(\"{vname}\"); }}\n"
                        ));
                    }
                    VariantShape::Tuple(1) => {
                        arms.push_str(&format!(
                            "{name}::{vname}(__f0) => {{ __s.begin_object(); __s.key(\"{vname}\"); \
                             ::serde::Serialize::serialize_json(__f0, __s); __s.end_object(); }}\n"
                        ));
                    }
                    VariantShape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let mut inner = String::from("__s.begin_array();");
                        for b in &binders {
                            inner.push_str(&format!(
                                " __s.element(); ::serde::Serialize::serialize_json({b}, __s);"
                            ));
                        }
                        inner.push_str(" __s.end_array();");
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => {{ __s.begin_object(); __s.key(\"{vname}\"); \
                             {inner} __s.end_object(); }}\n",
                            binders.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let mut inner = String::from("__s.begin_object();");
                        for field in fields {
                            inner.push_str(&format!(
                                " __s.key(\"{field}\"); ::serde::Serialize::serialize_json({field}, __s);"
                            ));
                        }
                        inner.push_str(" __s.end_object();");
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{ __s.begin_object(); __s.key(\"{vname}\"); \
                             {inner} __s.end_object(); }}\n",
                            fields.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_json(&self, __s: &mut ::serde::Serializer) {{\n{body}\n}}\n}}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let name = &parsed.name;
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated Deserialize impl parses")
}
