//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json),
//! covering the two entry points the workspace uses: [`to_string`] and
//! [`to_string_pretty`]. Serialization is infallible here (non-finite floats
//! become `null`, as in the real crate's lossy modes), so [`Error`] is never
//! produced; it exists to keep the `Result` signatures source-compatible.

use std::fmt;

/// Serialization error (never constructed by this stand-in).
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialization error")
    }
}

impl std::error::Error for Error {}

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut serializer = serde::Serializer::new();
    value.serialize_json(&mut serializer);
    Ok(serializer.into_string())
}

/// Serializes a value to indented JSON (two-space indentation).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(prettify(&to_string(value)?))
}

/// Re-indents compact JSON. String-literal aware; does not re-parse numbers.
fn prettify(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let newline = |out: &mut String, depth: usize| {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    };
    let mut chars = compact.chars().peekable();
    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                // Keep empty containers on one line.
                if let Some(&next) = chars.peek() {
                    if (c == '{' && next == '}') || (c == '[' && next == ']') {
                        out.push(chars.next().unwrap());
                        continue;
                    }
                }
                depth += 1;
                newline(&mut out, depth);
            }
            '}' | ']' => {
                depth = depth.saturating_sub(1);
                newline(&mut out, depth);
                out.push(c);
            }
            ',' => {
                out.push(c);
                newline(&mut out, depth);
            }
            ':' => {
                out.push_str(": ");
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty() {
        let value = vec![(1u32, "a".to_string()), (2, "b".to_string())];
        let compact = to_string(&value).unwrap();
        assert_eq!(compact, "[[1,\"a\"],[2,\"b\"]]");
        let pretty = to_string_pretty(&value).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(pretty.replace([' ', '\n'], ""), compact);
    }

    #[test]
    fn pretty_keeps_strings_intact() {
        let value = "a,{b}:[c]".to_string();
        assert_eq!(to_string_pretty(&value).unwrap(), "\"a,{b}:[c]\"");
    }
}
