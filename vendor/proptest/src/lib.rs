//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the proptest API the workspace's property tests
//! use: the [`proptest!`] macro, [`Strategy`] with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`collection::vec`],
//! [`any`] and the `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! * cases are generated from a ChaCha8 stream seeded by the test name and
//!   case index, so every run explores the same inputs (fully deterministic —
//!   for a reproduction repo that beats the real crate's persistence files);
//! * there is no shrinking: a failing case panics with the case index, and
//!   re-running reproduces it exactly.

use rand::SeedableRng;
pub use rand_chacha::ChaCha8Rng as TestRng;

use std::ops::{Range, RangeInclusive};

/// Runner configuration. Only `cases` is interpreted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
    /// Accepted for API compatibility; this stand-in never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 32,
            max_shrink_iters: 0,
        }
    }
}

/// Builds the deterministic RNG for one test case.
pub fn test_rng(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(hash ^ (u64::from(case) << 32 | u64::from(case)))
}

/// A generator of random values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and samples that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

range_strategy!(usize, u64, u32, u8, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

/// Types with a canonical strategy, usable through [`any`].
pub trait Arbitrary {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;

    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A` (e.g. `any::<bool>()`).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Strategy for `bool`: fair coin.
#[derive(Debug, Clone, Copy)]
pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rand::RngCore::next_u32(rng) & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;
    fn arbitrary() -> BoolStrategy {
        BoolStrategy
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as a `vec` length specification.
    pub trait IntoSizeRange {
        /// Inclusive lower and upper length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for vectors with random length and elements.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Creates a vector strategy (`proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rand::Rng::gen_range(rng, self.min..=self.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual proptest prelude.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, Just, ProptestConfig, Strategy,
    };
}

/// Property assertion (panics on failure, like an `assert!` — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Defines deterministic property tests over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut __rng = $crate::test_rng(stringify!($name), case);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                // The case index in the panic message is enough to reproduce:
                // generation is a pure function of (test name, case index).
                let run = || $body;
                run();
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism() {
        let strat = (0u64..100, 0.0f64..1.0);
        let a: Vec<_> = (0..10)
            .map(|case| strat.clone().generate(&mut crate::test_rng("t", case)))
            .collect();
        let b: Vec<_> = (0..10)
            .map(|case| strat.clone().generate(&mut crate::test_rng("t", case)))
            .collect();
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_vecs((n, xs) in (2usize..6).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0.0f64..1.0, n))
        })) {
            prop_assert_eq!(xs.len(), n);
            prop_assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn bools_are_generated(bits in crate::collection::vec(any::<bool>(), 1..50)) {
            prop_assert!(!bits.is_empty() && bits.len() < 50);
        }
    }
}
