//! Offline stand-in for the [`rand_chacha`](https://crates.io/crates/rand_chacha)
//! crate, providing [`ChaCha8Rng`] on top of the vendored `rand` stub traits.
//!
//! The generator runs a genuine ChaCha8 keystream (the reduced-round variant
//! of the ChaCha stream cipher), so its statistical quality matches the real
//! crate; only the seed-expansion details differ, which is fine because the
//! workspace relies on determinism, not on cross-crate bit compatibility.

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A deterministic ChaCha8 random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    state: [u32; 16],
    buffer: [u32; 16],
    cursor: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12/13.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the 64-bit seed into a 256-bit key with SplitMix64, the same
        // scheme rand uses for seed_from_u64.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..4 {
            let k = next();
            state[4 + 2 * i] = k as u32;
            state[5 + 2 * i] = (k >> 32) as u32;
        }
        // Counter (12/13) starts at zero; nonce (14/15) stays zero.
        let mut rng = ChaCha8Rng {
            state,
            buffer: [0; 16],
            cursor: 16,
        };
        rng.refill();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.buffer[self.cursor];
        self.cursor += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn drives_the_rng_helpers() {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let mut counts = [0usize; 10];
        for _ in 0..1000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 50), "{counts:?}");
    }
}
