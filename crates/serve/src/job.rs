//! Job descriptions and outcomes.
//!
//! A [`JobSpec`] is everything the [`Server`](crate::Server) needs to run
//! one sizing job: the circuit (either a generator [`CircuitSpec`] or a
//! prepared [`ProblemInstance`]), the [`OptimizerConfig`], a scheduling
//! priority and a tenant id for admission control, plus optional per-attempt
//! interruption limits (iteration budget, wall-clock timeout) that turn a
//! long run into a chain of checkpointed attempts.
//!
//! Every type here derives `Serialize`, so specs and outcomes can be logged
//! as JSON next to the server's event stream.

use std::fmt;
use std::mem;

use ncgws_core::{CircuitMetrics, OptimizerConfig, StopReason};
use ncgws_netlist::{CircuitSpec, ProblemInstance};
use serde::Serialize;

/// Opaque handle to a submitted job, returned by
/// [`Server::submit`](crate::Server::submit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct JobId(pub(crate) u64);

impl JobId {
    /// The numeric id (unique per server, assigned in submission order).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// The circuit a job runs on.
// A spec is a couple hundred bytes and jobs are few relative to the
// instances they produce; boxing it would only push Box::new onto every
// submission site.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize)]
pub enum JobInput {
    /// Generate the circuit from a synthetic benchmark spec on first run
    /// (the generated instance is cached across resume attempts).
    Synthetic(CircuitSpec),
    /// A prepared problem instance, submitted as-is.
    Instance(Box<ProblemInstance>),
}

impl JobInput {
    /// The benchmark name.
    pub fn name(&self) -> &str {
        match self {
            JobInput::Synthetic(spec) => &spec.name,
            JobInput::Instance(instance) => &instance.name,
        }
    }

    /// Approximate heap footprint of the input description while it sits in
    /// the queue (counted by [`Server::stats`](crate::Server::stats) as
    /// `queue_bytes`).
    pub fn memory_bytes(&self) -> usize {
        match self {
            JobInput::Synthetic(spec) => mem::size_of::<CircuitSpec>() + spec.name.len(),
            JobInput::Instance(instance) => {
                mem::size_of::<ProblemInstance>() + instance.memory_bytes()
            }
        }
    }
}

/// Everything needed to run one optimization job on a [`Server`](crate::Server).
#[derive(Debug, Clone, Serialize)]
pub struct JobSpec {
    /// The circuit to size.
    pub input: JobInput,
    /// The optimizer configuration for every attempt of this job.
    pub config: OptimizerConfig,
    /// Scheduling priority: higher runs first; ties run in submission order.
    pub priority: i32,
    /// Tenant id for per-tenant admission control (queue-depth and
    /// in-flight caps).
    pub tenant: String,
    /// Outer-iteration budget *per attempt*. When it runs out the attempt
    /// stops with [`StopReason::BudgetExhausted`], a checkpoint is taken and
    /// the job is requeued to resume from it.
    pub iteration_budget: Option<usize>,
    /// Wall-clock limit *per attempt*, in milliseconds. Expiry stops the
    /// attempt with [`StopReason::DeadlineExpired`] and requeues from the
    /// latest checkpoint.
    pub attempt_timeout_ms: Option<u64>,
}

impl JobSpec {
    /// A job with default priority (0), the `"default"` tenant and no
    /// per-attempt limits.
    pub fn new(input: JobInput, config: OptimizerConfig) -> Self {
        JobSpec {
            input,
            config,
            priority: 0,
            tenant: "default".to_string(),
            iteration_budget: None,
            attempt_timeout_ms: None,
        }
    }

    /// Sets the scheduling priority (higher runs first).
    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the tenant id used for admission control.
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = tenant.into();
        self
    }

    /// Sets the per-attempt outer-iteration budget.
    pub fn with_iteration_budget(mut self, iterations: usize) -> Self {
        self.iteration_budget = Some(iterations);
        self
    }

    /// Sets the per-attempt wall-clock limit in milliseconds.
    pub fn with_attempt_timeout_ms(mut self, millis: u64) -> Self {
        self.attempt_timeout_ms = Some(millis);
        self
    }

    /// Approximate heap footprint of this spec while queued.
    pub fn memory_bytes(&self) -> usize {
        mem::size_of::<Self>() + self.input.memory_bytes() + self.tenant.len()
    }
}

/// Lifecycle state of a job, pollable via
/// [`Server::job_state`](crate::Server::job_state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum JobState {
    /// Waiting in the ready queue (first submission or requeued after an
    /// interrupted attempt).
    Queued,
    /// An attempt is running on a worker right now.
    Running,
    /// Finished by the solver's own stopping rules (converged, stagnated or
    /// iteration limit).
    Completed,
    /// Cancelled by [`Server::cancel`](crate::Server::cancel).
    Cancelled,
    /// Gave up: the attempt cap was exhausted or an attempt returned a
    /// non-recoverable error.
    Failed,
}

impl JobState {
    /// `true` once the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Cancelled | JobState::Failed
        )
    }
}

/// Final result of a job, available from
/// [`Server::outcome`](crate::Server::outcome) once the state is terminal.
#[derive(Debug, Clone, Serialize)]
pub struct JobOutcome {
    /// Why the final attempt stopped.
    pub stop_reason: StopReason,
    /// Outer iterations actually executed, summed across every attempt
    /// (resumed attempts only count the work they did, so this is the total
    /// compute spent on the job).
    pub iterations: usize,
    /// Number of attempts started (1 for an uninterrupted job).
    pub attempts: usize,
    /// How many attempts resumed from a checkpoint instead of starting cold.
    pub resumed_attempts: usize,
    /// Whether the final attempt ended with a feasible sizing in hand.
    pub feasible: bool,
    /// Final circuit metrics (`None` when the job never finished an
    /// attempt — cancelled while queued, or failed before sizing).
    pub final_metrics: Option<CircuitMetrics>,
    /// Error text for [`JobState::Failed`] outcomes caused by an error
    /// rather than the attempt cap.
    pub error: Option<String>,
}
