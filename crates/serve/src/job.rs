//! Job descriptions and outcomes.
//!
//! A [`JobSpec`] is everything the [`Server`](crate::Server) needs to run
//! one sizing job: the circuit (either a generator [`CircuitSpec`] or a
//! prepared [`ProblemInstance`]), the [`OptimizerConfig`], a scheduling
//! priority and a tenant id for admission control, plus optional per-attempt
//! interruption limits (iteration budget, wall-clock timeout) that turn a
//! long run into a chain of checkpointed attempts.
//!
//! Every type here derives `Serialize`, so specs and outcomes can be logged
//! as JSON next to the server's event stream.

use std::fmt;
use std::mem;

use ncgws_core::{CircuitMetrics, OptimizerConfig, StopReason};
use ncgws_netlist::{CircuitSpec, ProblemInstance};
use serde::Serialize;

/// Opaque handle to a submitted job, returned by
/// [`Server::submit`](crate::Server::submit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct JobId(pub(crate) u64);

impl JobId {
    /// The numeric id (unique per server, assigned in submission order).
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Rebuilds an id from its numeric form — the handle a client kept
    /// across a crash, valid against the [`Server::recover`](crate::Server::recover)ed
    /// server that assigned it.
    pub fn from_u64(id: u64) -> Self {
        JobId(id)
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// The circuit a job runs on.
// A spec is a couple hundred bytes and jobs are few relative to the
// instances they produce; boxing it would only push Box::new onto every
// submission site.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize)]
pub enum JobInput {
    /// Generate the circuit from a synthetic benchmark spec on first run
    /// (the generated instance is cached across resume attempts).
    Synthetic(CircuitSpec),
    /// A prepared problem instance, submitted as-is.
    Instance(Box<ProblemInstance>),
}

impl JobInput {
    /// The benchmark name.
    pub fn name(&self) -> &str {
        match self {
            JobInput::Synthetic(spec) => &spec.name,
            JobInput::Instance(instance) => &instance.name,
        }
    }

    /// Approximate heap footprint of the input description while it sits in
    /// the queue (counted by [`Server::stats`](crate::Server::stats) as
    /// `queue_bytes`).
    pub fn memory_bytes(&self) -> usize {
        match self {
            JobInput::Synthetic(spec) => mem::size_of::<CircuitSpec>() + spec.name.len(),
            JobInput::Instance(instance) => {
                mem::size_of::<ProblemInstance>() + instance.memory_bytes()
            }
        }
    }
}

/// How a job recovers from *transient failures* (worker panics, injected
/// faults) — distinct from the requeue-on-interrupt path, which handles
/// budget/deadline interruptions and is not counted as a failure.
///
/// A failed attempt is retried up to `max_retries` times with exponential
/// backoff: retry `r` (1-based) waits `base_delay_ms · multiplier^(r-1)`
/// capped at `max_delay_ms`, plus a deterministic seeded jitter of up to
/// `jitter` × that delay. The jitter is a pure function of
/// `(seed, job id, retry index)`, so a replayed run backs off identically.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct RetryPolicy {
    /// Retries allowed after the first failed attempt; `0` fails fast.
    pub max_retries: usize,
    /// Backoff before the first retry, in milliseconds.
    pub base_delay_ms: u64,
    /// Multiplier applied to the delay for each further retry.
    pub multiplier: f64,
    /// Upper bound on any single backoff delay, in milliseconds.
    pub max_delay_ms: u64,
    /// Fraction (0..=1) of the delay added as seeded jitter.
    pub jitter: f64,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl RetryPolicy {
    /// No retries: the first panic or error fails the job.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_delay_ms: 0,
            multiplier: 1.0,
            max_delay_ms: 0,
            jitter: 0.0,
            seed: 0,
        }
    }

    /// `max_retries` retries with a small default backoff (1 ms base,
    /// doubling, 50 ms cap, 50% jitter).
    pub fn retries(max_retries: usize) -> Self {
        RetryPolicy {
            max_retries,
            base_delay_ms: 1,
            multiplier: 2.0,
            max_delay_ms: 50,
            jitter: 0.5,
            seed: 0,
        }
    }

    /// Sets the jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The backoff before retry `retry` (1-based) of `job`, jitter included.
    pub fn delay_ms(&self, job: u64, retry: usize) -> u64 {
        if retry == 0 {
            return 0;
        }
        let exp = self.multiplier.max(1.0).powi(retry as i32 - 1);
        let base = ((self.base_delay_ms as f64) * exp).min(self.max_delay_ms as f64);
        let jitter_span = (base * self.jitter.clamp(0.0, 1.0)).floor() as u64;
        let jitter = if jitter_span == 0 {
            0
        } else {
            crate::fault::mix(self.seed, 0x6a697474, job, retry as u64) % (jitter_span + 1)
        };
        (base as u64).saturating_add(jitter).min(self.max_delay_ms)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// Everything needed to run one optimization job on a [`Server`](crate::Server).
#[derive(Debug, Clone, Serialize)]
pub struct JobSpec {
    /// The circuit to size.
    pub input: JobInput,
    /// The optimizer configuration for every attempt of this job.
    pub config: OptimizerConfig,
    /// Scheduling priority: higher runs first; ties run in submission order.
    pub priority: i32,
    /// Tenant id for per-tenant admission control (queue-depth and
    /// in-flight caps).
    pub tenant: String,
    /// Outer-iteration budget *per attempt*. When it runs out the attempt
    /// stops with [`StopReason::BudgetExhausted`], a checkpoint is taken and
    /// the job is requeued to resume from it.
    pub iteration_budget: Option<usize>,
    /// Wall-clock limit *per attempt*, in milliseconds. Expiry stops the
    /// attempt with [`StopReason::DeadlineExpired`] and requeues from the
    /// latest checkpoint.
    pub attempt_timeout_ms: Option<u64>,
    /// Recovery policy for transient failures (panics); defaults to
    /// [`RetryPolicy::none`].
    pub retry: RetryPolicy,
}

impl JobSpec {
    /// A job with default priority (0), the `"default"` tenant and no
    /// per-attempt limits.
    pub fn new(input: JobInput, config: OptimizerConfig) -> Self {
        JobSpec {
            input,
            config,
            priority: 0,
            tenant: "default".to_string(),
            iteration_budget: None,
            attempt_timeout_ms: None,
            retry: RetryPolicy::none(),
        }
    }

    /// Sets the scheduling priority (higher runs first).
    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the tenant id used for admission control.
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = tenant.into();
        self
    }

    /// Sets the per-attempt outer-iteration budget.
    pub fn with_iteration_budget(mut self, iterations: usize) -> Self {
        self.iteration_budget = Some(iterations);
        self
    }

    /// Sets the per-attempt wall-clock limit in milliseconds.
    pub fn with_attempt_timeout_ms(mut self, millis: u64) -> Self {
        self.attempt_timeout_ms = Some(millis);
        self
    }

    /// Sets the transient-failure retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Approximate heap footprint of this spec while queued.
    pub fn memory_bytes(&self) -> usize {
        mem::size_of::<Self>() + self.input.memory_bytes() + self.tenant.len()
    }
}

/// Lifecycle state of a job, pollable via
/// [`Server::job_state`](crate::Server::job_state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum JobState {
    /// Waiting in the ready queue (first submission or requeued after an
    /// interrupted attempt).
    Queued,
    /// An attempt is running on a worker right now.
    Running,
    /// Finished by the solver's own stopping rules (converged, stagnated or
    /// iteration limit).
    Completed,
    /// Cancelled by [`Server::cancel`](crate::Server::cancel).
    Cancelled,
    /// Gave up: the attempt cap was exhausted or an attempt returned a
    /// non-recoverable error.
    Failed,
}

impl JobState {
    /// `true` once the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Cancelled | JobState::Failed
        )
    }
}

/// Final result of a job, available from
/// [`Server::outcome`](crate::Server::outcome) once the state is terminal.
#[derive(Debug, Clone, Serialize)]
pub struct JobOutcome {
    /// Why the final attempt stopped.
    pub stop_reason: StopReason,
    /// Outer iterations actually executed, summed across every attempt
    /// (resumed attempts only count the work they did, so this is the total
    /// compute spent on the job).
    pub iterations: usize,
    /// Number of attempts started (1 for an uninterrupted job).
    pub attempts: usize,
    /// How many attempts resumed from a checkpoint instead of starting cold.
    pub resumed_attempts: usize,
    /// Whether the final attempt ended with a feasible sizing in hand.
    pub feasible: bool,
    /// Final circuit metrics (`None` when the job never finished an
    /// attempt — cancelled while queued, or failed before sizing).
    pub final_metrics: Option<CircuitMetrics>,
    /// Error text for [`JobState::Failed`] outcomes caused by an error
    /// rather than the attempt cap.
    pub error: Option<String>,
}
