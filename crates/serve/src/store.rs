//! Durable snapshot storage and the job-lifecycle journal.
//!
//! [`DiskSnapshotStore`] persists every checkpoint [`Snapshot`] to its own
//! file with an atomic temp-file + rename protocol, a versioned header and a
//! CRC-32 checksum, and keeps a bounded in-memory cache in front of the
//! files: snapshots over the configured memory budget are evicted coldest
//! first (they stay on disk and reload on demand), which is the spill
//! policy ROADMAP item 2 called out as missing.
//!
//! On load, truncation, checksum mismatches and undecodable payloads are
//! *detected*, never panicked on: the store falls back to the previous good
//! snapshot file (every save rotates the current file to `*.prev`), and
//! only reports [`StoreError::Corrupt`] when no generation survives.
//!
//! [`Journal`] is the append-only JSON-lines log of job lifecycle
//! transitions that [`Server::recover`](crate::Server::recover) replays
//! after a crash. A torn final line (the signature of a process killed
//! mid-append) is tolerated; corruption anywhere else is a typed error.

use std::collections::HashMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use ncgws_core::snapshot::json::{self, JsonValue};
use ncgws_core::{CheckpointSink, Snapshot};

use crate::fault::{FaultPlan, WriteFault};
use crate::sync::lock_recover;

/// Magic + version tag every snapshot file starts with.
const HEADER_MAGIC: &str = "ncgws-snap v1";

/// Typed failures of the durability layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An OS-level I/O failure (or an injected one).
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying error text.
        detail: String,
    },
    /// A snapshot file exists but no generation of it decodes cleanly.
    Corrupt {
        /// The file involved.
        path: PathBuf,
        /// What failed (truncation, checksum, payload decode).
        detail: String,
    },
    /// The journal has a malformed entry before its final line.
    Journal {
        /// 1-based line number.
        line: usize,
        /// What failed.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, detail } => {
                write!(f, "I/O error on {}: {detail}", path.display())
            }
            StoreError::Corrupt { path, detail } => {
                write!(f, "corrupt snapshot {}: {detail}", path.display())
            }
            StoreError::Journal { line, detail } => {
                write!(f, "journal line {line}: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

fn io_err(path: &Path, err: impl fmt::Display) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        detail: err.to_string(),
    }
}

/// CRC-32 (IEEE 802.3 polynomial), table-driven; hand-rolled because the
/// workspace takes no external checksum dependency.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            // In range: the `while i < 256` guard bounds the index.
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in bytes {
        // In range: the index is masked to 0..=255 and TABLE has 256 entries.
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Configuration of a [`DiskSnapshotStore`].
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreConfig {
    /// Cap on resident (in-memory) snapshot bytes. When an insert pushes
    /// the cache over the cap, the coldest snapshots are dropped from
    /// memory (their files remain) until it fits. `None` keeps everything
    /// resident.
    pub memory_budget_bytes: Option<usize>,
}

/// Point-in-time gauges and counters of a store (mirrored into
/// [`ServerStats`](crate::ServerStats) by durable servers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Bytes of snapshots held in memory.
    pub resident_bytes: u64,
    /// Bytes of snapshots that live only on disk right now.
    pub spilled_bytes: u64,
    /// Evictions from the resident cache since open.
    pub spills: u64,
    /// On-demand reloads from disk since open.
    pub reloads: u64,
    /// Loads that fell back to the previous good generation after
    /// detecting corruption.
    pub corrupt_recovered: u64,
    /// Snapshot writes that failed (real or injected I/O errors).
    pub write_errors: u64,
}

#[derive(Debug)]
struct Resident {
    snapshot: Snapshot,
    bytes: usize,
    last_touch: u64,
}

#[derive(Debug, Default)]
struct StoreInner {
    resident: HashMap<u64, Resident>,
    resident_bytes: usize,
    /// Payload bytes per job that have a current file on disk.
    file_bytes: HashMap<u64, usize>,
    /// Monotonic touch clock for LRU eviction.
    tick: u64,
    /// Per-job write counter — the fault-injection coordinate.
    writes: HashMap<u64, u64>,
}

/// A disk-backed snapshot store with atomic writes, checksummed files,
/// previous-generation fallback and a memory-budget spill policy.
#[derive(Debug)]
pub struct DiskSnapshotStore {
    dir: PathBuf,
    config: StoreConfig,
    inner: Mutex<StoreInner>,
    faults: Option<Arc<FaultPlan>>,
    spills: AtomicU64,
    reloads: AtomicU64,
    corrupt_recovered: AtomicU64,
    write_errors: AtomicU64,
}

impl DiskSnapshotStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>, config: StoreConfig) -> Result<Self, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        Ok(DiskSnapshotStore {
            dir,
            config,
            inner: Mutex::new(StoreInner::default()),
            faults: None,
            spills: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            corrupt_recovered: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
        })
    }

    /// Arms deterministic fault injection for this store's writes.
    pub fn with_faults(mut self, plan: Option<Arc<FaultPlan>>) -> Self {
        self.faults = plan.filter(|p| p.is_active());
        self
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn current_path(&self, job: u64) -> PathBuf {
        self.dir.join(format!("snap-{job}.json"))
    }

    fn prev_path(&self, job: u64) -> PathBuf {
        self.dir.join(format!("snap-{job}.json.prev"))
    }

    /// Persists `snapshot` as job `job`'s newest generation and refreshes
    /// the resident cache.
    ///
    /// The write is atomic: the bytes land in a temp file first and are
    /// renamed over the current file only when complete, after rotating the
    /// old current file to `*.prev` (the fallback generation).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the write fails (a real OS error or
    /// an injected fault); the previous generations are untouched.
    pub fn save(&self, job: u64, snapshot: &Snapshot) -> Result<(), StoreError> {
        let payload = snapshot.to_json();
        let header = format!(
            "{HEADER_MAGIC} len={} crc={:08x}\n",
            payload.len(),
            crc32(payload.as_bytes())
        );
        let write_index = {
            let mut inner = lock_recover(&self.inner);
            let counter = inner.writes.entry(job).or_insert(0);
            let idx = *counter;
            *counter += 1;
            idx
        };
        let fault = self
            .faults
            .as_ref()
            .and_then(|plan| plan.write_fault(job, write_index));
        let current = self.current_path(job);
        if fault == Some(WriteFault::IoError) {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
            return Err(io_err(&current, "injected I/O error"));
        }
        let tmp = self.dir.join(format!("snap-{job}.json.tmp"));
        let bytes: Vec<u8> = match fault {
            // A torn write: the header promises the full payload but only a
            // prefix hits the disk — exactly what a crash mid-write leaves.
            Some(WriteFault::Torn) => {
                let keep = payload.len() / 2;
                let mut out = header.clone().into_bytes();
                // In range: `keep` is half of `payload.len()`.
                out.extend_from_slice(&payload.as_bytes()[..keep]);
                out
            }
            _ => {
                let mut out = header.clone().into_bytes();
                out.extend_from_slice(payload.as_bytes());
                out
            }
        };
        fs::write(&tmp, &bytes).map_err(|e| {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
            io_err(&tmp, e)
        })?;
        // Rotate: current -> prev (best-effort; absent on the first save),
        // then tmp -> current atomically.
        if current.exists() {
            let _ = fs::rename(&current, self.prev_path(job));
        }
        fs::rename(&tmp, &current).map_err(|e| {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
            io_err(&current, e)
        })?;
        let mem = snapshot.memory_bytes();
        let mut inner = lock_recover(&self.inner);
        inner.file_bytes.insert(job, payload.len());
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.resident.insert(
            job,
            Resident {
                snapshot: snapshot.clone(),
                bytes: mem,
                last_touch: tick,
            },
        ) {
            inner.resident_bytes -= old.bytes;
        }
        inner.resident_bytes += mem;
        self.evict_over_budget(&mut inner);
        Ok(())
    }

    /// Drops cold resident snapshots until the cache fits the budget. The
    /// files stay on disk, so nothing durable is lost — this is the spill.
    fn evict_over_budget(&self, inner: &mut StoreInner) {
        let Some(budget) = self.config.memory_budget_bytes else {
            return;
        };
        while inner.resident_bytes > budget && inner.resident.len() > 1 {
            let Some(coldest) = inner
                .resident
                .iter()
                .min_by_key(|(_, r)| r.last_touch)
                .map(|(&job, _)| job)
            else {
                break;
            };
            if let Some(evicted) = inner.resident.remove(&coldest) {
                inner.resident_bytes -= evicted.bytes;
                self.spills.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Loads job `job`'s latest good snapshot: from the resident cache when
    /// hot, otherwise from disk (counted as a reload). A corrupt current
    /// file falls back to the `*.prev` generation (counted as
    /// `corrupt_recovered`).
    ///
    /// Returns `Ok(None)` when the job has no persisted snapshot at all.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Corrupt`] when files exist but no generation
    /// decodes, and [`StoreError::Io`] for filesystem failures other than
    /// the files being absent.
    pub fn load(&self, job: u64) -> Result<Option<Snapshot>, StoreError> {
        {
            let mut inner = lock_recover(&self.inner);
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(resident) = inner.resident.get_mut(&job) {
                resident.last_touch = tick;
                return Ok(Some(resident.snapshot.clone()));
            }
        }
        let current = self.current_path(job);
        let prev = self.prev_path(job);
        if !current.exists() && !prev.exists() {
            return Ok(None);
        }
        let primary = read_snapshot_file(&current);
        let snapshot = match primary {
            Ok(snapshot) => snapshot,
            Err(first_error) => {
                // Fall back to the previous good generation.
                match read_snapshot_file(&prev) {
                    Ok(snapshot) => {
                        self.corrupt_recovered.fetch_add(1, Ordering::Relaxed);
                        snapshot
                    }
                    Err(_) => {
                        return Err(StoreError::Corrupt {
                            path: current,
                            detail: match first_error {
                                StoreError::Corrupt { detail, .. } => {
                                    format!("{detail}; previous generation also unusable")
                                }
                                other => other.to_string(),
                            },
                        })
                    }
                }
            }
        };
        self.reloads.fetch_add(1, Ordering::Relaxed);
        let mem = snapshot.memory_bytes();
        let mut inner = lock_recover(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.resident.insert(
            job,
            Resident {
                snapshot: snapshot.clone(),
                bytes: mem,
                last_touch: tick,
            },
        ) {
            inner.resident_bytes -= old.bytes;
        }
        inner.resident_bytes += mem;
        self.evict_over_budget(&mut inner);
        Ok(Some(snapshot))
    }

    /// Forgets job `job` entirely: resident copy and both file generations
    /// (called when the job reaches a terminal state).
    pub fn remove(&self, job: u64) {
        let mut inner = lock_recover(&self.inner);
        if let Some(old) = inner.resident.remove(&job) {
            inner.resident_bytes -= old.bytes;
        }
        inner.file_bytes.remove(&job);
        drop(inner);
        let _ = fs::remove_file(self.current_path(job));
        let _ = fs::remove_file(self.prev_path(job));
    }

    /// Whether job `job` currently has a resident in-memory copy.
    pub fn is_resident(&self, job: u64) -> bool {
        lock_recover(&self.inner).resident.contains_key(&job)
    }

    /// Current gauges and counters.
    pub fn stats(&self) -> StoreStats {
        let inner = lock_recover(&self.inner);
        let spilled_bytes: usize = inner
            .file_bytes
            .iter()
            .filter(|(job, _)| !inner.resident.contains_key(job))
            .map(|(_, &bytes)| bytes)
            .sum();
        StoreStats {
            resident_bytes: inner.resident_bytes as u64,
            spilled_bytes: spilled_bytes as u64,
            spills: self.spills.load(Ordering::Relaxed),
            reloads: self.reloads.load(Ordering::Relaxed),
            corrupt_recovered: self.corrupt_recovered.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
        }
    }
}

/// Reads and fully verifies one snapshot file generation.
fn read_snapshot_file(path: &Path) -> Result<Snapshot, StoreError> {
    let corrupt = |detail: String| StoreError::Corrupt {
        path: path.to_path_buf(),
        detail,
    };
    let bytes = fs::read(path).map_err(|e| io_err(path, e))?;
    let newline = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| corrupt("missing header line".into()))?;
    // In range: `newline` is a `position()` hit within `bytes`.
    let header = std::str::from_utf8(&bytes[..newline])
        .map_err(|_| corrupt("header is not UTF-8".into()))?;
    let rest = header
        .strip_prefix(HEADER_MAGIC)
        .ok_or_else(|| corrupt(format!("bad magic (expected `{HEADER_MAGIC}`)")))?;
    let mut len = None;
    let mut crc = None;
    for token in rest.split_whitespace() {
        if let Some(v) = token.strip_prefix("len=") {
            len = v.parse::<usize>().ok();
        } else if let Some(v) = token.strip_prefix("crc=") {
            crc = u32::from_str_radix(v, 16).ok();
        }
    }
    let len = len.ok_or_else(|| corrupt("header is missing len=".into()))?;
    let crc = crc.ok_or_else(|| corrupt("header is missing crc=".into()))?;
    // In range: `newline < bytes.len()`, so the suffix start is at most len.
    let payload = &bytes[newline + 1..];
    if payload.len() != len {
        return Err(corrupt(format!(
            "truncated payload: header promises {len} bytes, file has {}",
            payload.len()
        )));
    }
    let actual = crc32(payload);
    if actual != crc {
        return Err(corrupt(format!(
            "checksum mismatch: header {crc:08x}, payload {actual:08x}"
        )));
    }
    let text = std::str::from_utf8(payload).map_err(|_| corrupt("payload is not UTF-8".into()))?;
    Snapshot::from_json(text).map_err(|e| corrupt(format!("payload does not decode: {e}")))
}

/// A [`CheckpointSink`] adapter that persists every checkpoint of one job
/// durably through the store, journaling each success. Store failures are
/// swallowed (counted by the store) — losing one periodic checkpoint must
/// not kill the attempt, the previous generation still resumes the job.
pub struct DiskSink<'a> {
    store: &'a DiskSnapshotStore,
    journal: Option<&'a Journal>,
    job: u64,
    saved: AtomicUsize,
}

impl<'a> DiskSink<'a> {
    /// A sink persisting checkpoints of job `job`, journaling when a
    /// journal is supplied.
    pub fn new(store: &'a DiskSnapshotStore, journal: Option<&'a Journal>, job: u64) -> Self {
        DiskSink {
            store,
            journal,
            job,
            saved: AtomicUsize::new(0),
        }
    }

    /// Checkpoints successfully persisted through this sink so far.
    pub fn saved(&self) -> usize {
        self.saved.load(Ordering::Relaxed)
    }
}

impl CheckpointSink for DiskSink<'_> {
    fn on_checkpoint(&self, snapshot: Snapshot) {
        if self.store.save(self.job, &snapshot).is_ok() {
            self.saved.fetch_add(1, Ordering::Relaxed);
            if let Some(journal) = self.journal {
                let _ = journal.append(&format!(
                    "{{\"entry\":\"checkpointed\",\"job\":{},\"iteration\":{}}}",
                    self.job, snapshot.iterations_done
                ));
            }
        }
    }
}

/// The append-only JSON-lines journal of job lifecycle transitions.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Mutex<BufWriter<File>>,
}

/// File name of the journal inside a server directory.
pub const JOURNAL_FILE: &str = "journal.jsonl";

impl Journal {
    /// Opens `dir`'s journal for appending, creating it (and the
    /// directory) if absent.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the file cannot be opened.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        let path = dir.join(JOURNAL_FILE);
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err(&path, e))?;
        Ok(Journal {
            path,
            file: Mutex::new(BufWriter::new(file)),
        })
    }

    /// Appends one JSON line and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on write failure.
    pub fn append(&self, line: &str) -> Result<(), StoreError> {
        let mut file = lock_recover(&self.file);
        file.write_all(line.as_bytes())
            .and_then(|()| file.write_all(b"\n"))
            .and_then(|()| file.flush())
            .map_err(|e| io_err(&self.path, e))
    }

    /// Reads and parses every journal entry under `dir`.
    ///
    /// A malformed *final* line is tolerated and dropped — that is exactly
    /// what a crash mid-append leaves behind. Malformed earlier lines are
    /// real corruption and surface as [`StoreError::Journal`].
    ///
    /// Returns an empty vector when the journal does not exist.
    pub fn read_entries(dir: impl AsRef<Path>) -> Result<Vec<JsonValue>, StoreError> {
        let path = dir.as_ref().join(JOURNAL_FILE);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(io_err(&path, e)),
        };
        let lines: Vec<&str> = text.lines().collect();
        let mut entries = Vec::with_capacity(lines.len());
        for (i, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match json::parse(line) {
                Ok(value) => entries.push(value),
                Err(detail) if i + 1 == lines.len() => {
                    // Torn final line from a crash mid-append: ignore.
                    let _ = detail;
                }
                Err(detail) => {
                    return Err(StoreError::Journal {
                        line: i + 1,
                        detail,
                    })
                }
            }
        }
        Ok(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
