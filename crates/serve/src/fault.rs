//! Deterministic fault injection for the durability layer.
//!
//! A [`FaultPlan`] is a seeded description of the failures a test wants the
//! server to suffer: worker panics at a chosen iteration, simulated I/O
//! errors and torn writes in the [`DiskSnapshotStore`](crate::DiskSnapshotStore),
//! and delayed dispatch. Every decision is a pure function of the plan's
//! seed and the coordinates of the event (job id, attempt number, write
//! index), so a failing run replays bit-for-bit under `cargo test` — no
//! clocks, no thread-timing dependence, no global RNG.
//!
//! The plan is threaded through the server and store as an
//! `Option<Arc<FaultPlan>>`; the `None` fast path is a single branch, so
//! production servers pay nothing for the hook.

use std::time::Duration;

use serde::Serialize;

/// One splitmix64 scramble step — the same finalizer the netlist generator
/// family uses, hand-rolled here because the serve crate deliberately takes
/// no RNG dependency.
#[inline]
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a seed with event coordinates into one well-scrambled word.
#[inline]
pub(crate) fn mix(seed: u64, domain: u64, a: u64, b: u64) -> u64 {
    splitmix64(splitmix64(splitmix64(seed ^ domain).wrapping_add(a)).wrapping_add(b))
}

/// Maps a scrambled word to a uniform `f64` in `[0, 1)`.
#[inline]
fn unit(z: u64) -> f64 {
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// A simulated failure for one snapshot-store write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// The write fails outright with a simulated I/O error (nothing is
    /// persisted; the previous file, if any, is untouched).
    IoError,
    /// The write is torn: the file header promises the full payload but only
    /// a prefix lands on disk, as if the process died mid-`write`. Detected
    /// on load by the length/checksum check.
    Torn,
}

// Domain tags keep the per-event hash streams independent.
const DOMAIN_PANIC: u64 = 0x70616e69; // "pani"
const DOMAIN_PANIC_ITER: u64 = 0x70697472; // "pitr"
const DOMAIN_WRITE: u64 = 0x77726974; // "writ"
const DOMAIN_DELAY: u64 = 0x646c6179; // "dlay"

/// A seeded, deterministic plan of injected failures.
///
/// All probabilities default to zero; enable the failure modes a test wants
/// with the builder methods. Attempts numbered above
/// [`faulty_attempt_limit`](Self::with_faulty_attempt_limit) never receive
/// injected panics or delays, so a job with enough retries always makes
/// forward progress (store write faults stay on — they are recovered by the
/// checksum/fallback path, not by retrying the attempt).
#[derive(Debug, Clone, Serialize)]
pub struct FaultPlan {
    seed: u64,
    panic_probability: f64,
    panic_iteration_max: usize,
    io_error_probability: f64,
    torn_write_probability: f64,
    delay_probability: f64,
    delay_ms_max: u64,
    faulty_attempt_limit: usize,
}

impl FaultPlan {
    /// A plan with the given seed and no failures enabled.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            panic_probability: 0.0,
            panic_iteration_max: 4,
            io_error_probability: 0.0,
            torn_write_probability: 0.0,
            delay_probability: 0.0,
            delay_ms_max: 0,
            faulty_attempt_limit: 2,
        }
    }

    /// Enables worker panics: each eligible attempt panics with
    /// `probability`, at a deterministic iteration in `0..=max_iteration`.
    pub fn with_panics(mut self, probability: f64, max_iteration: usize) -> Self {
        self.panic_probability = probability.clamp(0.0, 1.0);
        self.panic_iteration_max = max_iteration;
        self
    }

    /// Enables simulated I/O errors on snapshot-store writes.
    pub fn with_io_errors(mut self, probability: f64) -> Self {
        self.io_error_probability = probability.clamp(0.0, 1.0);
        self
    }

    /// Enables torn snapshot-store writes (header present, payload cut
    /// short — caught by the checksum on load).
    pub fn with_torn_writes(mut self, probability: f64) -> Self {
        self.torn_write_probability = probability.clamp(0.0, 1.0);
        self
    }

    /// Enables delayed dispatch: each eligible attempt sleeps up to
    /// `max_ms` milliseconds before running.
    pub fn with_dispatch_delays(mut self, probability: f64, max_ms: u64) -> Self {
        self.delay_probability = probability.clamp(0.0, 1.0);
        self.delay_ms_max = max_ms;
        self
    }

    /// Attempts numbered above `limit` (1-based) never panic or get delayed,
    /// guaranteeing forward progress for jobs with retries left. Default 2.
    pub fn with_faulty_attempt_limit(mut self, limit: usize) -> Self {
        self.faulty_attempt_limit = limit;
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The iteration at which worker attempt `attempt` (1-based) of `job`
    /// should panic, or `None` when this attempt runs clean.
    pub fn panic_iteration(&self, job: u64, attempt: usize) -> Option<usize> {
        if self.panic_probability <= 0.0 || attempt > self.faulty_attempt_limit {
            return None;
        }
        let roll = unit(mix(self.seed, DOMAIN_PANIC, job, attempt as u64));
        if roll >= self.panic_probability {
            return None;
        }
        let z = mix(self.seed, DOMAIN_PANIC_ITER, job, attempt as u64);
        Some((z % (self.panic_iteration_max as u64 + 1)) as usize)
    }

    /// The fault injected into write number `write_index` of `job`'s
    /// snapshot file, or `None` for a clean write.
    pub fn write_fault(&self, job: u64, write_index: u64) -> Option<WriteFault> {
        let total = self.io_error_probability + self.torn_write_probability;
        if total <= 0.0 {
            return None;
        }
        let roll = unit(mix(self.seed, DOMAIN_WRITE, job, write_index));
        if roll < self.io_error_probability {
            Some(WriteFault::IoError)
        } else if roll < total {
            Some(WriteFault::Torn)
        } else {
            None
        }
    }

    /// How long to delay dispatch of attempt `attempt` (1-based) of `job`.
    pub fn dispatch_delay(&self, job: u64, attempt: usize) -> Option<Duration> {
        if self.delay_probability <= 0.0
            || self.delay_ms_max == 0
            || attempt > self.faulty_attempt_limit
        {
            return None;
        }
        let z = mix(self.seed, DOMAIN_DELAY, job, attempt as u64);
        if unit(z) >= self.delay_probability {
            return None;
        }
        Some(Duration::from_millis(
            splitmix64(z) % (self.delay_ms_max + 1),
        ))
    }

    /// Whether any failure mode is enabled (used to skip per-event hashing
    /// entirely on the production path).
    pub fn is_active(&self) -> bool {
        self.panic_probability > 0.0
            || self.io_error_probability > 0.0
            || self.torn_write_probability > 0.0
            || self.delay_probability > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultPlan::new(42)
            .with_panics(0.5, 6)
            .with_io_errors(0.2)
            .with_torn_writes(0.2)
            .with_dispatch_delays(0.3, 20);
        let b = a.clone();
        for job in 0..50 {
            for attempt in 1..4 {
                assert_eq!(
                    a.panic_iteration(job, attempt),
                    b.panic_iteration(job, attempt)
                );
                assert_eq!(
                    a.dispatch_delay(job, attempt),
                    b.dispatch_delay(job, attempt)
                );
            }
            for w in 0..8 {
                assert_eq!(a.write_fault(job, w), b.write_fault(job, w));
            }
        }
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let a = FaultPlan::new(1).with_panics(0.5, 6);
        let b = FaultPlan::new(2).with_panics(0.5, 6);
        let hits_a: Vec<_> = (0..200).map(|j| a.panic_iteration(j, 1)).collect();
        let hits_b: Vec<_> = (0..200).map(|j| b.panic_iteration(j, 1)).collect();
        assert_ne!(hits_a, hits_b);
    }

    #[test]
    fn rates_land_near_their_probability() {
        let plan = FaultPlan::new(7).with_panics(0.5, 6);
        let hits = (0..2000)
            .filter(|&j| plan.panic_iteration(j, 1).is_some())
            .count();
        assert!((800..1200).contains(&hits), "got {hits} panics of 2000");
        let quiet = FaultPlan::new(7);
        assert!(!quiet.is_active());
        assert_eq!(quiet.panic_iteration(3, 1), None);
        assert_eq!(quiet.write_fault(3, 0), None);
    }

    #[test]
    fn attempts_past_the_limit_run_clean() {
        let plan = FaultPlan::new(9)
            .with_panics(1.0, 6)
            .with_dispatch_delays(1.0, 10)
            .with_faulty_attempt_limit(2);
        assert!(plan.panic_iteration(5, 1).is_some());
        assert!(plan.panic_iteration(5, 2).is_some());
        assert_eq!(plan.panic_iteration(5, 3), None);
        assert_eq!(plan.dispatch_delay(5, 3), None);
    }
}
