//! Poison-tolerant lock helpers.
//!
//! Worker panics are caught per attempt, but a panic *while holding* a lock
//! poisons it. Every such critical section in this crate leaves the guarded
//! data consistent (state transitions happen after the fallible work), so
//! recovery is simply taking the guard back — propagating the poison as a
//! second panic would violate the crate's no-panic serving contract.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};
use std::time::Duration;

/// Locks `mutex`, recovering the guard from a poisoned lock.
pub(crate) fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait`] with the same poison recovery as [`lock_recover`].
pub(crate) fn wait_recover<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
) -> MutexGuard<'a, T> {
    condvar.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait_timeout`] with the same poison recovery.
pub(crate) fn wait_timeout_recover<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, Option<WaitTimeoutResult>) {
    match condvar.wait_timeout(guard, timeout) {
        Ok((guard, res)) => (guard, Some(res)),
        Err(poisoned) => (poisoned.into_inner().0, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn poisoned_lock_is_recovered_not_propagated() {
        let shared = Arc::new(Mutex::new(7u32));
        let clone = Arc::clone(&shared);
        let _ = std::thread::spawn(move || {
            let _guard = clone.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(shared.is_poisoned());
        assert_eq!(*lock_recover(&shared), 7);
    }
}
