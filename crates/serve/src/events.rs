//! JSON-lines event stream.
//!
//! When a sink is attached via
//! [`Server::start_with_events`](crate::Server::start_with_events), every
//! job transition is written as one compact JSON object per line:
//!
//! ```json
//! {"event":"submitted","job":7,"tenant":"t2","priority":3}
//! {"event":"started","job":7,"tenant":"t2","attempt":1,"resumed":false}
//! {"event":"requeued","job":7,"tenant":"t2","stop":"budget-exhausted","checkpoint_iteration":24}
//! {"event":"completed","job":7,"tenant":"t2","stop":"converged","iterations":61}
//! ```
//!
//! Lines are written under their own lock, never while the scheduler lock
//! is held, so a slow sink back-pressures the event stream but not the
//! queue.

use std::io::Write;
use std::sync::{Arc, Mutex};

use serde::Serializer;

use crate::sync::lock_recover;

/// One field value in an event line.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Field<'a> {
    /// Unsigned integer.
    U(u64),
    /// Signed integer.
    I(i64),
    /// String.
    S(&'a str),
    /// Boolean.
    B(bool),
}

/// Renders one event as a compact JSON line (without the trailing newline).
pub(crate) fn line(event: &str, fields: &[(&str, Field<'_>)]) -> String {
    let mut ser = Serializer::new();
    ser.begin_object();
    ser.key("event");
    ser.string(event);
    for (key, value) in fields {
        ser.key(key);
        match value {
            Field::U(v) => ser.unsigned(*v),
            Field::I(v) => ser.signed(*v),
            Field::S(v) => ser.string(v),
            Field::B(v) => ser.boolean(*v),
        }
    }
    ser.end_object();
    ser.into_string()
}

/// A clonable in-memory event sink for tests and examples: every clone
/// appends to the same buffer.
///
/// Implements [`std::io::Write`], so it can be boxed straight into
/// [`Server::start_with_events`](crate::Server::start_with_events).
#[derive(Debug, Clone, Default)]
pub struct SharedBuffer {
    buf: Arc<Mutex<Vec<u8>>>,
}

impl SharedBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        SharedBuffer::default()
    }

    /// The buffered bytes as UTF-8 text.
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&lock_recover(&self.buf)).into_owned()
    }

    /// Number of complete lines written so far.
    pub fn num_lines(&self) -> usize {
        lock_recover(&self.buf)
            .iter()
            .filter(|&&b| b == b'\n')
            .count()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        lock_recover(&self.buf).extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_are_valid_compact_json() {
        let text = line(
            "started",
            &[
                ("job", Field::U(7)),
                ("tenant", Field::S("t\"2")),
                ("priority", Field::I(-3)),
                ("resumed", Field::B(false)),
            ],
        );
        assert_eq!(
            text,
            "{\"event\":\"started\",\"job\":7,\"tenant\":\"t\\\"2\",\"priority\":-3,\"resumed\":false}"
        );
    }

    #[test]
    fn shared_buffer_accumulates_across_clones() {
        let buffer = SharedBuffer::new();
        let mut writer = buffer.clone();
        writeln!(writer, "{}", line("submitted", &[("job", Field::U(1))])).unwrap();
        writeln!(writer, "{}", line("completed", &[("job", Field::U(1))])).unwrap();
        assert_eq!(buffer.num_lines(), 2);
        assert!(buffer.contents().contains("\"event\":\"completed\""));
    }
}
