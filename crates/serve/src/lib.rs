//! Persistent optimization serving for the NCGWS engine.
//!
//! The core crate solves one sizing problem per call. This crate keeps a
//! process-resident [`Server`] running: clients submit [`JobSpec`]s into a
//! priority queue, worker threads drain it through the two-stage
//! `prepare → order → size` flow, and every attempt runs under a
//! checkpointing [`RunControl`](ncgws_core::RunControl) so an interrupted
//! job (per-attempt iteration budget, wall-clock timeout, or cooperative
//! cancel) is requeued and **resumes from its latest
//! [`Snapshot`](ncgws_core::Snapshot)** instead of restarting cold.
//!
//! What lives where:
//!
//! * [`job`] — [`JobSpec`]/[`JobId`]/[`JobState`]/[`JobOutcome`]: the
//!   serializable job descriptions and results;
//! * [`server`] — the [`Server`] itself: worker pool, strict-priority FIFO
//!   queue, per-tenant admission control, graceful [`drain`](Server::drain);
//! * [`stats`] — pollable [`ServerStats`] (cumulative counters, queue
//!   gauges, snapshot/queue memory accounting);
//! * [`events`] — the optional JSON-lines event stream;
//! * [`store`] — the durability layer: [`DiskSnapshotStore`] (atomic,
//!   checksummed snapshot files with a memory-budget spill policy) and the
//!   append-only [`Journal`] that [`Server::recover`] replays after a
//!   crash;
//! * [`fault`] — the seeded, deterministic [`FaultPlan`] injection layer
//!   (worker panics, I/O errors, torn writes, delayed dispatch);
//! * [`codec`] — hand-rolled JSON decoders for job specs and outcomes (the
//!   workspace's serde stand-in only serializes).
//!
//! # Example
//!
//! ```
//! use ncgws_core::OptimizerConfig;
//! use ncgws_netlist::CircuitSpec;
//! use ncgws_serve::{JobInput, JobSpec, Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig::default());
//! let config = OptimizerConfig {
//!     max_iterations: 30,
//!     ..OptimizerConfig::default()
//! };
//! let spec = JobSpec::new(
//!     JobInput::Synthetic(CircuitSpec::new("demo", 20, 45).with_seed(7)),
//!     config,
//! )
//! .with_priority(1)
//! .with_tenant("docs");
//! let id = server.submit(spec).unwrap();
//! let outcome = server.wait(id).unwrap();
//! assert!(!outcome.stop_reason.is_interrupted());
//! let stats = server.drain();
//! assert_eq!(stats.completed, 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod codec;
pub mod events;
pub mod fault;
pub mod job;
pub mod server;
pub mod stats;
pub mod store;
mod sync;

pub use events::SharedBuffer;
pub use fault::{FaultPlan, WriteFault};
pub use job::{JobId, JobInput, JobOutcome, JobSpec, JobState, RetryPolicy};
pub use server::{DurableOptions, RecoveryReport, Server, ServerConfig, SubmitError};
pub use stats::ServerStats;
pub use store::{DiskSink, DiskSnapshotStore, Journal, StoreConfig, StoreError, StoreStats};
