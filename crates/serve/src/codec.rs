//! The read side of the durable job journal.
//!
//! The workspace's serde stand-in serializes but has no deserializer, so the
//! journal's JSON is decoded here by hand against the same recursive-descent
//! parser the snapshot codec uses ([`ncgws_core::snapshot::json`]). Every
//! decoder follows the stand-in derive's encoding conventions exactly:
//! named structs are objects, unit variants are their name as a string,
//! one-field tuple variants are `{"Variant": value}`, tuples are arrays,
//! `Option::None` is `null`.
//!
//! All input is untrusted (a crashed process may have left anything on
//! disk): decoders return `Err` on malformed shapes and re-validate
//! structural invariants (graph wiring, pattern widths, config ranges)
//! before handing values back to the optimizer.

use ncgws_circuit::{CircuitGraph, GateKind, Node, NodeAttrs, NodeId, NodeKind, Technology};
use ncgws_core::snapshot::json::{self, JsonValue};
use ncgws_core::{
    AdaptiveSchedule, CircuitMetrics, ConstraintBounds, ConstraintSpec, OptimizerConfig,
    OrderingStrategy, ParallelPolicy, SolveStrategy, StepSchedule, StopReason,
};
use ncgws_netlist::{ChannelGeometry, CircuitSpec, PatternSet, ProblemInstance};

use crate::job::{JobInput, JobOutcome, JobSpec, RetryPolicy};

type Pairs = [(String, JsonValue)];

fn as_obj<'a>(v: &'a JsonValue, what: &str) -> Result<&'a Pairs, String> {
    v.as_object()
        .ok_or_else(|| format!("{what} must be an object"))
}

fn field<'a>(obj: &'a Pairs, name: &str, what: &str) -> Result<&'a JsonValue, String> {
    json::get(obj, name).ok_or_else(|| format!("{what} is missing `{name}`"))
}

fn f64_field(obj: &Pairs, name: &str, what: &str) -> Result<f64, String> {
    field(obj, name, what)?
        .as_f64()
        .ok_or_else(|| format!("{what}.{name} must be a finite number"))
}

fn usize_field(obj: &Pairs, name: &str, what: &str) -> Result<usize, String> {
    field(obj, name, what)?
        .as_usize()
        .ok_or_else(|| format!("{what}.{name} must be a non-negative integer"))
}

fn u64_field(obj: &Pairs, name: &str, what: &str) -> Result<u64, String> {
    field(obj, name, what)?
        .as_u64()
        .ok_or_else(|| format!("{what}.{name} must be a u64 integer"))
}

fn bool_field(obj: &Pairs, name: &str, what: &str) -> Result<bool, String> {
    field(obj, name, what)?
        .as_bool()
        .ok_or_else(|| format!("{what}.{name} must be a boolean"))
}

fn str_field<'a>(obj: &'a Pairs, name: &str, what: &str) -> Result<&'a str, String> {
    field(obj, name, what)?
        .as_str()
        .ok_or_else(|| format!("{what}.{name} must be a string"))
}

fn opt_usize_field(obj: &Pairs, name: &str, what: &str) -> Result<Option<usize>, String> {
    match field(obj, name, what)? {
        JsonValue::Null => Ok(None),
        v => v
            .as_usize()
            .map(Some)
            .ok_or_else(|| format!("{what}.{name} must be an integer or null")),
    }
}

fn opt_u64_field(obj: &Pairs, name: &str, what: &str) -> Result<Option<u64>, String> {
    match field(obj, name, what)? {
        JsonValue::Null => Ok(None),
        v => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("{what}.{name} must be a u64 or null")),
    }
}

/// A 2-tuple of floats, encoded as a 2-element array.
fn f64_pair(v: &JsonValue, what: &str) -> Result<(f64, f64), String> {
    let items = v
        .as_array()
        .filter(|a| a.len() == 2)
        .ok_or_else(|| format!("{what} must be a 2-element array"))?;
    // In range: the filter above guarantees exactly two elements.
    let lo = items[0]
        .as_f64()
        .ok_or_else(|| format!("{what}[0] must be a finite number"))?;
    // In range: as above.
    let hi = items[1]
        .as_f64()
        .ok_or_else(|| format!("{what}[1] must be a finite number"))?;
    Ok((lo, hi))
}

/// An enum value: either `"Unit"` or `{"Variant": payload}`.
fn variant<'a>(v: &'a JsonValue, what: &str) -> Result<(&'a str, Option<&'a JsonValue>), String> {
    match v {
        JsonValue::String(name) => Ok((name, None)),
        JsonValue::Object(pairs) if pairs.len() == 1 => {
            // In range: the guard requires exactly one pair.
            Ok((pairs[0].0.as_str(), Some(&pairs[0].1)))
        }
        _ => Err(format!("{what} must be an enum variant")),
    }
}

/// Decodes a [`StopReason`] from its serialized variant name.
pub fn decode_stop_reason(v: &JsonValue) -> Result<StopReason, String> {
    let (name, payload) = variant(v, "stop reason")?;
    if payload.is_some() {
        return Err(format!("stop reason `{name}` takes no payload"));
    }
    match name {
        "Converged" => Ok(StopReason::Converged),
        "Stagnated" => Ok(StopReason::Stagnated),
        "IterationLimit" => Ok(StopReason::IterationLimit),
        "BudgetExhausted" => Ok(StopReason::BudgetExhausted),
        "Cancelled" => Ok(StopReason::Cancelled),
        "DeadlineExpired" => Ok(StopReason::DeadlineExpired),
        other => Err(format!("unknown stop reason `{other}`")),
    }
}

fn decode_step_schedule(v: &JsonValue) -> Result<StepSchedule, String> {
    let (name, payload) = variant(v, "step schedule")?;
    let payload = payload.ok_or("step schedule needs a payload")?;
    let obj = as_obj(payload, "step schedule payload")?;
    let scale = f64_field(obj, "scale", "step schedule")?;
    match name {
        "Harmonic" => Ok(StepSchedule::Harmonic { scale }),
        "SqrtDecay" => Ok(StepSchedule::SqrtDecay { scale }),
        "Constant" => Ok(StepSchedule::Constant { scale }),
        other => Err(format!("unknown step schedule `{other}`")),
    }
}

fn decode_ordering(v: &JsonValue) -> Result<OrderingStrategy, String> {
    let (name, payload) = variant(v, "ordering strategy")?;
    match (name, payload) {
        ("Woss", None) => Ok(OrderingStrategy::Woss),
        ("Identity", None) => Ok(OrderingStrategy::Identity),
        ("BestStartNearestNeighbor", None) => Ok(OrderingStrategy::BestStartNearestNeighbor),
        ("Exact", None) => Ok(OrderingStrategy::Exact),
        ("Random", Some(p)) => {
            let obj = as_obj(p, "Random ordering payload")?;
            Ok(OrderingStrategy::Random {
                seed: u64_field(obj, "seed", "Random ordering")?,
            })
        }
        (other, _) => Err(format!("unknown ordering strategy `{other}`")),
    }
}

fn decode_constraint_bounds(v: &JsonValue) -> Result<ConstraintBounds, String> {
    let obj = as_obj(v, "constraint bounds")?;
    Ok(ConstraintBounds {
        delay: f64_field(obj, "delay", "constraint bounds")?,
        total_capacitance: f64_field(obj, "total_capacitance", "constraint bounds")?,
        crosstalk: f64_field(obj, "crosstalk", "constraint bounds")?,
    })
}

fn decode_constraint_spec(v: &JsonValue) -> Result<ConstraintSpec, String> {
    let (name, payload) = variant(v, "constraint spec")?;
    let payload = payload.ok_or("constraint spec needs a payload")?;
    let obj = as_obj(payload, "constraint spec payload")?;
    let factor = f64_field(obj, "factor", "constraint spec")?;
    match name {
        "PerNetCrosstalk" => Ok(ConstraintSpec::PerNetCrosstalk { factor }),
        "DrivenLoad" => Ok(ConstraintSpec::DrivenLoad { factor }),
        other => Err(format!("unknown constraint spec `{other}`")),
    }
}

fn decode_solve_strategy(v: &JsonValue) -> Result<SolveStrategy, String> {
    let (name, payload) = variant(v, "solve strategy")?;
    match (name, payload) {
        ("Exact", None) => Ok(SolveStrategy::Exact),
        ("Adaptive", Some(p)) => {
            let obj = as_obj(p, "adaptive schedule")?;
            Ok(SolveStrategy::Adaptive(AdaptiveSchedule {
                warm_start: bool_field(obj, "warm_start", "adaptive schedule")?,
                active_set: bool_field(obj, "active_set", "adaptive schedule")?,
                freeze_tolerance: f64_field(obj, "freeze_tolerance", "adaptive schedule")?,
                freeze_after: usize_field(obj, "freeze_after", "adaptive schedule")?,
                verify_every: usize_field(obj, "verify_every", "adaptive schedule")?,
                incremental: bool_field(obj, "incremental", "adaptive schedule")?,
            }))
        }
        (other, _) => Err(format!("unknown solve strategy `{other}`")),
    }
}

fn decode_parallel(v: &JsonValue) -> Result<ParallelPolicy, String> {
    let (name, payload) = variant(v, "parallel policy")?;
    match (name, payload) {
        ("Sequential", None) => Ok(ParallelPolicy::Sequential),
        ("Level", Some(p)) => {
            let obj = as_obj(p, "Level policy payload")?;
            Ok(ParallelPolicy::Level {
                threads: usize_field(obj, "threads", "Level policy")?,
            })
        }
        (other, _) => Err(format!("unknown parallel policy `{other}`")),
    }
}

/// Decodes an [`OptimizerConfig`] and re-runs its own validation.
pub fn decode_optimizer_config(v: &JsonValue) -> Result<OptimizerConfig, String> {
    let obj = as_obj(v, "optimizer config")?;
    let what = "optimizer config";
    let initial_size = match field(obj, "initial_size", what)? {
        JsonValue::Null => None,
        v => Some(
            v.as_f64()
                .ok_or("optimizer config.initial_size must be a number or null")?,
        ),
    };
    let absolute_bounds = match field(obj, "absolute_bounds", what)? {
        JsonValue::Null => None,
        v => Some(decode_constraint_bounds(v)?),
    };
    let extra_constraints = field(obj, "extra_constraints", what)?
        .as_array()
        .ok_or("optimizer config.extra_constraints must be an array")?
        .iter()
        .map(decode_constraint_spec)
        .collect::<Result<Vec<_>, _>>()?;
    let config = OptimizerConfig {
        initial_size,
        delay_bound_factor: f64_field(obj, "delay_bound_factor", what)?,
        power_bound_factor: f64_field(obj, "power_bound_factor", what)?,
        crosstalk_bound_factor: f64_field(obj, "crosstalk_bound_factor", what)?,
        absolute_bounds,
        max_iterations: usize_field(obj, "max_iterations", what)?,
        gap_tolerance: f64_field(obj, "gap_tolerance", what)?,
        step_schedule: decode_step_schedule(field(obj, "step_schedule", what)?)?,
        max_lrs_sweeps: usize_field(obj, "max_lrs_sweeps", what)?,
        lrs_tolerance: f64_field(obj, "lrs_tolerance", what)?,
        ordering: decode_ordering(field(obj, "ordering", what)?)?,
        effective_coupling: bool_field(obj, "effective_coupling", what)?,
        initial_edge_multiplier: f64_field(obj, "initial_edge_multiplier", what)?,
        initial_scalar_multiplier: f64_field(obj, "initial_scalar_multiplier", what)?,
        extra_constraints,
        solve_strategy: decode_solve_strategy(field(obj, "solve_strategy", what)?)?,
        parallel: decode_parallel(field(obj, "parallel", what)?)?,
    };
    config.validate().map_err(|e| e.to_string())?;
    Ok(config)
}

fn decode_technology(v: &JsonValue) -> Result<Technology, String> {
    let obj = as_obj(v, "technology")?;
    let what = "technology";
    let tech = Technology {
        supply_voltage: f64_field(obj, "supply_voltage", what)?,
        frequency: f64_field(obj, "frequency", what)?,
        gate_unit_resistance: f64_field(obj, "gate_unit_resistance", what)?,
        gate_unit_capacitance: f64_field(obj, "gate_unit_capacitance", what)?,
        gate_area_coefficient: f64_field(obj, "gate_area_coefficient", what)?,
        wire_unit_resistance: f64_field(obj, "wire_unit_resistance", what)?,
        wire_unit_capacitance: f64_field(obj, "wire_unit_capacitance", what)?,
        wire_fringing_per_um: f64_field(obj, "wire_fringing_per_um", what)?,
        wire_area_coefficient: f64_field(obj, "wire_area_coefficient", what)?,
        coupling_fringing_per_um: f64_field(obj, "coupling_fringing_per_um", what)?,
        min_size: f64_field(obj, "min_size", what)?,
        max_size: f64_field(obj, "max_size", what)?,
        default_driver_resistance: f64_field(obj, "default_driver_resistance", what)?,
        default_output_load: f64_field(obj, "default_output_load", what)?,
    };
    tech.validate().map_err(|e| e.to_string())?;
    Ok(tech)
}

/// Decodes a synthetic benchmark [`CircuitSpec`] (exact: the `u64` seed
/// survives through the parser's integer lexemes).
pub fn decode_circuit_spec(v: &JsonValue) -> Result<CircuitSpec, String> {
    let obj = as_obj(v, "circuit spec")?;
    let what = "circuit spec";
    Ok(CircuitSpec {
        name: str_field(obj, "name", what)?.to_string(),
        num_gates: usize_field(obj, "num_gates", what)?,
        num_wires: usize_field(obj, "num_wires", what)?,
        seed: u64_field(obj, "seed", what)?,
        technology: decode_technology(field(obj, "technology", what)?)?,
        max_fanin: usize_field(obj, "max_fanin", what)?,
        wire_length_range: f64_pair(field(obj, "wire_length_range", what)?, "wire_length_range")?,
        driver_resistance_range: f64_pair(
            field(obj, "driver_resistance_range", what)?,
            "driver_resistance_range",
        )?,
        output_load_range: f64_pair(field(obj, "output_load_range", what)?, "output_load_range")?,
        channel_size: usize_field(obj, "channel_size", what)?,
        channel_pitch: f64_field(obj, "channel_pitch", what)?,
        overlap_fraction: f64_field(obj, "overlap_fraction", what)?,
        num_patterns: usize_field(obj, "num_patterns", what)?,
        pattern_toggle_probability: f64_field(obj, "pattern_toggle_probability", what)?,
        locality_window: usize_field(obj, "locality_window", what)?,
    })
}

fn decode_gate_kind(name: &str) -> Result<GateKind, String> {
    match name {
        "Buf" => Ok(GateKind::Buf),
        "Inv" => Ok(GateKind::Inv),
        "And" => Ok(GateKind::And),
        "Nand" => Ok(GateKind::Nand),
        "Or" => Ok(GateKind::Or),
        "Nor" => Ok(GateKind::Nor),
        "Xor" => Ok(GateKind::Xor),
        "Xnor" => Ok(GateKind::Xnor),
        other => Err(format!("unknown gate kind `{other}`")),
    }
}

fn decode_node_kind(v: &JsonValue) -> Result<NodeKind, String> {
    let (name, payload) = variant(v, "node kind")?;
    match (name, payload) {
        ("Source", None) => Ok(NodeKind::Source),
        ("Driver", None) => Ok(NodeKind::Driver),
        ("Wire", None) => Ok(NodeKind::Wire),
        ("Sink", None) => Ok(NodeKind::Sink),
        ("Gate", Some(p)) => {
            let kind = p.as_str().ok_or("Gate payload must be a string")?;
            Ok(NodeKind::Gate(decode_gate_kind(kind)?))
        }
        (other, _) => Err(format!("unknown node kind `{other}`")),
    }
}

fn decode_node(v: &JsonValue) -> Result<Node, String> {
    let obj = as_obj(v, "node")?;
    let attrs_obj = as_obj(field(obj, "attrs", "node")?, "node attrs")?;
    let what = "node attrs";
    let attrs = NodeAttrs {
        unit_resistance: f64_field(attrs_obj, "unit_resistance", what)?,
        unit_capacitance: f64_field(attrs_obj, "unit_capacitance", what)?,
        fringing_capacitance: f64_field(attrs_obj, "fringing_capacitance", what)?,
        area_coefficient: f64_field(attrs_obj, "area_coefficient", what)?,
        lower_bound: f64_field(attrs_obj, "lower_bound", what)?,
        upper_bound: f64_field(attrs_obj, "upper_bound", what)?,
        driver_resistance: f64_field(attrs_obj, "driver_resistance", what)?,
        output_load: f64_field(attrs_obj, "output_load", what)?,
    };
    Ok(Node {
        kind: decode_node_kind(field(obj, "kind", "node")?)?,
        name: str_field(obj, "name", "node")?.to_string(),
        attrs,
    })
}

fn decode_node_id_list(v: &JsonValue, what: &str) -> Result<Vec<NodeId>, String> {
    v.as_array()
        .ok_or_else(|| format!("{what} must be an array"))?
        .iter()
        .map(|id| {
            id.as_usize()
                .map(NodeId::new)
                .ok_or_else(|| format!("{what} entries must be node indices"))
        })
        .collect()
}

/// Decodes a full [`ProblemInstance`], re-validating the circuit graph's
/// structural invariants and the pattern-set width.
pub fn decode_instance(v: &JsonValue) -> Result<ProblemInstance, String> {
    let obj = as_obj(v, "problem instance")?;
    let what = "problem instance";
    let circuit_obj = as_obj(field(obj, "circuit", what)?, "circuit graph")?;
    let nodes = field(circuit_obj, "nodes", "circuit graph")?
        .as_array()
        .ok_or("circuit graph.nodes must be an array")?
        .iter()
        .map(decode_node)
        .collect::<Result<Vec<_>, _>>()?;
    let decode_adjacency = |name: &str| -> Result<Vec<Vec<NodeId>>, String> {
        field(circuit_obj, name, "circuit graph")?
            .as_array()
            .ok_or_else(|| format!("circuit graph.{name} must be an array"))?
            .iter()
            .map(|list| decode_node_id_list(list, name))
            .collect()
    };
    let fanin = decode_adjacency("fanin")?;
    let fanout = decode_adjacency("fanout")?;
    let tech = decode_technology(field(circuit_obj, "tech", "circuit graph")?)?;
    let num_drivers = usize_field(circuit_obj, "num_drivers", "circuit graph")?;
    let num_sizable = usize_field(circuit_obj, "num_sizable", "circuit graph")?;
    // `name_index` is also serialized but derivable; the constructor
    // rebuilds it from the node names.
    let circuit =
        CircuitGraph::from_serialized_parts(nodes, fanin, fanout, tech, num_drivers, num_sizable)
            .map_err(|e| format!("invalid circuit graph: {e}"))?;
    let channels = field(obj, "channels", what)?
        .as_array()
        .ok_or("problem instance.channels must be an array")?
        .iter()
        .map(|c| {
            let wires = decode_node_id_list(c, "channel")?;
            for &id in &wires {
                if id.index() >= circuit.num_nodes() {
                    return Err(format!("channel wire {id} is out of range"));
                }
            }
            Ok(wires)
        })
        .collect::<Result<Vec<_>, _>>()?;
    let geom_obj = as_obj(field(obj, "geometry", what)?, "channel geometry")?;
    let geometry = ChannelGeometry {
        pitch: f64_field(geom_obj, "pitch", "channel geometry")?,
        overlap_fraction: f64_field(geom_obj, "overlap_fraction", "channel geometry")?,
        unit_fringing: f64_field(geom_obj, "unit_fringing", "channel geometry")?,
    };
    let patterns_obj = as_obj(field(obj, "patterns", what)?, "pattern set")?;
    let num_inputs = usize_field(patterns_obj, "num_inputs", "pattern set")?;
    let vectors = field(patterns_obj, "vectors", "pattern set")?
        .as_array()
        .ok_or("pattern set.vectors must be an array")?
        .iter()
        .map(|row| {
            let bits = row
                .as_array()
                .ok_or("pattern vector must be an array")?
                .iter()
                .map(|b| b.as_bool().ok_or("pattern bits must be booleans"))
                .collect::<Result<Vec<_>, _>>()?;
            if bits.len() != num_inputs {
                return Err(format!(
                    "pattern vector has {} bits, expected {num_inputs}",
                    bits.len()
                ));
            }
            Ok(bits)
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(ProblemInstance {
        name: str_field(obj, "name", what)?.to_string(),
        circuit,
        channels,
        geometry,
        patterns: PatternSet::from_vectors(num_inputs, vectors),
    })
}

fn decode_retry_policy(v: &JsonValue) -> Result<RetryPolicy, String> {
    let obj = as_obj(v, "retry policy")?;
    let what = "retry policy";
    Ok(RetryPolicy {
        max_retries: usize_field(obj, "max_retries", what)?,
        base_delay_ms: u64_field(obj, "base_delay_ms", what)?,
        multiplier: f64_field(obj, "multiplier", what)?,
        max_delay_ms: u64_field(obj, "max_delay_ms", what)?,
        jitter: f64_field(obj, "jitter", what)?,
        seed: u64_field(obj, "seed", what)?,
    })
}

/// Decodes a [`JobSpec`] from its serialized form in the journal.
pub fn decode_job_spec(v: &JsonValue) -> Result<JobSpec, String> {
    let obj = as_obj(v, "job spec")?;
    let what = "job spec";
    let (input_name, input_payload) = variant(field(obj, "input", what)?, "job input")?;
    let input = match (input_name, input_payload) {
        ("Synthetic", Some(p)) => JobInput::Synthetic(decode_circuit_spec(p)?),
        ("Instance", Some(p)) => JobInput::Instance(Box::new(decode_instance(p)?)),
        (other, _) => return Err(format!("unknown job input `{other}`")),
    };
    let priority_value = field(obj, "priority", what)?;
    let priority = priority_value
        .as_i64()
        .and_then(|p| i32::try_from(p).ok())
        .ok_or("job spec.priority must be an i32")?;
    Ok(JobSpec {
        input,
        config: decode_optimizer_config(field(obj, "config", what)?)?,
        priority,
        tenant: str_field(obj, "tenant", what)?.to_string(),
        iteration_budget: opt_usize_field(obj, "iteration_budget", what)?,
        attempt_timeout_ms: opt_u64_field(obj, "attempt_timeout_ms", what)?,
        retry: decode_retry_policy(field(obj, "retry", what)?)?,
    })
}

fn decode_metrics(v: &JsonValue) -> Result<CircuitMetrics, String> {
    let obj = as_obj(v, "circuit metrics")?;
    let what = "circuit metrics";
    Ok(CircuitMetrics {
        noise_pf: f64_field(obj, "noise_pf", what)?,
        delay_ps: f64_field(obj, "delay_ps", what)?,
        power_mw: f64_field(obj, "power_mw", what)?,
        area_um2: f64_field(obj, "area_um2", what)?,
        crosstalk_ff: f64_field(obj, "crosstalk_ff", what)?,
        delay_internal: f64_field(obj, "delay_internal", what)?,
        total_capacitance_ff: f64_field(obj, "total_capacitance_ff", what)?,
    })
}

/// Decodes a [`JobOutcome`] from a journal `completed`/`cancelled`/`failed`
/// entry.
pub fn decode_job_outcome(v: &JsonValue) -> Result<JobOutcome, String> {
    let obj = as_obj(v, "job outcome")?;
    let what = "job outcome";
    let final_metrics = match field(obj, "final_metrics", what)? {
        JsonValue::Null => None,
        v => Some(decode_metrics(v)?),
    };
    let error = match field(obj, "error", what)? {
        JsonValue::Null => None,
        v => Some(
            v.as_str()
                .ok_or("job outcome.error must be a string or null")?
                .to_string(),
        ),
    };
    Ok(JobOutcome {
        stop_reason: decode_stop_reason(field(obj, "stop_reason", what)?)?,
        iterations: usize_field(obj, "iterations", what)?,
        attempts: usize_field(obj, "attempts", what)?,
        resumed_attempts: usize_field(obj, "resumed_attempts", what)?,
        feasible: bool_field(obj, "feasible", what)?,
        final_metrics,
        error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncgws_netlist::SyntheticGenerator;

    fn round_trip_spec(spec: &JobSpec) -> JobSpec {
        let encoded = serde_json::to_string(spec).expect("spec serializes");
        let value = json::parse(&encoded).expect("spec JSON parses");
        decode_job_spec(&value).expect("spec decodes")
    }

    #[test]
    fn synthetic_spec_round_trips_exactly() {
        let spec = JobSpec::new(
            JobInput::Synthetic(CircuitSpec::new("rt", 40, 20).with_seed(u64::MAX - 3)),
            OptimizerConfig::default(),
        )
        .with_priority(-3)
        .with_tenant("team-a")
        .with_iteration_budget(7)
        .with_attempt_timeout_ms(250)
        .with_retry(RetryPolicy::retries(4).with_seed(99));
        let back = round_trip_spec(&spec);
        // Re-encoding must reproduce the original byte stream: the encoder
        // is deterministic, so byte equality implies field equality.
        assert_eq!(
            serde_json::to_string(&back).unwrap(),
            serde_json::to_string(&spec).unwrap()
        );
        match &back.input {
            JobInput::Synthetic(s) => assert_eq!(s.seed, u64::MAX - 3),
            _ => panic!("expected synthetic input"),
        }
    }

    #[test]
    fn instance_spec_round_trips_exactly() {
        let instance = SyntheticGenerator::new(CircuitSpec::new("inst", 24, 52))
            .generate()
            .expect("generation succeeds");
        let spec = JobSpec::new(
            JobInput::Instance(Box::new(instance)),
            OptimizerConfig::default(),
        );
        let back = round_trip_spec(&spec);
        assert_eq!(
            serde_json::to_string(&back).unwrap(),
            serde_json::to_string(&spec).unwrap()
        );
    }

    #[test]
    fn malformed_specs_are_rejected_not_panicked() {
        let spec = JobSpec::new(
            JobInput::Synthetic(CircuitSpec::new("rt", 10, 5)),
            OptimizerConfig::default(),
        );
        let encoded = serde_json::to_string(&spec).unwrap();
        // Dropping any single field must produce Err, never panic.
        for cut in ["\"priority\":0,", "\"tenant\":\"default\",", "\"retry\":"] {
            let mangled = encoded.replacen(cut, "\"x\":0,", 1);
            if let Ok(value) = json::parse(&mangled) {
                assert!(decode_job_spec(&value).is_err(), "cut {cut}");
            }
        }
        assert!(decode_job_spec(&JsonValue::Null).is_err());
        assert!(decode_stop_reason(&JsonValue::Bool(true)).is_err());
    }

    #[test]
    fn stop_reasons_round_trip() {
        for reason in [
            StopReason::Converged,
            StopReason::Stagnated,
            StopReason::IterationLimit,
            StopReason::BudgetExhausted,
            StopReason::Cancelled,
            StopReason::DeadlineExpired,
        ] {
            let encoded = serde_json::to_string(&reason).unwrap();
            let value = json::parse(&encoded).unwrap();
            assert_eq!(decode_stop_reason(&value).unwrap(), reason);
        }
    }
}
