//! Live server statistics.

use std::sync::atomic::{AtomicUsize, Ordering};

use ncgws_core::{IterationEvent, Observer};
use serde::Serialize;

/// A point-in-time snapshot of server activity, from
/// [`Server::stats`](crate::Server::stats).
///
/// Counter fields are cumulative since [`Server::start`](crate::Server::start);
/// `queue_depth`/`in_flight` and the byte gauges reflect the moment the
/// snapshot was taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct ServerStats {
    /// Jobs accepted by `submit`/`submit_resume`.
    pub submitted: usize,
    /// Jobs that reached [`JobState::Completed`](crate::JobState::Completed).
    pub completed: usize,
    /// Jobs that reached [`JobState::Cancelled`](crate::JobState::Cancelled).
    pub cancelled: usize,
    /// Jobs that reached [`JobState::Failed`](crate::JobState::Failed).
    pub failed: usize,
    /// Interrupted attempts put back on the queue to resume later.
    pub requeued: usize,
    /// Attempts that started from a checkpoint instead of cold.
    pub resumed: usize,
    /// Submissions refused by admission control (tenant queue full or
    /// server draining).
    pub rejected: usize,
    /// Jobs currently waiting in the ready queue.
    pub queue_depth: usize,
    /// Attempts currently running on workers.
    pub in_flight: usize,
    /// Outer OGWS iterations executed across all attempts so far
    /// (observer-fed, live even while attempts are mid-run).
    pub iterations: usize,
    /// Checkpoints captured across all attempts (periodic and on-interrupt).
    pub checkpoints: usize,
    /// Approximate bytes held by queued job specs and queue bookkeeping.
    pub queue_bytes: usize,
    /// Approximate bytes held by retained [`Snapshot`](ncgws_core::Snapshot)s
    /// (resident plus spilled).
    pub snapshot_bytes: usize,
    /// Bytes of snapshots resident in memory right now (equals
    /// `snapshot_bytes` for in-memory servers).
    pub snapshot_bytes_resident: usize,
    /// Bytes of snapshots spilled to disk only (durable servers under a
    /// store memory budget; 0 otherwise).
    pub snapshot_bytes_spilled: usize,
    /// Worker attempts that panicked (isolated via `catch_unwind`).
    pub panics: usize,
    /// Failed attempts put back on the queue by a job's
    /// [`RetryPolicy`](crate::RetryPolicy).
    pub attempts_retried: usize,
    /// Snapshots evicted from the store's resident cache to disk.
    pub snapshots_spilled: usize,
    /// Snapshot loads that detected corruption and fell back to the
    /// previous good generation.
    pub snapshots_corrupt_recovered: usize,
}

/// Cumulative atomic counters shared by workers and the submit path.
///
/// Doubles as the [`Observer`] attached to every attempt's `RunControl`, so
/// `iterations` ticks live while runs are in flight.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub(crate) submitted: AtomicUsize,
    pub(crate) completed: AtomicUsize,
    pub(crate) cancelled: AtomicUsize,
    pub(crate) failed: AtomicUsize,
    pub(crate) requeued: AtomicUsize,
    pub(crate) resumed: AtomicUsize,
    pub(crate) rejected: AtomicUsize,
    pub(crate) iterations: AtomicUsize,
    pub(crate) checkpoints: AtomicUsize,
    pub(crate) panics: AtomicUsize,
    pub(crate) retried: AtomicUsize,
}

impl Counters {
    /// Copies the counters into a stats value; the caller fills in the
    /// lock-guarded gauges (queue depth, in-flight, byte totals).
    pub(crate) fn snapshot(&self) -> ServerStats {
        ServerStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            requeued: self.requeued.load(Ordering::Relaxed),
            resumed: self.resumed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            iterations: self.iterations.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            attempts_retried: self.retried.load(Ordering::Relaxed),
            ..ServerStats::default()
        }
    }

    pub(crate) fn add(counter: &AtomicUsize, n: usize) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

impl Observer for Counters {
    fn on_iteration(&self, _event: &IterationEvent<'_>) {
        self.iterations.fetch_add(1, Ordering::Relaxed);
    }
}
