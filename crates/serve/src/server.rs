//! The persistent optimization server.
//!
//! A [`Server`] owns a pool of worker threads draining a priority job
//! queue. Each attempt runs the full two-stage flow under a
//! [`RunControl`] wired with the job's per-attempt limits and a checkpoint
//! sink; interrupted attempts are requeued and resume from their latest
//! [`Snapshot`] instead of restarting cold.
//!
//! Scheduling is strict priority with FIFO tie-breaking (a `BTreeSet`
//! ordered by descending priority, then submission sequence), subject to
//! per-tenant admission control: a tenant's queued jobs are capped at
//! submission time and its in-flight attempts are capped at dispatch time,
//! so one noisy tenant can neither flood the queue nor monopolize the
//! workers.
//!
//! # Durability
//!
//! [`Server::start_durable`] adds the crash-restart layer: every checkpoint
//! is persisted through a [`DiskSnapshotStore`] *as it is taken* (atomic,
//! checksummed files), and every job lifecycle transition is appended to a
//! [`Journal`]. After a crash — or a plain [`drop`] without
//! [`drain`](Server::drain) — [`Server::recover`] replays the journal,
//! restores terminal outcomes, and re-queues every unfinished job to resume
//! from its latest durable snapshot with the same bitwise (exact strategy) /
//! `1e-6` (adaptive) guarantees as in-process resume.
//!
//! # Failure isolation
//!
//! Worker panics are caught per attempt (`catch_unwind`): the job lands in
//! [`JobState::Failed`] with the panic text, its tenant's in-flight slot is
//! released, and — when the job carries a
//! [`RetryPolicy`](crate::RetryPolicy) — the attempt is
//! retried with deterministic exponential backoff instead. A seeded
//! [`FaultPlan`] can inject panics, store I/O errors, torn writes and
//! dispatch delays to exercise all of this reproducibly.

use std::collections::{BTreeMap, BTreeSet};
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ncgws_core::flow::Flow;
use ncgws_core::snapshot::json::JsonValue;
use ncgws_core::{
    CancelFlag, CheckpointPolicy, CheckpointSink, CoreError, IterationEvent, Observer, RunControl,
    SizedOutcome, Snapshot, SnapshotStore, StopReason,
};
use ncgws_netlist::{ProblemInstance, SyntheticGenerator};
use serde::Serialize;

use crate::codec;
use crate::events::{line, Field};
use crate::fault::FaultPlan;
use crate::job::{JobId, JobInput, JobOutcome, JobSpec, JobState};
use crate::stats::{Counters, ServerStats};
use crate::store::{DiskSink, DiskSnapshotStore, Journal, StoreConfig, StoreError};
use crate::sync::{lock_recover, wait_recover, wait_timeout_recover};

/// Server-wide policy knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads draining the queue (at least 1).
    pub workers: usize,
    /// Per-tenant cap on concurrently running attempts.
    pub max_in_flight_per_tenant: usize,
    /// Per-tenant cap on jobs waiting in the queue; submissions beyond it
    /// are rejected with [`SubmitError::QueueFull`]. Requeues of
    /// interrupted attempts are always admitted.
    pub max_queued_per_tenant: usize,
    /// Periodic checkpoint cadence applied to every attempt (`None` keeps
    /// only on-interrupt checkpoints).
    pub checkpoint_every: Option<usize>,
    /// Attempt cap per job: an interrupted job that has already started
    /// this many attempts fails instead of requeueing.
    pub max_attempts: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            max_in_flight_per_tenant: usize::MAX,
            max_queued_per_tenant: usize::MAX,
            checkpoint_every: None,
            max_attempts: 64,
        }
    }
}

impl ServerConfig {
    /// The journal's `server` entry for this config.
    fn journal_line(&self) -> String {
        format!(
            "{{\"entry\":\"server\",\"workers\":{},\"max_in_flight_per_tenant\":{},\
             \"max_queued_per_tenant\":{},\"checkpoint_every\":{},\"max_attempts\":{}}}",
            self.workers,
            self.max_in_flight_per_tenant,
            self.max_queued_per_tenant,
            self.checkpoint_every
                .map_or("null".to_string(), |n| n.to_string()),
            self.max_attempts
        )
    }

    fn from_journal(obj: &[(String, JsonValue)]) -> Result<ServerConfig, String> {
        let get = |name: &str| -> Result<&JsonValue, String> {
            ncgws_core::snapshot::json::get(obj, name)
                .ok_or_else(|| format!("server entry is missing `{name}`"))
        };
        let usize_of = |name: &str| -> Result<usize, String> {
            get(name)?
                .as_usize()
                .ok_or_else(|| format!("server entry `{name}` must be an integer"))
        };
        let checkpoint_every = match get("checkpoint_every")? {
            JsonValue::Null => None,
            v => Some(
                v.as_usize()
                    .ok_or("server entry `checkpoint_every` must be an integer or null")?,
            ),
        };
        Ok(ServerConfig {
            workers: usize_of("workers")?,
            max_in_flight_per_tenant: usize_of("max_in_flight_per_tenant")?,
            max_queued_per_tenant: usize_of("max_queued_per_tenant")?,
            checkpoint_every,
            max_attempts: usize_of("max_attempts")?,
        })
    }
}

/// Optional pieces of a durable server: store tuning, an event sink, and
/// fault injection. Used by [`Server::start_durable_with`] and
/// [`Server::recover_with`].
#[derive(Default)]
pub struct DurableOptions {
    /// Snapshot-store tuning (memory budget for the resident cache).
    pub store: StoreConfig,
    /// JSON-lines event sink, as in [`Server::start_with_events`].
    pub events: Option<Box<dyn Write + Send>>,
    /// Deterministic fault injection, threaded through workers and the
    /// snapshot store.
    pub faults: Option<Arc<FaultPlan>>,
}

/// What [`Server::recover`] rebuilt from a server directory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct RecoveryReport {
    /// Jobs found in the journal.
    pub jobs_seen: usize,
    /// Unfinished jobs put back on the ready queue.
    pub requeued: usize,
    /// Of the requeued jobs, how many resume from a durable snapshot
    /// (the rest restart cold).
    pub resumed_from_checkpoint: usize,
    /// Jobs already completed before the crash (outcomes restored).
    pub completed: usize,
    /// Jobs already cancelled before the crash.
    pub cancelled: usize,
    /// Jobs already failed before the crash.
    pub failed: usize,
    /// Requeued jobs whose snapshot generations were all corrupt — they
    /// restart cold rather than being lost.
    pub corrupt_snapshots: usize,
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The server is draining and accepts no new work.
    Draining,
    /// The tenant's queued-job cap is reached.
    QueueFull {
        /// The tenant whose queue is full.
        tenant: String,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Draining => write!(f, "server is draining"),
            SubmitError::QueueFull { tenant } => {
                write!(f, "queue for tenant {tenant} is full")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Ready-queue key: smaller sorts first, so negated priority puts the
/// highest priority at `first()`, then FIFO by submission sequence.
type QueueKey = (i64, u64, u64);

fn queue_key(priority: i32, seq: u64, id: u64) -> QueueKey {
    (-i64::from(priority), seq, id)
}

#[derive(Debug, Default)]
struct TenantState {
    queued: usize,
    in_flight: usize,
}

#[derive(Debug)]
struct JobEntry {
    spec: JobSpec,
    seq: u64,
    state: JobState,
    attempts: usize,
    retries: usize,
    resumed_attempts: usize,
    iterations: usize,
    snapshot: Option<Snapshot>,
    /// Durable servers: whether the store holds a checkpoint for this job
    /// (the in-memory `snapshot` stays `None` so the store's spill policy
    /// owns all snapshot memory).
    has_checkpoint: bool,
    /// Backoff gate set by a retry; the job is not dispatchable before it.
    not_before: Option<Instant>,
    cancel: Option<CancelFlag>,
    cancel_requested: bool,
    outcome: Option<JobOutcome>,
    instance: Option<Arc<ProblemInstance>>,
}

#[derive(Debug, Default)]
struct State {
    jobs: BTreeMap<u64, JobEntry>,
    ready: BTreeSet<QueueKey>,
    tenants: BTreeMap<String, TenantState>,
    draining: bool,
    /// Hard-stop flag set by `Drop`: workers exit as soon as their current
    /// attempt settles, leaving remaining work queued (and, for durable
    /// servers, recoverable).
    shutdown: bool,
    in_flight: usize,
    next_seq: u64,
}

impl State {
    /// First admissible ready job: highest priority, oldest, backoff
    /// expired, whose tenant is under its in-flight cap.
    fn pick(&self, max_in_flight_per_tenant: usize, now: Instant) -> Option<QueueKey> {
        self.ready.iter().copied().find(|&(_, _, id)| {
            self.jobs.get(&id).is_some_and(|entry| {
                entry.not_before.is_none_or(|t| t <= now)
                    && self
                        .tenants
                        .get(&entry.spec.tenant)
                        .is_none_or(|t| t.in_flight < max_in_flight_per_tenant)
            })
        })
    }

    /// Soonest pending backoff among ready jobs, as a wait duration.
    fn earliest_backoff(&self, now: Instant) -> Option<Duration> {
        self.ready
            .iter()
            .filter_map(|&(_, _, id)| {
                self.jobs
                    .get(&id)
                    .and_then(|entry| entry.not_before)
                    .and_then(|t| t.checked_duration_since(now))
            })
            .min()
    }

    fn all_done(&self) -> bool {
        self.ready.is_empty() && self.in_flight == 0
    }
}

/// The durable half of a server: the snapshot store and the journal.
struct Durable {
    store: DiskSnapshotStore,
    journal: Journal,
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for admissible work (or the drain signal).
    work_ready: Condvar,
    /// Clients wait here for job transitions (`wait`, `drain`).
    progress: Condvar,
    counters: Counters,
    config: ServerConfig,
    events: Option<Mutex<Box<dyn Write + Send>>>,
    durable: Option<Durable>,
    faults: Option<Arc<FaultPlan>>,
}

impl Shared {
    fn emit(&self, text: String) {
        if let Some(sink) = &self.events {
            let mut sink = lock_recover(sink);
            let _ = writeln!(sink, "{text}");
        }
    }

    fn journal(&self, text: &str) {
        if let Some(durable) = &self.durable {
            let _ = durable.journal.append(text);
        }
    }

    /// Journals a terminal transition together with its full outcome, so
    /// results survive a restart. A failed serialization (unreachable for
    /// these derive-encoded types) drops the entry rather than panicking —
    /// recovery then requeues the job, which is safe.
    fn journal_terminal(&self, kind: &str, id: u64, outcome: &JobOutcome) {
        if self.durable.is_some() {
            if let Ok(encoded) = serde_json::to_string(outcome) {
                self.journal(&format!(
                    "{{\"entry\":\"{kind}\",\"job\":{id},\"outcome\":{encoded}}}"
                ));
            }
        }
    }
}

/// A persistent optimization server: worker pool, priority queue,
/// checkpoint/resume, optional crash-restart durability.
///
/// See the [crate docs](crate) for an end-to-end example. Call
/// [`drain`](Server::drain) to finish outstanding work and join the
/// workers. Dropping a server without draining *stops* it: running
/// attempts are cancelled cooperatively, requeued at their latest
/// checkpoint, and the worker threads are joined — nothing keeps running
/// in the background. A durable server's queue survives the drop on disk
/// and [`Server::recover`] picks it back up.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("workers", &self.workers.len())
            .field("config", &self.shared.config)
            .field("durable", &self.shared.durable.is_some())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Starts the worker pool with no event sink.
    pub fn start(config: ServerConfig) -> Server {
        Server::start_with_events(config, None)
    }

    /// Starts the worker pool, writing one JSON event line per job
    /// transition to `sink` (see [`events`](crate::events)).
    pub fn start_with_events(config: ServerConfig, sink: Option<Box<dyn Write + Send>>) -> Server {
        Server::start_inner(config, sink, None, None, State::default(), 1)
    }

    /// Starts an in-memory server with deterministic fault injection
    /// (worker panics, dispatch delays) armed — the test harness for the
    /// failure paths.
    pub fn start_with_faults(config: ServerConfig, faults: Arc<FaultPlan>) -> Server {
        Server::start_inner(config, None, None, Some(faults), State::default(), 1)
    }

    /// Starts a durable server rooted at `dir`: every checkpoint is
    /// persisted through a [`DiskSnapshotStore`] as it is taken, and every
    /// job transition is journaled so [`Server::recover`] can rebuild the
    /// queue after a crash.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the directory or journal cannot be
    /// created.
    pub fn start_durable(
        dir: impl AsRef<Path>,
        config: ServerConfig,
    ) -> Result<Server, StoreError> {
        Server::start_durable_with(dir, config, DurableOptions::default())
    }

    /// [`start_durable`](Server::start_durable) with store tuning, an event
    /// sink and/or fault injection.
    ///
    /// # Errors
    ///
    /// As [`start_durable`](Server::start_durable).
    pub fn start_durable_with(
        dir: impl AsRef<Path>,
        config: ServerConfig,
        options: DurableOptions,
    ) -> Result<Server, StoreError> {
        let dir = dir.as_ref();
        let store =
            DiskSnapshotStore::open(dir, options.store)?.with_faults(options.faults.clone());
        let journal = Journal::open(dir)?;
        journal.append(&config.journal_line())?;
        let durable = Durable { store, journal };
        Ok(Server::start_inner(
            config,
            options.events,
            Some(durable),
            options.faults,
            State::default(),
            1,
        ))
    }

    /// Rebuilds a durable server from `dir` after a crash (or a drop
    /// without drain): replays the journal, restores terminal outcomes,
    /// and re-queues every unfinished job to resume from its latest
    /// durable snapshot. Corrupt snapshot files fall back to the previous
    /// good generation; when no generation survives, the job restarts cold
    /// instead of being lost.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] for filesystem failures, [`StoreError::Journal`]
    /// when the journal is corrupt before its final line (a torn final
    /// line — the signature of a crash mid-append — is tolerated).
    pub fn recover(dir: impl AsRef<Path>) -> Result<(Server, RecoveryReport), StoreError> {
        Server::recover_with(dir, DurableOptions::default())
    }

    /// [`recover`](Server::recover) with store tuning, an event sink
    /// and/or fault injection for the recovered server.
    ///
    /// # Errors
    ///
    /// As [`recover`](Server::recover).
    pub fn recover_with(
        dir: impl AsRef<Path>,
        options: DurableOptions,
    ) -> Result<(Server, RecoveryReport), StoreError> {
        let dir = dir.as_ref();
        let entries = Journal::read_entries(dir)?;
        let journal_err = |index: usize, detail: String| StoreError::Journal {
            line: index + 1,
            detail,
        };

        struct RecJob {
            spec: Option<JobSpec>,
            attempts: usize,
            retries: usize,
            resumed_attempts: usize,
            state: JobState,
            outcome: Option<JobOutcome>,
            has_checkpoint: bool,
        }
        impl Default for RecJob {
            fn default() -> Self {
                RecJob {
                    spec: None,
                    attempts: 0,
                    retries: 0,
                    resumed_attempts: 0,
                    state: JobState::Queued,
                    outcome: None,
                    has_checkpoint: false,
                }
            }
        }

        let mut config: Option<ServerConfig> = None;
        let mut jobs: BTreeMap<u64, RecJob> = BTreeMap::new();
        for (index, value) in entries.iter().enumerate() {
            let obj = value
                .as_object()
                .ok_or_else(|| journal_err(index, "entry is not an object".into()))?;
            let kind = ncgws_core::snapshot::json::get(obj, "entry")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| journal_err(index, "entry is missing `entry`".into()))?;
            if kind == "server" {
                config = Some(ServerConfig::from_journal(obj).map_err(|e| journal_err(index, e))?);
                continue;
            }
            let job_id = ncgws_core::snapshot::json::get(obj, "job")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| journal_err(index, format!("`{kind}` entry is missing `job`")))?;
            let job = jobs.entry(job_id).or_default();
            match kind {
                "submitted" => {
                    let spec_value =
                        ncgws_core::snapshot::json::get(obj, "spec").ok_or_else(|| {
                            journal_err(index, "submitted entry missing `spec`".into())
                        })?;
                    job.spec = Some(
                        codec::decode_job_spec(spec_value).map_err(|e| journal_err(index, e))?,
                    );
                    let resume = ncgws_core::snapshot::json::get(obj, "resume")
                        .and_then(JsonValue::as_bool)
                        .unwrap_or(false);
                    job.has_checkpoint |= resume;
                }
                "dispatched" => {
                    job.attempts += 1;
                    job.state = JobState::Running;
                    if ncgws_core::snapshot::json::get(obj, "resumed")
                        .and_then(JsonValue::as_bool)
                        .unwrap_or(false)
                    {
                        job.resumed_attempts += 1;
                    }
                }
                "checkpointed" => job.has_checkpoint = true,
                "requeued" => job.state = JobState::Queued,
                "retried" => {
                    job.state = JobState::Queued;
                    job.retries += 1;
                }
                "completed" | "cancelled" | "failed" => {
                    job.state = match kind {
                        "completed" => JobState::Completed,
                        "cancelled" => JobState::Cancelled,
                        _ => JobState::Failed,
                    };
                    let outcome_value = ncgws_core::snapshot::json::get(obj, "outcome")
                        .ok_or_else(|| journal_err(index, format!("`{kind}` missing `outcome`")))?;
                    job.outcome = Some(
                        codec::decode_job_outcome(outcome_value)
                            .map_err(|e| journal_err(index, e))?,
                    );
                }
                // Unknown kinds are tolerated for forward compatibility.
                _ => {}
            }
        }
        let config = config.ok_or(StoreError::Journal {
            line: 0,
            detail: "journal has no `server` config entry (not a server directory?)".into(),
        })?;

        let store =
            DiskSnapshotStore::open(dir, options.store)?.with_faults(options.faults.clone());
        let journal = Journal::open(dir)?;
        let mut report = RecoveryReport::default();
        let mut state = State::default();
        let mut max_id = 0u64;
        for (id, rec) in jobs {
            let Some(spec) = rec.spec else {
                // Lifecycle entries for a job whose `submitted` line was
                // torn away: nothing to rebuild from.
                continue;
            };
            max_id = max_id.max(id);
            report.jobs_seen += 1;
            let seq = state.next_seq;
            state.next_seq += 1;
            let mut entry = JobEntry {
                spec,
                seq,
                state: rec.state,
                attempts: rec.attempts,
                retries: rec.retries,
                resumed_attempts: rec.resumed_attempts,
                iterations: 0,
                snapshot: None,
                has_checkpoint: false,
                not_before: None,
                cancel: None,
                cancel_requested: false,
                outcome: rec.outcome,
                instance: None,
            };
            match rec.state {
                JobState::Completed => report.completed += 1,
                JobState::Cancelled => report.cancelled += 1,
                JobState::Failed => report.failed += 1,
                JobState::Queued | JobState::Running => {
                    // Interrupted (Running means the process died mid
                    // attempt): back on the queue, resuming from the latest
                    // durable snapshot when one decodes.
                    report.requeued += 1;
                    entry.state = JobState::Queued;
                    if rec.has_checkpoint {
                        match store.load(id) {
                            Ok(Some(snapshot)) => {
                                entry.has_checkpoint = true;
                                entry.iterations = snapshot.iterations_done;
                                report.resumed_from_checkpoint += 1;
                            }
                            Ok(None) => {}
                            Err(_) => report.corrupt_snapshots += 1,
                        }
                    }
                    state.ready.insert(queue_key(entry.spec.priority, seq, id));
                    state
                        .tenants
                        .entry(entry.spec.tenant.clone())
                        .or_default()
                        .queued += 1;
                }
            }
            state.jobs.insert(id, entry);
        }

        let durable = Durable { store, journal };
        let server = Server::start_inner(
            config,
            options.events,
            Some(durable),
            options.faults,
            state,
            max_id + 1,
        );
        Ok((server, report))
    }

    fn start_inner(
        config: ServerConfig,
        sink: Option<Box<dyn Write + Send>>,
        durable: Option<Durable>,
        faults: Option<Arc<FaultPlan>>,
        state: State,
        next_id: u64,
    ) -> Server {
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(state),
            work_ready: Condvar::new(),
            progress: Condvar::new(),
            counters: Counters::default(),
            config,
            events: sink.map(Mutex::new),
            durable,
            faults: faults.filter(|p| p.is_active()),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Server {
            shared,
            workers: handles,
            next_id: AtomicU64::new(next_id),
        }
    }

    /// Submits a job to run cold.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Draining`] after [`drain`](Server::drain) has begun;
    /// [`SubmitError::QueueFull`] when the tenant's queued-job cap is hit.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        self.enqueue(spec, None)
    }

    /// Submits a job that starts by resuming from `snapshot` instead of
    /// running cold (e.g. a snapshot taken by a previous server via
    /// [`snapshot_of`](Server::snapshot_of)).
    ///
    /// The snapshot is validated against the job's circuit when the attempt
    /// starts; a mismatched snapshot fails the job with the validation
    /// error.
    ///
    /// # Errors
    ///
    /// As [`submit`](Server::submit).
    pub fn submit_resume(&self, spec: JobSpec, snapshot: Snapshot) -> Result<JobId, SubmitError> {
        self.enqueue(spec, Some(snapshot))
    }

    fn enqueue(&self, spec: JobSpec, snapshot: Option<Snapshot>) -> Result<JobId, SubmitError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        // Durable resume submissions persist the seed snapshot before the
        // journal promises it exists.
        let mut durable_checkpoint = false;
        let mut snapshot = snapshot;
        if let (Some(durable), Some(snap)) = (&self.shared.durable, &snapshot) {
            if durable.store.save(id, snap).is_ok() {
                durable_checkpoint = true;
                snapshot = None;
            }
        }
        let event = {
            let mut guard = lock_recover(&self.shared.state);
            let st = &mut *guard;
            if st.draining {
                Counters::add(&self.shared.counters.rejected, 1);
                if durable_checkpoint {
                    if let Some(durable) = &self.shared.durable {
                        durable.store.remove(id);
                    }
                }
                return Err(SubmitError::Draining);
            }
            let tenant = st.tenants.entry(spec.tenant.clone()).or_default();
            if tenant.queued >= self.shared.config.max_queued_per_tenant {
                Counters::add(&self.shared.counters.rejected, 1);
                if durable_checkpoint {
                    if let Some(durable) = &self.shared.durable {
                        durable.store.remove(id);
                    }
                }
                return Err(SubmitError::QueueFull {
                    tenant: spec.tenant,
                });
            }
            tenant.queued += 1;
            let seq = st.next_seq;
            st.next_seq += 1;
            st.ready.insert(queue_key(spec.priority, seq, id));
            let event = line(
                "submitted",
                &[
                    ("job", Field::U(id)),
                    ("tenant", Field::S(&spec.tenant)),
                    ("priority", Field::I(i64::from(spec.priority))),
                    (
                        "resumed",
                        Field::B(snapshot.is_some() || durable_checkpoint),
                    ),
                ],
            );
            // A failed spec serialization (unreachable for derive-encoded
            // types) skips the journal entry instead of panicking; the job
            // still runs, it is just not recoverable after a crash.
            let journal_line = self.shared.durable.as_ref().and_then(|_| {
                let encoded = serde_json::to_string(&spec).ok()?;
                Some(format!(
                    "{{\"entry\":\"submitted\",\"job\":{id},\"resume\":{},\"spec\":{encoded}}}",
                    durable_checkpoint
                ))
            });
            st.jobs.insert(
                id,
                JobEntry {
                    spec,
                    seq,
                    state: JobState::Queued,
                    attempts: 0,
                    retries: 0,
                    resumed_attempts: 0,
                    iterations: 0,
                    snapshot,
                    has_checkpoint: durable_checkpoint,
                    not_before: None,
                    cancel: None,
                    cancel_requested: false,
                    outcome: None,
                    instance: None,
                },
            );
            Counters::add(&self.shared.counters.submitted, 1);
            if let Some(text) = &journal_line {
                self.shared.journal(text);
            }
            event
        };
        self.shared.work_ready.notify_one();
        self.shared.emit(event);
        Ok(JobId(id))
    }

    /// Requests cancellation. A queued job is removed immediately; a
    /// running job's attempt is stopped cooperatively and the job finishes
    /// as [`JobState::Cancelled`] (unless the attempt completes before the
    /// flag is seen, in which case the finished result stands). Returns
    /// `false` for unknown or already terminal jobs.
    pub fn cancel(&self, id: JobId) -> bool {
        let event = {
            let mut guard = lock_recover(&self.shared.state);
            let st = &mut *guard;
            let Some(entry) = st.jobs.get_mut(&id.0) else {
                return false;
            };
            match entry.state {
                JobState::Queued => {
                    entry.state = JobState::Cancelled;
                    let outcome = JobOutcome {
                        stop_reason: StopReason::Cancelled,
                        iterations: entry.iterations,
                        attempts: entry.attempts,
                        resumed_attempts: entry.resumed_attempts,
                        feasible: false,
                        final_metrics: None,
                        error: None,
                    };
                    entry.outcome = Some(outcome.clone());
                    let key = queue_key(entry.spec.priority, entry.seq, id.0);
                    st.ready.remove(&key);
                    let tenant = entry.spec.tenant.clone();
                    if let Some(t) = st.tenants.get_mut(&tenant) {
                        t.queued -= 1;
                    }
                    Counters::add(&self.shared.counters.cancelled, 1);
                    self.shared.journal_terminal("cancelled", id.0, &outcome);
                    line(
                        "cancelled",
                        &[
                            ("job", Field::U(id.0)),
                            ("tenant", Field::S(&tenant)),
                            ("while", Field::S("queued")),
                        ],
                    )
                }
                JobState::Running => {
                    entry.cancel_requested = true;
                    if let Some(flag) = &entry.cancel {
                        flag.cancel();
                    }
                    return true;
                }
                _ => return false,
            }
        };
        self.shared.progress.notify_all();
        self.shared.emit(event);
        true
    }

    /// The job's current lifecycle state, `None` for unknown ids.
    pub fn job_state(&self, id: JobId) -> Option<JobState> {
        let st = lock_recover(&self.shared.state);
        st.jobs.get(&id.0).map(|e| e.state)
    }

    /// The job's final outcome once terminal, `None` before that.
    pub fn outcome(&self, id: JobId) -> Option<JobOutcome> {
        let st = lock_recover(&self.shared.state);
        st.jobs.get(&id.0).and_then(|e| e.outcome.clone())
    }

    /// Blocks until the job reaches a terminal state and returns its
    /// outcome; `None` for unknown ids.
    pub fn wait(&self, id: JobId) -> Option<JobOutcome> {
        let mut st = lock_recover(&self.shared.state);
        loop {
            match st.jobs.get(&id.0) {
                None => return None,
                Some(entry) if entry.state.is_terminal() => return entry.outcome.clone(),
                Some(_) => st = wait_recover(&self.shared.progress, st),
            }
        }
    }

    /// The job's latest retained checkpoint, usable with
    /// [`submit_resume`](Server::submit_resume) — on this server or a new
    /// one. Durable servers read it back through the store (resident cache
    /// or disk).
    pub fn snapshot_of(&self, id: JobId) -> Option<Snapshot> {
        let (snapshot, has_checkpoint) = {
            let st = lock_recover(&self.shared.state);
            let entry = st.jobs.get(&id.0)?;
            (entry.snapshot.clone(), entry.has_checkpoint)
        };
        if snapshot.is_some() {
            return snapshot;
        }
        if has_checkpoint {
            if let Some(durable) = &self.shared.durable {
                return durable.store.load(id.0).ok().flatten();
            }
        }
        None
    }

    /// A point-in-time statistics snapshot (counters plus queue gauges and
    /// memory accounting). For durable servers the snapshot gauges come
    /// from the store: `snapshot_bytes_resident` is the in-memory cache,
    /// `snapshot_bytes_spilled` the bytes living only on disk.
    pub fn stats(&self) -> ServerStats {
        let st = lock_recover(&self.shared.state);
        let mut stats = self.shared.counters.snapshot();
        stats.queue_depth = st.ready.len();
        stats.in_flight = st.in_flight;
        stats.queue_bytes = st.ready.len() * std::mem::size_of::<QueueKey>()
            + st.jobs
                .values()
                .filter(|e| !e.state.is_terminal())
                .map(|e| e.spec.memory_bytes())
                .sum::<usize>();
        stats.snapshot_bytes_resident = st
            .jobs
            .values()
            .filter_map(|e| e.snapshot.as_ref())
            .map(Snapshot::memory_bytes)
            .sum();
        drop(st);
        if let Some(durable) = &self.shared.durable {
            let store = durable.store.stats();
            stats.snapshot_bytes_resident += store.resident_bytes as usize;
            stats.snapshot_bytes_spilled = store.spilled_bytes as usize;
            stats.snapshots_spilled = store.spills as usize;
            stats.snapshots_corrupt_recovered = store.corrupt_recovered as usize;
        }
        stats.snapshot_bytes = stats.snapshot_bytes_resident + stats.snapshot_bytes_spilled;
        stats
    }

    /// Approximate bytes held by the server's queues and retained
    /// snapshots (the serving-side extension of the engine's
    /// [`MemoryBreakdown`](ncgws_core::MemoryBreakdown) accounting).
    /// Spilled snapshots do not count — spilling exists to shed exactly
    /// this memory.
    pub fn memory_bytes(&self) -> usize {
        let stats = self.stats();
        stats.queue_bytes + stats.snapshot_bytes_resident
    }

    /// Stops accepting submissions, finishes every queued and in-flight
    /// job (including requeued resumes), joins the workers and returns the
    /// final statistics.
    pub fn drain(mut self) -> ServerStats {
        lock_recover(&self.shared.state).draining = true;
        self.shared.work_ready.notify_all();
        {
            let mut st = lock_recover(&self.shared.state);
            while !st.all_done() {
                st = wait_recover(&self.shared.progress, st);
            }
        }
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            // Per-attempt panics are caught inside the loop; a panic in the
            // loop itself is a bug, but must not also take the drainer down.
            let _ = handle.join();
        }
        let stats = self.stats();
        self.shared.emit(line(
            "drained",
            &[
                ("completed", Field::U(stats.completed as u64)),
                ("cancelled", Field::U(stats.cancelled as u64)),
                ("failed", Field::U(stats.failed as u64)),
                ("panics", Field::U(stats.panics as u64)),
                ("attempts_retried", Field::U(stats.attempts_retried as u64)),
                (
                    "snapshots_spilled",
                    Field::U(stats.snapshots_spilled as u64),
                ),
                (
                    "snapshots_corrupt_recovered",
                    Field::U(stats.snapshots_corrupt_recovered as u64),
                ),
            ],
        ));
        stats
    }
}

impl Drop for Server {
    /// Stops the server without finishing the queue: cancels running
    /// attempts cooperatively (they checkpoint and requeue), then joins
    /// every worker so no detached thread races on shared state after the
    /// drop. Durable servers leave the queue recoverable on disk.
    fn drop(&mut self) {
        {
            let mut st = lock_recover(&self.shared.state);
            st.draining = true;
            st.shutdown = true;
            for entry in st.jobs.values() {
                if let Some(flag) = &entry.cancel {
                    flag.cancel();
                }
            }
        }
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One dispatched attempt, handed from the scheduler lock to the solver.
struct Attempt {
    id: u64,
    spec: JobSpec,
    snapshot: Option<Snapshot>,
    has_checkpoint: bool,
    instance: Option<Arc<ProblemInstance>>,
    attempt: usize,
    flag: CancelFlag,
    delay: Option<Duration>,
}

fn worker_loop(shared: &Shared) {
    loop {
        let Some(attempt) = next_attempt(shared) else {
            return;
        };
        shared.emit(line(
            "started",
            &[
                ("job", Field::U(attempt.id)),
                ("tenant", Field::S(&attempt.spec.tenant)),
                ("attempt", Field::U(attempt.attempt as u64)),
                (
                    "resumed",
                    Field::B(attempt.snapshot.is_some() || attempt.has_checkpoint),
                ),
            ],
        ));
        run_and_settle(shared, attempt);
    }
}

/// Blocks until an admissible job can be claimed; `None` when the server
/// has drained completely or is shutting down.
fn next_attempt(shared: &Shared) -> Option<Attempt> {
    let mut guard = lock_recover(&shared.state);
    loop {
        if guard.shutdown {
            return None;
        }
        let now = Instant::now();
        let Some(key) = guard.pick(shared.config.max_in_flight_per_tenant, now) else {
            if guard.draining && guard.all_done() {
                return None;
            }
            guard = match guard.earliest_backoff(now) {
                // A retry backoff is pending: sleep at most until it expires.
                Some(delay) => wait_timeout_recover(&shared.work_ready, guard, delay).0,
                None => wait_recover(&shared.work_ready, guard),
            };
            continue;
        };
        let st = &mut *guard;
        st.ready.remove(&key);
        let id = key.2;
        let Some(entry) = st.jobs.get_mut(&id) else {
            // An orphaned ready key (no matching job) would be a scheduler
            // bug; dropping it and rescanning keeps the worker serving.
            continue;
        };
        let flag = CancelFlag::new();
        entry.state = JobState::Running;
        entry.attempts += 1;
        entry.not_before = None;
        entry.cancel = Some(flag.clone());
        let resumed = entry.snapshot.is_some() || entry.has_checkpoint;
        let delay = shared
            .faults
            .as_ref()
            .and_then(|plan| plan.dispatch_delay(id, entry.attempts));
        let attempt = Attempt {
            id,
            spec: entry.spec.clone(),
            snapshot: entry.snapshot.clone(),
            has_checkpoint: entry.has_checkpoint,
            instance: entry.instance.clone(),
            attempt: entry.attempts,
            flag,
            delay,
        };
        if shared.durable.is_some() {
            shared.journal(&format!(
                "{{\"entry\":\"dispatched\",\"job\":{id},\"attempt\":{},\"resumed\":{resumed}}}",
                entry.attempts
            ));
        }
        if let Some(tenant) = st.tenants.get_mut(&attempt.spec.tenant) {
            tenant.queued = tenant.queued.saturating_sub(1);
            tenant.in_flight += 1;
        }
        st.in_flight += 1;
        return Some(attempt);
    }
}

/// How one guarded attempt ended.
enum AttemptResult {
    /// The solver returned (converged, interrupted, or limit).
    Finished(Box<SizedOutcome>),
    /// The solver returned an error (bad config, bad instance, mismatched
    /// snapshot) — deterministic, not retried.
    Error(String),
    /// The worker panicked (a real bug or an injected fault) — transient,
    /// retried under the job's [`RetryPolicy`](crate::RetryPolicy).
    Panicked(String),
}

/// An [`Observer`] wrapper that panics at a chosen iteration — the
/// fault-injection vehicle for worker panics (forwarding to the live
/// counters first, like a real observer would have).
struct PanicProbe<'a> {
    inner: &'a Counters,
    at: usize,
    seen: AtomicUsize,
}

impl Observer for PanicProbe<'_> {
    fn on_iteration(&self, event: &IterationEvent<'_>) {
        self.inner.on_iteration(event);
        let n = self.seen.fetch_add(1, Ordering::Relaxed);
        if n >= self.at {
            panic!("injected fault: worker panic at iteration {n}");
        }
    }
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("worker panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("worker panicked: {s}")
    } else {
        "worker panicked".to_string()
    }
}

/// Runs one attempt outside the scheduler lock, then re-locks to classify
/// the result: completion, cancellation, requeue-for-resume, retry-after-
/// panic, or failure.
fn run_and_settle(shared: &Shared, attempt: Attempt) {
    if let Some(delay) = attempt.delay {
        std::thread::sleep(delay);
    }
    let instance = match &attempt.instance {
        Some(cached) => Ok(Arc::clone(cached)),
        None => match &attempt.spec.input {
            JobInput::Synthetic(spec) => SyntheticGenerator::new(spec.clone())
                .generate()
                .map(Arc::new)
                .map_err(|e| e.to_string()),
            JobInput::Instance(instance) => Ok(Arc::new((**instance).clone())),
        },
    };
    // Resolve the snapshot this attempt resumes from: the in-memory one, or
    // — durable servers — the latest good generation in the store. A store
    // where every generation is corrupt degrades to a cold start (counted
    // by the store), never a lost job.
    let mut resume = attempt.snapshot.clone();
    if resume.is_none() && attempt.has_checkpoint {
        if let Some(durable) = &shared.durable {
            resume = durable.store.load(attempt.id).ok().flatten();
        }
    }
    let resumed = resume.is_some();
    let (result, checkpoint, checkpoints_taken) = match &instance {
        Ok(instance) => match &shared.durable {
            None => {
                let store = SnapshotStore::new();
                let result = run_guarded(shared, &attempt, instance, &store, resume.as_ref());
                let taken = store.count();
                (result, store.take(), taken)
            }
            Some(durable) => {
                let sink = DiskSink::new(&durable.store, Some(&durable.journal), attempt.id);
                let result = run_guarded(shared, &attempt, instance, &sink, resume.as_ref());
                let taken = sink.saved();
                (result, None, taken)
            }
        },
        Err(e) => (AttemptResult::Error(e.clone()), None, 0),
    };
    Counters::add(&shared.counters.checkpoints, checkpoints_taken);

    let mut guard = lock_recover(&shared.state);
    let st = &mut *guard;
    let Some(entry) = st.jobs.get_mut(&attempt.id) else {
        // A running job vanishing from the map would be a scheduler bug;
        // release the slots it held and keep the worker serving.
        if let Some(tenant) = st.tenants.get_mut(&attempt.spec.tenant) {
            tenant.in_flight = tenant.in_flight.saturating_sub(1);
        }
        st.in_flight = st.in_flight.saturating_sub(1);
        drop(guard);
        shared.work_ready.notify_all();
        shared.progress.notify_all();
        return;
    };
    entry.cancel = None;
    if entry.instance.is_none() {
        if let Ok(instance) = &instance {
            entry.instance = Some(Arc::clone(instance));
        }
    }
    if let Some(snapshot) = checkpoint {
        entry.snapshot = Some(snapshot);
    }
    if checkpoints_taken > 0 && shared.durable.is_some() {
        entry.has_checkpoint = true;
    }
    if resumed {
        entry.resumed_attempts += 1;
        Counters::add(&shared.counters.resumed, 1);
    }
    let event = match result {
        AttemptResult::Finished(sized) => {
            entry.iterations += sized.report.iterations;
            let reason = sized.stop_reason();
            if !reason.is_interrupted() {
                let outcome = settle(entry, JobState::Completed, reason, Some(&sized), None);
                Counters::add(&shared.counters.completed, 1);
                shared.journal_terminal("completed", attempt.id, &outcome);
                line(
                    "completed",
                    &[
                        ("job", Field::U(attempt.id)),
                        ("tenant", Field::S(&attempt.spec.tenant)),
                        ("stop", Field::S(&reason.to_string())),
                        ("iterations", Field::U(entry.iterations as u64)),
                        ("attempts", Field::U(entry.attempts as u64)),
                    ],
                )
            } else if entry.cancel_requested {
                let outcome = settle(
                    entry,
                    JobState::Cancelled,
                    StopReason::Cancelled,
                    Some(&sized),
                    None,
                );
                Counters::add(&shared.counters.cancelled, 1);
                shared.journal_terminal("cancelled", attempt.id, &outcome);
                line(
                    "cancelled",
                    &[
                        ("job", Field::U(attempt.id)),
                        ("tenant", Field::S(&attempt.spec.tenant)),
                        ("while", Field::S("running")),
                    ],
                )
            } else if entry.attempts >= shared.config.max_attempts {
                let outcome = settle(
                    entry,
                    JobState::Failed,
                    reason,
                    Some(&sized),
                    Some("attempt cap exhausted".to_string()),
                );
                Counters::add(&shared.counters.failed, 1);
                shared.journal_terminal("failed", attempt.id, &outcome);
                line(
                    "failed",
                    &[
                        ("job", Field::U(attempt.id)),
                        ("tenant", Field::S(&attempt.spec.tenant)),
                        ("error", Field::S("attempt cap exhausted")),
                    ],
                )
            } else {
                // Interrupted mid-run (budget, deadline, or a shutdown
                // cancel without a client cancel request): back on the
                // queue to resume from the checkpoint captured above.
                entry.state = JobState::Queued;
                let key = queue_key(entry.spec.priority, entry.seq, attempt.id);
                let resume_from = entry
                    .snapshot
                    .as_ref()
                    .map_or(entry.iterations, |s| s.iterations_done);
                st.ready.insert(key);
                if let Some(tenant) = st.tenants.get_mut(&attempt.spec.tenant) {
                    tenant.queued += 1;
                }
                Counters::add(&shared.counters.requeued, 1);
                shared.journal(&format!(
                    "{{\"entry\":\"requeued\",\"job\":{}}}",
                    attempt.id
                ));
                line(
                    "requeued",
                    &[
                        ("job", Field::U(attempt.id)),
                        ("tenant", Field::S(&attempt.spec.tenant)),
                        ("stop", Field::S(&reason.to_string())),
                        ("checkpoint_iteration", Field::U(resume_from as u64)),
                    ],
                )
            }
        }
        AttemptResult::Panicked(error)
            if !entry.cancel_requested
                && entry.retries < entry.spec.retry.max_retries
                && entry.attempts < shared.config.max_attempts =>
        {
            // Transient failure with retries left: back off and requeue.
            entry.retries += 1;
            let delay_ms = entry.spec.retry.delay_ms(attempt.id, entry.retries);
            if delay_ms > 0 {
                entry.not_before = Some(Instant::now() + Duration::from_millis(delay_ms));
            }
            entry.state = JobState::Queued;
            st.ready
                .insert(queue_key(entry.spec.priority, entry.seq, attempt.id));
            if let Some(tenant) = st.tenants.get_mut(&attempt.spec.tenant) {
                tenant.queued += 1;
            }
            Counters::add(&shared.counters.retried, 1);
            shared.journal(&format!(
                "{{\"entry\":\"retried\",\"job\":{},\"retry\":{}}}",
                attempt.id, entry.retries
            ));
            line(
                "retried",
                &[
                    ("job", Field::U(attempt.id)),
                    ("tenant", Field::S(&attempt.spec.tenant)),
                    ("retry", Field::U(entry.retries as u64)),
                    ("backoff_ms", Field::U(delay_ms)),
                    ("error", Field::S(&error)),
                ],
            )
        }
        AttemptResult::Error(error) | AttemptResult::Panicked(error) => {
            let cancelled = entry.cancel_requested;
            let (state, reason) = if cancelled {
                Counters::add(&shared.counters.cancelled, 1);
                (JobState::Cancelled, StopReason::Cancelled)
            } else {
                Counters::add(&shared.counters.failed, 1);
                (JobState::Failed, StopReason::IterationLimit)
            };
            let outcome = settle(entry, state, reason, None, Some(error.clone()));
            let kind = if cancelled { "cancelled" } else { "failed" };
            shared.journal_terminal(kind, attempt.id, &outcome);
            line(
                "failed",
                &[
                    ("job", Field::U(attempt.id)),
                    ("tenant", Field::S(&attempt.spec.tenant)),
                    ("error", Field::S(&error)),
                ],
            )
        }
    };
    if let Some(tenant) = st.tenants.get_mut(&attempt.spec.tenant) {
        tenant.in_flight = tenant.in_flight.saturating_sub(1);
    }
    st.in_flight = st.in_flight.saturating_sub(1);
    drop(guard);
    shared.work_ready.notify_all();
    shared.progress.notify_all();
    shared.emit(event);
}

/// Records a terminal state and outcome on the entry, returning the
/// outcome for journaling.
fn settle(
    entry: &mut JobEntry,
    state: JobState,
    stop_reason: StopReason,
    sized: Option<&SizedOutcome>,
    error: Option<String>,
) -> JobOutcome {
    entry.state = state;
    let outcome = JobOutcome {
        stop_reason,
        iterations: entry.iterations,
        attempts: entry.attempts,
        resumed_attempts: entry.resumed_attempts,
        feasible: sized.is_some_and(|s| s.report.feasible),
        final_metrics: sized.map(|s| s.report.final_metrics),
        error,
    };
    entry.outcome = Some(outcome.clone());
    outcome
}

/// Runs one attempt inside a panic guard, classifying the three ways it
/// can come back.
fn run_guarded(
    shared: &Shared,
    attempt: &Attempt,
    instance: &ProblemInstance,
    sink: &dyn CheckpointSink,
    resume: Option<&Snapshot>,
) -> AttemptResult {
    let panic_at = shared
        .faults
        .as_ref()
        .and_then(|plan| plan.panic_iteration(attempt.id, attempt.attempt));
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        run_attempt(shared, attempt, instance, sink, resume, panic_at)
    }));
    match outcome {
        Ok(Ok(sized)) => AttemptResult::Finished(Box::new(sized)),
        Ok(Err(e)) => AttemptResult::Error(e.to_string()),
        Err(payload) => {
            Counters::add(&shared.counters.panics, 1);
            AttemptResult::Panicked(panic_text(payload))
        }
    }
}

/// Runs one attempt of the two-stage flow: cold, or resumed from the job's
/// latest checkpoint.
fn run_attempt(
    shared: &Shared,
    attempt: &Attempt,
    instance: &ProblemInstance,
    sink: &dyn CheckpointSink,
    resume: Option<&Snapshot>,
    panic_at: Option<usize>,
) -> Result<SizedOutcome, CoreError> {
    let probe = panic_at.map(|at| PanicProbe {
        inner: &shared.counters,
        at,
        seen: AtomicUsize::new(0),
    });
    let mut policy = CheckpointPolicy::new().on_interrupt(true);
    if let Some(every) = shared.config.checkpoint_every {
        policy = policy.every(every);
    }
    let mut control = RunControl::new()
        .with_cancel_flag(attempt.flag.clone())
        .with_checkpoints(sink, policy);
    control = match &probe {
        Some(probe) => control.with_observer(probe),
        None => control.with_observer(&shared.counters),
    };
    if let Some(budget) = attempt.spec.iteration_budget {
        control = control.with_iteration_budget(budget);
    }
    if let Some(millis) = attempt.spec.attempt_timeout_ms {
        control = control.with_timeout(Duration::from_millis(millis));
    }
    let ordered = Flow::prepare(instance, attempt.spec.config.clone())?.order()?;
    match resume {
        Some(snapshot) => ordered.size_resume(snapshot, &control),
        None => ordered.size_with(&control),
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use ncgws_core::OptimizerConfig;
    use ncgws_netlist::CircuitSpec;

    fn quick_config() -> OptimizerConfig {
        OptimizerConfig {
            max_iterations: 30,
            max_lrs_sweeps: 20,
            ..OptimizerConfig::default()
        }
    }

    fn job(seed: u64) -> JobSpec {
        let spec = CircuitSpec::new("serve-test", 20, 45)
            .with_seed(seed)
            .with_num_patterns(16);
        JobSpec::new(JobInput::Synthetic(spec), quick_config())
    }

    #[test]
    fn budget_kills_requeue_and_resume_to_completion() {
        let server = Server::start(ServerConfig {
            workers: 1,
            checkpoint_every: Some(2),
            ..ServerConfig::default()
        });
        let id = server.submit(job(9).with_iteration_budget(3)).unwrap();
        let outcome = server.wait(id).unwrap();
        assert!(!outcome.stop_reason.is_interrupted());
        assert!(outcome.attempts > 1, "a 3-iteration budget must interrupt");
        assert_eq!(outcome.resumed_attempts, outcome.attempts - 1);
        assert!(outcome.final_metrics.is_some());

        // Same job served uninterrupted: the metrics must agree to 1e-6.
        let cold_id = server.submit(job(9)).unwrap();
        let cold = server.wait(cold_id).unwrap();
        let resumed = outcome.final_metrics.unwrap();
        let coldm = cold.final_metrics.unwrap();
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1.0);
        assert!(close(resumed.area_um2, coldm.area_um2));
        assert!(close(resumed.delay_ps, coldm.delay_ps));
        assert!(close(resumed.noise_pf, coldm.noise_pf));
        // Resumed attempts redo no finished iterations: total work matches
        // the cold run's iteration count exactly.
        assert_eq!(outcome.iterations, cold.iterations);

        let stats = server.drain();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.requeued, outcome.attempts - 1);
        assert_eq!(stats.resumed, outcome.resumed_attempts);
        assert!(stats.checkpoints > 0);
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.in_flight, 0);
    }

    #[test]
    fn attempt_cap_fails_the_job_instead_of_looping() {
        let server = Server::start(ServerConfig {
            workers: 1,
            max_attempts: 2,
            ..ServerConfig::default()
        });
        let id = server.submit(job(5).with_iteration_budget(1)).unwrap();
        let outcome = server.wait(id).unwrap();
        assert_eq!(server.job_state(id), Some(JobState::Failed));
        assert_eq!(outcome.attempts, 2);
        assert_eq!(outcome.resumed_attempts, 1);
        assert_eq!(outcome.error.as_deref(), Some("attempt cap exhausted"));
        // The job still retains its last checkpoint for a manual resubmit.
        let snapshot = server.snapshot_of(id).expect("failed job keeps snapshot");
        assert_eq!(snapshot.iterations_done, 2);
        let stats = server.drain();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 0);
    }

    #[test]
    fn snapshot_resubmit_continues_on_a_fresh_server() {
        let first = Server::start(ServerConfig {
            workers: 1,
            max_attempts: 1,
            ..ServerConfig::default()
        });
        let id = first.submit(job(9).with_iteration_budget(5)).unwrap();
        let outcome = first.wait(id).unwrap();
        assert_eq!(outcome.attempts, 1);
        let snapshot = first.snapshot_of(id).unwrap();
        assert_eq!(snapshot.iterations_done, 5);
        first.drain();

        let second = Server::start(ServerConfig::default());
        let resumed_id = second.submit_resume(job(9), snapshot).unwrap();
        let resumed = second.wait(resumed_id).unwrap();
        assert!(!resumed.stop_reason.is_interrupted());
        assert_eq!(resumed.resumed_attempts, 1);

        let cold_id = second.submit(job(9)).unwrap();
        let cold = second.wait(cold_id).unwrap();
        assert_eq!(resumed.iterations + 5, cold.iterations);
        second.drain();
    }

    #[test]
    fn zero_queue_cap_rejects_submissions() {
        let server = Server::start(ServerConfig {
            workers: 1,
            max_queued_per_tenant: 0,
            ..ServerConfig::default()
        });
        let err = server.submit(job(1)).unwrap_err();
        assert_eq!(
            err,
            SubmitError::QueueFull {
                tenant: "default".to_string()
            }
        );
        let stats = server.drain();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.submitted, 0);
    }

    #[test]
    fn events_and_memory_accounting_cover_the_queue() {
        let buffer = crate::events::SharedBuffer::new();
        let server = Server::start_with_events(
            ServerConfig {
                workers: 1,
                checkpoint_every: Some(3),
                ..ServerConfig::default()
            },
            Some(Box::new(buffer.clone())),
        );
        let id = server.submit(job(9).with_iteration_budget(3)).unwrap();
        server.wait(id).unwrap();
        // The finished job retains its final checkpoint: the server's
        // memory accounting must see it.
        let snapshot = server.snapshot_of(id).unwrap();
        let stats = server.stats();
        assert!(stats.snapshot_bytes >= snapshot.memory_bytes());
        assert_eq!(
            server.memory_bytes(),
            stats.queue_bytes + stats.snapshot_bytes
        );
        assert!(stats.iterations > 0, "observer-fed iteration counter");
        let drained = server.drain();
        assert!(drained.checkpoints > 0);
        let text = buffer.contents();
        for event in ["submitted", "started", "requeued", "completed", "drained"] {
            assert!(
                text.contains(&format!("{{\"event\":\"{event}\"")),
                "missing {event} in event stream:\n{text}"
            );
        }
        // Every line is valid JSON per the core snapshot parser.
        for line in text.lines() {
            ncgws_core::snapshot::json::parse(line).expect("event line must parse as JSON");
        }
    }

    #[test]
    fn cancel_while_queued_is_immediate_and_unknown_ids_are_rejected() {
        let server = Server::start(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        });
        // A blocker keeps the single worker busy long enough for the
        // victims to still be queued; even if it finishes early, the
        // cancel-while-running path is equally valid, so only terminal
        // states are asserted.
        let blocker = server.submit(job(2).with_priority(10)).unwrap();
        let victims: Vec<JobId> = (0..4)
            .map(|i| server.submit(job(20 + i)).unwrap())
            .collect();
        for &victim in &victims {
            server.cancel(victim);
        }
        assert!(!server.cancel(JobId(9999)));
        server.wait(blocker).unwrap();
        for &victim in &victims {
            server.wait(victim).unwrap();
            assert!(server.job_state(victim).unwrap().is_terminal());
        }
        let stats = server.drain();
        assert_eq!(stats.completed + stats.cancelled, 5);
    }
}
