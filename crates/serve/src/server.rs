//! The persistent optimization server.
//!
//! A [`Server`] owns a pool of worker threads draining a priority job
//! queue. Each attempt runs the full two-stage flow under a
//! [`RunControl`] wired with the job's per-attempt limits and a
//! [`SnapshotStore`] checkpoint sink; interrupted attempts are requeued and
//! resume from their latest [`Snapshot`] instead of restarting cold.
//!
//! Scheduling is strict priority with FIFO tie-breaking (a `BTreeSet`
//! ordered by descending priority, then submission sequence), subject to
//! per-tenant admission control: a tenant's queued jobs are capped at
//! submission time and its in-flight attempts are capped at dispatch time,
//! so one noisy tenant can neither flood the queue nor monopolize the
//! workers.

use std::collections::{BTreeMap, BTreeSet};
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ncgws_core::flow::Flow;
use ncgws_core::{
    CancelFlag, CheckpointPolicy, CoreError, RunControl, SizedOutcome, Snapshot, SnapshotStore,
    StopReason,
};
use ncgws_netlist::{ProblemInstance, SyntheticGenerator};

use crate::events::{line, Field};
use crate::job::{JobId, JobInput, JobOutcome, JobSpec, JobState};
use crate::stats::{Counters, ServerStats};

/// Server-wide policy knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads draining the queue (at least 1).
    pub workers: usize,
    /// Per-tenant cap on concurrently running attempts.
    pub max_in_flight_per_tenant: usize,
    /// Per-tenant cap on jobs waiting in the queue; submissions beyond it
    /// are rejected with [`SubmitError::QueueFull`]. Requeues of
    /// interrupted attempts are always admitted.
    pub max_queued_per_tenant: usize,
    /// Periodic checkpoint cadence applied to every attempt (`None` keeps
    /// only on-interrupt checkpoints).
    pub checkpoint_every: Option<usize>,
    /// Attempt cap per job: an interrupted job that has already started
    /// this many attempts fails instead of requeueing.
    pub max_attempts: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            max_in_flight_per_tenant: usize::MAX,
            max_queued_per_tenant: usize::MAX,
            checkpoint_every: None,
            max_attempts: 64,
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The server is draining and accepts no new work.
    Draining,
    /// The tenant's queued-job cap is reached.
    QueueFull {
        /// The tenant whose queue is full.
        tenant: String,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Draining => write!(f, "server is draining"),
            SubmitError::QueueFull { tenant } => {
                write!(f, "queue for tenant {tenant} is full")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Ready-queue key: smaller sorts first, so negated priority puts the
/// highest priority at `first()`, then FIFO by submission sequence.
type QueueKey = (i64, u64, u64);

fn queue_key(priority: i32, seq: u64, id: u64) -> QueueKey {
    (-i64::from(priority), seq, id)
}

#[derive(Debug, Default)]
struct TenantState {
    queued: usize,
    in_flight: usize,
}

#[derive(Debug)]
struct JobEntry {
    spec: JobSpec,
    seq: u64,
    state: JobState,
    attempts: usize,
    resumed_attempts: usize,
    iterations: usize,
    snapshot: Option<Snapshot>,
    cancel: Option<CancelFlag>,
    cancel_requested: bool,
    outcome: Option<JobOutcome>,
    instance: Option<Arc<ProblemInstance>>,
}

#[derive(Debug, Default)]
struct State {
    jobs: BTreeMap<u64, JobEntry>,
    ready: BTreeSet<QueueKey>,
    tenants: BTreeMap<String, TenantState>,
    draining: bool,
    in_flight: usize,
    next_seq: u64,
}

impl State {
    /// First admissible ready job: highest priority, oldest, whose tenant
    /// is under its in-flight cap.
    fn pick(&self, max_in_flight_per_tenant: usize) -> Option<QueueKey> {
        self.ready.iter().copied().find(|&(_, _, id)| {
            let entry = &self.jobs[&id];
            self.tenants
                .get(&entry.spec.tenant)
                .is_none_or(|t| t.in_flight < max_in_flight_per_tenant)
        })
    }

    fn all_done(&self) -> bool {
        self.ready.is_empty() && self.in_flight == 0
    }
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for admissible work (or the drain signal).
    work_ready: Condvar,
    /// Clients wait here for job transitions (`wait`, `drain`).
    progress: Condvar,
    counters: Counters,
    config: ServerConfig,
    events: Option<Mutex<Box<dyn Write + Send>>>,
}

impl Shared {
    fn emit(&self, text: String) {
        if let Some(sink) = &self.events {
            let mut sink = sink.lock().expect("event sink poisoned");
            let _ = writeln!(sink, "{text}");
        }
    }
}

/// A persistent optimization server: worker pool, priority queue,
/// checkpoint/resume.
///
/// See the [crate docs](crate) for an end-to-end example. Call
/// [`drain`](Server::drain) to finish outstanding work and join the
/// workers; a dropped server stops accepting work and lets its (detached)
/// workers finish the remaining queue in the background.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("workers", &self.workers.len())
            .field("config", &self.shared.config)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Starts the worker pool with no event sink.
    pub fn start(config: ServerConfig) -> Server {
        Server::start_with_events(config, None)
    }

    /// Starts the worker pool, writing one JSON event line per job
    /// transition to `sink` (see [`events`](crate::events)).
    pub fn start_with_events(config: ServerConfig, sink: Option<Box<dyn Write + Send>>) -> Server {
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State::default()),
            work_ready: Condvar::new(),
            progress: Condvar::new(),
            counters: Counters::default(),
            config,
            events: sink.map(Mutex::new),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Server {
            shared,
            workers: handles,
            next_id: AtomicU64::new(1),
        }
    }

    /// Submits a job to run cold.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Draining`] after [`drain`](Server::drain) has begun;
    /// [`SubmitError::QueueFull`] when the tenant's queued-job cap is hit.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        self.enqueue(spec, None)
    }

    /// Submits a job that starts by resuming from `snapshot` instead of
    /// running cold (e.g. a snapshot taken by a previous server via
    /// [`snapshot_of`](Server::snapshot_of)).
    ///
    /// The snapshot is validated against the job's circuit when the attempt
    /// starts; a mismatched snapshot fails the job with the validation
    /// error.
    ///
    /// # Errors
    ///
    /// As [`submit`](Server::submit).
    pub fn submit_resume(&self, spec: JobSpec, snapshot: Snapshot) -> Result<JobId, SubmitError> {
        self.enqueue(spec, Some(snapshot))
    }

    fn enqueue(&self, spec: JobSpec, snapshot: Option<Snapshot>) -> Result<JobId, SubmitError> {
        let (id, event) = {
            let mut guard = self.shared.state.lock().expect("server state poisoned");
            let st = &mut *guard;
            if st.draining {
                Counters::add(&self.shared.counters.rejected, 1);
                return Err(SubmitError::Draining);
            }
            let tenant = st.tenants.entry(spec.tenant.clone()).or_default();
            if tenant.queued >= self.shared.config.max_queued_per_tenant {
                Counters::add(&self.shared.counters.rejected, 1);
                return Err(SubmitError::QueueFull {
                    tenant: spec.tenant,
                });
            }
            tenant.queued += 1;
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            let seq = st.next_seq;
            st.next_seq += 1;
            st.ready.insert(queue_key(spec.priority, seq, id));
            let event = line(
                "submitted",
                &[
                    ("job", Field::U(id)),
                    ("tenant", Field::S(&spec.tenant)),
                    ("priority", Field::I(i64::from(spec.priority))),
                    ("resumed", Field::B(snapshot.is_some())),
                ],
            );
            st.jobs.insert(
                id,
                JobEntry {
                    spec,
                    seq,
                    state: JobState::Queued,
                    attempts: 0,
                    resumed_attempts: 0,
                    iterations: 0,
                    snapshot,
                    cancel: None,
                    cancel_requested: false,
                    outcome: None,
                    instance: None,
                },
            );
            Counters::add(&self.shared.counters.submitted, 1);
            (id, event)
        };
        self.shared.work_ready.notify_one();
        self.shared.emit(event);
        Ok(JobId(id))
    }

    /// Requests cancellation. A queued job is removed immediately; a
    /// running job's attempt is stopped cooperatively and the job finishes
    /// as [`JobState::Cancelled`] (unless the attempt completes before the
    /// flag is seen, in which case the finished result stands). Returns
    /// `false` for unknown or already terminal jobs.
    pub fn cancel(&self, id: JobId) -> bool {
        let event = {
            let mut guard = self.shared.state.lock().expect("server state poisoned");
            let st = &mut *guard;
            let Some(entry) = st.jobs.get_mut(&id.0) else {
                return false;
            };
            match entry.state {
                JobState::Queued => {
                    entry.state = JobState::Cancelled;
                    entry.outcome = Some(JobOutcome {
                        stop_reason: StopReason::Cancelled,
                        iterations: entry.iterations,
                        attempts: entry.attempts,
                        resumed_attempts: entry.resumed_attempts,
                        feasible: false,
                        final_metrics: None,
                        error: None,
                    });
                    let key = queue_key(entry.spec.priority, entry.seq, id.0);
                    st.ready.remove(&key);
                    let tenant = &entry.spec.tenant;
                    if let Some(t) = st.tenants.get_mut(tenant) {
                        t.queued -= 1;
                    }
                    Counters::add(&self.shared.counters.cancelled, 1);
                    line(
                        "cancelled",
                        &[
                            ("job", Field::U(id.0)),
                            ("tenant", Field::S(tenant)),
                            ("while", Field::S("queued")),
                        ],
                    )
                }
                JobState::Running => {
                    entry.cancel_requested = true;
                    if let Some(flag) = &entry.cancel {
                        flag.cancel();
                    }
                    return true;
                }
                _ => return false,
            }
        };
        self.shared.progress.notify_all();
        self.shared.emit(event);
        true
    }

    /// The job's current lifecycle state, `None` for unknown ids.
    pub fn job_state(&self, id: JobId) -> Option<JobState> {
        let st = self.shared.state.lock().expect("server state poisoned");
        st.jobs.get(&id.0).map(|e| e.state)
    }

    /// The job's final outcome once terminal, `None` before that.
    pub fn outcome(&self, id: JobId) -> Option<JobOutcome> {
        let st = self.shared.state.lock().expect("server state poisoned");
        st.jobs.get(&id.0).and_then(|e| e.outcome.clone())
    }

    /// The job's latest retained checkpoint, usable with
    /// [`submit_resume`](Server::submit_resume) — on this server or a new
    /// one.
    pub fn snapshot_of(&self, id: JobId) -> Option<Snapshot> {
        let st = self.shared.state.lock().expect("server state poisoned");
        st.jobs.get(&id.0).and_then(|e| e.snapshot.clone())
    }

    /// Blocks until the job is terminal and returns its outcome (`None`
    /// for unknown ids).
    pub fn wait(&self, id: JobId) -> Option<JobOutcome> {
        let mut st = self.shared.state.lock().expect("server state poisoned");
        loop {
            match st.jobs.get(&id.0) {
                None => return None,
                Some(entry) if entry.state.is_terminal() => return entry.outcome.clone(),
                Some(_) => {
                    st = self
                        .shared
                        .progress
                        .wait(st)
                        .expect("server state poisoned");
                }
            }
        }
    }

    /// A point-in-time statistics snapshot (counters plus queue gauges and
    /// memory accounting).
    pub fn stats(&self) -> ServerStats {
        let st = self.shared.state.lock().expect("server state poisoned");
        let mut stats = self.shared.counters.snapshot();
        stats.queue_depth = st.ready.len();
        stats.in_flight = st.in_flight;
        stats.queue_bytes = st.ready.len() * std::mem::size_of::<QueueKey>()
            + st.jobs
                .values()
                .filter(|e| !e.state.is_terminal())
                .map(|e| e.spec.memory_bytes())
                .sum::<usize>();
        stats.snapshot_bytes = st
            .jobs
            .values()
            .filter_map(|e| e.snapshot.as_ref())
            .map(Snapshot::memory_bytes)
            .sum();
        stats
    }

    /// Approximate bytes held by the server's queues and retained
    /// snapshots (the serving-side extension of the engine's
    /// [`MemoryBreakdown`](ncgws_core::MemoryBreakdown) accounting).
    pub fn memory_bytes(&self) -> usize {
        let stats = self.stats();
        stats.queue_bytes + stats.snapshot_bytes
    }

    /// Stops accepting submissions, finishes every queued and in-flight
    /// job (including requeued resumes), joins the workers and returns the
    /// final statistics.
    pub fn drain(mut self) -> ServerStats {
        self.shared
            .state
            .lock()
            .expect("server state poisoned")
            .draining = true;
        self.shared.work_ready.notify_all();
        {
            let mut st = self.shared.state.lock().expect("server state poisoned");
            while !st.all_done() {
                st = self
                    .shared
                    .progress
                    .wait(st)
                    .expect("server state poisoned");
            }
        }
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            handle.join().expect("worker thread panicked");
        }
        let stats = self.stats();
        self.shared.emit(line(
            "drained",
            &[
                ("completed", Field::U(stats.completed as u64)),
                ("cancelled", Field::U(stats.cancelled as u64)),
                ("failed", Field::U(stats.failed as u64)),
            ],
        ));
        stats
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared
            .state
            .lock()
            .expect("server state poisoned")
            .draining = true;
        self.shared.work_ready.notify_all();
    }
}

/// One dispatched attempt, handed from the scheduler lock to the solver.
struct Attempt {
    id: u64,
    spec: JobSpec,
    snapshot: Option<Snapshot>,
    instance: Option<Arc<ProblemInstance>>,
    attempt: usize,
    flag: CancelFlag,
}

fn worker_loop(shared: &Shared) {
    loop {
        let Some(attempt) = next_attempt(shared) else {
            return;
        };
        shared.emit(line(
            "started",
            &[
                ("job", Field::U(attempt.id)),
                ("tenant", Field::S(&attempt.spec.tenant)),
                ("attempt", Field::U(attempt.attempt as u64)),
                ("resumed", Field::B(attempt.snapshot.is_some())),
            ],
        ));
        run_and_settle(shared, attempt);
    }
}

/// Blocks until an admissible job can be claimed; `None` when the server
/// has drained completely.
fn next_attempt(shared: &Shared) -> Option<Attempt> {
    let mut guard = shared.state.lock().expect("server state poisoned");
    let key = loop {
        if let Some(key) = guard.pick(shared.config.max_in_flight_per_tenant) {
            break key;
        }
        if guard.draining && guard.all_done() {
            return None;
        }
        guard = shared
            .work_ready
            .wait(guard)
            .expect("server state poisoned");
    };
    let st = &mut *guard;
    st.ready.remove(&key);
    let id = key.2;
    let flag = CancelFlag::new();
    let entry = st.jobs.get_mut(&id).expect("ready key without job");
    entry.state = JobState::Running;
    entry.attempts += 1;
    entry.cancel = Some(flag.clone());
    if entry.snapshot.is_some() {
        entry.resumed_attempts += 1;
        Counters::add(&shared.counters.resumed, 1);
    }
    let attempt = Attempt {
        id,
        spec: entry.spec.clone(),
        snapshot: entry.snapshot.clone(),
        instance: entry.instance.clone(),
        attempt: entry.attempts,
        flag,
    };
    let tenant = st
        .tenants
        .get_mut(&attempt.spec.tenant)
        .expect("job without tenant record");
    tenant.queued -= 1;
    tenant.in_flight += 1;
    st.in_flight += 1;
    Some(attempt)
}

/// Runs one attempt outside the scheduler lock, then re-locks to classify
/// the result: completion, cancellation, requeue-for-resume, or failure.
fn run_and_settle(shared: &Shared, attempt: Attempt) {
    let instance = match &attempt.instance {
        Some(cached) => Ok(Arc::clone(cached)),
        None => match &attempt.spec.input {
            JobInput::Synthetic(spec) => SyntheticGenerator::new(spec.clone())
                .generate()
                .map(Arc::new)
                .map_err(|e| e.to_string()),
            JobInput::Instance(instance) => Ok(Arc::new((**instance).clone())),
        },
    };
    let (result, checkpoint) = match &instance {
        Ok(instance) => {
            let store = SnapshotStore::new();
            let result = run_attempt(shared, &attempt, instance, &store);
            Counters::add(&shared.counters.checkpoints, store.count());
            (result.map_err(|e| e.to_string()), store.take())
        }
        Err(e) => (Err(e.clone()), None),
    };

    let mut guard = shared.state.lock().expect("server state poisoned");
    let st = &mut *guard;
    let entry = st.jobs.get_mut(&attempt.id).expect("running job vanished");
    entry.cancel = None;
    if entry.instance.is_none() {
        if let Ok(instance) = &instance {
            entry.instance = Some(Arc::clone(instance));
        }
    }
    if let Some(snapshot) = checkpoint {
        entry.snapshot = Some(snapshot);
    }
    let event = match result {
        Ok(sized) => {
            entry.iterations += sized.report.iterations;
            let reason = sized.stop_reason();
            if !reason.is_interrupted() {
                settle(entry, JobState::Completed, reason, Some(&sized), None);
                Counters::add(&shared.counters.completed, 1);
                line(
                    "completed",
                    &[
                        ("job", Field::U(attempt.id)),
                        ("tenant", Field::S(&attempt.spec.tenant)),
                        ("stop", Field::S(&reason.to_string())),
                        ("iterations", Field::U(entry.iterations as u64)),
                        ("attempts", Field::U(entry.attempts as u64)),
                    ],
                )
            } else if entry.cancel_requested {
                settle(
                    entry,
                    JobState::Cancelled,
                    StopReason::Cancelled,
                    Some(&sized),
                    None,
                );
                Counters::add(&shared.counters.cancelled, 1);
                line(
                    "cancelled",
                    &[
                        ("job", Field::U(attempt.id)),
                        ("tenant", Field::S(&attempt.spec.tenant)),
                        ("while", Field::S("running")),
                    ],
                )
            } else if entry.attempts >= shared.config.max_attempts {
                settle(
                    entry,
                    JobState::Failed,
                    reason,
                    Some(&sized),
                    Some("attempt cap exhausted".to_string()),
                );
                Counters::add(&shared.counters.failed, 1);
                line(
                    "failed",
                    &[
                        ("job", Field::U(attempt.id)),
                        ("tenant", Field::S(&attempt.spec.tenant)),
                        ("error", Field::S("attempt cap exhausted")),
                    ],
                )
            } else {
                // Interrupted mid-run (budget or deadline): back on the
                // queue to resume from the checkpoint captured above.
                entry.state = JobState::Queued;
                let key = queue_key(entry.spec.priority, entry.seq, attempt.id);
                let resume_from = entry.snapshot.as_ref().map_or(0, |s| s.iterations_done);
                st.ready.insert(key);
                st.tenants
                    .get_mut(&attempt.spec.tenant)
                    .expect("job without tenant record")
                    .queued += 1;
                Counters::add(&shared.counters.requeued, 1);
                line(
                    "requeued",
                    &[
                        ("job", Field::U(attempt.id)),
                        ("tenant", Field::S(&attempt.spec.tenant)),
                        ("stop", Field::S(&reason.to_string())),
                        ("checkpoint_iteration", Field::U(resume_from as u64)),
                    ],
                )
            }
        }
        Err(error) => {
            let cancelled = entry.cancel_requested;
            let (state, reason) = if cancelled {
                Counters::add(&shared.counters.cancelled, 1);
                (JobState::Cancelled, StopReason::Cancelled)
            } else {
                Counters::add(&shared.counters.failed, 1);
                (JobState::Failed, StopReason::IterationLimit)
            };
            settle(entry, state, reason, None, Some(error.clone()));
            line(
                "failed",
                &[
                    ("job", Field::U(attempt.id)),
                    ("tenant", Field::S(&attempt.spec.tenant)),
                    ("error", Field::S(&error)),
                ],
            )
        }
    };
    let tenant = st
        .tenants
        .get_mut(&attempt.spec.tenant)
        .expect("job without tenant record");
    tenant.in_flight -= 1;
    st.in_flight -= 1;
    drop(guard);
    shared.work_ready.notify_all();
    shared.progress.notify_all();
    shared.emit(event);
}

/// Records a terminal state and outcome on the entry.
fn settle(
    entry: &mut JobEntry,
    state: JobState,
    stop_reason: StopReason,
    sized: Option<&SizedOutcome>,
    error: Option<String>,
) {
    entry.state = state;
    entry.outcome = Some(JobOutcome {
        stop_reason,
        iterations: entry.iterations,
        attempts: entry.attempts,
        resumed_attempts: entry.resumed_attempts,
        feasible: sized.is_some_and(|s| s.report.feasible),
        final_metrics: sized.map(|s| s.report.final_metrics),
        error,
    });
}

/// Runs one attempt of the two-stage flow: cold, or resumed from the job's
/// latest checkpoint.
fn run_attempt(
    shared: &Shared,
    attempt: &Attempt,
    instance: &ProblemInstance,
    store: &SnapshotStore,
) -> Result<SizedOutcome, CoreError> {
    let mut policy = CheckpointPolicy::new().on_interrupt(true);
    if let Some(every) = shared.config.checkpoint_every {
        policy = policy.every(every);
    }
    let mut control = RunControl::new()
        .with_observer(&shared.counters)
        .with_cancel_flag(attempt.flag.clone())
        .with_checkpoints(store, policy);
    if let Some(budget) = attempt.spec.iteration_budget {
        control = control.with_iteration_budget(budget);
    }
    if let Some(millis) = attempt.spec.attempt_timeout_ms {
        control = control.with_timeout(Duration::from_millis(millis));
    }
    let ordered = Flow::prepare(instance, attempt.spec.config.clone())?.order()?;
    match &attempt.snapshot {
        Some(snapshot) => ordered.size_resume(snapshot, &control),
        None => ordered.size_with(&control),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncgws_core::OptimizerConfig;
    use ncgws_netlist::CircuitSpec;

    fn quick_config() -> OptimizerConfig {
        OptimizerConfig {
            max_iterations: 30,
            max_lrs_sweeps: 20,
            ..OptimizerConfig::default()
        }
    }

    fn job(seed: u64) -> JobSpec {
        let spec = CircuitSpec::new("serve-test", 20, 45)
            .with_seed(seed)
            .with_num_patterns(16);
        JobSpec::new(JobInput::Synthetic(spec), quick_config())
    }

    #[test]
    fn budget_kills_requeue_and_resume_to_completion() {
        let server = Server::start(ServerConfig {
            workers: 1,
            checkpoint_every: Some(2),
            ..ServerConfig::default()
        });
        let id = server.submit(job(9).with_iteration_budget(3)).unwrap();
        let outcome = server.wait(id).unwrap();
        assert!(!outcome.stop_reason.is_interrupted());
        assert!(outcome.attempts > 1, "a 3-iteration budget must interrupt");
        assert_eq!(outcome.resumed_attempts, outcome.attempts - 1);
        assert!(outcome.final_metrics.is_some());

        // Same job served uninterrupted: the metrics must agree to 1e-6.
        let cold_id = server.submit(job(9)).unwrap();
        let cold = server.wait(cold_id).unwrap();
        let resumed = outcome.final_metrics.unwrap();
        let coldm = cold.final_metrics.unwrap();
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1.0);
        assert!(close(resumed.area_um2, coldm.area_um2));
        assert!(close(resumed.delay_ps, coldm.delay_ps));
        assert!(close(resumed.noise_pf, coldm.noise_pf));
        // Resumed attempts redo no finished iterations: total work matches
        // the cold run's iteration count exactly.
        assert_eq!(outcome.iterations, cold.iterations);

        let stats = server.drain();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.requeued, outcome.attempts - 1);
        assert_eq!(stats.resumed, outcome.resumed_attempts);
        assert!(stats.checkpoints > 0);
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.in_flight, 0);
    }

    #[test]
    fn attempt_cap_fails_the_job_instead_of_looping() {
        let server = Server::start(ServerConfig {
            workers: 1,
            max_attempts: 2,
            ..ServerConfig::default()
        });
        let id = server.submit(job(5).with_iteration_budget(1)).unwrap();
        let outcome = server.wait(id).unwrap();
        assert_eq!(server.job_state(id), Some(JobState::Failed));
        assert_eq!(outcome.attempts, 2);
        assert_eq!(outcome.resumed_attempts, 1);
        assert_eq!(outcome.error.as_deref(), Some("attempt cap exhausted"));
        // The job still retains its last checkpoint for a manual resubmit.
        let snapshot = server.snapshot_of(id).expect("failed job keeps snapshot");
        assert_eq!(snapshot.iterations_done, 2);
        let stats = server.drain();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 0);
    }

    #[test]
    fn snapshot_resubmit_continues_on_a_fresh_server() {
        let first = Server::start(ServerConfig {
            workers: 1,
            max_attempts: 1,
            ..ServerConfig::default()
        });
        let id = first.submit(job(9).with_iteration_budget(5)).unwrap();
        let outcome = first.wait(id).unwrap();
        assert_eq!(outcome.attempts, 1);
        let snapshot = first.snapshot_of(id).unwrap();
        assert_eq!(snapshot.iterations_done, 5);
        first.drain();

        let second = Server::start(ServerConfig::default());
        let resumed_id = second.submit_resume(job(9), snapshot).unwrap();
        let resumed = second.wait(resumed_id).unwrap();
        assert!(!resumed.stop_reason.is_interrupted());
        assert_eq!(resumed.resumed_attempts, 1);

        let cold_id = second.submit(job(9)).unwrap();
        let cold = second.wait(cold_id).unwrap();
        assert_eq!(resumed.iterations + 5, cold.iterations);
        second.drain();
    }

    #[test]
    fn zero_queue_cap_rejects_submissions() {
        let server = Server::start(ServerConfig {
            workers: 1,
            max_queued_per_tenant: 0,
            ..ServerConfig::default()
        });
        let err = server.submit(job(1)).unwrap_err();
        assert_eq!(
            err,
            SubmitError::QueueFull {
                tenant: "default".to_string()
            }
        );
        let stats = server.drain();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.submitted, 0);
    }

    #[test]
    fn events_and_memory_accounting_cover_the_queue() {
        let buffer = crate::events::SharedBuffer::new();
        let server = Server::start_with_events(
            ServerConfig {
                workers: 1,
                checkpoint_every: Some(3),
                ..ServerConfig::default()
            },
            Some(Box::new(buffer.clone())),
        );
        let id = server.submit(job(9).with_iteration_budget(3)).unwrap();
        server.wait(id).unwrap();
        // The finished job retains its final checkpoint: the server's
        // memory accounting must see it.
        let snapshot = server.snapshot_of(id).unwrap();
        let stats = server.stats();
        assert!(stats.snapshot_bytes >= snapshot.memory_bytes());
        assert_eq!(
            server.memory_bytes(),
            stats.queue_bytes + stats.snapshot_bytes
        );
        assert!(stats.iterations > 0, "observer-fed iteration counter");
        let drained = server.drain();
        assert!(drained.checkpoints > 0);
        let text = buffer.contents();
        for event in ["submitted", "started", "requeued", "completed", "drained"] {
            assert!(
                text.contains(&format!("{{\"event\":\"{event}\"")),
                "missing {event} in event stream:\n{text}"
            );
        }
        // Every line is valid JSON per the core snapshot parser.
        for line in text.lines() {
            ncgws_core::snapshot::json::parse(line).expect("event line must parse as JSON");
        }
    }

    #[test]
    fn cancel_while_queued_is_immediate_and_unknown_ids_are_rejected() {
        let server = Server::start(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        });
        // A blocker keeps the single worker busy long enough for the
        // victims to still be queued; even if it finishes early, the
        // cancel-while-running path is equally valid, so only terminal
        // states are asserted.
        let blocker = server.submit(job(2).with_priority(10)).unwrap();
        let victims: Vec<JobId> = (0..4)
            .map(|i| server.submit(job(20 + i)).unwrap())
            .collect();
        for &victim in &victims {
            server.cancel(victim);
        }
        assert!(!server.cancel(JobId(9999)));
        server.wait(blocker).unwrap();
        for &victim in &victims {
            server.wait(victim).unwrap();
            assert!(server.job_state(victim).unwrap().is_terminal());
        }
        let stats = server.drain();
        assert_eq!(stats.completed + stats.cancelled, 5);
    }
}
