//! Strongly-typed node identifiers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a node in a [`CircuitGraph`](crate::CircuitGraph).
///
/// Node identifiers are dense indices assigned in topological order, exactly
/// as in the paper: the artificial source is node `0`, the `s` input drivers
/// are nodes `1..=s`, the `n` gates and wires are nodes `s+1..=n+s`, and the
/// artificial sink is node `n+s+1`.
///
/// ```rust
/// use ncgws_circuit::NodeId;
///
/// let id = NodeId::new(4);
/// assert_eq!(id.index(), 4);
/// assert_eq!(format!("{id}"), "n4");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a node identifier from a raw index.
    pub const fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// Returns the raw index of this node.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId(index)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_usize() {
        for i in [0usize, 1, 7, 1024] {
            let id = NodeId::from(i);
            assert_eq!(usize::from(id), i);
            assert_eq!(id.index(), i);
        }
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::new(3), NodeId::new(3));
    }

    #[test]
    fn display_format() {
        assert_eq!(NodeId::new(12).to_string(), "n12");
    }
}
