//! Total circuit area — the objective of the paper's optimization problem.

use crate::graph::CircuitGraph;
use crate::sizing::SizeVector;

/// Total area `Σ_{i=s+1}^{n+s} α_i · x_i` in µm². Input drivers and output
/// loads contribute no area, exactly as in the paper.
pub fn total_area(graph: &CircuitGraph, sizes: &SizeVector) -> f64 {
    graph
        .component_ids()
        .map(|id| graph.node(id).area(graph.size_of(id, sizes)))
        .sum()
}

/// Per-component area contributions in dense component order.
pub fn area_per_component(graph: &CircuitGraph, sizes: &SizeVector) -> Vec<f64> {
    graph
        .component_ids()
        .map(|id| graph.node(id).area(graph.size_of(id, sizes)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::node::GateKind;
    use crate::tech::Technology;

    fn circuit() -> CircuitGraph {
        let mut b = CircuitBuilder::new(Technology::dac99());
        let d = b.add_driver("d", 100.0).unwrap();
        let w = b.add_wire("w", 100.0).unwrap();
        let g = b.add_gate("g", GateKind::Buf).unwrap();
        let w2 = b.add_wire("w2", 50.0).unwrap();
        b.connect(d, w).unwrap();
        b.connect(w, g).unwrap();
        b.connect(g, w2).unwrap();
        b.connect_output(w2, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn area_is_linear_in_size() {
        let c = circuit();
        let a1 = total_area(&c, &c.uniform_sizes(1.0));
        let a2 = total_area(&c, &c.uniform_sizes(2.0));
        assert!((a2 - 2.0 * a1).abs() < 1e-9);
    }

    #[test]
    fn per_component_sums_to_total() {
        let c = circuit();
        let sizes = c.uniform_sizes(1.7);
        let per = area_per_component(&c, &sizes);
        assert_eq!(per.len(), c.num_components());
        let sum: f64 = per.iter().sum();
        assert!((sum - total_area(&c, &sizes)).abs() < 1e-9);
    }

    #[test]
    fn hand_computed_area() {
        let c = circuit();
        let t = *c.technology();
        let a = total_area(&c, &c.uniform_sizes(1.0));
        let expected = t.wire_area_coefficient * 100.0
            + t.gate_area_coefficient
            + t.wire_area_coefficient * 50.0;
        assert!((a - expected).abs() < 1e-9);
    }
}
