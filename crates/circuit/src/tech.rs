//! Technology parameters.
//!
//! The default values reproduce Section 5 of the paper: supply voltage 3.3 V,
//! working frequency 200 MHz, gate unit resistance 10 Ω·µm and unit
//! capacitance 0.16 fF/µm, wire unit resistance 0.07 Ω/µm (per unit width) and
//! unit capacitance 0.024 fF/µm, and size bounds [0.1 µm, 10 µm].

use serde::{Deserialize, Serialize};

use crate::error::CircuitError;

/// Process / electrical parameters shared by every component of a circuit.
///
/// Units used throughout the workspace:
///
/// * resistance: Ω (unit-size values are Ω·µm for gates, Ω/sq scaled by
///   length for wires),
/// * capacitance: fF,
/// * length / size: µm,
/// * time: ps (Ω·fF = 10⁻¹⁵·Ω·F = fs·10³ … we keep Ω·fF and call it ps for
///   readability, matching the magnitude of the paper's delay column),
/// * power: mW (derived as `V² · f · C_total`),
/// * area: µm².
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Technology {
    /// Supply voltage in volts.
    pub supply_voltage: f64,
    /// Working frequency in Hz.
    pub frequency: f64,
    /// Gate unit-size output resistance `r̂` (Ω·µm).
    pub gate_unit_resistance: f64,
    /// Gate unit-size input capacitance `ĉ` (fF/µm).
    pub gate_unit_capacitance: f64,
    /// Gate area per µm of size (µm²/µm).
    pub gate_area_coefficient: f64,
    /// Wire unit resistance per µm of length, per µm of width (Ω/µm).
    pub wire_unit_resistance: f64,
    /// Wire unit capacitance per µm of length, per µm of width (fF/µm²→fF/µm).
    pub wire_unit_capacitance: f64,
    /// Wire fringing capacitance per µm of length (fF/µm).
    pub wire_fringing_per_um: f64,
    /// Wire area per µm of length per µm of width (µm²).
    pub wire_area_coefficient: f64,
    /// Unit-length fringing (coupling) capacitance between adjacent wires (fF/µm).
    pub coupling_fringing_per_um: f64,
    /// Minimum component size `L` (µm).
    pub min_size: f64,
    /// Maximum component size `U` (µm).
    pub max_size: f64,
    /// Default driver resistance (Ω) used when a netlist does not specify one.
    pub default_driver_resistance: f64,
    /// Default primary-output load (fF) used when a netlist does not specify one.
    pub default_output_load: f64,
}

impl Technology {
    /// The technology used in the paper's experiments (Section 5).
    pub fn dac99() -> Self {
        Technology {
            supply_voltage: 3.3,
            frequency: 200.0e6,
            gate_unit_resistance: 10.0,
            gate_unit_capacitance: 0.16,
            gate_area_coefficient: 4.0,
            wire_unit_resistance: 0.07,
            wire_unit_capacitance: 0.024,
            wire_fringing_per_um: 0.010,
            wire_area_coefficient: 1.0,
            coupling_fringing_per_um: 0.030,
            min_size: 0.1,
            max_size: 10.0,
            default_driver_resistance: 100.0,
            default_output_load: 10.0,
        }
    }

    /// Checks that every parameter is positive and finite and the size bounds
    /// are ordered.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidParameter`] naming the first offending
    /// field, or [`CircuitError::InvalidBounds`] when `min_size > max_size`.
    pub fn validate(&self) -> Result<(), CircuitError> {
        let fields: [(&'static str, f64); 14] = [
            ("supply_voltage", self.supply_voltage),
            ("frequency", self.frequency),
            ("gate_unit_resistance", self.gate_unit_resistance),
            ("gate_unit_capacitance", self.gate_unit_capacitance),
            ("gate_area_coefficient", self.gate_area_coefficient),
            ("wire_unit_resistance", self.wire_unit_resistance),
            ("wire_unit_capacitance", self.wire_unit_capacitance),
            ("wire_fringing_per_um", self.wire_fringing_per_um),
            ("wire_area_coefficient", self.wire_area_coefficient),
            ("coupling_fringing_per_um", self.coupling_fringing_per_um),
            ("min_size", self.min_size),
            ("max_size", self.max_size),
            ("default_driver_resistance", self.default_driver_resistance),
            ("default_output_load", self.default_output_load),
        ];
        for (name, value) in fields {
            if !(value.is_finite() && value > 0.0) {
                return Err(CircuitError::InvalidParameter { name, value });
            }
        }
        if self.min_size > self.max_size {
            return Err(CircuitError::InvalidBounds {
                node: crate::NodeId::new(0),
                lower: self.min_size,
                upper: self.max_size,
            });
        }
        Ok(())
    }

    /// `V² · f` in units that convert a total capacitance in fF to power in mW.
    ///
    /// `P = V² · f · C`; with `V` in volts, `f` in Hz and `C` in fF the result
    /// is in nW, so the conversion to mW divides by 10⁶.
    pub fn power_scale_mw_per_ff(&self) -> f64 {
        self.supply_voltage * self.supply_voltage * self.frequency * 1.0e-15 * 1.0e3
    }
}

impl Default for Technology {
    fn default() -> Self {
        Technology::dac99()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dac99_matches_paper_values() {
        let t = Technology::dac99();
        assert_eq!(t.supply_voltage, 3.3);
        assert_eq!(t.frequency, 200.0e6);
        assert_eq!(t.gate_unit_resistance, 10.0);
        assert_eq!(t.gate_unit_capacitance, 0.16);
        assert_eq!(t.wire_unit_resistance, 0.07);
        assert_eq!(t.wire_unit_capacitance, 0.024);
        assert_eq!(t.min_size, 0.1);
        assert_eq!(t.max_size, 10.0);
    }

    #[test]
    fn default_is_dac99() {
        assert_eq!(Technology::default(), Technology::dac99());
    }

    #[test]
    fn dac99_validates() {
        assert!(Technology::dac99().validate().is_ok());
    }

    #[test]
    fn negative_parameter_is_rejected() {
        let mut t = Technology::dac99();
        t.gate_unit_resistance = -1.0;
        let err = t.validate().unwrap_err();
        assert!(matches!(
            err,
            CircuitError::InvalidParameter {
                name: "gate_unit_resistance",
                ..
            }
        ));
    }

    #[test]
    fn inverted_bounds_are_rejected() {
        let mut t = Technology::dac99();
        t.min_size = 20.0;
        assert!(matches!(
            t.validate().unwrap_err(),
            CircuitError::InvalidBounds { .. }
        ));
    }

    #[test]
    fn power_scale_converts_ff_to_mw() {
        let t = Technology::dac99();
        // 1000 fF at 3.3 V, 200 MHz: P = 3.3^2 * 2e8 * 1e-12 F = 2.18 mW.
        let p = t.power_scale_mw_per_ff() * 1000.0;
        assert!((p - 3.3 * 3.3 * 2.0e8 * 1.0e-12 * 1.0e3).abs() < 1e-9);
    }
}
