//! Elmore delay analysis: downstream capacitances and per-component delays.
//!
//! Following Section 2.1 of the paper, every component `i` contributes a
//! lumped delay `D_i = r_i · C_i`, where `r_i` is the component's resistance
//! at its current size and `C_i` is the capacitance downstream of `r_i`
//! *within the RC stage* of component `i` (see the crate-level documentation
//! for the stage-bounded convention). The wire π-model places half of a
//! wire's own capacitance on each side of its resistance, so only the far
//! half contributes to the wire's own `C_i`, while the full capacitance loads
//! the components upstream of the wire.
//!
//! Coupling capacitance is injected by the caller through the `extra_cap`
//! argument (one value per node, lumped on the downstream side of that node),
//! which keeps this crate independent of the coupling model. Section 4 of the
//! paper makes `C_i` "also contain the physical coupling capacitance" in
//! exactly this way.

use crate::graph::CircuitGraph;
use crate::id::NodeId;
use crate::node::NodeKind;
use crate::sizing::SizeVector;

/// Result of a downstream-capacitance computation.
#[derive(Debug, Clone, PartialEq)]
pub struct DownstreamCaps {
    /// `C_i` per node: the capacitance charged through the node's resistance.
    /// Indexed by raw node index; zero for source and sink.
    pub charged: Vec<f64>,
    /// The capacitance each node presents to its stage parent (full wire
    /// subtree capacitance for wires, input capacitance for gates).
    /// Indexed by raw node index.
    pub presented: Vec<f64>,
}

impl DownstreamCaps {
    /// `C_i` for a node.
    pub fn charged_of(&self, id: NodeId) -> f64 {
        self.charged[id.index()]
    }

    /// Load the node presents to the stage that drives it.
    pub fn presented_of(&self, id: NodeId) -> f64 {
        self.presented[id.index()]
    }
}

/// Elmore delay analyzer bound to a circuit graph.
///
/// All methods are linear in the number of nodes and edges, but each call
/// walks the pointer-rich graph and allocates its result vectors. This is
/// the *allocate-per-call reference path*, kept verbatim as the oracle the
/// allocation-free engine ([`DelayModel`](crate::DelayModel) over a
/// [`CircuitTopology`](crate::CircuitTopology) with an
/// [`EvalWorkspace`](crate::EvalWorkspace)) is checked against — the two
/// must produce bitwise identical numbers. Hot loops should use the engine.
#[derive(Debug, Clone, Copy)]
pub struct ElmoreAnalyzer<'a> {
    graph: &'a CircuitGraph,
}

impl<'a> ElmoreAnalyzer<'a> {
    /// Creates an analyzer for the given circuit.
    pub fn new(graph: &'a CircuitGraph) -> Self {
        ElmoreAnalyzer { graph }
    }

    /// The circuit this analyzer is bound to.
    pub fn graph(&self) -> &'a CircuitGraph {
        self.graph
    }

    fn child_load(
        &self,
        parent: NodeId,
        child: NodeId,
        sizes: &SizeVector,
        presented: &[f64],
    ) -> f64 {
        let g = self.graph;
        match g.node(child).kind {
            NodeKind::Sink => g.node(parent).attrs.output_load,
            NodeKind::Gate(_) => g.capacitance(child, sizes),
            NodeKind::Wire => presented[child.index()],
            // Drivers and the source can never be fanout children.
            NodeKind::Driver | NodeKind::Source => 0.0,
        }
    }

    /// Computes `C_i` (and the presented loads) for every node, by a single
    /// reverse-topological traversal.
    ///
    /// `extra_cap`, when provided, must hold one value per node (raw node
    /// index); it is added on the downstream side of that node. The sizing
    /// engine uses it to inject coupling capacitance.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `extra_cap` has the wrong length or `sizes`
    /// does not match the circuit.
    pub fn downstream_caps(&self, sizes: &SizeVector, extra_cap: Option<&[f64]>) -> DownstreamCaps {
        let g = self.graph;
        debug_assert_eq!(sizes.len(), g.num_components());
        if let Some(extra) = extra_cap {
            debug_assert_eq!(extra.len(), g.num_nodes());
        }
        let n = g.num_nodes();
        let mut charged = vec![0.0; n];
        let mut presented = vec![0.0; n];

        for idx in (0..n).rev() {
            let id = NodeId::new(idx);
            let node = g.node(id);
            let extra = extra_cap.map(|e| e[idx]).unwrap_or(0.0);
            match node.kind {
                NodeKind::Source | NodeKind::Sink => {}
                NodeKind::Driver | NodeKind::Gate(_) => {
                    let mut c = 0.0;
                    for &child in g.fanout(id) {
                        c += self.child_load(id, child, sizes, &presented);
                    }
                    // Coupling on a gate output (rare, but allowed) loads the stage.
                    c += extra;
                    charged[idx] = c;
                    presented[idx] = match node.kind {
                        NodeKind::Gate(_) => g.capacitance(id, sizes),
                        _ => 0.0,
                    };
                }
                NodeKind::Wire => {
                    let own = g.capacitance(id, sizes);
                    let mut downstream = 0.0;
                    for &child in g.fanout(id) {
                        downstream += self.child_load(id, child, sizes, &presented);
                    }
                    // π-model: the far half of the wire's own capacitance plus
                    // all coupling capacitance is charged through r_i.
                    charged[idx] = own / 2.0 + extra + downstream;
                    // The full wire capacitance loads everything upstream.
                    presented[idx] = own + extra + downstream;
                }
            }
        }
        DownstreamCaps { charged, presented }
    }

    /// Per-component Elmore delays `D_i = r_i · C_i`, indexed by raw node
    /// index (zero for source and sink).
    pub fn delays(&self, sizes: &SizeVector, extra_cap: Option<&[f64]>) -> Vec<f64> {
        let caps = self.downstream_caps(sizes, extra_cap);
        self.delays_from_caps(sizes, &caps)
    }

    /// Per-component delays given a precomputed [`DownstreamCaps`].
    pub fn delays_from_caps(&self, sizes: &SizeVector, caps: &DownstreamCaps) -> Vec<f64> {
        let g = self.graph;
        g.node_ids()
            .map(|id| match g.node(id).kind {
                NodeKind::Source | NodeKind::Sink => 0.0,
                _ => g.resistance(id, sizes) * caps.charged[id.index()],
            })
            .collect()
    }

    /// The λ-weighted upstream resistance `R_i` of Theorem 5 for every node:
    /// the sum of `λ_k · r_k` over the components `k` whose downstream
    /// capacitance `C_k` contains node `i`'s capacitance.
    ///
    /// `weights` holds `λ_k` per raw node index (use all-ones for the plain
    /// upstream resistance). Stage roots (gates and drivers) reset the
    /// accumulation: resistance behind a driving gate does not charge this
    /// stage's capacitance.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `weights` has the wrong length.
    pub fn weighted_upstream_resistance(&self, sizes: &SizeVector, weights: &[f64]) -> Vec<f64> {
        let g = self.graph;
        debug_assert_eq!(weights.len(), g.num_nodes());
        let n = g.num_nodes();
        let mut upstream = vec![0.0; n];
        for idx in 0..n {
            let id = NodeId::new(idx);
            let mut acc = 0.0;
            for &pred in g.fanin(id) {
                let p = pred.index();
                match g.node(pred).kind {
                    NodeKind::Source => {}
                    NodeKind::Driver | NodeKind::Gate(_) => {
                        acc += weights[p] * g.resistance(pred, sizes);
                    }
                    NodeKind::Wire => {
                        acc += upstream[p] + weights[p] * g.resistance(pred, sizes);
                    }
                    NodeKind::Sink => unreachable!("sink has no fanout"),
                }
            }
            upstream[idx] = acc;
        }
        upstream
    }

    /// Plain (unweighted) upstream resistance per node.
    pub fn upstream_resistance(&self, sizes: &SizeVector) -> Vec<f64> {
        let ones = vec![1.0; self.graph.num_nodes()];
        self.weighted_upstream_resistance(sizes, &ones)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::node::{GateKind, NodeKind};
    use crate::tech::Technology;

    /// driver(100Ω) -> w1(len 100) -> g1 -> w2(len 200) -> out(5 fF)
    fn chain() -> CircuitGraph {
        let mut b = CircuitBuilder::new(Technology::dac99());
        let d = b.add_driver("d", 100.0).unwrap();
        let w1 = b.add_wire("w1", 100.0).unwrap();
        let g1 = b.add_gate("g1", GateKind::Inv).unwrap();
        let w2 = b.add_wire("w2", 200.0).unwrap();
        b.connect(d, w1).unwrap();
        b.connect(w1, g1).unwrap();
        b.connect(g1, w2).unwrap();
        b.connect_output(w2, 5.0).unwrap();
        b.build().unwrap()
    }

    fn id(c: &CircuitGraph, name: &str) -> NodeId {
        c.node_by_name(name).unwrap()
    }

    #[test]
    fn downstream_caps_match_hand_computation() {
        let c = chain();
        let tech = *c.technology();
        let sizes = c.uniform_sizes(1.0);
        let an = ElmoreAnalyzer::new(&c);
        let caps = an.downstream_caps(&sizes, None);

        let w1_cap = tech.wire_unit_capacitance * 100.0 + tech.wire_fringing_per_um * 100.0;
        let w2_cap = tech.wire_unit_capacitance * 200.0 + tech.wire_fringing_per_um * 200.0;
        let g1_cap = tech.gate_unit_capacitance;

        // w2: C = own/2 + output load; presents own + load.
        let w2 = id(&c, "w2");
        assert!((caps.charged_of(w2) - (w2_cap / 2.0 + 5.0)).abs() < 1e-9);
        assert!((caps.presented_of(w2) - (w2_cap + 5.0)).abs() < 1e-9);

        // g1: drives w2's full subtree.
        let g1 = id(&c, "g1");
        assert!((caps.charged_of(g1) - (w2_cap + 5.0)).abs() < 1e-9);
        assert!((caps.presented_of(g1) - g1_cap).abs() < 1e-9);

        // w1: own/2 + g1 input cap.
        let w1 = id(&c, "w1");
        assert!((caps.charged_of(w1) - (w1_cap / 2.0 + g1_cap)).abs() < 1e-9);

        // driver: full w1 cap + g1 input cap.
        let d = id(&c, "d");
        assert!((caps.charged_of(d) - (w1_cap + g1_cap)).abs() < 1e-9);
    }

    #[test]
    fn delays_are_resistance_times_charge() {
        let c = chain();
        let sizes = c.uniform_sizes(1.0);
        let an = ElmoreAnalyzer::new(&c);
        let caps = an.downstream_caps(&sizes, None);
        let delays = an.delays(&sizes, None);
        for node in c.node_ids() {
            let expected = match c.node(node).kind {
                NodeKind::Source | NodeKind::Sink => 0.0,
                _ => c.resistance(node, &sizes) * caps.charged_of(node),
            };
            assert!((delays[node.index()] - expected).abs() < 1e-12);
        }
        // Driver delay: 100 Ω times the first stage load.
        let d = id(&c, "d");
        assert!(delays[d.index()] > 0.0);
    }

    #[test]
    fn extra_cap_increases_downstream_and_delay() {
        let c = chain();
        let sizes = c.uniform_sizes(1.0);
        let an = ElmoreAnalyzer::new(&c);
        let base = an.delays(&sizes, None);
        let mut extra = vec![0.0; c.num_nodes()];
        let w1 = id(&c, "w1");
        extra[w1.index()] = 10.0;
        let with_extra = an.delays(&sizes, Some(&extra));
        assert!(with_extra[w1.index()] > base[w1.index()]);
        // The driver also sees the extra capacitance (it is within its stage).
        let d = id(&c, "d");
        assert!(with_extra[d.index()] > base[d.index()]);
        // But the downstream gate does not.
        let g1 = id(&c, "g1");
        assert!((with_extra[g1.index()] - base[g1.index()]).abs() < 1e-12);
    }

    #[test]
    fn upsizing_a_gate_reduces_its_delay_but_loads_upstream() {
        let c = chain();
        let an = ElmoreAnalyzer::new(&c);
        let g1 = id(&c, "g1");
        let d = id(&c, "d");
        let g_idx = c.component_index(g1).unwrap();

        let small = c.uniform_sizes(1.0);
        let mut big = c.uniform_sizes(1.0);
        big[g_idx] = 4.0;

        let delays_small = an.delays(&small, None);
        let delays_big = an.delays(&big, None);
        assert!(
            delays_big[g1.index()] < delays_small[g1.index()],
            "larger gate drives its load faster"
        );
        assert!(
            delays_big[d.index()] > delays_small[d.index()],
            "larger gate presents more input capacitance upstream"
        );
    }

    #[test]
    fn upstream_resistance_is_stage_bounded() {
        let c = chain();
        let sizes = c.uniform_sizes(1.0);
        let an = ElmoreAnalyzer::new(&c);
        let r = an.upstream_resistance(&sizes);
        let tech = *c.technology();

        let w1 = id(&c, "w1");
        let g1 = id(&c, "g1");
        let w2 = id(&c, "w2");
        // w1 is charged by the driver only.
        assert!((r[w1.index()] - 100.0).abs() < 1e-9);
        // g1's input cap is charged by driver + w1 resistance.
        let w1_res = tech.wire_unit_resistance * 100.0;
        assert!((r[g1.index()] - (100.0 + w1_res)).abs() < 1e-9);
        // w2 is in a new stage: only g1's resistance charges it.
        assert!((r[w2.index()] - tech.gate_unit_resistance).abs() < 1e-9);
    }

    #[test]
    fn weighted_upstream_resistance_scales_with_weights() {
        let c = chain();
        let sizes = c.uniform_sizes(1.0);
        let an = ElmoreAnalyzer::new(&c);
        let ones = an.upstream_resistance(&sizes);
        let weights = vec![2.0; c.num_nodes()];
        let doubled = an.weighted_upstream_resistance(&sizes, &weights);
        for (a, b) in ones.iter().zip(doubled.iter()) {
            assert!((b - 2.0 * a).abs() < 1e-9);
        }
    }

    #[test]
    fn branching_stage_sums_subtree_caps() {
        // driver -> w1 -> {w2 -> out1, w3 -> out2}
        let mut b = CircuitBuilder::new(Technology::dac99());
        let d = b.add_driver("d", 50.0).unwrap();
        let w1 = b.add_wire("w1", 10.0).unwrap();
        let w2 = b.add_wire("w2", 20.0).unwrap();
        let w3 = b.add_wire("w3", 30.0).unwrap();
        b.connect(d, w1).unwrap();
        b.connect(w1, w2).unwrap();
        b.connect(w1, w3).unwrap();
        b.connect_output(w2, 2.0).unwrap();
        b.connect_output(w3, 3.0).unwrap();
        let c = b.build().unwrap();
        let tech = *c.technology();
        let sizes = c.uniform_sizes(1.0);
        let caps = ElmoreAnalyzer::new(&c).downstream_caps(&sizes, None);
        let cap_of = |len: f64| tech.wire_unit_capacitance * len + tech.wire_fringing_per_um * len;
        let w1_id = c.node_by_name("w1").unwrap();
        let expected = cap_of(10.0) / 2.0 + (cap_of(20.0) + 2.0) + (cap_of(30.0) + 3.0);
        assert!((caps.charged_of(w1_id) - expected).abs() < 1e-9);
    }
}
