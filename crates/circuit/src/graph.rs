//! The circuit graph `H = (V, E)`.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::CircuitError;
use crate::id::NodeId;
use crate::node::{Node, NodeKind};
use crate::sizing::SizeVector;
use crate::tech::Technology;

/// A combinational circuit represented as the directed acyclic graph of the
/// paper's Section 2.1.
///
/// Nodes are indexed in topological order:
///
/// * node `0` is the artificial source `~s`,
/// * nodes `1..=s` are the `s` input drivers,
/// * nodes `s+1..=n+s` are the `n` sizable components (gates and wires),
/// * node `n+s+1` is the artificial sink `~t`.
///
/// The graph is immutable once built by [`CircuitBuilder`](crate::CircuitBuilder);
/// all analyses borrow it together with a [`SizeVector`] holding the current
/// component sizes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CircuitGraph {
    nodes: Vec<Node>,
    fanin: Vec<Vec<NodeId>>,
    fanout: Vec<Vec<NodeId>>,
    tech: Technology,
    num_drivers: usize,
    num_sizable: usize,
    name_index: HashMap<String, NodeId>,
}

impl CircuitGraph {
    /// Assembles a graph from already-ordered parts.
    ///
    /// This is `pub(crate)`: user code goes through
    /// [`CircuitBuilder`](crate::CircuitBuilder), which establishes the
    /// topological indexing convention and validates connectivity.
    pub(crate) fn from_parts(
        nodes: Vec<Node>,
        fanin: Vec<Vec<NodeId>>,
        fanout: Vec<Vec<NodeId>>,
        tech: Technology,
        num_drivers: usize,
        num_sizable: usize,
    ) -> Self {
        let name_index = nodes
            .iter()
            .enumerate()
            .map(|(i, node)| (node.name.clone(), NodeId::new(i)))
            .collect();
        CircuitGraph {
            nodes,
            fanin,
            fanout,
            tech,
            num_drivers,
            num_sizable,
            name_index,
        }
    }

    /// Reassembles a graph from untrusted serialized parts (the read side of
    /// the serve crate's durable job journal), validating everything the
    /// builder normally guarantees: consistent vector lengths, in-range
    /// edge endpoints, mirrored fanin/fanout lists, and the structural
    /// invariants of [`validate`](crate::validate::validate).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`CircuitError`].
    pub fn from_serialized_parts(
        nodes: Vec<Node>,
        fanin: Vec<Vec<NodeId>>,
        fanout: Vec<Vec<NodeId>>,
        tech: Technology,
        num_drivers: usize,
        num_sizable: usize,
    ) -> Result<Self, CircuitError> {
        let n = nodes.len();
        if fanin.len() != n || fanout.len() != n {
            return Err(CircuitError::SizeLengthMismatch {
                expected: n,
                actual: fanin.len().max(fanout.len()),
            });
        }
        if num_drivers
            .checked_add(num_sizable)
            .and_then(|c| c.checked_add(2))
            != Some(n)
        {
            return Err(CircuitError::SizeLengthMismatch {
                expected: n,
                actual: num_drivers.saturating_add(num_sizable).saturating_add(2),
            });
        }
        for list in fanin.iter().chain(fanout.iter()) {
            for &id in list {
                if id.index() >= n {
                    return Err(CircuitError::UnknownNode(id));
                }
            }
        }
        // Fanin and fanout must be exact mirrors: every edge u -> v appears
        // once in fanout[u] and once in fanin[v].
        for (u, outs) in fanout.iter().enumerate() {
            for &v in outs {
                let hits = fanin[v.index()].iter().filter(|&&w| w.index() == u).count();
                if hits != 1 {
                    return Err(CircuitError::InvalidConnection {
                        from: NodeId::new(u),
                        to: v,
                        reason: "fanout edge is not mirrored exactly once in fanin",
                    });
                }
            }
        }
        let edges_out: usize = fanout.iter().map(Vec::len).sum();
        let edges_in: usize = fanin.iter().map(Vec::len).sum();
        if edges_out != edges_in {
            return Err(CircuitError::SizeLengthMismatch {
                expected: edges_out,
                actual: edges_in,
            });
        }
        tech.validate()?;
        let graph = CircuitGraph::from_parts(nodes, fanin, fanout, tech, num_drivers, num_sizable);
        crate::validate::validate(&graph)?;
        Ok(graph)
    }

    /// The technology parameters of this circuit.
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// Total number of nodes, including source and sink (`n + s + 2`).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of input drivers `s`.
    pub fn num_drivers(&self) -> usize {
        self.num_drivers
    }

    /// Number of sizable components `n` (gates plus wires).
    pub fn num_components(&self) -> usize {
        self.num_sizable
    }

    /// Number of gates.
    pub fn num_gates(&self) -> usize {
        self.component_ids()
            .filter(|&id| self.node(id).kind.is_gate())
            .count()
    }

    /// Number of wires.
    pub fn num_wires(&self) -> usize {
        self.component_ids()
            .filter(|&id| self.node(id).kind.is_wire())
            .count()
    }

    /// The artificial source node `~s` (always node 0).
    pub fn source(&self) -> NodeId {
        NodeId::new(0)
    }

    /// The artificial sink node `~t` (always the last node).
    pub fn sink(&self) -> NodeId {
        NodeId::new(self.nodes.len() - 1)
    }

    /// The node data for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range; node identifiers obtained from this
    /// graph are always valid.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Looks a node up by its unique name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.name_index.get(name).copied()
    }

    /// The fanin list `input(i)` of a node.
    pub fn fanin(&self, id: NodeId) -> &[NodeId] {
        &self.fanin[id.index()]
    }

    /// The fanout list `output(i)` of a node.
    pub fn fanout(&self, id: NodeId) -> &[NodeId] {
        &self.fanout[id.index()]
    }

    /// Iterator over every node identifier, in topological order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::new)
    }

    /// Iterator over the input-driver node identifiers (`1..=s`).
    pub fn driver_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (1..=self.num_drivers).map(NodeId::new)
    }

    /// Iterator over the sizable component identifiers (`s+1..=n+s`),
    /// in topological order.
    pub fn component_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (self.num_drivers + 1..=self.num_drivers + self.num_sizable).map(NodeId::new)
    }

    /// Iterator over wire component identifiers.
    pub fn wire_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.component_ids()
            .filter(move |&id| self.node(id).kind.is_wire())
    }

    /// Iterator over gate component identifiers.
    pub fn gate_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.component_ids()
            .filter(move |&id| self.node(id).kind.is_gate())
    }

    /// Maps a node identifier to its dense index in a [`SizeVector`]
    /// (`0..n`), or `None` for non-sizable nodes.
    pub fn component_index(&self, id: NodeId) -> Option<usize> {
        let i = id.index();
        if i > self.num_drivers && i <= self.num_drivers + self.num_sizable {
            Some(i - self.num_drivers - 1)
        } else {
            None
        }
    }

    /// Maps a dense component index (`0..n`) back to the node identifier.
    pub fn component_id(&self, index: usize) -> NodeId {
        debug_assert!(index < self.num_sizable);
        NodeId::new(self.num_drivers + 1 + index)
    }

    /// The node identifiers of components that drive a primary output
    /// (i.e. `input(sink)` excluding nothing — exactly the paper's `input(m)`).
    pub fn primary_output_drivers(&self) -> &[NodeId] {
        self.fanin(self.sink())
    }

    /// Returns `true` if this node drives a primary output.
    pub fn drives_primary_output(&self, id: NodeId) -> bool {
        self.fanout(id).contains(&self.sink())
    }

    /// A [`SizeVector`] with every sizable component at the given size,
    /// clamped into its bounds.
    pub fn uniform_sizes(&self, size: f64) -> SizeVector {
        let mut values = Vec::with_capacity(self.num_sizable);
        for id in self.component_ids() {
            let attrs = &self.node(id).attrs;
            values.push(size.clamp(attrs.lower_bound, attrs.upper_bound));
        }
        SizeVector::new(values)
    }

    /// A [`SizeVector`] with every component at its lower bound (the LRS
    /// subroutine's starting point, step S1 of Figure 8).
    pub fn minimum_sizes(&self) -> SizeVector {
        let values = self
            .component_ids()
            .map(|id| self.node(id).attrs.lower_bound)
            .collect::<Vec<_>>();
        SizeVector::new(values)
    }

    /// A [`SizeVector`] with every component at its upper bound.
    pub fn maximum_sizes(&self) -> SizeVector {
        let values = self
            .component_ids()
            .map(|id| self.node(id).attrs.upper_bound)
            .collect::<Vec<_>>();
        SizeVector::new(values)
    }

    /// The size of node `id` under `sizes` (1.0 for non-sizable nodes, which
    /// makes `resistance`/`capacitance` behave correctly for drivers).
    pub fn size_of(&self, id: NodeId, sizes: &SizeVector) -> f64 {
        match self.component_index(id) {
            Some(idx) => sizes[idx],
            None => 1.0,
        }
    }

    /// Resistance of node `id` under `sizes`.
    pub fn resistance(&self, id: NodeId, sizes: &SizeVector) -> f64 {
        self.node(id).resistance(self.size_of(id, sizes))
    }

    /// Capacitance of node `id` under `sizes` (excluding coupling).
    pub fn capacitance(&self, id: NodeId, sizes: &SizeVector) -> f64 {
        self.node(id).capacitance(self.size_of(id, sizes))
    }

    /// Checks a size vector against this circuit: length `n`, finite values,
    /// within each component's bounds (up to a small tolerance).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::SizeLengthMismatch`] or
    /// [`CircuitError::InvalidParameter`]/[`CircuitError::InvalidBounds`] on
    /// the first violation found.
    pub fn check_sizes(&self, sizes: &SizeVector) -> Result<(), CircuitError> {
        if sizes.len() != self.num_sizable {
            return Err(CircuitError::SizeLengthMismatch {
                expected: self.num_sizable,
                actual: sizes.len(),
            });
        }
        const TOL: f64 = 1e-9;
        for (idx, &x) in sizes.iter().enumerate() {
            if !x.is_finite() || x <= 0.0 {
                return Err(CircuitError::InvalidParameter {
                    name: "size",
                    value: x,
                });
            }
            let id = self.component_id(idx);
            let attrs = &self.node(id).attrs;
            if x < attrs.lower_bound - TOL || x > attrs.upper_bound + TOL {
                return Err(CircuitError::InvalidBounds {
                    node: id,
                    lower: attrs.lower_bound,
                    upper: attrs.upper_bound,
                });
            }
        }
        Ok(())
    }

    /// Number of edges in the graph.
    pub fn num_edges(&self) -> usize {
        self.fanout.iter().map(Vec::len).sum()
    }

    /// An estimate (in bytes) of the memory held by this graph's data
    /// structures, used by the Figure 10(a) reproduction.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let node_bytes: usize = self
            .nodes
            .iter()
            .map(|n| size_of::<Node>() + n.name.capacity())
            .sum();
        let adj_bytes: usize = self
            .fanin
            .iter()
            .chain(self.fanout.iter())
            .map(|v| size_of::<Vec<NodeId>>() + v.capacity() * size_of::<NodeId>())
            .sum();
        let name_bytes: usize = self
            .name_index
            .keys()
            .map(|k| k.capacity() + size_of::<NodeId>() + size_of::<usize>())
            .sum();
        node_bytes + adj_bytes + name_bytes + size_of::<Self>()
    }

    /// `true` if `kind` of node i is a gate or a driver, i.e. the node starts
    /// a new RC stage at its output.
    pub fn is_stage_root(&self, id: NodeId) -> bool {
        matches!(self.node(id).kind, NodeKind::Gate(_) | NodeKind::Driver)
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::CircuitBuilder;
    use crate::node::GateKind;
    use crate::tech::Technology;

    fn tiny() -> crate::CircuitGraph {
        // driver -> w1 -> g1 -> w2 -> output
        let mut b = CircuitBuilder::new(Technology::dac99());
        let d = b.add_driver("in", 100.0).unwrap();
        let w1 = b.add_wire("w1", 40.0).unwrap();
        let g1 = b.add_gate("g1", GateKind::Inv).unwrap();
        let w2 = b.add_wire("w2", 60.0).unwrap();
        b.connect(d, w1).unwrap();
        b.connect(w1, g1).unwrap();
        b.connect(g1, w2).unwrap();
        b.connect_output(w2, 5.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn indexing_convention() {
        let c = tiny();
        assert_eq!(c.num_drivers(), 1);
        assert_eq!(c.num_components(), 3);
        assert_eq!(c.num_nodes(), 6);
        assert_eq!(c.source().index(), 0);
        assert_eq!(c.sink().index(), 5);
        // Drivers come right after the source.
        assert!(c.node(crate::NodeId::new(1)).kind.is_driver());
    }

    #[test]
    fn component_index_roundtrip() {
        let c = tiny();
        for (dense, id) in c.component_ids().enumerate() {
            assert_eq!(c.component_index(id), Some(dense));
            assert_eq!(c.component_id(dense), id);
        }
        assert_eq!(c.component_index(c.source()), None);
        assert_eq!(c.component_index(c.sink()), None);
        assert_eq!(c.component_index(crate::NodeId::new(1)), None);
    }

    #[test]
    fn fanin_fanout_are_consistent() {
        let c = tiny();
        for id in c.node_ids() {
            for &succ in c.fanout(id) {
                assert!(c.fanin(succ).contains(&id));
            }
            for &pred in c.fanin(id) {
                assert!(c.fanout(pred).contains(&id));
            }
        }
    }

    #[test]
    fn topological_indexing_holds() {
        let c = tiny();
        for id in c.node_ids() {
            for &succ in c.fanout(id) {
                assert!(
                    id < succ,
                    "edge {id} -> {succ} violates topological indexing"
                );
            }
        }
    }

    #[test]
    fn gate_and_wire_counts() {
        let c = tiny();
        assert_eq!(c.num_gates(), 1);
        assert_eq!(c.num_wires(), 2);
        assert_eq!(c.num_gates() + c.num_wires(), c.num_components());
    }

    #[test]
    fn uniform_and_bound_sizes() {
        let c = tiny();
        let s = c.uniform_sizes(1.0);
        assert_eq!(s.len(), 3);
        assert!(s.iter().all(|&x| (x - 1.0).abs() < 1e-12));
        let lo = c.minimum_sizes();
        assert!(lo.iter().all(|&x| (x - 0.1).abs() < 1e-12));
        let hi = c.maximum_sizes();
        assert!(hi.iter().all(|&x| (x - 10.0).abs() < 1e-12));
        assert!(c.check_sizes(&s).is_ok());
        assert!(c.check_sizes(&lo).is_ok());
        assert!(c.check_sizes(&hi).is_ok());
    }

    #[test]
    fn check_sizes_rejects_bad_vectors() {
        let c = tiny();
        let too_short = crate::SizeVector::new(vec![1.0]);
        assert!(c.check_sizes(&too_short).is_err());
        let out_of_bounds = crate::SizeVector::new(vec![1.0, 100.0, 1.0]);
        assert!(c.check_sizes(&out_of_bounds).is_err());
        let negative = crate::SizeVector::new(vec![1.0, -1.0, 1.0]);
        assert!(c.check_sizes(&negative).is_err());
    }

    #[test]
    fn name_lookup() {
        let c = tiny();
        let w1 = c.node_by_name("w1").unwrap();
        assert!(c.node(w1).kind.is_wire());
        assert!(c.node_by_name("does-not-exist").is_none());
    }

    #[test]
    fn primary_outputs_and_memory() {
        let c = tiny();
        let pos = c.primary_output_drivers();
        assert_eq!(pos.len(), 1);
        assert!(c.drives_primary_output(pos[0]));
        assert!(c.memory_bytes() > 0);
        assert!(c.num_edges() >= 5);
    }
}
