//! Node kinds and per-component RC attributes.

use serde::{Deserialize, Serialize};

use crate::tech::Technology;

/// Logic function implemented by a gate component.
///
/// The sizing formulation is independent of the logic function — only the
/// RC attributes matter — but the logic-simulation substrate
/// (`ncgws-waveform`) needs to know how a gate computes its output in order to
/// derive switching waveforms and similarities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateKind {
    /// Buffer (identity).
    Buf,
    /// Inverter.
    Inv,
    /// Logical AND.
    And,
    /// Logical OR.
    Or,
    /// Logical NAND.
    Nand,
    /// Logical NOR.
    Nor,
    /// Logical XOR.
    Xor,
    /// Logical XNOR.
    Xnor,
}

impl GateKind {
    /// All gate kinds, useful for random generation and exhaustive tests.
    pub const ALL: [GateKind; 8] = [
        GateKind::Buf,
        GateKind::Inv,
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
    ];

    /// Evaluates the gate function on a slice of input values.
    ///
    /// Single-input kinds ([`GateKind::Buf`], [`GateKind::Inv`]) use only the
    /// first input. An empty input slice evaluates to `false` (`Buf`/`And`
    /// conventions) or its complement for inverting gates, which keeps the
    /// simulator total.
    pub fn eval(self, inputs: &[bool]) -> bool {
        let first = inputs.first().copied().unwrap_or(false);
        match self {
            GateKind::Buf => first,
            GateKind::Inv => !first,
            GateKind::And => !inputs.is_empty() && inputs.iter().all(|&b| b),
            GateKind::Nand => inputs.is_empty() || !inputs.iter().all(|&b| b),
            GateKind::Or => inputs.iter().any(|&b| b),
            GateKind::Nor => !inputs.iter().any(|&b| b),
            GateKind::Xor => inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Xnor => !inputs.iter().fold(false, |acc, &b| acc ^ b),
        }
    }

    /// Returns `true` for gates whose output inverts when all inputs rise.
    pub fn is_inverting(self) -> bool {
        matches!(
            self,
            GateKind::Inv | GateKind::Nand | GateKind::Nor | GateKind::Xnor
        )
    }
}

/// The role a node plays in the circuit graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// The artificial source node `~s` (index 0).
    Source,
    /// An input driver with a fixed driver resistance `R_D`.
    Driver,
    /// A sizable logic gate.
    Gate(GateKind),
    /// A sizable interconnect wire.
    Wire,
    /// The artificial sink node `~t` (index n+s+1).
    Sink,
}

impl NodeKind {
    /// Returns `true` if this node is a sizable component (gate or wire).
    pub fn is_sizable(self) -> bool {
        matches!(self, NodeKind::Gate(_) | NodeKind::Wire)
    }

    /// Returns `true` if this node is a gate.
    pub fn is_gate(self) -> bool {
        matches!(self, NodeKind::Gate(_))
    }

    /// Returns `true` if this node is a wire.
    pub fn is_wire(self) -> bool {
        matches!(self, NodeKind::Wire)
    }

    /// Returns `true` if this node is an input driver.
    pub fn is_driver(self) -> bool {
        matches!(self, NodeKind::Driver)
    }
}

/// Electrical attributes of a component, following Figure 3 of the paper.
///
/// * a gate of size `x`: resistance `r̂ / x`, input capacitance `ĉ · x`,
///   no fringing capacitance;
/// * a wire of size (width) `x`: resistance `r̂ / x`, capacitance `ĉ · x + f`;
/// * an input driver: fixed resistance `driver_resistance`, zero capacitance,
///   zero area, not sizable;
/// * source/sink: no electrical attributes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeAttrs {
    /// Unit-size resistance `r̂` (Ω·µm). Zero for drivers, source and sink.
    pub unit_resistance: f64,
    /// Unit-size capacitance `ĉ` (fF/µm). Zero for drivers, source and sink.
    pub unit_capacitance: f64,
    /// Fringing capacitance `f` (fF). Zero for gates (per the paper) and drivers.
    pub fringing_capacitance: f64,
    /// Area coefficient `α` (µm² per µm of size).
    pub area_coefficient: f64,
    /// Lower size bound `L` (µm). Zero (and ignored) for non-sizable nodes.
    pub lower_bound: f64,
    /// Upper size bound `U` (µm). Zero (and ignored) for non-sizable nodes.
    pub upper_bound: f64,
    /// Driver resistance `R_D` (Ω) for [`NodeKind::Driver`] nodes; zero otherwise.
    pub driver_resistance: f64,
    /// Output load `C_L` (fF) attached when this component drives a primary output;
    /// zero otherwise.
    pub output_load: f64,
}

impl NodeAttrs {
    /// Attributes for a gate using the given technology.
    pub fn gate(tech: &Technology) -> Self {
        NodeAttrs {
            unit_resistance: tech.gate_unit_resistance,
            unit_capacitance: tech.gate_unit_capacitance,
            fringing_capacitance: 0.0,
            area_coefficient: tech.gate_area_coefficient,
            lower_bound: tech.min_size,
            upper_bound: tech.max_size,
            driver_resistance: 0.0,
            output_load: 0.0,
        }
    }

    /// Attributes for a wire of the given length (µm) using the given technology.
    ///
    /// The unit-length technology parameters are scaled by the wire length so
    /// the attribute values are per unit *width* (the sizable quantity).
    pub fn wire(tech: &Technology, length: f64) -> Self {
        NodeAttrs {
            unit_resistance: tech.wire_unit_resistance * length,
            unit_capacitance: tech.wire_unit_capacitance * length,
            fringing_capacitance: tech.wire_fringing_per_um * length,
            area_coefficient: tech.wire_area_coefficient * length,
            lower_bound: tech.min_size,
            upper_bound: tech.max_size,
            driver_resistance: 0.0,
            output_load: 0.0,
        }
    }

    /// Attributes for an input driver with resistance `rd` (Ω).
    pub fn driver(rd: f64) -> Self {
        NodeAttrs {
            unit_resistance: 0.0,
            unit_capacitance: 0.0,
            fringing_capacitance: 0.0,
            area_coefficient: 0.0,
            lower_bound: 0.0,
            upper_bound: 0.0,
            driver_resistance: rd,
            output_load: 0.0,
        }
    }

    /// Attributes for the artificial source/sink nodes.
    pub fn artificial() -> Self {
        NodeAttrs {
            unit_resistance: 0.0,
            unit_capacitance: 0.0,
            fringing_capacitance: 0.0,
            area_coefficient: 0.0,
            lower_bound: 0.0,
            upper_bound: 0.0,
            driver_resistance: 0.0,
            output_load: 0.0,
        }
    }
}

/// A node of the circuit graph: its role, name, and RC attributes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Role of this node.
    pub kind: NodeKind,
    /// Human-readable name (unique within a circuit).
    pub name: String,
    /// Electrical and geometric attributes.
    pub attrs: NodeAttrs,
}

impl Node {
    /// Resistance of this component at the given size.
    ///
    /// Drivers return their fixed driver resistance regardless of `size`.
    /// Source and sink have zero resistance.
    pub fn resistance(&self, size: f64) -> f64 {
        match self.kind {
            NodeKind::Driver => self.attrs.driver_resistance,
            NodeKind::Gate(_) | NodeKind::Wire => {
                if size > 0.0 {
                    self.attrs.unit_resistance / size
                } else {
                    f64::INFINITY
                }
            }
            NodeKind::Source | NodeKind::Sink => 0.0,
        }
    }

    /// Capacitance of this component at the given size (excluding coupling).
    ///
    /// Gates: `ĉ · x`. Wires: `ĉ · x + f`. Others: zero.
    pub fn capacitance(&self, size: f64) -> f64 {
        match self.kind {
            NodeKind::Gate(_) => self.attrs.unit_capacitance * size,
            NodeKind::Wire => self.attrs.unit_capacitance * size + self.attrs.fringing_capacitance,
            _ => 0.0,
        }
    }

    /// Area of this component at the given size: `α · x`.
    pub fn area(&self, size: f64) -> f64 {
        if self.kind.is_sizable() {
            self.attrs.area_coefficient * size
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_eval_truth_tables() {
        assert!(GateKind::And.eval(&[true, true]));
        assert!(!GateKind::And.eval(&[true, false]));
        assert!(GateKind::Nand.eval(&[true, false]));
        assert!(!GateKind::Nand.eval(&[true, true]));
        assert!(GateKind::Or.eval(&[false, true]));
        assert!(!GateKind::Or.eval(&[false, false]));
        assert!(GateKind::Nor.eval(&[false, false]));
        assert!(!GateKind::Nor.eval(&[true, false]));
        assert!(GateKind::Xor.eval(&[true, false]));
        assert!(!GateKind::Xor.eval(&[true, true]));
        assert!(GateKind::Xnor.eval(&[true, true]));
        assert!(GateKind::Inv.eval(&[false]));
        assert!(!GateKind::Inv.eval(&[true]));
        assert!(GateKind::Buf.eval(&[true]));
    }

    #[test]
    fn gate_eval_on_empty_inputs_is_total() {
        for kind in GateKind::ALL {
            // Must not panic.
            let _ = kind.eval(&[]);
        }
    }

    #[test]
    fn inverting_classification() {
        assert!(GateKind::Inv.is_inverting());
        assert!(GateKind::Nand.is_inverting());
        assert!(GateKind::Nor.is_inverting());
        assert!(GateKind::Xnor.is_inverting());
        assert!(!GateKind::Buf.is_inverting());
        assert!(!GateKind::And.is_inverting());
        assert!(!GateKind::Or.is_inverting());
        assert!(!GateKind::Xor.is_inverting());
    }

    #[test]
    fn node_kind_predicates() {
        assert!(NodeKind::Gate(GateKind::And).is_sizable());
        assert!(NodeKind::Wire.is_sizable());
        assert!(!NodeKind::Driver.is_sizable());
        assert!(!NodeKind::Source.is_sizable());
        assert!(NodeKind::Wire.is_wire());
        assert!(NodeKind::Gate(GateKind::Or).is_gate());
        assert!(NodeKind::Driver.is_driver());
    }

    #[test]
    fn gate_rc_scales_with_size() {
        let tech = Technology::dac99();
        let node = Node {
            kind: NodeKind::Gate(GateKind::Inv),
            name: "g".into(),
            attrs: NodeAttrs::gate(&tech),
        };
        let r1 = node.resistance(1.0);
        let r2 = node.resistance(2.0);
        assert!(
            (r1 / r2 - 2.0).abs() < 1e-12,
            "resistance halves when size doubles"
        );
        let c1 = node.capacitance(1.0);
        let c2 = node.capacitance(2.0);
        assert!(
            (c2 / c1 - 2.0).abs() < 1e-12,
            "capacitance doubles when size doubles"
        );
    }

    #[test]
    fn wire_capacitance_includes_fringing() {
        let tech = Technology::dac99();
        let node = Node {
            kind: NodeKind::Wire,
            name: "w".into(),
            attrs: NodeAttrs::wire(&tech, 100.0),
        };
        let c = node.capacitance(1.0);
        assert!(
            c > tech.wire_unit_capacitance * 100.0,
            "fringing must be added"
        );
    }

    #[test]
    fn driver_resistance_is_fixed() {
        let node = Node {
            kind: NodeKind::Driver,
            name: "d".into(),
            attrs: NodeAttrs::driver(120.0),
        };
        assert_eq!(node.resistance(0.0), 120.0);
        assert_eq!(node.resistance(5.0), 120.0);
        assert_eq!(node.capacitance(3.0), 0.0);
        assert_eq!(node.area(3.0), 0.0);
    }

    #[test]
    fn zero_size_resistance_is_infinite() {
        let tech = Technology::dac99();
        let node = Node {
            kind: NodeKind::Wire,
            name: "w".into(),
            attrs: NodeAttrs::wire(&tech, 10.0),
        };
        assert!(node.resistance(0.0).is_infinite());
    }
}
