//! The reusable evaluation engine: pluggable delay models over dense
//! circuit state, plus a pre-sized scratch workspace.
//!
//! The sizing engine evaluates the same per-node quantities (downstream
//! capacitances, weighted upstream resistances, delays, arrival times)
//! thousands of times per optimization run. The original free-function
//! style ([`ElmoreAnalyzer`](crate::ElmoreAnalyzer)) walks the pointer-rich
//! [`CircuitGraph`] (`Vec<Vec<NodeId>>` adjacency, `Node` structs whose
//! inline `String` names spread the numeric fields across cache lines) and
//! allocates fresh result vectors on every call, so the constant factor of
//! the paper's `O(V + E + P)` sweep is dominated by cache misses and the
//! allocator rather than the arithmetic. This module is the replacement:
//!
//! * [`DelayModel`] — the backend trait. A model *prepares* dense immutable
//!   per-circuit state once ([`DelayModel::prepare`]) and then fills
//!   caller-provided slices with no allocation. [`ElmoreModel`] is the first
//!   (and the paper's) backend; future backends (higher-order delay models,
//!   sharded evaluation) plug in here.
//! * [`CircuitTopology`] — the Elmore model's prepared state: CSR adjacency
//!   plus flat per-node RC coefficient arrays, and the cached topological
//!   **level partition** (see below).
//! * [`EvalWorkspace`] — one bundle of dense scratch buffers, sized once per
//!   circuit and reused for every evaluation.
//!
//! All arithmetic is performed in exactly the same order as the
//! `ElmoreAnalyzer` reference path, so results are bitwise identical
//! between the two — pinned down by the unit tests below and the
//! `property_eval_engine` integration test at the workspace root.
//!
//! # The level partition invariant
//!
//! [`CircuitTopology`] groups the nodes into *topological levels*
//! (`level(i) = 1 + max level over fanin(i)`, the source at level 0) and
//! caches the partition at construction. The invariant every level-chunked
//! traversal relies on:
//!
//! * **every edge crosses levels strictly upward** — a node's level is
//!   strictly greater than each of its fanin nodes' levels, so two nodes in
//!   the same level share no fanin/fanout edge and never read or write each
//!   other's per-node state;
//! * the partition covers every node exactly once, and within a level the
//!   nodes are stored in ascending raw-index (topological) order.
//!
//! A forward traversal that settles levels in ascending order therefore sees
//! every fanin value finalized before a node is visited, and a backward
//! traversal in descending level order sees every fanout value finalized —
//! which is exactly what lets the chunk kernels below
//! ([`CircuitTopology::downstream_caps_chunk`],
//! [`CircuitTopology::fused_downstream_chunk`], …) process the nodes of one
//! level in any sub-chunk order (or concurrently) while producing per-node
//! results bitwise identical to the sequential whole-circuit traversals:
//! every per-node accumulation (fanout loads, fanin resistances, fanin
//! arrival maxima) still runs over that node's own CSR list in list order.
//!
//! # The SoA layout invariant
//!
//! Every per-node electrical quantity lives in its own dense `Vec<f64>`
//! slab indexed by raw node index — unit resistance, unit capacitance,
//! fringing and output load here; charged/presented capacitance, upstream
//! resistance, arrival, delays and the per-node size mirror in
//! [`EvalWorkspace`]. No per-node struct interleaves two quantities, so a
//! kernel that streams one quantity touches contiguous memory, and a
//! fixed-width block of [`LANES`] consecutive nodes maps to [`LANES`]
//! consecutive `f64` in every slab it reads.
//!
//! This is what the 4-lane kernels ([`CircuitTopology::delays_chunk_lanes`],
//! [`CircuitTopology::fused_downstream_chunk_lanes`],
//! [`CircuitTopology::fused_upstream_chunk_lanes`]) build on, and it
//! composes with the level partition above: a level chunk is a contiguous
//! run of at most [`MAX_CHUNK_NODES`] entries of `level_nodes`
//! (`MAX_CHUNK_NODES % LANES == 0`), so lane blocks never straddle a chunk
//! boundary and the per-chunk disjointness that makes the chunk kernels
//! race-free makes the lane blocks race-free too. Kernels whose per-node
//! arithmetic is independent (delays, the Theorem-5 closed form) are laned
//! directly and stay *bitwise* identical to the sequential oracle — each
//! lane performs exactly the scalar expression sequence for its node. The
//! CSR accumulations (fanout loads, fanin resistances, arrival maxima)
//! stay in list order inside the lane kernels: reassociating those sums
//! would break the bitwise pin, so vectorization there is limited to the
//! phase split described on the fused kernels.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::graph::CircuitGraph;
use crate::id::NodeId;
use crate::node::NodeKind;
use crate::sizing::SizeVector;

/// Sentinel for "no predecessor" in dense predecessor arrays.
pub const NO_PRED: usize = usize::MAX;

/// Lane width of the explicit 4-lane `f64` kernel blocks. Chosen so the
/// blocks vectorize on any x86-64 (two SSE2 `f64x2` ops) or AArch64 (two
/// NEON ops) target and still fill one AVX2 register; the kernels are plain
/// fixed-trip loops over `[f64; LANES]`, so LLVM picks whatever width the
/// target offers without nightly `std::simd`.
pub const LANES: usize = 4;

/// Upper bound on the node count of one level chunk handed to the `*_lanes`
/// kernels — the same 256-node granule the level-parallel chunk grid uses,
/// re-exported from here so the grid and the kernels cannot drift apart.
/// A multiple of [`LANES`], so full chunks decompose into whole lane blocks.
pub const MAX_CHUNK_NODES: usize = 256;

const _: () = assert!(
    MAX_CHUNK_NODES.is_multiple_of(LANES),
    "chunk granule must decompose into whole lane blocks"
);

/// Rounds `n` up to a multiple of [`LANES`] — the length lane-padded slabs
/// are allocated at, so a lane block reading the slab tail stays in bounds.
pub const fn lane_padded(n: usize) -> usize {
    n.div_ceil(LANES) * LANES
}

/// Sentinel for "not a sizable component" in dense component-index arrays.
const NOT_SIZABLE: usize = usize::MAX;

/// A delay-model backend: computes per-node electrical quantities into
/// caller-provided dense slices (indexed by raw node index), reading only
/// immutable state prepared once per circuit.
pub trait DelayModel: std::fmt::Debug {
    /// Dense per-circuit state prepared once and reused by every call.
    type State: std::fmt::Debug + Clone;

    /// Builds the model's dense state for a circuit.
    fn prepare(&self, graph: &CircuitGraph) -> Self::State;

    /// Bytes held by a prepared state (for memory accounting). Defaults to
    /// zero for stateless backends.
    fn state_memory_bytes(&self, _state: &Self::State) -> usize {
        0
    }

    /// Computes `C_i` (`charged`) and the load each node presents to its
    /// stage parent (`presented`) for every node, by one reverse-topological
    /// traversal.
    ///
    /// `extra_cap`, when provided, holds one value per node and is added on
    /// the downstream side of that node (the coupling load).
    ///
    /// # Panics
    ///
    /// Panics in debug builds when a slice length does not match the circuit.
    fn downstream_caps_into(
        &self,
        state: &Self::State,
        sizes: &SizeVector,
        extra_cap: Option<&[f64]>,
        charged: &mut [f64],
        presented: &mut [f64],
    );

    /// Computes the λ-weighted upstream resistance `R_i` of Theorem 5 for
    /// every node into `upstream`. `weights` holds `λ_k` per raw node index.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when a slice length does not match the circuit.
    fn upstream_resistance_into(
        &self,
        state: &Self::State,
        sizes: &SizeVector,
        weights: &[f64],
        upstream: &mut [f64],
    );

    /// Computes the per-component delays `D_i` from precomputed charged
    /// capacitances into `delays` (zero for source and sink).
    ///
    /// # Panics
    ///
    /// Panics in debug builds when a slice length does not match the circuit.
    fn delays_into(
        &self,
        state: &Self::State,
        sizes: &SizeVector,
        charged: &[f64],
        delays: &mut [f64],
    );

    /// Propagates arrival times from precomputed per-node delays and
    /// extracts one critical path, writing only into the provided buffers;
    /// returns the critical-path delay. The default walks the pointer-rich
    /// graph ([`propagate_arrivals_into`]); backends with dense adjacency
    /// override it with a CSR traversal producing bitwise-identical
    /// results.
    fn propagate_arrivals(
        &self,
        state: &Self::State,
        graph: &CircuitGraph,
        delays: &[f64],
        arrival: &mut [f64],
        pred: &mut [usize],
        critical_path: &mut Vec<NodeId>,
    ) -> f64 {
        let _ = state;
        propagate_arrivals_into(graph, delays, arrival, pred, critical_path)
    }

    /// The dense [`CircuitTopology`] behind this backend's state, when the
    /// state *is* (or embeds) one. Callers that can drive the level-chunked
    /// traversal kernels directly — the level-parallel solve schedules —
    /// check this; backends without a dense topology (the default) simply
    /// keep the sequential paths.
    fn dense_topology<'s>(&self, _state: &'s Self::State) -> Option<&'s CircuitTopology> {
        None
    }

    /// Whether the backend implements the `*_update` methods below as true
    /// sparse incremental re-accumulations (as opposed to the default full
    /// rebuilds). Purely advisory: callers may use it to decide whether an
    /// adaptive solve schedule will pay off, but correctness never depends
    /// on it.
    fn supports_incremental(&self) -> bool {
        false
    }

    /// Incrementally brings `charged`/`presented` — currently reflecting
    /// `prev_sizes` and the pre-delta coupling load — up to date with
    /// `sizes`, given the dense component indices whose size changed
    /// (`changed_comps`) and the per-node coupling-load deltas already
    /// applied to the extra-capacitance table (`extra_delta`, as
    /// `(raw node index, delta)` pairs).
    ///
    /// The default implementation ignores the dirty sets and performs a full
    /// rebuild from `sizes` and `extra_cap`, which is always correct.
    /// Backends overriding this must propagate the deltas along every path
    /// the full rebuild would touch, so the result differs from a rebuild
    /// only by floating-point accumulation noise.
    #[allow(clippy::too_many_arguments)]
    fn downstream_caps_update(
        &self,
        state: &Self::State,
        sizes: &SizeVector,
        prev_sizes: &[f64],
        changed_comps: &[u32],
        extra_cap: &[f64],
        extra_delta: &[(u32, f64)],
        charged: &mut [f64],
        presented: &mut [f64],
        inc: &mut IncrementalWorkspace,
    ) {
        let _ = (prev_sizes, changed_comps, extra_delta, inc);
        self.downstream_caps_into(state, sizes, Some(extra_cap), charged, presented);
    }

    /// Whether [`fused_downstream_resize`](Self::fused_downstream_resize)
    /// is implemented. Callers check this *before* preparing state for a
    /// fused sweep so an unsupported backend never sees a half-prepared
    /// workspace.
    fn supports_fused(&self) -> bool {
        false
    }

    /// Fused downstream-accumulation + resize sweep (Gauss–Seidel): walks
    /// the circuit once in reverse topological order, computing each node's
    /// charged capacitance from the *already updated* downstream state, and
    /// immediately invokes `resize` for every sizable component so parents
    /// see their children's fresh sizes within the same sweep. The coupling
    /// load (`extra_cap`) and the upstream-resistance table the caller's
    /// `resize` closure reads stay fixed for the duration of the sweep
    /// (Jacobi in those directions).
    ///
    /// `resize(comp, node, charged, x)` returns the component's new size
    /// (returning `x` unchanged leaves it as is — how callers skip frozen
    /// components). `charged`/`presented` are left consistent with the
    /// post-sweep sizes.
    ///
    /// The fixed points of this iteration are exactly those of the separate
    /// Jacobi-style passes (both solve the same componentwise equations),
    /// but the one-directional freshness roughly squares the contraction
    /// factor per sweep, so solves converge in far fewer sweeps.
    ///
    /// Returns `false` (performing no work) when the backend does not
    /// support fused sweeps; callers then fall back to separate passes.
    /// Generic over the closure so the per-component resize inlines into
    /// the traversal.
    fn fused_downstream_resize<F: FnMut(usize, usize, f64, f64) -> f64>(
        &self,
        state: &Self::State,
        sizes: &mut SizeVector,
        extra_cap: &[f64],
        charged: &mut [f64],
        presented: &mut [f64],
        resize: &mut F,
    ) -> bool {
        let _ = (state, sizes, extra_cap, charged, presented, resize);
        false
    }

    /// Forward counterpart of
    /// [`fused_downstream_resize`](Self::fused_downstream_resize): walks the
    /// circuit once in forward topological order, computing each node's
    /// λ-weighted upstream resistance from the *already updated* upstream
    /// state, and immediately invokes `resize(comp, node, upstream, x)` for
    /// every sizable component — so downstream nodes see their parents'
    /// fresh sizes within the same pass. The charged-capacitance table the
    /// caller's closure reads stays fixed for the pass (Jacobi in that
    /// direction); alternating forward and backward fused passes refreshes
    /// both directions with one traversal each.
    ///
    /// Returns `false` (performing no work) when unsupported.
    fn fused_upstream_resize<F: FnMut(usize, usize, f64, f64) -> f64>(
        &self,
        state: &Self::State,
        sizes: &mut SizeVector,
        weights: &[f64],
        upstream: &mut [f64],
        resize: &mut F,
    ) -> bool {
        let _ = (state, sizes, weights, upstream, resize);
        false
    }

    /// Incrementally brings the λ-weighted upstream resistances — currently
    /// reflecting `prev_sizes` under the same `weights` — up to date with
    /// `sizes`, given the dense component indices whose size changed.
    ///
    /// The default implementation performs a full rebuild, which is always
    /// correct. The weights must be the same ones the current `upstream`
    /// table was computed with (they are fixed within an LRS solve).
    #[allow(clippy::too_many_arguments)]
    fn upstream_resistance_update(
        &self,
        state: &Self::State,
        sizes: &SizeVector,
        prev_sizes: &[f64],
        changed_comps: &[u32],
        weights: &[f64],
        upstream: &mut [f64],
        inc: &mut IncrementalWorkspace,
    ) {
        let _ = (prev_sizes, changed_comps, inc);
        self.upstream_resistance_into(state, sizes, weights, upstream);
    }
}

/// Scratch buffers for the sparse incremental evaluation paths
/// ([`DelayModel::downstream_caps_update`],
/// [`DelayModel::upstream_resistance_update`]): pending per-node deltas plus
/// the ordered worklists that drive the delta propagation. Sized once per
/// circuit and reused; between calls every dense buffer is all-zero and
/// every worklist empty, so a sparse update touches memory proportional to
/// the perturbed subgraph only.
#[derive(Debug, Clone, Default)]
pub struct IncrementalWorkspace {
    /// Own-term delta per node: capacitance change in the downstream pass,
    /// resistance change in the upstream pass.
    own: Vec<f64>,
    /// Extra (coupling) capacitance delta per node (downstream pass only).
    extra: Vec<f64>,
    /// Accumulated incoming delta per node: child-load changes in the
    /// downstream pass, upstream-resistance changes in the upstream pass.
    pending: Vec<f64>,
    /// Whether a node is already on a worklist.
    queued: Vec<bool>,
    /// Reverse-topological worklist (max-heap on raw node index).
    down_heap: BinaryHeap<u32>,
    /// Forward-topological worklist (min-heap on raw node index).
    up_heap: BinaryHeap<Reverse<u32>>,
}

impl IncrementalWorkspace {
    /// Creates a workspace sized for `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        IncrementalWorkspace {
            own: vec![0.0; num_nodes],
            extra: vec![0.0; num_nodes],
            pending: vec![0.0; num_nodes],
            queued: vec![false; num_nodes],
            down_heap: BinaryHeap::new(),
            up_heap: BinaryHeap::new(),
        }
    }

    /// Bytes held by the workspace buffers (for memory accounting).
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.own.capacity() + self.extra.capacity() + self.pending.capacity()) * size_of::<f64>()
            + self.queued.capacity() * size_of::<bool>()
            + self.down_heap.capacity() * size_of::<u32>()
            + self.up_heap.capacity() * size_of::<u32>()
            + size_of::<Self>()
    }

    fn assert_sized(&self, num_nodes: usize) {
        assert_eq!(
            self.queued.len(),
            num_nodes,
            "incremental workspace must match the circuit"
        );
    }
}

/// A shared view of a mutable slice for *disjoint-index* concurrent writes.
///
/// The level-chunked kernels of [`CircuitTopology`] let several workers
/// update per-node (or per-component) state of one topological level at
/// once. Each worker owns a disjoint set of indices, so the writes can never
/// alias — but safe Rust cannot express "disjoint scattered indices of one
/// slice", hence this wrapper: a copyable `(pointer, length)` view whose
/// accessors are `unsafe` and whose soundness contract is exactly the
/// disjointness the level partition guarantees.
///
/// # Safety contract (all accessors)
///
/// * `i < len()`;
/// * no concurrent access (read or write) to index `i` from another
///   borrower of the same underlying slice — callers partition the index
///   space (by level and by chunk) so this holds by construction.
pub struct SharedMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

impl<T> Clone for SharedMut<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SharedMut<'_, T> {}

// SAFETY: the wrapper only hands out `unsafe` accessors whose contract
// forbids aliasing; sending or sharing the view across threads is then no
// more dangerous than the accessors themselves.
unsafe impl<T: Send> Send for SharedMut<'_, T> {}
unsafe impl<T: Send> Sync for SharedMut<'_, T> {}

impl<'a, T> SharedMut<'a, T> {
    /// Wraps an exclusive slice borrow. The view must not outlive callers'
    /// partitioning discipline (see the type docs).
    pub fn new(slice: &'a mut [T]) -> Self {
        SharedMut {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads index `i`.
    ///
    /// # Safety
    ///
    /// See the type-level contract.
    #[inline(always)]
    pub unsafe fn get(&self, i: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(i < self.len);
        *self.ptr.add(i)
    }

    /// Writes `value` to index `i`.
    ///
    /// # Safety
    ///
    /// See the type-level contract.
    #[inline(always)]
    pub unsafe fn set(&self, i: usize, value: T) {
        debug_assert!(i < self.len);
        #[cfg(feature = "race-check")]
        crate::race::claim_write(self.ptr as usize, i);
        *self.ptr.add(i) = value;
    }

    /// Adds `delta` to index `i` (for `f64` accumulators).
    ///
    /// # Safety
    ///
    /// See the type-level contract.
    #[inline(always)]
    pub unsafe fn add(&self, i: usize, delta: T)
    where
        T: Copy + std::ops::AddAssign,
    {
        debug_assert!(i < self.len);
        #[cfg(feature = "race-check")]
        crate::race::claim_write(self.ptr as usize, i);
        *self.ptr.add(i) += delta;
    }
}

/// Streamed fanout-edge dispatch tag (see `CircuitTopology::fanout_tag`):
/// how a child contributes to its parent's downstream capacitance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum FanoutTag {
    /// A precomputed constant: the parent's output load for sink children,
    /// `ĉ · 1.0` for non-sizable gates, `0.0` for drivers/the source.
    Const,
    /// A sizable gate child: `ĉ_child · x[comp]`.
    Gate,
    /// A wire child: the child's settled `presented` entry.
    Wire,
}

/// Streamed fanin-edge dispatch tag (see `CircuitTopology::fanin_tag`):
/// the resistance form of a predecessor in the upstream accumulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum FaninTag {
    /// Source/sink predecessor: contributes nothing (skipped, exactly as
    /// the kind-dispatched loop skips it).
    Skip,
    /// Fixed resistance (`R_D` for drivers, `r̂ / 1.0` folded at build time
    /// for non-sizable gates): `w · r`.
    Const,
    /// Sizable gate: `w · (r̂ / x[comp])` (`∞` when `x ≤ 0`).
    Div,
    /// Non-sizable wire: `upstream[p] + w · r` with fixed `r`.
    WireConst,
    /// Sizable wire: `upstream[p] + w · (r̂ / x[comp])`.
    WireDiv,
}

/// Compact per-node role tag used by [`CircuitTopology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum KindTag {
    /// The artificial source.
    Source,
    /// An input driver.
    Driver,
    /// A sizable gate.
    Gate,
    /// A sizable wire.
    Wire,
    /// The artificial sink.
    Sink,
}

/// Dense, cache-friendly snapshot of a circuit: CSR adjacency plus flat
/// per-node RC coefficient arrays. Immutable once built; this is the
/// "dense-indexed state owned by the engine" that the hot loops traverse
/// instead of the pointer-rich [`CircuitGraph`].
#[derive(Debug, Clone)]
pub struct CircuitTopology {
    num_components: usize,
    kind: Vec<KindTag>,
    /// Dense component index per node ([`NOT_SIZABLE`] for the rest).
    comp_of: Vec<usize>,
    /// Raw node index per dense component index (inverse of `comp_of`).
    node_of_comp: Vec<u32>,
    /// `r̂` for gates/wires, `R_D` for drivers, zero otherwise.
    unit_resistance: Vec<f64>,
    /// `ĉ` for gates/wires, zero otherwise.
    unit_capacitance: Vec<f64>,
    /// `f` for wires, zero otherwise.
    fringing: Vec<f64>,
    /// Primary-output load per node (zero when the node drives no output).
    output_load: Vec<f64>,
    fanout_start: Vec<u32>,
    fanout_list: Vec<u32>,
    fanin_start: Vec<u32>,
    fanin_list: Vec<u32>,
    /// Streamed per-fanout-edge child descriptors (parallel to
    /// `fanout_list`): the chunk kernels dispatch on these columns instead
    /// of gathering `kind`/`unit_capacitance`/`comp_of` through the child
    /// index, leaving at most one random access per edge (the child's
    /// `presented` entry or the component's size). Built once per snapshot;
    /// per-edge values are exactly the operands of `child_load_unchecked`,
    /// so the streamed dispatch is bitwise identical to the gathered one.
    fanout_tag: Vec<FanoutTag>,
    /// `Const` → the whole contribution; `Gate` → `ĉ` of the child.
    fanout_coeff: Vec<f64>,
    /// `Gate` → dense component of the child; `Wire` → child node index.
    fanout_aux: Vec<u32>,
    /// Streamed per-fanin-edge predecessor descriptors (parallel to
    /// `fanin_list`), same idea for the forward kernels: resistance form
    /// and operands of each predecessor, leaving only the `weights` /
    /// `upstream` / size gathers.
    fanin_tag: Vec<FaninTag>,
    /// `r̂` (or `R_D`) of the predecessor; zero for `Skip`.
    fanin_ur: Vec<f64>,
    /// Dense component of the predecessor for the `Div` forms; zero
    /// otherwise.
    fanin_aux: Vec<u32>,
    /// Cached topological level partition (see the module docs): CSR offsets
    /// into `level_nodes`, one entry per level plus a trailing total.
    level_start: Vec<u32>,
    /// Node indices grouped by level, ascending raw index within a level.
    level_nodes: Vec<u32>,
}

impl CircuitTopology {
    /// Builds the dense snapshot of a circuit.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has more than `u32::MAX` nodes or edges (the
    /// CSR lists store 32-bit indices; the unchecked hot loops rely on the
    /// casts below being lossless).
    pub fn new(graph: &CircuitGraph) -> Self {
        let n = graph.num_nodes();
        assert!(
            n <= u32::MAX as usize,
            "circuit too large for 32-bit CSR node indices"
        );
        assert!(
            graph.num_edges() <= u32::MAX as usize,
            "circuit too large for 32-bit CSR edge offsets"
        );
        let mut kind = Vec::with_capacity(n);
        let mut comp_of = Vec::with_capacity(n);
        let mut node_of_comp = vec![0u32; graph.num_components()];
        let mut unit_resistance = Vec::with_capacity(n);
        let mut unit_capacitance = Vec::with_capacity(n);
        let mut fringing = Vec::with_capacity(n);
        let mut output_load = Vec::with_capacity(n);
        let mut fanout_start = Vec::with_capacity(n + 1);
        let mut fanout_list = Vec::new();
        let mut fanin_start = Vec::with_capacity(n + 1);
        let mut fanin_list = Vec::new();

        for id in graph.node_ids() {
            let node = graph.node(id);
            kind.push(match node.kind {
                NodeKind::Source => KindTag::Source,
                NodeKind::Driver => KindTag::Driver,
                NodeKind::Gate(_) => KindTag::Gate,
                NodeKind::Wire => KindTag::Wire,
                NodeKind::Sink => KindTag::Sink,
            });
            let comp = graph.component_index(id).unwrap_or(NOT_SIZABLE);
            if comp != NOT_SIZABLE {
                node_of_comp[comp] = id.index() as u32;
            }
            comp_of.push(comp);
            unit_resistance.push(match node.kind {
                NodeKind::Driver => node.attrs.driver_resistance,
                NodeKind::Gate(_) | NodeKind::Wire => node.attrs.unit_resistance,
                _ => 0.0,
            });
            unit_capacitance.push(node.attrs.unit_capacitance);
            fringing.push(node.attrs.fringing_capacitance);
            output_load.push(node.attrs.output_load);
            fanout_start.push(fanout_list.len() as u32);
            fanout_list.extend(graph.fanout(id).iter().map(|succ| succ.index() as u32));
            fanin_start.push(fanin_list.len() as u32);
            fanin_list.extend(graph.fanin(id).iter().map(|pred| pred.index() as u32));
        }
        fanout_start.push(fanout_list.len() as u32);
        fanin_start.push(fanin_list.len() as u32);

        // Streamed per-edge descriptor columns (see the field docs): the
        // exact operands the kind-dispatched loops would gather through the
        // child/predecessor index, precomputed once per edge. Non-sizable
        // forms fold their fixed size of 1.0 at build time (`c * 1.0 == c`
        // and `r / 1.0 == r` bitwise), so every fold is bitwise neutral.
        let mut fanout_tag = Vec::with_capacity(fanout_list.len());
        let mut fanout_coeff = Vec::with_capacity(fanout_list.len());
        let mut fanout_aux = Vec::with_capacity(fanout_list.len());
        for idx in 0..n {
            for &child in &fanout_list[fanout_start[idx] as usize..fanout_start[idx + 1] as usize] {
                let c = child as usize;
                let (tag, coeff, aux) = match kind[c] {
                    KindTag::Sink => (FanoutTag::Const, output_load[idx], 0),
                    KindTag::Gate => {
                        let comp = comp_of[c];
                        if comp == NOT_SIZABLE {
                            (FanoutTag::Const, unit_capacitance[c], 0)
                        } else {
                            (FanoutTag::Gate, unit_capacitance[c], comp as u32)
                        }
                    }
                    KindTag::Wire => (FanoutTag::Wire, 0.0, child),
                    KindTag::Driver | KindTag::Source => (FanoutTag::Const, 0.0, 0),
                };
                fanout_tag.push(tag);
                fanout_coeff.push(coeff);
                fanout_aux.push(aux);
            }
        }
        let mut fanin_tag = Vec::with_capacity(fanin_list.len());
        let mut fanin_ur = Vec::with_capacity(fanin_list.len());
        let mut fanin_aux = Vec::with_capacity(fanin_list.len());
        for &pred in &fanin_list {
            let p = pred as usize;
            let (tag, ur, aux) = match kind[p] {
                KindTag::Source | KindTag::Sink => (FaninTag::Skip, 0.0, 0),
                KindTag::Driver => (FaninTag::Const, unit_resistance[p], 0),
                KindTag::Gate | KindTag::Wire => {
                    let wire = kind[p] == KindTag::Wire;
                    let comp = comp_of[p];
                    if comp == NOT_SIZABLE {
                        let tag = if wire {
                            FaninTag::WireConst
                        } else {
                            FaninTag::Const
                        };
                        (tag, unit_resistance[p], 0)
                    } else {
                        let tag = if wire {
                            FaninTag::WireDiv
                        } else {
                            FaninTag::Div
                        };
                        (tag, unit_resistance[p], comp as u32)
                    }
                }
            };
            fanin_tag.push(tag);
            fanin_ur.push(ur);
            fanin_aux.push(aux);
        }

        // Topological level partition: level(i) = 1 + max level over fanin,
        // the source (and any fanin-free node) at level 0. Nodes are stored
        // in topological order, so one forward scan settles every level.
        let mut level = vec![0u32; n];
        let mut num_levels = 1u32;
        for idx in 0..n {
            let mut l = 0u32;
            for &pred in &fanin_list[fanin_start[idx] as usize..fanin_start[idx + 1] as usize] {
                l = l.max(level[pred as usize] + 1);
            }
            level[idx] = l;
            num_levels = num_levels.max(l + 1);
        }
        // Counting sort into the CSR layout; the forward scan preserves
        // ascending raw index within each level.
        let mut level_start = vec![0u32; num_levels as usize + 1];
        for &l in &level {
            level_start[l as usize + 1] += 1;
        }
        for l in 0..num_levels as usize {
            level_start[l + 1] += level_start[l];
        }
        let mut level_nodes = vec![0u32; n];
        let mut cursor: Vec<u32> = level_start[..num_levels as usize].to_vec();
        for (idx, &l) in level.iter().enumerate() {
            level_nodes[cursor[l as usize] as usize] = idx as u32;
            cursor[l as usize] += 1;
        }

        CircuitTopology {
            num_components: graph.num_components(),
            kind,
            comp_of,
            node_of_comp,
            unit_resistance,
            unit_capacitance,
            fringing,
            output_load,
            fanout_start,
            fanout_list,
            fanin_start,
            fanin_list,
            fanout_tag,
            fanout_coeff,
            fanout_aux,
            fanin_tag,
            fanin_ur,
            fanin_aux,
            level_start,
            level_nodes,
        }
    }

    /// Number of nodes in the snapshot.
    pub fn num_nodes(&self) -> usize {
        self.kind.len()
    }

    /// Number of topological levels in the cached partition.
    pub fn num_levels(&self) -> usize {
        self.level_start.len() - 1
    }

    /// The node indices of level `l`, in ascending raw-index order. Levels
    /// partition the nodes; nodes within one level share no fanin/fanout
    /// edge (see the module docs).
    #[inline(always)]
    pub fn level(&self, l: usize) -> &[u32] {
        &self.level_nodes[self.level_start[l] as usize..self.level_start[l + 1] as usize]
    }

    /// Dense component index of node `idx`, when the node is sizable.
    #[inline(always)]
    pub fn component_of(&self, idx: usize) -> Option<usize> {
        let comp = self.comp_of[idx];
        (comp != NOT_SIZABLE).then_some(comp)
    }

    /// Raw node index of the dense component `comp`.
    #[inline(always)]
    pub fn node_of_component(&self, comp: usize) -> usize {
        self.node_of_comp[comp] as usize
    }

    /// Fanout (successor) node indices of node `idx`.
    #[inline(always)]
    pub fn fanout(&self, idx: usize) -> &[u32] {
        &self.fanout_list[self.fanout_start[idx] as usize..self.fanout_start[idx + 1] as usize]
    }

    /// Fanin (predecessor) node indices of node `idx`.
    #[inline(always)]
    pub fn fanin(&self, idx: usize) -> &[u32] {
        &self.fanin_list[self.fanin_start[idx] as usize..self.fanin_start[idx + 1] as usize]
    }

    /// The role of node `idx`.
    #[inline(always)]
    pub fn kind(&self, idx: usize) -> KindTag {
        self.kind[idx]
    }

    /// Size of node `idx` under `sizes` (1.0 for non-sizable nodes), exactly
    /// as [`CircuitGraph::size_of`].
    #[inline(always)]
    pub fn size_of(&self, idx: usize, sizes: &SizeVector) -> f64 {
        let comp = self.comp_of[idx];
        if comp == NOT_SIZABLE {
            1.0
        } else {
            sizes[comp]
        }
    }

    /// Resistance of node `idx`, exactly as `Node::resistance`.
    #[inline(always)]
    pub fn resistance(&self, idx: usize, sizes: &SizeVector) -> f64 {
        match self.kind[idx] {
            KindTag::Driver => self.unit_resistance[idx],
            KindTag::Gate | KindTag::Wire => {
                let x = self.size_of(idx, sizes);
                if x > 0.0 {
                    self.unit_resistance[idx] / x
                } else {
                    f64::INFINITY
                }
            }
            KindTag::Source | KindTag::Sink => 0.0,
        }
    }

    /// Capacitance of node `idx` (excluding coupling), exactly as
    /// `Node::capacitance`.
    #[inline(always)]
    pub fn capacitance(&self, idx: usize, sizes: &SizeVector) -> f64 {
        match self.kind[idx] {
            KindTag::Gate => self.unit_capacitance[idx] * self.size_of(idx, sizes),
            KindTag::Wire => {
                self.unit_capacitance[idx] * self.size_of(idx, sizes) + self.fringing[idx]
            }
            _ => 0.0,
        }
    }

    /// Fills the per-node size slab: `out[idx] = sizes[comp_of(idx)]`, `1.0`
    /// for non-sizable nodes — the gather that turns the component-indexed
    /// size vector into a node-indexed SoA slab the lane kernels can stream.
    /// Entries of `out` beyond the node count (lane padding) are left as the
    /// caller initialized them.
    ///
    /// # Panics
    ///
    /// Panics when `sizes` does not match the component count or `out` is
    /// shorter than the node count.
    pub fn fill_node_sizes(&self, sizes: &[f64], out: &mut [f64]) {
        assert_eq!(
            sizes.len(),
            self.num_components,
            "sizes must match the circuit"
        );
        assert!(
            out.len() >= self.num_nodes(),
            "node-size slab must have one entry per node"
        );
        for (slot, &comp) in out.iter_mut().zip(&self.comp_of) {
            *slot = if comp == NOT_SIZABLE {
                1.0
            } else {
                sizes[comp]
            };
        }
    }

    /// Asserts the slice-length invariants the unchecked hot loops rely on.
    /// Every node index stored in the CSR lists and `comp_of` is in range by
    /// construction (the topology is built from a validated graph and is
    /// immutable), so after these checks the per-element indexing below
    /// cannot go out of bounds.
    #[inline]
    fn assert_node_slices(&self, slices: &[(&str, usize)]) {
        let n = self.num_nodes();
        for (name, len) in slices {
            assert_eq!(*len, n, "{name} must have one entry per node");
        }
    }

    /// Size of node `idx` (1.0 for non-sizable nodes) over a raw size slice.
    ///
    /// # Safety
    ///
    /// `idx < num_nodes` and `sizes.len() == num_components`.
    #[inline(always)]
    unsafe fn size_of_unchecked(&self, idx: usize, sizes: &[f64]) -> f64 {
        let comp = *self.comp_of.get_unchecked(idx);
        if comp == NOT_SIZABLE {
            1.0
        } else {
            *sizes.get_unchecked(comp)
        }
    }

    /// Resistance of node `idx`, exactly as `Node::resistance`.
    ///
    /// # Safety
    ///
    /// `idx < num_nodes` and `sizes.len() == num_components`.
    #[inline(always)]
    unsafe fn resistance_unchecked(&self, idx: usize, sizes: &[f64]) -> f64 {
        match *self.kind.get_unchecked(idx) {
            KindTag::Driver => *self.unit_resistance.get_unchecked(idx),
            KindTag::Gate | KindTag::Wire => {
                let x = self.size_of_unchecked(idx, sizes);
                if x > 0.0 {
                    *self.unit_resistance.get_unchecked(idx) / x
                } else {
                    f64::INFINITY
                }
            }
            KindTag::Source | KindTag::Sink => 0.0,
        }
    }

    /// Capacitance of node `idx`, exactly as `Node::capacitance`.
    ///
    /// # Safety
    ///
    /// `idx < num_nodes` and `sizes.len() == num_components`.
    #[inline(always)]
    unsafe fn capacitance_unchecked(&self, idx: usize, sizes: &[f64]) -> f64 {
        match *self.kind.get_unchecked(idx) {
            KindTag::Gate => {
                *self.unit_capacitance.get_unchecked(idx) * self.size_of_unchecked(idx, sizes)
            }
            KindTag::Wire => {
                *self.unit_capacitance.get_unchecked(idx) * self.size_of_unchecked(idx, sizes)
                    + *self.fringing.get_unchecked(idx)
            }
            _ => 0.0,
        }
    }

    /// Fanout slice of node `idx` without bounds checks.
    ///
    /// # Safety
    ///
    /// `idx < num_nodes`; the CSR offsets are valid by construction.
    #[inline(always)]
    unsafe fn fanout_unchecked(&self, idx: usize) -> &[u32] {
        let start = *self.fanout_start.get_unchecked(idx) as usize;
        let end = *self.fanout_start.get_unchecked(idx + 1) as usize;
        self.fanout_list.get_unchecked(start..end)
    }

    /// Fanin slice of node `idx` without bounds checks.
    ///
    /// # Safety
    ///
    /// `idx < num_nodes`; the CSR offsets are valid by construction.
    #[inline(always)]
    unsafe fn fanin_unchecked(&self, idx: usize) -> &[u32] {
        let start = *self.fanin_start.get_unchecked(idx) as usize;
        let end = *self.fanin_start.get_unchecked(idx + 1) as usize;
        self.fanin_list.get_unchecked(start..end)
    }

    /// Fanout edge-index range of node `idx` without bounds checks; edge
    /// indices address `fanout_list` and the streamed `fanout_*` columns.
    ///
    /// # Safety
    ///
    /// `idx < num_nodes`; the CSR offsets are valid by construction.
    #[inline(always)]
    unsafe fn fanout_edges_unchecked(&self, idx: usize) -> std::ops::Range<usize> {
        *self.fanout_start.get_unchecked(idx) as usize
            ..*self.fanout_start.get_unchecked(idx + 1) as usize
    }

    /// Fanin edge-index range of node `idx` without bounds checks; edge
    /// indices address `fanin_list` and the streamed `fanin_*` columns.
    ///
    /// # Safety
    ///
    /// `idx < num_nodes`; the CSR offsets are valid by construction.
    #[inline(always)]
    unsafe fn fanin_edges_unchecked(&self, idx: usize) -> std::ops::Range<usize> {
        *self.fanin_start.get_unchecked(idx) as usize
            ..*self.fanin_start.get_unchecked(idx + 1) as usize
    }

    /// `child_load` streamed from the per-edge columns (rebuild variant):
    /// bitwise identical to `child_load_shared` for fanout edge `e`,
    /// because the columns hold the exact operands the kind dispatch would
    /// gather through the child index.
    ///
    /// # Safety
    ///
    /// `e < fanout_list.len()`; `sizes.len() == num_components`; wire
    /// children's `presented` entries are settled.
    #[inline(always)]
    unsafe fn child_load_edge(
        &self,
        e: usize,
        sizes: &[f64],
        presented: SharedMut<'_, f64>,
    ) -> f64 {
        match *self.fanout_tag.get_unchecked(e) {
            FanoutTag::Const => *self.fanout_coeff.get_unchecked(e),
            FanoutTag::Gate => {
                *self.fanout_coeff.get_unchecked(e)
                    * *sizes.get_unchecked(*self.fanout_aux.get_unchecked(e) as usize)
            }
            FanoutTag::Wire => presented.get(*self.fanout_aux.get_unchecked(e) as usize),
        }
    }

    /// As `child_load_edge`, over a shared size view (fused variant,
    /// bitwise identical to `child_load_fused`).
    ///
    /// # Safety
    ///
    /// As `child_load_edge`, with `xs` wrapping the per-component sizes.
    #[inline(always)]
    unsafe fn child_load_edge_fused(
        &self,
        e: usize,
        xs: SharedMut<'_, f64>,
        presented: SharedMut<'_, f64>,
    ) -> f64 {
        match *self.fanout_tag.get_unchecked(e) {
            FanoutTag::Const => *self.fanout_coeff.get_unchecked(e),
            FanoutTag::Gate => {
                *self.fanout_coeff.get_unchecked(e)
                    * xs.get(*self.fanout_aux.get_unchecked(e) as usize)
            }
            FanoutTag::Wire => presented.get(*self.fanout_aux.get_unchecked(e) as usize),
        }
    }

    /// One node's λ-weighted upstream accumulation streamed from the
    /// per-edge columns: bitwise identical to the kind-dispatched fanin
    /// loop of [`upstream_resistance_chunk`](Self::upstream_resistance_chunk)
    /// (same edges, same order, same expressions per resistance form).
    ///
    /// # Safety
    ///
    /// `idx < num_nodes`; `sizes.len() == num_components`; `weights` has
    /// one entry per node; lower levels are settled in `upstream`.
    #[inline(always)]
    unsafe fn upstream_acc_edges(
        &self,
        idx: usize,
        sizes: &[f64],
        weights: &[f64],
        upstream: SharedMut<'_, f64>,
    ) -> f64 {
        let mut acc = 0.0;
        for e in self.fanin_edges_unchecked(idx) {
            let p = *self.fanin_list.get_unchecked(e) as usize;
            match *self.fanin_tag.get_unchecked(e) {
                FaninTag::Skip => {}
                FaninTag::Const => {
                    acc += *weights.get_unchecked(p) * *self.fanin_ur.get_unchecked(e);
                }
                FaninTag::Div => {
                    let x = *sizes.get_unchecked(*self.fanin_aux.get_unchecked(e) as usize);
                    let r = if x > 0.0 {
                        *self.fanin_ur.get_unchecked(e) / x
                    } else {
                        f64::INFINITY
                    };
                    acc += *weights.get_unchecked(p) * r;
                }
                FaninTag::WireConst => {
                    acc += upstream.get(p)
                        + *weights.get_unchecked(p) * *self.fanin_ur.get_unchecked(e);
                }
                FaninTag::WireDiv => {
                    let x = *sizes.get_unchecked(*self.fanin_aux.get_unchecked(e) as usize);
                    let r = if x > 0.0 {
                        *self.fanin_ur.get_unchecked(e) / x
                    } else {
                        f64::INFINITY
                    };
                    acc += upstream.get(p) + *weights.get_unchecked(p) * r;
                }
            }
        }
        acc
    }

    /// As `upstream_acc_edges`, over a shared size view (fused variant,
    /// bitwise identical to the kind-dispatched loop over
    /// `resistance_shared`).
    ///
    /// # Safety
    ///
    /// As `upstream_acc_edges`, with `xs` wrapping the per-component sizes.
    #[inline(always)]
    unsafe fn upstream_acc_edges_shared(
        &self,
        idx: usize,
        xs: SharedMut<'_, f64>,
        weights: &[f64],
        upstream: SharedMut<'_, f64>,
    ) -> f64 {
        let mut acc = 0.0;
        for e in self.fanin_edges_unchecked(idx) {
            let p = *self.fanin_list.get_unchecked(e) as usize;
            match *self.fanin_tag.get_unchecked(e) {
                FaninTag::Skip => {}
                FaninTag::Const => {
                    acc += *weights.get_unchecked(p) * *self.fanin_ur.get_unchecked(e);
                }
                FaninTag::Div => {
                    let x = xs.get(*self.fanin_aux.get_unchecked(e) as usize);
                    let r = if x > 0.0 {
                        *self.fanin_ur.get_unchecked(e) / x
                    } else {
                        f64::INFINITY
                    };
                    acc += *weights.get_unchecked(p) * r;
                }
                FaninTag::WireConst => {
                    acc += upstream.get(p)
                        + *weights.get_unchecked(p) * *self.fanin_ur.get_unchecked(e);
                }
                FaninTag::WireDiv => {
                    let x = xs.get(*self.fanin_aux.get_unchecked(e) as usize);
                    let r = if x > 0.0 {
                        *self.fanin_ur.get_unchecked(e) / x
                    } else {
                        f64::INFINITY
                    };
                    acc += upstream.get(p) + *weights.get_unchecked(p) * r;
                }
            }
        }
        acc
    }

    /// `child_load` over raw slices without bounds checks.
    ///
    /// # Safety
    ///
    /// `parent` and `child` are valid node indices; `sizes.len() ==
    /// num_components`; `presented.len() == num_nodes`.
    #[inline(always)]
    unsafe fn child_load_unchecked(
        &self,
        parent: usize,
        child: usize,
        sizes: &[f64],
        presented: &[f64],
    ) -> f64 {
        match *self.kind.get_unchecked(child) {
            KindTag::Sink => *self.output_load.get_unchecked(parent),
            KindTag::Gate => self.capacitance_unchecked(child, sizes),
            KindTag::Wire => *presented.get_unchecked(child),
            // Drivers and the source can never be fanout children.
            KindTag::Driver | KindTag::Source => 0.0,
        }
    }

    /// Bytes held by the snapshot (for memory accounting).
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.kind.capacity() * size_of::<KindTag>()
            + self.comp_of.capacity() * size_of::<usize>()
            + self.node_of_comp.capacity() * size_of::<u32>()
            + (self.unit_resistance.capacity()
                + self.unit_capacitance.capacity()
                + self.fringing.capacity()
                + self.output_load.capacity())
                * size_of::<f64>()
            + (self.fanout_start.capacity()
                + self.fanout_list.capacity()
                + self.fanin_start.capacity()
                + self.fanin_list.capacity()
                + self.fanout_aux.capacity()
                + self.fanin_aux.capacity()
                + self.level_start.capacity()
                + self.level_nodes.capacity())
                * size_of::<u32>()
            + self.fanout_tag.capacity() * size_of::<FanoutTag>()
            + self.fanin_tag.capacity() * size_of::<FaninTag>()
            + (self.fanout_coeff.capacity() + self.fanin_ur.capacity()) * size_of::<f64>()
            + size_of::<Self>()
    }

    // ------------------------------------------------------------------
    // Level-chunked traversal kernels. Each processes the nodes of one
    // chunk of one topological level, with per-node arithmetic identical
    // (expression for expression) to the sequential whole-circuit methods
    // above, so a level-ordered sweep over every chunk produces bitwise
    // identical per-node results regardless of how the chunks of a level
    // are interleaved or distributed across workers.
    // ------------------------------------------------------------------

    /// One chunk of a backward (reverse-topological) downstream-capacitance
    /// rebuild: the `downstream_caps_into` arithmetic for `nodes`, which
    /// must all belong to one level whose higher levels have been fully
    /// settled.
    ///
    /// # Safety
    ///
    /// * `nodes` is a subset of one topological level of this topology, and
    ///   all levels above it are settled in `presented`;
    /// * `charged`/`presented` wrap slices of one entry per node, `extra_cap`
    ///   has one entry per node, `sizes` one entry per component;
    /// * no other borrower concurrently accesses the `charged`/`presented`
    ///   entries of `nodes` (chunks of one level are disjoint by
    ///   construction).
    pub unsafe fn downstream_caps_chunk(
        &self,
        nodes: &[u32],
        sizes: &[f64],
        extra_cap: &[f64],
        charged: SharedMut<'_, f64>,
        presented: SharedMut<'_, f64>,
    ) {
        for &idx in nodes {
            let idx = idx as usize;
            let extra = *extra_cap.get_unchecked(idx);
            match *self.kind.get_unchecked(idx) {
                KindTag::Source | KindTag::Sink => {
                    charged.set(idx, 0.0);
                    presented.set(idx, 0.0);
                }
                KindTag::Driver => {
                    let mut c = 0.0;
                    for e in self.fanout_edges_unchecked(idx) {
                        c += self.child_load_edge(e, sizes, presented);
                    }
                    c += extra;
                    charged.set(idx, c);
                    presented.set(idx, 0.0);
                }
                KindTag::Gate => {
                    let mut c = 0.0;
                    for e in self.fanout_edges_unchecked(idx) {
                        c += self.child_load_edge(e, sizes, presented);
                    }
                    c += extra;
                    charged.set(idx, c);
                    presented.set(idx, self.capacitance_unchecked(idx, sizes));
                }
                KindTag::Wire => {
                    let own = self.capacitance_unchecked(idx, sizes);
                    let mut downstream = 0.0;
                    for e in self.fanout_edges_unchecked(idx) {
                        downstream += self.child_load_edge(e, sizes, presented);
                    }
                    charged.set(idx, own / 2.0 + extra + downstream);
                    presented.set(idx, own + extra + downstream);
                }
            }
        }
    }

    /// One chunk of a forward upstream-resistance rebuild: the
    /// `upstream_resistance_into` arithmetic for `nodes`, which must all
    /// belong to one level whose lower levels have been fully settled.
    ///
    /// # Safety
    ///
    /// As [`downstream_caps_chunk`](Self::downstream_caps_chunk), with
    /// `upstream` in place of `charged`/`presented` and *lower* levels
    /// settled.
    pub unsafe fn upstream_resistance_chunk(
        &self,
        nodes: &[u32],
        sizes: &[f64],
        weights: &[f64],
        upstream: SharedMut<'_, f64>,
    ) {
        for &idx in nodes {
            let idx = idx as usize;
            let acc = self.upstream_acc_edges(idx, sizes, weights, upstream);
            upstream.set(idx, acc);
        }
    }

    /// One chunk of a backward **fused Gauss–Seidel** pass: the
    /// `fused_downstream_resize` arithmetic for `nodes` (one level, higher
    /// levels settled), resizing each sizable component through `resize` the
    /// moment its charged capacitance is known.
    ///
    /// # Safety
    ///
    /// As [`downstream_caps_chunk`](Self::downstream_caps_chunk); in
    /// addition `xs` wraps the per-component size slice and no other
    /// borrower concurrently accesses the sizes of the components of
    /// `nodes` (one node per component, so level-chunk disjointness covers
    /// this too). The `resize` closure must only touch state owned by the
    /// chunk.
    pub unsafe fn fused_downstream_chunk<F: FnMut(usize, usize, f64, f64) -> f64>(
        &self,
        nodes: &[u32],
        xs: SharedMut<'_, f64>,
        extra_cap: &[f64],
        charged: SharedMut<'_, f64>,
        presented: SharedMut<'_, f64>,
        resize: &mut F,
    ) {
        for &idx in nodes {
            let idx = idx as usize;
            let extra = *extra_cap.get_unchecked(idx);
            match *self.kind.get_unchecked(idx) {
                KindTag::Source | KindTag::Sink => {
                    charged.set(idx, 0.0);
                    presented.set(idx, 0.0);
                }
                KindTag::Driver => {
                    let mut c = 0.0;
                    for e in self.fanout_edges_unchecked(idx) {
                        c += self.child_load_edge_fused(e, xs, presented);
                    }
                    charged.set(idx, c + extra);
                    presented.set(idx, 0.0);
                }
                KindTag::Gate => {
                    let mut c = 0.0;
                    for e in self.fanout_edges_unchecked(idx) {
                        c += self.child_load_edge_fused(e, xs, presented);
                    }
                    let c = c + extra;
                    charged.set(idx, c);
                    let comp = *self.comp_of.get_unchecked(idx);
                    let x = xs.get(comp);
                    let x_new = resize(comp, idx, c, x);
                    if x_new != x {
                        xs.set(comp, x_new);
                    }
                    presented.set(idx, *self.unit_capacitance.get_unchecked(idx) * x_new);
                }
                KindTag::Wire => {
                    let mut downstream = 0.0;
                    for e in self.fanout_edges_unchecked(idx) {
                        downstream += self.child_load_edge_fused(e, xs, presented);
                    }
                    let comp = *self.comp_of.get_unchecked(idx);
                    let x = xs.get(comp);
                    let unit_cap = *self.unit_capacitance.get_unchecked(idx);
                    let fringing = *self.fringing.get_unchecked(idx);
                    let own = unit_cap * x + fringing;
                    let c = own / 2.0 + extra + downstream;
                    let x_new = resize(comp, idx, c, x);
                    if x_new != x {
                        xs.set(comp, x_new);
                        let own_new = unit_cap * x_new + fringing;
                        charged.set(idx, own_new / 2.0 + extra + downstream);
                        presented.set(idx, own_new + extra + downstream);
                    } else {
                        charged.set(idx, c);
                        presented.set(idx, own + extra + downstream);
                    }
                }
            }
        }
    }

    /// One chunk of a forward **fused Gauss–Seidel** pass: the
    /// `fused_upstream_resize` arithmetic for `nodes` (one level, lower
    /// levels settled).
    ///
    /// # Safety
    ///
    /// As [`upstream_resistance_chunk`](Self::upstream_resistance_chunk),
    /// plus the `xs` ownership contract of
    /// [`fused_downstream_chunk`](Self::fused_downstream_chunk).
    pub unsafe fn fused_upstream_chunk<F: FnMut(usize, usize, f64, f64) -> f64>(
        &self,
        nodes: &[u32],
        xs: SharedMut<'_, f64>,
        weights: &[f64],
        upstream: SharedMut<'_, f64>,
        resize: &mut F,
    ) {
        for &idx in nodes {
            let idx = idx as usize;
            let acc = self.upstream_acc_edges_shared(idx, xs, weights, upstream);
            upstream.set(idx, acc);
            let comp = *self.comp_of.get_unchecked(idx);
            if comp != NOT_SIZABLE {
                let x = xs.get(comp);
                let x_new = resize(comp, idx, acc, x);
                if x_new != x {
                    xs.set(comp, x_new);
                }
            }
        }
    }

    /// Phased variant of
    /// [`fused_downstream_chunk`](Self::fused_downstream_chunk) that exposes
    /// the whole chunk's resize candidates to the caller in one batch, so
    /// the caller can run the Theorem-5 closed form in [`LANES`]-wide
    /// blocks instead of once per node.
    ///
    /// The chunk is processed in three phases:
    ///
    /// * **A (accumulate)** — for every node, the charged-capacitance
    ///   candidate is computed exactly as the per-node kernel does (fanout
    ///   loads in CSR list order) and stashed in an on-stack slab;
    /// * **B (batch resize)** — `batch_resize(nodes, values, xs)` is called
    ///   once; for every node with a sizable component it must read
    ///   `values[k]` (the candidate of `nodes[k]`) and write the new size
    ///   through `xs`, leaving non-sizable slots alone;
    /// * **C (write back)** — charged/presented are written from the
    ///   post-resize sizes.
    ///
    /// Phasing is bitwise-legal because nodes of one level share no edge:
    /// in the per-node kernel, node `k+1`'s accumulation never reads node
    /// `k`'s size or presented load (its children live in strictly higher,
    /// already settled levels), so deferring all resizes behind all
    /// accumulations reorders no observable read or write. The wire
    /// write-back recomputes `own` from the post-resize size
    /// unconditionally; when the size did not change this repeats the exact
    /// phase-A expressions on identical inputs, so the result is bitwise
    /// identical to the per-node kernel's "unchanged" branch.
    ///
    /// # Safety
    ///
    /// As [`fused_downstream_chunk`](Self::fused_downstream_chunk); in
    /// addition `nodes.len() <= MAX_CHUNK_NODES` (asserted) and
    /// `batch_resize` must only touch the sizes of the chunk's own
    /// components.
    pub unsafe fn fused_downstream_chunk_lanes<F>(
        &self,
        nodes: &[u32],
        xs: SharedMut<'_, f64>,
        extra_cap: &[f64],
        charged: SharedMut<'_, f64>,
        presented: SharedMut<'_, f64>,
        batch_resize: &mut F,
    ) where
        F: FnMut(&[u32], &[f64], SharedMut<'_, f64>),
    {
        assert!(
            nodes.len() <= MAX_CHUNK_NODES,
            "lane kernels take at most one chunk granule of nodes"
        );
        let mut value = [0.0f64; MAX_CHUNK_NODES];
        let mut downstream_acc = [0.0f64; MAX_CHUNK_NODES];
        // Phase A: accumulate every candidate over settled higher levels.
        for (k, &idx) in nodes.iter().enumerate() {
            let idx = idx as usize;
            let extra = *extra_cap.get_unchecked(idx);
            match *self.kind.get_unchecked(idx) {
                KindTag::Source | KindTag::Sink => {
                    charged.set(idx, 0.0);
                    presented.set(idx, 0.0);
                }
                KindTag::Driver => {
                    let mut c = 0.0;
                    for e in self.fanout_edges_unchecked(idx) {
                        c += self.child_load_edge_fused(e, xs, presented);
                    }
                    charged.set(idx, c + extra);
                    presented.set(idx, 0.0);
                }
                KindTag::Gate => {
                    let mut c = 0.0;
                    for e in self.fanout_edges_unchecked(idx) {
                        c += self.child_load_edge_fused(e, xs, presented);
                    }
                    let c = c + extra;
                    charged.set(idx, c);
                    *value.get_unchecked_mut(k) = c;
                }
                KindTag::Wire => {
                    let mut downstream = 0.0;
                    for e in self.fanout_edges_unchecked(idx) {
                        downstream += self.child_load_edge_fused(e, xs, presented);
                    }
                    let comp = *self.comp_of.get_unchecked(idx);
                    let x = xs.get(comp);
                    let own = *self.unit_capacitance.get_unchecked(idx) * x
                        + *self.fringing.get_unchecked(idx);
                    *value.get_unchecked_mut(k) = own / 2.0 + extra + downstream;
                    *downstream_acc.get_unchecked_mut(k) = downstream;
                }
            }
        }
        // Phase B: one batch resize over the whole chunk.
        batch_resize(nodes, value.get_unchecked(..nodes.len()), xs);
        // Phase C: write the post-resize electrical state back.
        for (k, &idx) in nodes.iter().enumerate() {
            let idx = idx as usize;
            match *self.kind.get_unchecked(idx) {
                KindTag::Gate => {
                    let comp = *self.comp_of.get_unchecked(idx);
                    presented.set(
                        idx,
                        *self.unit_capacitance.get_unchecked(idx) * xs.get(comp),
                    );
                }
                KindTag::Wire => {
                    let comp = *self.comp_of.get_unchecked(idx);
                    let x_new = xs.get(comp);
                    let own_new = *self.unit_capacitance.get_unchecked(idx) * x_new
                        + *self.fringing.get_unchecked(idx);
                    let extra = *extra_cap.get_unchecked(idx);
                    let downstream = *downstream_acc.get_unchecked(k);
                    charged.set(idx, own_new / 2.0 + extra + downstream);
                    presented.set(idx, own_new + extra + downstream);
                }
                KindTag::Source | KindTag::Sink | KindTag::Driver => {}
            }
        }
    }

    /// Phased variant of
    /// [`fused_upstream_chunk`](Self::fused_upstream_chunk): phase A
    /// accumulates every node's λ-weighted upstream resistance (fanin CSR
    /// order, settled lower levels) into an on-stack slab and writes it
    /// through, then `batch_resize(nodes, values, xs)` resizes the whole
    /// chunk at once. The forward pass writes nothing after the resize, so
    /// there is no phase C. Bitwise-legal for the same no-intra-level-edge
    /// reason as [`fused_downstream_chunk_lanes`](Self::fused_downstream_chunk_lanes).
    ///
    /// # Safety
    ///
    /// As [`fused_upstream_chunk`](Self::fused_upstream_chunk); in addition
    /// `nodes.len() <= MAX_CHUNK_NODES` (asserted) and `batch_resize` must
    /// only touch the sizes of the chunk's own components.
    pub unsafe fn fused_upstream_chunk_lanes<F>(
        &self,
        nodes: &[u32],
        xs: SharedMut<'_, f64>,
        weights: &[f64],
        upstream: SharedMut<'_, f64>,
        batch_resize: &mut F,
    ) where
        F: FnMut(&[u32], &[f64], SharedMut<'_, f64>),
    {
        assert!(
            nodes.len() <= MAX_CHUNK_NODES,
            "lane kernels take at most one chunk granule of nodes"
        );
        let mut value = [0.0f64; MAX_CHUNK_NODES];
        for (k, &idx) in nodes.iter().enumerate() {
            let idx = idx as usize;
            let acc = self.upstream_acc_edges_shared(idx, xs, weights, upstream);
            upstream.set(idx, acc);
            *value.get_unchecked_mut(k) = acc;
        }
        batch_resize(nodes, value.get_unchecked(..nodes.len()), xs);
    }

    /// One chunk of the per-component delay evaluation (`delays_into` for a
    /// contiguous node range; delays are per-node independent, so any
    /// partition works).
    ///
    /// # Safety
    ///
    /// `range` is within the node count; no other borrower concurrently
    /// accesses the `delays` entries of `range`; slice lengths match the
    /// circuit.
    pub unsafe fn delays_chunk(
        &self,
        range: std::ops::Range<usize>,
        sizes: &[f64],
        charged: &[f64],
        delays: SharedMut<'_, f64>,
    ) {
        for idx in range {
            let d = match *self.kind.get_unchecked(idx) {
                KindTag::Source | KindTag::Sink => 0.0,
                _ => self.resistance_unchecked(idx, sizes) * *charged.get_unchecked(idx),
            };
            delays.set(idx, d);
        }
    }

    /// 4-lane variant of [`delays_chunk`](Self::delays_chunk), streaming the
    /// SoA slabs (`unit_resistance`, the caller's `node_size` mirror,
    /// `charged`) in [`LANES`]-wide blocks with a scalar tail.
    ///
    /// Bitwise identical to `delays_chunk` (and thus to `delays_into`) for
    /// every node kind, without branching on the kind tag:
    ///
    /// * gates/wires: the same `r̂ / x` (or `∞` when `x ≤ 0`) times charged;
    /// * drivers: `node_size` is `1.0`, and `r̂ / 1.0 == r̂` bitwise;
    /// * source/sink: their `unit_resistance` is `0.0` and a downstream pass
    ///   always leaves their `charged` at `0.0`, so the lane computes
    ///   `(0.0 / 1.0) * 0.0 = +0.0` — the exact value the scalar kernel
    ///   writes.
    ///
    /// # Safety
    ///
    /// As [`delays_chunk`](Self::delays_chunk); in addition `node_size` has
    /// one entry per node (filled by
    /// [`fill_node_sizes`](Self::fill_node_sizes) from the sizes `charged`
    /// was computed with) and `charged` holds a downstream-caps result
    /// (source/sink entries zero).
    pub unsafe fn delays_chunk_lanes(
        &self,
        range: std::ops::Range<usize>,
        node_size: &[f64],
        charged: &[f64],
        delays: SharedMut<'_, f64>,
    ) {
        let mut idx = range.start;
        while idx + LANES <= range.end {
            let mut d = [0.0f64; LANES];
            for (j, slot) in d.iter_mut().enumerate() {
                let i = idx + j;
                let ur = *self.unit_resistance.get_unchecked(i);
                let x = *node_size.get_unchecked(i);
                let r = if x > 0.0 { ur / x } else { f64::INFINITY };
                *slot = r * *charged.get_unchecked(i);
            }
            for (j, &slot) in d.iter().enumerate() {
                delays.set(idx + j, slot);
            }
            idx += LANES;
        }
        for i in idx..range.end {
            let ur = *self.unit_resistance.get_unchecked(i);
            let x = *node_size.get_unchecked(i);
            let r = if x > 0.0 { ur / x } else { f64::INFINITY };
            delays.set(i, r * *charged.get_unchecked(i));
        }
    }

    /// One chunk of a forward arrival-time propagation: the
    /// `propagate_arrivals` recurrence (same fanin order, same `>=`
    /// tie-breaking) for `nodes`, which must all belong to one level whose
    /// lower levels have settled arrivals. Critical-path extraction is the
    /// caller's sequential epilogue over `pred`.
    ///
    /// # Safety
    ///
    /// As [`upstream_resistance_chunk`](Self::upstream_resistance_chunk),
    /// with `arrival`/`pred` owned per node.
    pub unsafe fn arrivals_chunk(
        &self,
        nodes: &[u32],
        delays: &[f64],
        arrival: SharedMut<'_, f64>,
        pred: SharedMut<'_, usize>,
    ) {
        for &idx in nodes {
            let idx = idx as usize;
            pred.set(idx, NO_PRED);
            match *self.kind.get_unchecked(idx) {
                KindTag::Source => arrival.set(idx, 0.0),
                KindTag::Sink => {
                    let mut best = 0.0;
                    let mut best_pred = NO_PRED;
                    for &j in self.fanin_unchecked(idx) {
                        let j = j as usize;
                        if arrival.get(j) >= best {
                            best = arrival.get(j);
                            best_pred = j;
                        }
                    }
                    arrival.set(idx, best);
                    pred.set(idx, best_pred);
                }
                KindTag::Driver => {
                    arrival.set(idx, *delays.get_unchecked(idx));
                }
                KindTag::Gate | KindTag::Wire => {
                    let mut best = 0.0;
                    let mut best_pred = NO_PRED;
                    for &j in self.fanin_unchecked(idx) {
                        let j = j as usize;
                        if matches!(*self.kind.get_unchecked(j), KindTag::Source) {
                            continue;
                        }
                        if arrival.get(j) >= best {
                            best = arrival.get(j);
                            best_pred = j;
                        }
                    }
                    arrival.set(idx, best + *delays.get_unchecked(idx));
                    pred.set(idx, best_pred);
                }
            }
        }
    }
}

/// The Elmore delay model of the paper's Section 2.1 (stage-bounded RC
/// stages, wire π-model), evaluated over a [`CircuitTopology`]. See the
/// crate-level documentation for the modelling conventions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ElmoreModel;

impl DelayModel for ElmoreModel {
    type State = CircuitTopology;

    fn prepare(&self, graph: &CircuitGraph) -> CircuitTopology {
        CircuitTopology::new(graph)
    }

    fn state_memory_bytes(&self, state: &CircuitTopology) -> usize {
        state.memory_bytes()
    }

    fn dense_topology<'s>(&self, state: &'s CircuitTopology) -> Option<&'s CircuitTopology> {
        Some(state)
    }

    fn downstream_caps_into(
        &self,
        topo: &CircuitTopology,
        sizes: &SizeVector,
        extra_cap: Option<&[f64]>,
        charged: &mut [f64],
        presented: &mut [f64],
    ) {
        let n = topo.num_nodes();
        topo.assert_node_slices(&[("charged", charged.len()), ("presented", presented.len())]);
        assert_eq!(
            sizes.len(),
            topo.num_components,
            "sizes must match the circuit"
        );
        if let Some(extra) = extra_cap {
            topo.assert_node_slices(&[("extra_cap", extra.len())]);
        }
        let sizes = sizes.as_slice();

        for idx in (0..n).rev() {
            // SAFETY: `idx < n`, all slice lengths asserted above, and every
            // index stored in the topology is in range by construction.
            unsafe {
                let extra = extra_cap.map(|e| *e.get_unchecked(idx)).unwrap_or(0.0);
                match *topo.kind.get_unchecked(idx) {
                    KindTag::Source | KindTag::Sink => {
                        *charged.get_unchecked_mut(idx) = 0.0;
                        *presented.get_unchecked_mut(idx) = 0.0;
                    }
                    KindTag::Driver => {
                        let mut c = 0.0;
                        for &child in topo.fanout_unchecked(idx) {
                            c += topo.child_load_unchecked(idx, child as usize, sizes, presented);
                        }
                        c += extra;
                        *charged.get_unchecked_mut(idx) = c;
                        *presented.get_unchecked_mut(idx) = 0.0;
                    }
                    KindTag::Gate => {
                        let mut c = 0.0;
                        for &child in topo.fanout_unchecked(idx) {
                            c += topo.child_load_unchecked(idx, child as usize, sizes, presented);
                        }
                        // Coupling on a gate output (rare, but allowed) loads the stage.
                        c += extra;
                        *charged.get_unchecked_mut(idx) = c;
                        *presented.get_unchecked_mut(idx) = topo.capacitance_unchecked(idx, sizes);
                    }
                    KindTag::Wire => {
                        let own = topo.capacitance_unchecked(idx, sizes);
                        let mut downstream = 0.0;
                        for &child in topo.fanout_unchecked(idx) {
                            downstream +=
                                topo.child_load_unchecked(idx, child as usize, sizes, presented);
                        }
                        // π-model: the far half of the wire's own capacitance plus
                        // all coupling capacitance is charged through r_i.
                        *charged.get_unchecked_mut(idx) = own / 2.0 + extra + downstream;
                        // The full wire capacitance loads everything upstream.
                        *presented.get_unchecked_mut(idx) = own + extra + downstream;
                    }
                }
            }
        }
    }

    fn upstream_resistance_into(
        &self,
        topo: &CircuitTopology,
        sizes: &SizeVector,
        weights: &[f64],
        upstream: &mut [f64],
    ) {
        let n = topo.num_nodes();
        topo.assert_node_slices(&[("weights", weights.len()), ("upstream", upstream.len())]);
        assert_eq!(
            sizes.len(),
            topo.num_components,
            "sizes must match the circuit"
        );
        let sizes = sizes.as_slice();
        for idx in 0..n {
            // SAFETY: `idx < n`, all slice lengths asserted above, and every
            // index stored in the topology is in range by construction.
            unsafe {
                let mut acc = 0.0;
                for &pred in topo.fanin_unchecked(idx) {
                    let p = pred as usize;
                    match *topo.kind.get_unchecked(p) {
                        KindTag::Source => {}
                        KindTag::Driver | KindTag::Gate => {
                            acc += *weights.get_unchecked(p) * topo.resistance_unchecked(p, sizes);
                        }
                        KindTag::Wire => {
                            acc += *upstream.get_unchecked(p)
                                + *weights.get_unchecked(p) * topo.resistance_unchecked(p, sizes);
                        }
                        KindTag::Sink => unreachable!("sink has no fanout"),
                    }
                }
                *upstream.get_unchecked_mut(idx) = acc;
            }
        }
    }

    fn delays_into(
        &self,
        topo: &CircuitTopology,
        sizes: &SizeVector,
        charged: &[f64],
        delays: &mut [f64],
    ) {
        let n = topo.num_nodes();
        topo.assert_node_slices(&[("charged", charged.len()), ("delays", delays.len())]);
        assert_eq!(
            sizes.len(),
            topo.num_components,
            "sizes must match the circuit"
        );
        let sizes = sizes.as_slice();
        for idx in 0..n {
            // SAFETY: `idx < n`, slice lengths asserted above.
            unsafe {
                *delays.get_unchecked_mut(idx) = match *topo.kind.get_unchecked(idx) {
                    KindTag::Source | KindTag::Sink => 0.0,
                    _ => topo.resistance_unchecked(idx, sizes) * *charged.get_unchecked(idx),
                };
            }
        }
    }

    fn supports_incremental(&self) -> bool {
        true
    }

    fn supports_fused(&self) -> bool {
        true
    }

    /// CSR arrival propagation: the same per-kind recurrence as
    /// [`propagate_arrivals_into`], traversing the dense topology instead
    /// of the pointer-rich graph — bitwise identical (same node order, same
    /// fanin order, same `>=` tie-breaking).
    fn propagate_arrivals(
        &self,
        topo: &CircuitTopology,
        graph: &CircuitGraph,
        delays: &[f64],
        arrival: &mut [f64],
        pred: &mut [usize],
        critical_path: &mut Vec<NodeId>,
    ) -> f64 {
        let n = topo.num_nodes();
        topo.assert_node_slices(&[
            ("delays", delays.len()),
            ("arrival", arrival.len()),
            ("pred", pred.len()),
        ]);
        for idx in 0..n {
            // SAFETY: `idx < n`, slice lengths asserted above, and every
            // index stored in the topology is in range by construction.
            unsafe {
                *pred.get_unchecked_mut(idx) = NO_PRED;
                match *topo.kind.get_unchecked(idx) {
                    KindTag::Source => *arrival.get_unchecked_mut(idx) = 0.0,
                    KindTag::Sink => {
                        let mut best = 0.0;
                        let mut best_pred = NO_PRED;
                        for &j in topo.fanin_unchecked(idx) {
                            let j = j as usize;
                            if *arrival.get_unchecked(j) >= best {
                                best = *arrival.get_unchecked(j);
                                best_pred = j;
                            }
                        }
                        *arrival.get_unchecked_mut(idx) = best;
                        *pred.get_unchecked_mut(idx) = best_pred;
                    }
                    KindTag::Driver => {
                        *arrival.get_unchecked_mut(idx) = *delays.get_unchecked(idx);
                    }
                    KindTag::Gate | KindTag::Wire => {
                        let mut best = 0.0;
                        let mut best_pred = NO_PRED;
                        for &j in topo.fanin_unchecked(idx) {
                            let j = j as usize;
                            if matches!(*topo.kind.get_unchecked(j), KindTag::Source) {
                                continue;
                            }
                            if *arrival.get_unchecked(j) >= best {
                                best = *arrival.get_unchecked(j);
                                best_pred = j;
                            }
                        }
                        *arrival.get_unchecked_mut(idx) = best + *delays.get_unchecked(idx);
                        *pred.get_unchecked_mut(idx) = best_pred;
                    }
                }
            }
        }

        let critical_path_delay = arrival[graph.sink().index()];
        critical_path.clear();
        let mut cursor = pred[graph.sink().index()];
        while cursor != NO_PRED {
            critical_path.push(NodeId::new(cursor));
            cursor = pred[cursor];
        }
        critical_path.reverse();
        critical_path_delay
    }

    /// Sparse downstream-capacitance update: the capacitance change of every
    /// resized component and every coupling-load delta is scattered onto its
    /// node and propagated upstream along the fanin DAG, in reverse
    /// topological (descending node index) order, touching only the
    /// perturbed subgraph.
    fn downstream_caps_update(
        &self,
        topo: &CircuitTopology,
        sizes: &SizeVector,
        prev_sizes: &[f64],
        changed_comps: &[u32],
        extra_cap: &[f64],
        extra_delta: &[(u32, f64)],
        charged: &mut [f64],
        presented: &mut [f64],
        inc: &mut IncrementalWorkspace,
    ) {
        let n = topo.num_nodes();
        topo.assert_node_slices(&[
            ("charged", charged.len()),
            ("presented", presented.len()),
            ("extra_cap", extra_cap.len()),
        ]);
        assert_eq!(sizes.len(), topo.num_components);
        assert_eq!(prev_sizes.len(), topo.num_components);
        inc.assert_sized(n);
        let sizes = sizes.as_slice();

        // Seed the worklist: own-capacitance deltas of the resized
        // components, plus the coupling-load deltas already applied to the
        // extra-capacitance table.
        for &comp in changed_comps {
            let comp = comp as usize;
            let idx = topo.node_of_component(comp);
            inc.own[idx] += topo.unit_capacitance[idx] * (sizes[comp] - prev_sizes[comp]);
            if !inc.queued[idx] {
                inc.queued[idx] = true;
                inc.down_heap.push(idx as u32);
            }
        }
        for &(node, delta) in extra_delta {
            let idx = node as usize;
            inc.extra[idx] += delta;
            if !inc.queued[idx] {
                inc.queued[idx] = true;
                inc.down_heap.push(idx as u32);
            }
        }

        // Propagate in descending node-index order (nodes are stored in
        // topological order, so every fanout child has a larger index than
        // its parents and has settled before the parent is popped).
        while let Some(idx) = inc.down_heap.pop() {
            let idx = idx as usize;
            inc.queued[idx] = false;
            let own = std::mem::take(&mut inc.own[idx]);
            let extra = std::mem::take(&mut inc.extra[idx]);
            let incoming = std::mem::take(&mut inc.pending[idx]);
            // `dc` is the change of the capacitance charged through the
            // node's resistance, `dp` the change of the load the node
            // presents to its stage parents — mirroring the per-kind
            // arithmetic of `downstream_caps_into` (a gate's presented load
            // is its own capacitance, so `dp = own` there).
            let (dc, dp) = match topo.kind[idx] {
                KindTag::Source | KindTag::Sink => (0.0, 0.0),
                KindTag::Driver => (incoming + extra, 0.0),
                KindTag::Gate => (incoming + extra, own),
                KindTag::Wire => (own / 2.0 + extra + incoming, own + extra + incoming),
            };
            charged[idx] += dc;
            presented[idx] += dp;
            if dp != 0.0 {
                for &parent in topo.fanin(idx) {
                    let p = parent as usize;
                    if matches!(topo.kind[p], KindTag::Source) {
                        continue;
                    }
                    inc.pending[p] += dp;
                    if !inc.queued[p] {
                        inc.queued[p] = true;
                        inc.down_heap.push(parent);
                    }
                }
            }
        }
    }

    /// The Gauss–Seidel fused sweep over the dense topology: one reverse
    /// pass computing `charged`/`presented` bottom-up from the freshly
    /// resized downstream state, resizing each sizable component the moment
    /// its charged capacitance is known.
    fn fused_downstream_resize<F: FnMut(usize, usize, f64, f64) -> f64>(
        &self,
        topo: &CircuitTopology,
        sizes: &mut SizeVector,
        extra_cap: &[f64],
        charged: &mut [f64],
        presented: &mut [f64],
        resize: &mut F,
    ) -> bool {
        let n = topo.num_nodes();
        topo.assert_node_slices(&[
            ("extra_cap", extra_cap.len()),
            ("charged", charged.len()),
            ("presented", presented.len()),
        ]);
        assert_eq!(
            sizes.len(),
            topo.num_components,
            "sizes must match the circuit"
        );
        let xs = sizes.as_mut_slice();
        for idx in (0..n).rev() {
            // SAFETY: `idx < n`, slice lengths asserted above, and every
            // index stored in the topology is in range by construction.
            unsafe {
                let extra = *extra_cap.get_unchecked(idx);
                match *topo.kind.get_unchecked(idx) {
                    KindTag::Source | KindTag::Sink => {
                        *charged.get_unchecked_mut(idx) = 0.0;
                        *presented.get_unchecked_mut(idx) = 0.0;
                    }
                    KindTag::Driver => {
                        let mut c = 0.0;
                        for &child in topo.fanout_unchecked(idx) {
                            c += topo.child_load_unchecked(idx, child as usize, xs, presented);
                        }
                        *charged.get_unchecked_mut(idx) = c + extra;
                        *presented.get_unchecked_mut(idx) = 0.0;
                    }
                    KindTag::Gate => {
                        let mut c = 0.0;
                        for &child in topo.fanout_unchecked(idx) {
                            c += topo.child_load_unchecked(idx, child as usize, xs, presented);
                        }
                        let c = c + extra;
                        *charged.get_unchecked_mut(idx) = c;
                        let comp = *topo.comp_of.get_unchecked(idx);
                        let x = *xs.get_unchecked(comp);
                        let x_new = resize(comp, idx, c, x);
                        if x_new != x {
                            *xs.get_unchecked_mut(comp) = x_new;
                        }
                        *presented.get_unchecked_mut(idx) =
                            *topo.unit_capacitance.get_unchecked(idx) * x_new;
                    }
                    KindTag::Wire => {
                        let mut downstream = 0.0;
                        for &child in topo.fanout_unchecked(idx) {
                            downstream +=
                                topo.child_load_unchecked(idx, child as usize, xs, presented);
                        }
                        let comp = *topo.comp_of.get_unchecked(idx);
                        let x = *xs.get_unchecked(comp);
                        let unit_cap = *topo.unit_capacitance.get_unchecked(idx);
                        let fringing = *topo.fringing.get_unchecked(idx);
                        let own = unit_cap * x + fringing;
                        // π-model split, exactly as `downstream_caps_into`.
                        let c = own / 2.0 + extra + downstream;
                        let x_new = resize(comp, idx, c, x);
                        if x_new != x {
                            *xs.get_unchecked_mut(comp) = x_new;
                            let own_new = unit_cap * x_new + fringing;
                            *charged.get_unchecked_mut(idx) = own_new / 2.0 + extra + downstream;
                            *presented.get_unchecked_mut(idx) = own_new + extra + downstream;
                        } else {
                            *charged.get_unchecked_mut(idx) = c;
                            *presented.get_unchecked_mut(idx) = own + extra + downstream;
                        }
                    }
                }
            }
        }
        true
    }

    /// The forward fused pass: upstream resistances accumulate over the
    /// freshly resized upstream state, each component resized the moment
    /// its weighted upstream resistance is known.
    fn fused_upstream_resize<F: FnMut(usize, usize, f64, f64) -> f64>(
        &self,
        topo: &CircuitTopology,
        sizes: &mut SizeVector,
        weights: &[f64],
        upstream: &mut [f64],
        resize: &mut F,
    ) -> bool {
        let n = topo.num_nodes();
        topo.assert_node_slices(&[("weights", weights.len()), ("upstream", upstream.len())]);
        assert_eq!(
            sizes.len(),
            topo.num_components,
            "sizes must match the circuit"
        );
        let xs = sizes.as_mut_slice();
        for idx in 0..n {
            // SAFETY: `idx < n`, slice lengths asserted above, and every
            // index stored in the topology is in range by construction.
            unsafe {
                // Accumulate exactly as `upstream_resistance_into`, but over
                // the current (partially resized) sizes.
                let mut acc = 0.0;
                for &pred in topo.fanin_unchecked(idx) {
                    let p = pred as usize;
                    match *topo.kind.get_unchecked(p) {
                        KindTag::Source | KindTag::Sink => {}
                        KindTag::Driver | KindTag::Gate => {
                            acc += *weights.get_unchecked(p) * topo.resistance_unchecked(p, xs);
                        }
                        KindTag::Wire => {
                            acc += *upstream.get_unchecked(p)
                                + *weights.get_unchecked(p) * topo.resistance_unchecked(p, xs);
                        }
                    }
                }
                *upstream.get_unchecked_mut(idx) = acc;
                let comp = *topo.comp_of.get_unchecked(idx);
                if comp != NOT_SIZABLE {
                    let x = *xs.get_unchecked(comp);
                    let x_new = resize(comp, idx, acc, x);
                    if x_new != x {
                        *xs.get_unchecked_mut(comp) = x_new;
                    }
                }
            }
        }
        true
    }

    /// Sparse upstream-resistance update: the resistance change of every
    /// resized component is propagated downstream along the fanout DAG in
    /// forward topological (ascending node index) order. The weights must be
    /// the ones the current table was computed with.
    fn upstream_resistance_update(
        &self,
        topo: &CircuitTopology,
        sizes: &SizeVector,
        prev_sizes: &[f64],
        changed_comps: &[u32],
        weights: &[f64],
        upstream: &mut [f64],
        inc: &mut IncrementalWorkspace,
    ) {
        let n = topo.num_nodes();
        topo.assert_node_slices(&[("weights", weights.len()), ("upstream", upstream.len())]);
        assert_eq!(sizes.len(), topo.num_components);
        assert_eq!(prev_sizes.len(), topo.num_components);
        inc.assert_sized(n);
        let sizes = sizes.as_slice();

        // Seed: resistance deltas of the resized components (`own` doubles
        // as the per-node resistance delta in this pass).
        for &comp in changed_comps {
            let comp = comp as usize;
            let idx = topo.node_of_component(comp);
            let r_new = if sizes[comp] > 0.0 {
                topo.unit_resistance[idx] / sizes[comp]
            } else {
                f64::INFINITY
            };
            let r_old = if prev_sizes[comp] > 0.0 {
                topo.unit_resistance[idx] / prev_sizes[comp]
            } else {
                f64::INFINITY
            };
            inc.own[idx] += r_new - r_old;
            if !inc.queued[idx] {
                inc.queued[idx] = true;
                inc.up_heap.push(Reverse(idx as u32));
            }
        }

        // Ascending order: every fanin parent has settled before a node is
        // popped, so each node is processed exactly once.
        while let Some(Reverse(idx)) = inc.up_heap.pop() {
            let idx = idx as usize;
            inc.queued[idx] = false;
            let d_r = std::mem::take(&mut inc.own[idx]);
            let d_up = std::mem::take(&mut inc.pending[idx]);
            upstream[idx] += d_up;
            // Change of this node's contribution to each fanout child's
            // upstream sum: its weighted resistance delta, plus (for wires)
            // its own upstream change, mirroring `upstream_resistance_into`.
            let d_contrib = match topo.kind[idx] {
                KindTag::Source | KindTag::Sink => 0.0,
                KindTag::Driver | KindTag::Gate => weights[idx] * d_r,
                KindTag::Wire => weights[idx] * d_r + d_up,
            };
            if d_contrib != 0.0 {
                for &child in topo.fanout(idx) {
                    let c = child as usize;
                    inc.pending[c] += d_contrib;
                    if !inc.queued[c] {
                        inc.queued[c] = true;
                        inc.up_heap.push(Reverse(child));
                    }
                }
            }
        }
    }
}

/// Pre-sized dense scratch buffers for one circuit, reused across every
/// evaluation so the hot loops never touch the allocator.
///
/// Per-node buffers are indexed by raw node index, per-component buffers by
/// the graph's dense component index. The workspace is deliberately dumb —
/// all semantics live in the [`DelayModel`] backends and the solvers that
/// drive them.
#[derive(Debug, Clone)]
pub struct EvalWorkspace {
    /// `C_i` per node: capacitance charged through the node's resistance.
    pub charged: Vec<f64>,
    /// Load each node presents to its stage parent, per node.
    pub presented: Vec<f64>,
    /// λ-weighted upstream resistance `R_i` per node.
    pub upstream: Vec<f64>,
    /// Extra (coupling) capacitance per node, filled by the coupling layer.
    pub extra_cap: Vec<f64>,
    /// Per-component Elmore delays `D_i`, per node.
    pub delays: Vec<f64>,
    /// Arrival times `a_i` per node.
    pub arrival: Vec<f64>,
    /// Node delay weights `λ_i` per node.
    pub node_weights: Vec<f64>,
    /// Node-indexed mirror of the component sizes (`1.0` for non-sizable
    /// nodes), filled by [`CircuitTopology::fill_node_sizes`] — the SoA
    /// gather the 4-lane delay kernel streams instead of indirecting
    /// through `comp_of` per node. Lane-padded to a multiple of [`LANES`]
    /// (pad entries stay `1.0`), so a full lane block may read past the
    /// node count without leaving the slab.
    pub node_size: Vec<f64>,
    /// Previous-sweep sizes scratch, per dense component index.
    pub prev_sizes: Vec<f64>,
    /// Critical-path predecessor per node ([`NO_PRED`] when none).
    pub pred: Vec<usize>,
    /// One critical path (driver → primary-output driver); capacity is
    /// reserved for the longest possible path so pushes never reallocate.
    pub critical_path: Vec<NodeId>,
}

impl EvalWorkspace {
    /// Creates a workspace sized for `graph`.
    pub fn new(graph: &CircuitGraph) -> Self {
        let n = graph.num_nodes();
        EvalWorkspace {
            charged: vec![0.0; n],
            presented: vec![0.0; n],
            upstream: vec![0.0; n],
            extra_cap: vec![0.0; n],
            delays: vec![0.0; n],
            arrival: vec![0.0; n],
            node_weights: vec![0.0; n],
            node_size: vec![1.0; lane_padded(n)],
            prev_sizes: vec![0.0; graph.num_components()],
            pred: vec![NO_PRED; n],
            critical_path: Vec::with_capacity(n),
        }
    }

    /// Total bytes held by the workspace buffers (for memory accounting).
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.charged.capacity()
            + self.presented.capacity()
            + self.upstream.capacity()
            + self.extra_cap.capacity()
            + self.delays.capacity()
            + self.arrival.capacity()
            + self.node_weights.capacity()
            + self.node_size.capacity()
            + self.prev_sizes.capacity())
            * size_of::<f64>()
            + self.pred.capacity() * size_of::<usize>()
            + self.critical_path.capacity() * size_of::<NodeId>()
            + size_of::<Self>()
    }
}

/// Propagates arrival times from precomputed delays and extracts one
/// critical path, writing only into the provided buffers. Returns the
/// critical-path delay.
///
/// This is the allocation-free core of
/// [`TimingAnalysis::from_delays`](crate::TimingAnalysis::from_delays); it is
/// shared by both the reference and engine paths (arrival propagation is
/// model-independent and runs once per outer iteration, not per sweep).
///
/// # Panics
///
/// Panics in debug builds when a slice length does not match the circuit.
pub fn propagate_arrivals_into(
    graph: &CircuitGraph,
    delays: &[f64],
    arrival: &mut [f64],
    pred: &mut [usize],
    critical_path: &mut Vec<NodeId>,
) -> f64 {
    let n = graph.num_nodes();
    debug_assert_eq!(delays.len(), n);
    debug_assert_eq!(arrival.len(), n);
    debug_assert_eq!(pred.len(), n);

    for id in graph.node_ids() {
        let idx = id.index();
        pred[idx] = NO_PRED;
        match graph.node(id).kind {
            NodeKind::Source => arrival[idx] = 0.0,
            NodeKind::Sink => {
                let mut best = 0.0;
                let mut best_pred = NO_PRED;
                for &j in graph.fanin(id) {
                    if arrival[j.index()] >= best {
                        best = arrival[j.index()];
                        best_pred = j.index();
                    }
                }
                arrival[idx] = best;
                pred[idx] = best_pred;
            }
            NodeKind::Driver => {
                arrival[idx] = delays[idx];
            }
            NodeKind::Gate(_) | NodeKind::Wire => {
                let mut best = 0.0;
                let mut best_pred = NO_PRED;
                for &j in graph.fanin(id) {
                    if j == graph.source() {
                        continue;
                    }
                    if arrival[j.index()] >= best {
                        best = arrival[j.index()];
                        best_pred = j.index();
                    }
                }
                arrival[idx] = best + delays[idx];
                pred[idx] = best_pred;
            }
        }
    }

    let critical_path_delay = arrival[graph.sink().index()];
    critical_path.clear();
    let mut cursor = pred[graph.sink().index()];
    while cursor != NO_PRED {
        critical_path.push(NodeId::new(cursor));
        cursor = pred[cursor];
    }
    critical_path.reverse();
    critical_path_delay
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::elmore::ElmoreAnalyzer;
    use crate::node::GateKind;
    use crate::tech::Technology;
    use crate::timing::TimingAnalysis;

    fn chain() -> CircuitGraph {
        let mut b = CircuitBuilder::new(Technology::dac99());
        let d = b.add_driver("d", 100.0).unwrap();
        let d2 = b.add_driver("d2", 80.0).unwrap();
        let w1 = b.add_wire("w1", 100.0).unwrap();
        let w2 = b.add_wire("w2", 150.0).unwrap();
        let g1 = b.add_gate("g1", GateKind::Nand).unwrap();
        let w3 = b.add_wire("w3", 200.0).unwrap();
        b.connect(d, w1).unwrap();
        b.connect(d2, w2).unwrap();
        b.connect(w1, g1).unwrap();
        b.connect(w2, g1).unwrap();
        b.connect(g1, w3).unwrap();
        b.connect_output(w3, 5.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn model_matches_analyzer_bitwise() {
        let c = chain();
        let sizes = c.uniform_sizes(1.3);
        let analyzer = ElmoreAnalyzer::new(&c);
        let mut ws = EvalWorkspace::new(&c);
        let model = ElmoreModel;
        let topo = model.prepare(&c);

        let mut extra = vec![0.0; c.num_nodes()];
        extra[c.node_by_name("w1").unwrap().index()] = 3.5;

        let caps = analyzer.downstream_caps(&sizes, Some(&extra));
        model.downstream_caps_into(
            &topo,
            &sizes,
            Some(&extra),
            &mut ws.charged,
            &mut ws.presented,
        );
        assert_eq!(caps.charged, ws.charged);
        assert_eq!(caps.presented, ws.presented);

        let weights = vec![0.7; c.num_nodes()];
        let upstream = analyzer.weighted_upstream_resistance(&sizes, &weights);
        model.upstream_resistance_into(&topo, &sizes, &weights, &mut ws.upstream);
        assert_eq!(upstream, ws.upstream);

        let delays = analyzer.delays(&sizes, Some(&extra));
        model.delays_into(&topo, &sizes, &ws.charged, &mut ws.delays);
        assert_eq!(delays, ws.delays);
    }

    #[test]
    fn arrival_propagation_matches_timing_analysis() {
        let c = chain();
        let sizes = c.uniform_sizes(2.0);
        let reference = TimingAnalysis::run(&c, &sizes, None);

        let mut ws = EvalWorkspace::new(&c);
        let model = ElmoreModel;
        let topo = model.prepare(&c);
        model.downstream_caps_into(&topo, &sizes, None, &mut ws.charged, &mut ws.presented);
        model.delays_into(&topo, &sizes, &ws.charged, &mut ws.delays);

        let delay = propagate_arrivals_into(
            &c,
            &ws.delays,
            &mut ws.arrival,
            &mut ws.pred,
            &mut ws.critical_path,
        );
        assert_eq!(delay, reference.critical_path_delay);
        assert_eq!(ws.arrival, reference.arrival.values);
        assert_eq!(ws.critical_path, reference.critical_path);
    }

    #[test]
    fn topology_mirrors_graph_adjacency() {
        let c = chain();
        let topo = CircuitTopology::new(&c);
        assert_eq!(topo.num_nodes(), c.num_nodes());
        for id in c.node_ids() {
            let fanout: Vec<usize> = topo
                .fanout(id.index())
                .iter()
                .map(|&x| x as usize)
                .collect();
            let expected: Vec<usize> = c.fanout(id).iter().map(|n| n.index()).collect();
            assert_eq!(fanout, expected);
            let fanin: Vec<usize> = topo.fanin(id.index()).iter().map(|&x| x as usize).collect();
            let expected: Vec<usize> = c.fanin(id).iter().map(|n| n.index()).collect();
            assert_eq!(fanin, expected);
        }
        let sizes = c.uniform_sizes(1.7);
        for id in c.node_ids() {
            assert_eq!(
                topo.resistance(id.index(), &sizes),
                c.resistance(id, &sizes)
            );
            assert_eq!(
                topo.capacitance(id.index(), &sizes),
                c.capacitance(id, &sizes)
            );
        }
        assert!(topo.memory_bytes() > 0);
    }

    #[test]
    fn incremental_updates_match_full_rebuild() {
        let c = chain();
        let model = ElmoreModel;
        assert!(model.supports_incremental());
        let topo = model.prepare(&c);
        let n = c.num_nodes();
        let mut inc = IncrementalWorkspace::new(n);

        let prev = c.uniform_sizes(1.0);
        let mut extra = vec![0.0; n];
        let w1 = c.node_by_name("w1").unwrap().index();
        extra[w1] = 2.0;

        // Full state at the previous sizes.
        let mut charged = vec![0.0; n];
        let mut presented = vec![0.0; n];
        model.downstream_caps_into(&topo, &prev, Some(&extra), &mut charged, &mut presented);
        let weights = vec![0.4; n];
        let mut upstream = vec![0.0; n];
        model.upstream_resistance_into(&topo, &prev, &weights, &mut upstream);

        // Perturb two components and one coupling load.
        let mut sizes = prev.clone();
        let comp_a = c.component_index(c.node_by_name("w2").unwrap()).unwrap();
        let comp_b = c.component_index(c.node_by_name("g1").unwrap()).unwrap();
        sizes[comp_a] = 3.5;
        sizes[comp_b] = 0.7;
        let changed = [comp_a as u32, comp_b as u32];
        let extra_delta = [(w1 as u32, 1.25)];
        extra[w1] += 1.25;

        model.downstream_caps_update(
            &topo,
            &sizes,
            prev.as_slice(),
            &changed,
            &extra,
            &extra_delta,
            &mut charged,
            &mut presented,
            &mut inc,
        );
        model.upstream_resistance_update(
            &topo,
            &sizes,
            prev.as_slice(),
            &changed,
            &weights,
            &mut upstream,
            &mut inc,
        );

        let mut full_charged = vec![0.0; n];
        let mut full_presented = vec![0.0; n];
        model.downstream_caps_into(
            &topo,
            &sizes,
            Some(&extra),
            &mut full_charged,
            &mut full_presented,
        );
        let mut full_upstream = vec![0.0; n];
        model.upstream_resistance_into(&topo, &sizes, &weights, &mut full_upstream);

        for i in 0..n {
            assert!(
                (charged[i] - full_charged[i]).abs() <= 1e-9 * full_charged[i].abs().max(1.0),
                "charged[{i}]: {} vs {}",
                charged[i],
                full_charged[i]
            );
            assert!(
                (presented[i] - full_presented[i]).abs() <= 1e-9 * full_presented[i].abs().max(1.0),
                "presented[{i}]: {} vs {}",
                presented[i],
                full_presented[i]
            );
            assert!(
                (upstream[i] - full_upstream[i]).abs() <= 1e-9 * full_upstream[i].abs().max(1.0),
                "upstream[{i}]: {} vs {}",
                upstream[i],
                full_upstream[i]
            );
        }
        assert!(inc.memory_bytes() > 0);
    }

    #[test]
    fn incremental_noop_update_changes_nothing() {
        let c = chain();
        let model = ElmoreModel;
        let topo = model.prepare(&c);
        let n = c.num_nodes();
        let mut inc = IncrementalWorkspace::new(n);
        let sizes = c.uniform_sizes(1.6);
        let extra = vec![0.0; n];

        let mut charged = vec![0.0; n];
        let mut presented = vec![0.0; n];
        model.downstream_caps_into(&topo, &sizes, Some(&extra), &mut charged, &mut presented);
        let before = charged.clone();
        model.downstream_caps_update(
            &topo,
            &sizes,
            sizes.as_slice(),
            &[],
            &extra,
            &[],
            &mut charged,
            &mut presented,
            &mut inc,
        );
        assert_eq!(charged, before, "empty dirty set must be a no-op");
    }

    #[test]
    fn level_partition_upholds_its_invariant() {
        let c = chain();
        let topo = CircuitTopology::new(&c);
        // The partition covers every node exactly once...
        let mut seen = vec![false; c.num_nodes()];
        let mut level_of = vec![0usize; c.num_nodes()];
        for l in 0..topo.num_levels() {
            let nodes = topo.level(l);
            assert!(!nodes.is_empty(), "levels are non-empty by construction");
            // ...in ascending raw-index order within each level.
            assert!(nodes.windows(2).all(|w| w[0] < w[1]));
            for &idx in nodes {
                assert!(!seen[idx as usize], "node {idx} appears twice");
                seen[idx as usize] = true;
                level_of[idx as usize] = l;
            }
        }
        assert!(seen.iter().all(|&s| s), "every node has a level");
        // Every edge crosses levels strictly upward, so nodes of one level
        // share no fanin/fanout edge.
        for idx in 0..c.num_nodes() {
            for &child in topo.fanout(idx) {
                assert!(
                    level_of[child as usize] > level_of[idx],
                    "edge {idx} -> {child} must cross levels strictly upward"
                );
            }
        }
    }

    /// Drives the chunk kernels over the level partition (chunks of at most
    /// two nodes) and checks the result is bitwise identical to the
    /// sequential whole-circuit traversals.
    #[test]
    fn chunk_kernels_match_sequential_traversals_bitwise() {
        let c = chain();
        let model = ElmoreModel;
        let topo = model.prepare(&c);
        let n = c.num_nodes();
        let sizes = c.uniform_sizes(1.7);
        let mut extra = vec![0.0; n];
        extra[c.node_by_name("w1").unwrap().index()] = 2.5;
        let weights = vec![0.6; n];

        // Sequential reference.
        let mut ws = EvalWorkspace::new(&c);
        model.downstream_caps_into(
            &topo,
            &sizes,
            Some(&extra),
            &mut ws.charged,
            &mut ws.presented,
        );
        model.upstream_resistance_into(&topo, &sizes, &weights, &mut ws.upstream);
        model.delays_into(&topo, &sizes, &ws.charged, &mut ws.delays);
        let reference_delay = model.propagate_arrivals(
            &topo,
            &c,
            &ws.delays,
            &mut ws.arrival,
            &mut ws.pred,
            &mut ws.critical_path,
        );

        // Chunked: levels in dependency order, each level in chunks of 2.
        let mut charged = vec![0.0; n];
        let mut presented = vec![0.0; n];
        let mut upstream = vec![0.0; n];
        let mut delays = vec![0.0; n];
        let mut arrival = vec![0.0; n];
        let mut pred = vec![NO_PRED; n];
        {
            let charged_s = SharedMut::new(&mut charged);
            let presented_s = SharedMut::new(&mut presented);
            for l in (0..topo.num_levels()).rev() {
                for chunk in topo.level(l).chunks(2) {
                    // SAFETY: chunks of one level are disjoint; levels are
                    // processed in reverse dependency order.
                    unsafe {
                        topo.downstream_caps_chunk(
                            chunk,
                            sizes.as_slice(),
                            &extra,
                            charged_s,
                            presented_s,
                        );
                    }
                }
            }
            let upstream_s = SharedMut::new(&mut upstream);
            let delays_s = SharedMut::new(&mut delays);
            let arrival_s = SharedMut::new(&mut arrival);
            let pred_s = SharedMut::new(&mut pred);
            for l in 0..topo.num_levels() {
                for chunk in topo.level(l).chunks(2) {
                    // SAFETY: as above, forward dependency order.
                    unsafe {
                        topo.upstream_resistance_chunk(
                            chunk,
                            sizes.as_slice(),
                            &weights,
                            upstream_s,
                        );
                    }
                }
            }
            // SAFETY: per-node independent.
            unsafe { topo.delays_chunk(0..n, sizes.as_slice(), &charged, delays_s) };
            for l in 0..topo.num_levels() {
                for chunk in topo.level(l).chunks(2) {
                    // SAFETY: forward dependency order.
                    unsafe { topo.arrivals_chunk(chunk, &delays, arrival_s, pred_s) };
                }
            }
        }
        assert_eq!(charged, ws.charged);
        assert_eq!(presented, ws.presented);
        assert_eq!(upstream, ws.upstream);
        assert_eq!(delays, ws.delays);
        assert_eq!(arrival, ws.arrival);
        assert_eq!(pred, ws.pred);
        assert_eq!(arrival[c.sink().index()], reference_delay);
    }

    /// The fused chunk kernels, driven level by level with a greedy resize
    /// closure, match the sequential fused passes bitwise.
    #[test]
    fn fused_chunk_kernels_match_sequential_fused_passes() {
        let c = chain();
        let model = ElmoreModel;
        let topo = model.prepare(&c);
        let n = c.num_nodes();
        let extra = vec![0.1; n];
        let weights = vec![0.4; n];
        let resize = |_comp: usize, _node: usize, value: f64, x: f64| -> f64 {
            // A deterministic, value-dependent resize exercising the
            // in-sweep freshness.
            (x * 0.5 + value.sqrt().min(4.0) * 0.5).clamp(0.2, 8.0)
        };

        // Sequential fused passes.
        let mut seq_sizes = c.uniform_sizes(1.0);
        let mut seq_charged = vec![0.0; n];
        let mut seq_presented = vec![0.0; n];
        assert!(model.fused_downstream_resize(
            &topo,
            &mut seq_sizes,
            &extra,
            &mut seq_charged,
            &mut seq_presented,
            &mut { resize },
        ));
        let mut seq_upstream = vec![0.0; n];
        assert!(model.fused_upstream_resize(
            &topo,
            &mut seq_sizes,
            &weights,
            &mut seq_upstream,
            &mut { resize },
        ));

        // Chunked fused passes over the level partition.
        let mut par_sizes = c.uniform_sizes(1.0);
        let mut par_charged = vec![0.0; n];
        let mut par_presented = vec![0.0; n];
        let mut par_upstream = vec![0.0; n];
        {
            let xs = SharedMut::new(par_sizes.as_mut_slice());
            let charged_s = SharedMut::new(&mut par_charged);
            let presented_s = SharedMut::new(&mut par_presented);
            for l in (0..topo.num_levels()).rev() {
                for chunk in topo.level(l).chunks(2) {
                    // SAFETY: chunks of one level are disjoint; reverse
                    // dependency order.
                    unsafe {
                        topo.fused_downstream_chunk(
                            chunk,
                            xs,
                            &extra,
                            charged_s,
                            presented_s,
                            &mut { resize },
                        );
                    }
                }
            }
            let upstream_s = SharedMut::new(&mut par_upstream);
            for l in 0..topo.num_levels() {
                for chunk in topo.level(l).chunks(2) {
                    // SAFETY: forward dependency order.
                    unsafe {
                        topo.fused_upstream_chunk(chunk, xs, &weights, upstream_s, &mut { resize });
                    }
                }
            }
        }
        assert_eq!(par_sizes, seq_sizes);
        assert_eq!(par_charged, seq_charged);
        assert_eq!(par_presented, seq_presented);
        assert_eq!(par_upstream, seq_upstream);
    }

    #[test]
    fn topology_maps_components_to_nodes() {
        let c = chain();
        let topo = CircuitTopology::new(&c);
        for id in c.component_ids() {
            let comp = c.component_index(id).unwrap();
            assert_eq!(topo.node_of_component(comp), id.index());
        }
    }

    #[test]
    fn workspace_buffers_are_sized_for_the_circuit() {
        let c = chain();
        let ws = EvalWorkspace::new(&c);
        assert_eq!(ws.charged.len(), c.num_nodes());
        assert_eq!(ws.prev_sizes.len(), c.num_components());
        assert!(ws.critical_path.capacity() >= c.num_nodes());
        assert!(ws.memory_bytes() > 0);
    }

    /// The lane-padded node-size slab covers every node, rounds up to whole
    /// lane blocks, keeps `1.0` in the pad, and is charged to the memory
    /// accounting (mirrors the PR 4 engine accounting test one layer down).
    #[test]
    fn lane_padded_node_size_slab_is_sized_and_accounted() {
        let c = chain();
        let topo = CircuitTopology::new(&c);
        let mut ws = EvalWorkspace::new(&c);
        let n = c.num_nodes();
        assert_eq!(ws.node_size.len(), lane_padded(n));
        assert_eq!(ws.node_size.len() % LANES, 0);
        assert!(ws.node_size.len() >= n && ws.node_size.len() < n + LANES);

        let sizes = c.uniform_sizes(2.5);
        topo.fill_node_sizes(sizes.as_slice(), &mut ws.node_size);
        for idx in 0..n {
            assert_eq!(ws.node_size[idx], topo.size_of(idx, &sizes));
        }
        for &pad in &ws.node_size[n..] {
            assert_eq!(pad, 1.0, "lane padding must stay at the neutral size");
        }

        // The slab (padding included) is part of the accounted footprint.
        let mut bare = ws.clone();
        bare.node_size = Vec::new();
        assert!(
            ws.memory_bytes() >= bare.memory_bytes() + lane_padded(n) * std::mem::size_of::<f64>(),
            "memory accounting must cover the lane-padded slab"
        );
    }

    /// The 4-lane delay kernel is bitwise identical to `delays_into` for
    /// every node kind and for every lane remainder `n % LANES` (the range
    /// split exercises all tail shapes).
    #[test]
    fn lane_delay_kernel_matches_sequential_delays_bitwise() {
        let c = chain();
        let model = ElmoreModel;
        let topo = model.prepare(&c);
        let n = c.num_nodes();
        let sizes = c.uniform_sizes(1.7);
        let mut ws = EvalWorkspace::new(&c);
        model.downstream_caps_into(&topo, &sizes, None, &mut ws.charged, &mut ws.presented);
        model.delays_into(&topo, &sizes, &ws.charged, &mut ws.delays);

        topo.fill_node_sizes(sizes.as_slice(), &mut ws.node_size);
        for split in 0..=n {
            let mut delays = vec![f64::NAN; n];
            {
                let delays_s = SharedMut::new(&mut delays);
                // SAFETY: disjoint ranges, slabs sized for the circuit.
                unsafe {
                    topo.delays_chunk_lanes(0..split, &ws.node_size, &ws.charged, delays_s);
                    topo.delays_chunk_lanes(split..n, &ws.node_size, &ws.charged, delays_s);
                }
            }
            assert_eq!(delays, ws.delays, "split at {split}");
        }
    }

    /// The phased (batch-resize) fused kernels match the sequential fused
    /// passes bitwise, chunk size 2 exercising odd lane remainders.
    #[test]
    fn fused_lane_chunk_kernels_match_sequential_fused_passes() {
        let c = chain();
        let model = ElmoreModel;
        let topo = model.prepare(&c);
        let n = c.num_nodes();
        let extra = vec![0.1; n];
        let weights = vec![0.4; n];
        let resize = |_comp: usize, value: f64, x: f64| -> f64 {
            (x * 0.5 + value.sqrt().min(4.0) * 0.5).clamp(0.2, 8.0)
        };

        // Sequential fused passes (the oracle).
        let mut seq_sizes = c.uniform_sizes(1.0);
        let mut seq_charged = vec![0.0; n];
        let mut seq_presented = vec![0.0; n];
        assert!(model.fused_downstream_resize(
            &topo,
            &mut seq_sizes,
            &extra,
            &mut seq_charged,
            &mut seq_presented,
            &mut |comp, _node, value, x| resize(comp, value, x),
        ));
        let mut seq_upstream = vec![0.0; n];
        assert!(model.fused_upstream_resize(
            &topo,
            &mut seq_sizes,
            &weights,
            &mut seq_upstream,
            &mut |comp, _node, value, x| resize(comp, value, x),
        ));

        // Phased lane kernels over the level partition.
        let mut batch = |nodes: &[u32], values: &[f64], xs: SharedMut<'_, f64>| {
            for (k, &idx) in nodes.iter().enumerate() {
                if let Some(comp) = topo.component_of(idx as usize) {
                    // SAFETY: one node per component, chunk-owned.
                    unsafe {
                        let x = xs.get(comp);
                        let x_new = resize(comp, values[k], x);
                        if x_new != x {
                            xs.set(comp, x_new);
                        }
                    }
                }
            }
        };
        let mut lane_sizes = c.uniform_sizes(1.0);
        let mut lane_charged = vec![0.0; n];
        let mut lane_presented = vec![0.0; n];
        let mut lane_upstream = vec![0.0; n];
        {
            let xs = SharedMut::new(lane_sizes.as_mut_slice());
            let charged_s = SharedMut::new(&mut lane_charged);
            let presented_s = SharedMut::new(&mut lane_presented);
            for l in (0..topo.num_levels()).rev() {
                for chunk in topo.level(l).chunks(2) {
                    // SAFETY: chunks of one level are disjoint; reverse
                    // dependency order.
                    unsafe {
                        topo.fused_downstream_chunk_lanes(
                            chunk,
                            xs,
                            &extra,
                            charged_s,
                            presented_s,
                            &mut batch,
                        );
                    }
                }
            }
            let upstream_s = SharedMut::new(&mut lane_upstream);
            for l in 0..topo.num_levels() {
                for chunk in topo.level(l).chunks(2) {
                    // SAFETY: forward dependency order.
                    unsafe {
                        topo.fused_upstream_chunk_lanes(
                            chunk, xs, &weights, upstream_s, &mut batch,
                        );
                    }
                }
            }
        }
        assert_eq!(lane_sizes, seq_sizes);
        assert_eq!(lane_charged, seq_charged);
        assert_eq!(lane_presented, seq_presented);
        assert_eq!(lane_upstream, seq_upstream);
    }
}
