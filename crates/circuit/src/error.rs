//! Error type for circuit construction and analysis.

use std::fmt;

use crate::id::NodeId;

/// Errors produced while building or analyzing a circuit.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// An edge refers to a node that does not exist.
    UnknownNode(NodeId),
    /// An edge would connect a node to itself.
    SelfLoop(NodeId),
    /// The same edge was added twice.
    DuplicateEdge(NodeId, NodeId),
    /// An edge is not allowed between the two node kinds
    /// (e.g. a driver directly feeding a gate without a wire).
    InvalidConnection {
        /// Tail of the offending edge.
        from: NodeId,
        /// Head of the offending edge.
        to: NodeId,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// The graph contains a cycle, so it is not a combinational circuit.
    CyclicGraph,
    /// A component has no fanin (other than drivers, which are fed by the source).
    DanglingInput(NodeId),
    /// A component has no fanout (other than primary outputs, which feed the sink).
    DanglingOutput(NodeId),
    /// A numeric parameter was non-positive or non-finite where it must be positive.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A size vector has the wrong length for the circuit.
    SizeLengthMismatch {
        /// Expected number of components.
        expected: usize,
        /// Provided length.
        actual: usize,
    },
    /// Size bounds are inverted (lower > upper) for a component.
    InvalidBounds {
        /// The offending node.
        node: NodeId,
        /// Lower bound.
        lower: f64,
        /// Upper bound.
        upper: f64,
    },
    /// The circuit has no primary outputs connected to the sink.
    NoPrimaryOutputs,
    /// The circuit has no input drivers.
    NoDrivers,
    /// A duplicate component name was used.
    DuplicateName(String),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::UnknownNode(id) => write!(f, "unknown node {id}"),
            CircuitError::SelfLoop(id) => write!(f, "self loop on node {id}"),
            CircuitError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} -> {b}"),
            CircuitError::InvalidConnection { from, to, reason } => {
                write!(f, "invalid connection {from} -> {to}: {reason}")
            }
            CircuitError::CyclicGraph => write!(f, "circuit graph contains a cycle"),
            CircuitError::DanglingInput(id) => write!(f, "component {id} has no fanin"),
            CircuitError::DanglingOutput(id) => write!(f, "component {id} has no fanout"),
            CircuitError::InvalidParameter { name, value } => {
                write!(
                    f,
                    "parameter {name} must be positive and finite, got {value}"
                )
            }
            CircuitError::SizeLengthMismatch { expected, actual } => {
                write!(
                    f,
                    "size vector length {actual} does not match {expected} components"
                )
            }
            CircuitError::InvalidBounds { node, lower, upper } => {
                write!(f, "node {node} has inverted size bounds [{lower}, {upper}]")
            }
            CircuitError::NoPrimaryOutputs => write!(f, "circuit has no primary outputs"),
            CircuitError::NoDrivers => write!(f, "circuit has no input drivers"),
            CircuitError::DuplicateName(name) => write!(f, "duplicate component name {name:?}"),
        }
    }
}

impl std::error::Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            CircuitError::UnknownNode(NodeId::new(3)),
            CircuitError::SelfLoop(NodeId::new(1)),
            CircuitError::DuplicateEdge(NodeId::new(1), NodeId::new(2)),
            CircuitError::CyclicGraph,
            CircuitError::DanglingInput(NodeId::new(5)),
            CircuitError::DanglingOutput(NodeId::new(6)),
            CircuitError::InvalidParameter {
                name: "length",
                value: -1.0,
            },
            CircuitError::SizeLengthMismatch {
                expected: 4,
                actual: 2,
            },
            CircuitError::InvalidBounds {
                node: NodeId::new(2),
                lower: 3.0,
                upper: 1.0,
            },
            CircuitError::NoPrimaryOutputs,
            CircuitError::NoDrivers,
            CircuitError::DuplicateName("w1".to_string()),
        ];
        for err in errors {
            let text = err.to_string();
            assert!(!text.is_empty());
            assert!(text.chars().next().unwrap().is_lowercase() || text.starts_with("parameter"));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CircuitError>();
    }
}
