//! Upstream / downstream traversals.
//!
//! The paper defines `upstream(i)` as every node (other than `i`) on a path
//! from node `i` back to a reachable driver, and `downstream(i)` as every node
//! on a path from `i` to a reachable load. For electrical analysis we also
//! need the *stage-bounded* variants, which stop at gate boundaries: a gate's
//! input capacitance terminates the RC stage driving it, and the gate's output
//! starts a new stage.

use std::collections::BTreeSet;

use crate::graph::CircuitGraph;
use crate::id::NodeId;

/// Every node other than `i` on a path from `i` back to a reachable driver
/// (the paper's `upstream(i)`), excluding the artificial source.
pub fn upstream_full(graph: &CircuitGraph, id: NodeId) -> BTreeSet<NodeId> {
    let mut out = BTreeSet::new();
    let mut stack: Vec<NodeId> = graph.fanin(id).to_vec();
    while let Some(u) = stack.pop() {
        if u == graph.source() || !out.insert(u) {
            continue;
        }
        stack.extend_from_slice(graph.fanin(u));
    }
    out
}

/// Every node on a path from `i` to a reachable load (the paper's
/// `downstream(i)`), excluding the artificial sink but including `i` itself,
/// mirroring the paper's example `downstream(2) = {2, 5, 7}`.
pub fn downstream_full(graph: &CircuitGraph, id: NodeId) -> BTreeSet<NodeId> {
    let mut out = BTreeSet::new();
    let mut stack: Vec<NodeId> = vec![id];
    while let Some(u) = stack.pop() {
        if u == graph.sink() || !out.insert(u) {
            continue;
        }
        stack.extend_from_slice(graph.fanout(u));
    }
    out
}

/// The stage-bounded upstream of node `i`: the wires between `i` and the
/// driver/gate output that drives its stage, plus that stage root itself.
///
/// These are exactly the components whose Elmore downstream capacitance `C_k`
/// contains node `i`'s capacitance, so they are the resistances that appear in
/// the weighted upstream resistance `R_i` of Theorem 5.
pub fn upstream_stage(graph: &CircuitGraph, id: NodeId) -> BTreeSet<NodeId> {
    let mut out = BTreeSet::new();
    let mut stack: Vec<NodeId> = graph.fanin(id).to_vec();
    while let Some(u) = stack.pop() {
        if u == graph.source() || !out.insert(u) {
            continue;
        }
        // A gate or driver is a stage root: include it but do not cross it.
        if !graph.is_stage_root(u) {
            stack.extend_from_slice(graph.fanin(u));
        }
    }
    out
}

/// The stage-bounded downstream of node `i`: the wire subtree hanging from
/// `i`'s output plus the gate inputs and primary-output sink attachment that
/// terminate it. Gates are included (their input capacitance loads the stage)
/// but not crossed.
pub fn downstream_stage(graph: &CircuitGraph, id: NodeId) -> BTreeSet<NodeId> {
    let mut out = BTreeSet::new();
    let mut stack: Vec<NodeId> = graph.fanout(id).to_vec();
    while let Some(u) = stack.pop() {
        if u == graph.sink() || !out.insert(u) {
            continue;
        }
        if !graph.node(u).kind.is_gate() {
            stack.extend_from_slice(graph.fanout(u));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::node::GateKind;
    use crate::tech::Technology;

    /// driver d -> w1 -> g1 -> w2 -> w3(branch) -> g2 -> w4 -> out
    ///                              \-> w5 -> out2
    fn branching() -> CircuitGraph {
        let mut b = CircuitBuilder::new(Technology::dac99());
        let d = b.add_driver("d", 100.0).unwrap();
        let w1 = b.add_wire("w1", 10.0).unwrap();
        let g1 = b.add_gate("g1", GateKind::Inv).unwrap();
        let w2 = b.add_wire("w2", 10.0).unwrap();
        let w3 = b.add_wire("w3", 10.0).unwrap();
        let w5 = b.add_wire("w5", 10.0).unwrap();
        let g2 = b.add_gate("g2", GateKind::Buf).unwrap();
        let w4 = b.add_wire("w4", 10.0).unwrap();
        b.connect(d, w1).unwrap();
        b.connect(w1, g1).unwrap();
        b.connect(g1, w2).unwrap();
        b.connect(w2, w3).unwrap();
        b.connect(w2, w5).unwrap();
        b.connect(w3, g2).unwrap();
        b.connect(g2, w4).unwrap();
        b.connect_output(w4, 5.0).unwrap();
        b.connect_output(w5, 5.0).unwrap();
        b.build().unwrap()
    }

    fn id(c: &CircuitGraph, name: &str) -> NodeId {
        c.node_by_name(name).unwrap()
    }

    #[test]
    fn full_upstream_reaches_drivers_through_gates() {
        let c = branching();
        let up = upstream_full(&c, id(&c, "w4"));
        for name in ["g2", "w3", "w2", "g1", "w1", "d"] {
            assert!(
                up.contains(&id(&c, name)),
                "{name} should be upstream of w4"
            );
        }
        assert!(!up.contains(&id(&c, "w5")));
        assert!(!up.contains(&c.source()));
    }

    #[test]
    fn full_downstream_reaches_loads_through_gates() {
        let c = branching();
        let down = downstream_full(&c, id(&c, "w2"));
        for name in ["w2", "w3", "w5", "g2", "w4"] {
            assert!(
                down.contains(&id(&c, name)),
                "{name} should be downstream of w2"
            );
        }
        assert!(!down.contains(&id(&c, "w1")));
        assert!(!down.contains(&c.sink()));
    }

    #[test]
    fn stage_upstream_stops_at_gate() {
        let c = branching();
        // w3 is in the stage driven by g1: upstream within the stage is {w2, g1}.
        let up = upstream_stage(&c, id(&c, "w3"));
        assert!(up.contains(&id(&c, "w2")));
        assert!(up.contains(&id(&c, "g1")));
        assert!(
            !up.contains(&id(&c, "w1")),
            "must not cross the stage root g1"
        );
        assert!(!up.contains(&id(&c, "d")));
    }

    #[test]
    fn stage_downstream_stops_at_gate_inputs() {
        let c = branching();
        let down = downstream_stage(&c, id(&c, "g1"));
        // Stage of g1: wires w2, w3, w5 and the terminating gate g2.
        for name in ["w2", "w3", "w5", "g2"] {
            assert!(
                down.contains(&id(&c, name)),
                "{name} should be in g1's stage"
            );
        }
        assert!(!down.contains(&id(&c, "w4")), "w4 is behind gate g2");
    }

    #[test]
    fn driver_stage_matches_first_wire_tree() {
        let c = branching();
        let down = downstream_stage(&c, id(&c, "d"));
        assert!(down.contains(&id(&c, "w1")));
        assert!(down.contains(&id(&c, "g1")));
        assert!(!down.contains(&id(&c, "w2")));
    }

    #[test]
    fn upstream_of_driver_is_empty() {
        let c = branching();
        assert!(upstream_full(&c, id(&c, "d")).is_empty());
        assert!(upstream_stage(&c, id(&c, "d")).is_empty());
    }
}
