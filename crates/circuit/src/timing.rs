//! Arrival times, critical path and slack analysis.
//!
//! The paper's problem `PP` replaces the exponential path enumeration with
//! one arrival-time variable `a_i` per node and the constraints
//!
//! * `D_i ≤ a_i` for the input drivers,
//! * `a_j + D_i ≤ a_i` for every component `i` and every `j ∈ input(i)`,
//! * `a_j ≤ A_0` for every `j ∈ input(~t)` (the primary outputs).
//!
//! [`TimingAnalysis`] computes the tightest arrival times (the usual static
//! timing analysis forward propagation), the critical path delay and the
//! critical path itself.

use serde::{Deserialize, Serialize};

use crate::elmore::ElmoreAnalyzer;
use crate::graph::CircuitGraph;
use crate::id::NodeId;
use crate::node::NodeKind;
use crate::sizing::SizeVector;

/// Arrival times for every node of a circuit under a particular sizing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalTimes {
    /// Arrival time `a_i` per raw node index (0 for source; the sink holds
    /// the circuit delay).
    pub values: Vec<f64>,
}

impl ArrivalTimes {
    /// Arrival time of a node.
    pub fn of(&self, id: NodeId) -> f64 {
        self.values[id.index()]
    }
}

/// Complete timing picture of a circuit under a particular sizing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingAnalysis {
    /// Per-component Elmore delays `D_i` (raw node index).
    pub delays: Vec<f64>,
    /// Tightest arrival times `a_i` (raw node index).
    pub arrival: ArrivalTimes,
    /// Delay of the critical path (the circuit delay `D`).
    pub critical_path_delay: f64,
    /// The nodes of one critical path, from a driver to a primary output.
    pub critical_path: Vec<NodeId>,
}

impl TimingAnalysis {
    /// Runs delay computation and arrival-time propagation for the circuit
    /// under `sizes`, with optional per-node extra (coupling) capacitance.
    pub fn run(
        graph: &CircuitGraph,
        sizes: &SizeVector,
        extra_cap: Option<&[f64]>,
    ) -> TimingAnalysis {
        let analyzer = ElmoreAnalyzer::new(graph);
        let delays = analyzer.delays(sizes, extra_cap);
        Self::from_delays(graph, delays)
    }

    /// Builds the timing picture from precomputed per-component delays.
    ///
    /// Allocates its result vectors; the allocation-free equivalent is
    /// [`propagate_arrivals_into`](crate::propagate_arrivals_into) with an
    /// [`EvalWorkspace`](crate::EvalWorkspace), which this delegates to.
    pub fn from_delays(graph: &CircuitGraph, delays: Vec<f64>) -> TimingAnalysis {
        let n = graph.num_nodes();
        debug_assert_eq!(delays.len(), n);
        let mut arrival = vec![0.0_f64; n];
        let mut pred = vec![crate::engine::NO_PRED; n];
        let mut path = Vec::new();
        let critical_path_delay = crate::engine::propagate_arrivals_into(
            graph,
            &delays,
            &mut arrival,
            &mut pred,
            &mut path,
        );

        TimingAnalysis {
            delays,
            arrival: ArrivalTimes { values: arrival },
            critical_path_delay,
            critical_path: path,
        }
    }

    /// Slack of every node against a circuit delay bound `a0`:
    /// `slack_i = required_i − a_i`, where required times propagate backwards
    /// from `a0` at the primary outputs. Negative slack marks nodes on paths
    /// that violate the bound.
    pub fn slacks(&self, graph: &CircuitGraph, a0: f64) -> Vec<f64> {
        let n = graph.num_nodes();
        let mut required = vec![f64::INFINITY; n];
        required[graph.sink().index()] = a0;
        for id in graph.node_ids().collect::<Vec<_>>().into_iter().rev() {
            let idx = id.index();
            match graph.node(id).kind {
                NodeKind::Sink => {}
                NodeKind::Source => {
                    required[idx] = graph
                        .fanout(id)
                        .iter()
                        .map(|&k| required[k.index()] - self.delays[k.index()])
                        .fold(f64::INFINITY, f64::min);
                }
                _ => {
                    let mut req = f64::INFINITY;
                    for &k in graph.fanout(id) {
                        let r = if k == graph.sink() {
                            a0
                        } else {
                            required[k.index()] - self.delays[k.index()]
                        };
                        req = req.min(r);
                    }
                    required[idx] = req;
                }
            }
        }
        (0..n)
            .map(|i| required[i] - self.arrival.values[i])
            .collect()
    }

    /// The worst (smallest) slack over the primary outputs for bound `a0`.
    /// Non-negative exactly when the circuit meets the delay bound.
    pub fn worst_slack(&self, a0: f64) -> f64 {
        a0 - self.critical_path_delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::node::GateKind;
    use crate::tech::Technology;

    /// Two-input circuit with reconvergence:
    /// d1 -> w1 -> g (nand) -> w3 -> out
    /// d2 -> w2 ---^
    fn reconvergent(len1: f64, len2: f64) -> CircuitGraph {
        let mut b = CircuitBuilder::new(Technology::dac99());
        let d1 = b.add_driver("d1", 100.0).unwrap();
        let d2 = b.add_driver("d2", 100.0).unwrap();
        let w1 = b.add_wire("w1", len1).unwrap();
        let w2 = b.add_wire("w2", len2).unwrap();
        let g = b.add_gate("g", GateKind::Nand).unwrap();
        let w3 = b.add_wire("w3", 50.0).unwrap();
        b.connect(d1, w1).unwrap();
        b.connect(d2, w2).unwrap();
        b.connect(w1, g).unwrap();
        b.connect(w2, g).unwrap();
        b.connect(g, w3).unwrap();
        b.connect_output(w3, 4.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn arrival_times_take_the_max_over_fanin() {
        let c = reconvergent(50.0, 400.0);
        let sizes = c.uniform_sizes(1.0);
        let t = TimingAnalysis::run(&c, &sizes, None);
        let g = c.node_by_name("g").unwrap();
        let w1 = c.node_by_name("w1").unwrap();
        let w2 = c.node_by_name("w2").unwrap();
        assert!(
            t.arrival.of(w2) > t.arrival.of(w1),
            "longer wire arrives later"
        );
        let expected = t.arrival.of(w2) + t.delays[g.index()];
        assert!((t.arrival.of(g) - expected).abs() < 1e-9);
    }

    #[test]
    fn critical_path_follows_the_slow_branch() {
        let c = reconvergent(50.0, 400.0);
        let sizes = c.uniform_sizes(1.0);
        let t = TimingAnalysis::run(&c, &sizes, None);
        let w2 = c.node_by_name("w2").unwrap();
        let w1 = c.node_by_name("w1").unwrap();
        assert!(t.critical_path.contains(&w2));
        assert!(!t.critical_path.contains(&w1));
        // Path runs from a driver to the primary-output driver.
        let first = *t.critical_path.first().unwrap();
        let last = *t.critical_path.last().unwrap();
        assert!(c.node(first).kind.is_driver());
        assert!(c.drives_primary_output(last));
    }

    #[test]
    fn critical_delay_equals_sum_of_path_delays() {
        let c = reconvergent(120.0, 300.0);
        let sizes = c.uniform_sizes(1.0);
        let t = TimingAnalysis::run(&c, &sizes, None);
        let sum: f64 = t.critical_path.iter().map(|&id| t.delays[id.index()]).sum();
        assert!((sum - t.critical_path_delay).abs() < 1e-9);
    }

    #[test]
    fn arrival_satisfies_constraint_form() {
        // a_j + D_i <= a_i must hold with equality on at least one fanin.
        let c = reconvergent(80.0, 80.0);
        let sizes = c.uniform_sizes(1.0);
        let t = TimingAnalysis::run(&c, &sizes, None);
        for i in c.component_ids() {
            let mut any_tight = false;
            for &j in c.fanin(i) {
                if j == c.source() {
                    continue;
                }
                let lhs = t.arrival.of(j) + t.delays[i.index()];
                assert!(lhs <= t.arrival.of(i) + 1e-9);
                if (lhs - t.arrival.of(i)).abs() < 1e-9 {
                    any_tight = true;
                }
            }
            if !c.fanin(i).iter().all(|&j| j == c.source()) {
                assert!(
                    any_tight,
                    "at least one fanin constraint must be tight at {i}"
                );
            }
        }
    }

    #[test]
    fn slack_sign_matches_bound() {
        let c = reconvergent(100.0, 100.0);
        let sizes = c.uniform_sizes(1.0);
        let t = TimingAnalysis::run(&c, &sizes, None);
        let d = t.critical_path_delay;
        assert!(t.worst_slack(d * 1.1) > 0.0);
        assert!(t.worst_slack(d * 0.9) < 0.0);
        let slacks = t.slacks(&c, d);
        // With the bound exactly at the critical delay, the critical nodes
        // have (close to) zero slack and nothing is very negative.
        let min = slacks
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                !matches!(
                    c.node(NodeId::new(*i)).kind,
                    NodeKind::Source | NodeKind::Sink
                )
            })
            .map(|(_, &s)| s)
            .fold(f64::INFINITY, f64::min);
        assert!(min.abs() < 1e-6);
    }

    #[test]
    fn delay_bound_violations_show_as_negative_slack() {
        let c = reconvergent(100.0, 500.0);
        let sizes = c.uniform_sizes(1.0);
        let t = TimingAnalysis::run(&c, &sizes, None);
        let slacks = t.slacks(&c, t.critical_path_delay * 0.5);
        let w2 = c.node_by_name("w2").unwrap();
        assert!(slacks[w2.index()] < 0.0);
    }
}
