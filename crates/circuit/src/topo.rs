//! Topological ordering helpers.
//!
//! By construction ([`CircuitBuilder`](crate::CircuitBuilder)) node indices
//! are already a topological order, so the forward order is simply
//! `0..num_nodes` and the reverse order is its mirror. The type exists to
//! make traversal direction explicit at call sites and to re-verify the
//! invariant cheaply in debug builds.

use crate::graph::CircuitGraph;
use crate::id::NodeId;

/// A verified topological ordering of a circuit graph.
#[derive(Debug, Clone)]
pub struct TopologicalOrder {
    order: Vec<NodeId>,
}

impl TopologicalOrder {
    /// Computes (and in debug builds verifies) the topological order of the
    /// graph. Because the builder indexes nodes topologically this is the
    /// identity permutation.
    pub fn of(graph: &CircuitGraph) -> Self {
        let order: Vec<NodeId> = graph.node_ids().collect();
        debug_assert!(
            Self::is_valid(graph, &order),
            "builder produced non-topological indexing"
        );
        TopologicalOrder { order }
    }

    fn is_valid(graph: &CircuitGraph, order: &[NodeId]) -> bool {
        let mut position = vec![0usize; graph.num_nodes()];
        for (pos, &id) in order.iter().enumerate() {
            position[id.index()] = pos;
        }
        graph.node_ids().all(|u| {
            graph
                .fanout(u)
                .iter()
                .all(|&v| position[u.index()] < position[v.index()])
        })
    }

    /// Nodes in forward (source-to-sink) topological order.
    pub fn forward(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.order.iter().copied()
    }

    /// Nodes in reverse (sink-to-source) topological order.
    pub fn reverse(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.order.iter().rev().copied()
    }

    /// Number of nodes in the ordering.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Returns `true` if the ordering is empty (never the case for a built circuit).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Longest path length (in edges) from source to sink — the logic depth
    /// of the circuit plus the driver and sink hops.
    pub fn longest_path_len(&self, graph: &CircuitGraph) -> usize {
        let mut dist = vec![0usize; graph.num_nodes()];
        for id in self.forward() {
            for &succ in graph.fanout(id) {
                dist[succ.index()] = dist[succ.index()].max(dist[id.index()] + 1);
            }
        }
        dist[graph.sink().index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::node::GateKind;
    use crate::tech::Technology;

    fn chain(depth: usize) -> CircuitGraph {
        let mut b = CircuitBuilder::new(Technology::dac99());
        let d = b.add_driver("d", 100.0).unwrap();
        let mut prev = b.add_wire("w0", 10.0).unwrap();
        b.connect(d, prev).unwrap();
        for i in 0..depth {
            let g = b.add_gate(&format!("g{i}"), GateKind::Inv).unwrap();
            let w = b.add_wire(&format!("w{}", i + 1), 10.0).unwrap();
            b.connect(prev, g).unwrap();
            b.connect(g, w).unwrap();
            prev = w;
        }
        b.connect_output(prev, 5.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn forward_and_reverse_are_mirrors() {
        let c = chain(3);
        let topo = TopologicalOrder::of(&c);
        let fwd: Vec<_> = topo.forward().collect();
        let mut rev: Vec<_> = topo.reverse().collect();
        rev.reverse();
        assert_eq!(fwd, rev);
        assert_eq!(topo.len(), c.num_nodes());
        assert!(!topo.is_empty());
    }

    #[test]
    fn order_respects_edges() {
        let c = chain(5);
        let topo = TopologicalOrder::of(&c);
        let pos: Vec<usize> = {
            let mut p = vec![0; c.num_nodes()];
            for (i, id) in topo.forward().enumerate() {
                p[id.index()] = i;
            }
            p
        };
        for u in c.node_ids() {
            for &v in c.fanout(u) {
                assert!(pos[u.index()] < pos[v.index()]);
            }
        }
    }

    #[test]
    fn longest_path_matches_chain_depth() {
        // driver -> w0 -> (g,w) * depth -> sink
        // edges: source->driver (1), driver->w0 (1), per stage 2 edges, w_last->sink (1).
        let depth = 4;
        let c = chain(depth);
        let topo = TopologicalOrder::of(&c);
        assert_eq!(topo.longest_path_len(&c), 2 * depth + 3);
    }
}
