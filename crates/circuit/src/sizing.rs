//! Size vectors for the sizable components of a circuit.

use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

/// A dense vector of component sizes `x = (x_{s+1}, …, x_{n+s})`, indexed by
/// the dense component index (`0..n`) of a
/// [`CircuitGraph`](crate::CircuitGraph).
///
/// The vector is deliberately decoupled from the graph so the sizing engine
/// can hold several candidate solutions without cloning the circuit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SizeVector {
    values: Vec<f64>,
}

impl SizeVector {
    /// Wraps a vector of sizes.
    pub fn new(values: Vec<f64>) -> Self {
        SizeVector { values }
    }

    /// A vector of `n` identical sizes.
    pub fn uniform(n: usize, size: f64) -> Self {
        SizeVector {
            values: vec![size; n],
        }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterator over the sizes.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.values.iter()
    }

    /// Mutable iterator over the sizes.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, f64> {
        self.values.iter_mut()
    }

    /// Borrows the raw slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Borrows the raw slice mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Copies another vector's values into this one without reallocating.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors have different lengths.
    pub fn copy_from(&mut self, other: &SizeVector) {
        self.values.copy_from_slice(&other.values);
    }

    /// Consumes the vector and returns the raw values.
    pub fn into_inner(self) -> Vec<f64> {
        self.values
    }

    /// Largest absolute element-wise difference to another size vector.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors have different lengths.
    pub fn max_abs_diff(&self, other: &SizeVector) -> f64 {
        assert_eq!(
            self.len(),
            other.len(),
            "size vectors must have equal length"
        );
        self.values
            .iter()
            .zip(other.values.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Largest relative element-wise difference `|a-b| / max(|b|, eps)`.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors have different lengths.
    pub fn max_rel_diff(&self, other: &SizeVector) -> f64 {
        assert_eq!(
            self.len(),
            other.len(),
            "size vectors must have equal length"
        );
        self.values
            .iter()
            .zip(other.values.iter())
            .map(|(a, b)| (a - b).abs() / b.abs().max(1e-12))
            .fold(0.0, f64::max)
    }

    /// Element-wise clamp into `[lower[i], upper[i]]`.
    ///
    /// # Panics
    ///
    /// Panics if the bound slices have a different length.
    pub fn clamp_into(&mut self, lower: &[f64], upper: &[f64]) {
        assert_eq!(self.len(), lower.len());
        assert_eq!(self.len(), upper.len());
        for (i, v) in self.values.iter_mut().enumerate() {
            *v = v.clamp(lower[i], upper[i]);
        }
    }

    /// Sum of all sizes (useful as a quick monotonicity probe in tests).
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// The largest component size, or `0.0` for an empty vector.
    ///
    /// Sizes are widths and therefore non-negative, so `0.0` is a natural
    /// identity — callers reporting "the widest component" no longer need
    /// the `fold(f64::NEG_INFINITY, f64::max)` dance.
    pub fn max_size(&self) -> f64 {
        self.values.iter().fold(0.0, |acc: f64, &x| acc.max(x))
    }
}

impl Index<usize> for SizeVector {
    type Output = f64;

    fn index(&self, index: usize) -> &f64 {
        &self.values[index]
    }
}

impl IndexMut<usize> for SizeVector {
    fn index_mut(&mut self, index: usize) -> &mut f64 {
        &mut self.values[index]
    }
}

impl From<Vec<f64>> for SizeVector {
    fn from(values: Vec<f64>) -> Self {
        SizeVector::new(values)
    }
}

impl FromIterator<f64> for SizeVector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        SizeVector::new(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a SizeVector {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.values.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let v = SizeVector::uniform(4, 2.0);
        assert_eq!(v.len(), 4);
        assert!(!v.is_empty());
        assert_eq!(v[2], 2.0);
        assert_eq!(v.sum(), 8.0);
        let w: SizeVector = vec![1.0, 2.0].into();
        assert_eq!(w.as_slice(), &[1.0, 2.0]);
        let z: SizeVector = [3.0, 4.0].into_iter().collect();
        assert_eq!(z.into_inner(), vec![3.0, 4.0]);
    }

    #[test]
    fn max_size_over_entries() {
        assert_eq!(SizeVector::new(vec![1.0, 4.5, 2.0]).max_size(), 4.5);
        assert_eq!(SizeVector::new(Vec::new()).max_size(), 0.0);
    }

    #[test]
    fn diffs() {
        let a = SizeVector::new(vec![1.0, 2.0, 3.0]);
        let b = SizeVector::new(vec![1.5, 2.0, 2.0]);
        assert!((a.max_abs_diff(&b) - 1.0).abs() < 1e-12);
        assert!((a.max_rel_diff(&b) - 0.5).abs() < 1e-12);
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }

    #[test]
    #[should_panic]
    fn diff_length_mismatch_panics() {
        let a = SizeVector::new(vec![1.0]);
        let b = SizeVector::new(vec![1.0, 2.0]);
        let _ = a.max_abs_diff(&b);
    }

    #[test]
    fn clamp_into_bounds() {
        let mut v = SizeVector::new(vec![0.01, 5.0, 100.0]);
        v.clamp_into(&[0.1, 0.1, 0.1], &[10.0, 10.0, 10.0]);
        assert_eq!(v.as_slice(), &[0.1, 5.0, 10.0]);
    }

    #[test]
    fn mutation_through_index_and_iter() {
        let mut v = SizeVector::uniform(3, 1.0);
        v[1] = 4.0;
        for x in v.iter_mut() {
            *x *= 2.0;
        }
        assert_eq!(v.as_slice(), &[2.0, 8.0, 2.0]);
    }
}
