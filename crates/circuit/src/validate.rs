//! Structural validation of a built circuit graph.

use crate::error::CircuitError;
use crate::graph::CircuitGraph;
use crate::node::NodeKind;

/// Checks the structural invariants the rest of the workspace relies on:
///
/// * node indexing is topological (every edge goes to a strictly larger index),
/// * the source feeds exactly the drivers and the sink is fed by at least one
///   component,
/// * every sizable component has a fanin and a fanout,
/// * wires have exactly one fanin,
/// * size bounds are positive and ordered.
///
/// # Errors
///
/// Returns the first violated invariant as a [`CircuitError`].
pub fn validate(graph: &CircuitGraph) -> Result<(), CircuitError> {
    // Topological indexing.
    for u in graph.node_ids() {
        for &v in graph.fanout(u) {
            if v <= u {
                return Err(CircuitError::CyclicGraph);
            }
        }
    }
    // Source/sink shape.
    if graph.num_drivers() == 0 {
        return Err(CircuitError::NoDrivers);
    }
    if graph.primary_output_drivers().is_empty() {
        return Err(CircuitError::NoPrimaryOutputs);
    }
    for d in graph.driver_ids() {
        if graph.fanin(d) != [graph.source()] {
            return Err(CircuitError::DanglingInput(d));
        }
        if graph.fanout(d).is_empty() {
            return Err(CircuitError::DanglingOutput(d));
        }
    }
    // Components.
    for id in graph.component_ids() {
        let node = graph.node(id);
        if graph.fanin(id).is_empty() {
            return Err(CircuitError::DanglingInput(id));
        }
        if graph.fanout(id).is_empty() {
            return Err(CircuitError::DanglingOutput(id));
        }
        if node.kind.is_wire() && graph.fanin(id).len() != 1 {
            return Err(CircuitError::InvalidConnection {
                from: graph.fanin(id)[0],
                to: id,
                reason: "a wire is driven by exactly one component",
            });
        }
        let attrs = &node.attrs;
        if !(attrs.lower_bound > 0.0 && attrs.lower_bound.is_finite()) {
            return Err(CircuitError::InvalidParameter {
                name: "lower_bound",
                value: attrs.lower_bound,
            });
        }
        if attrs.upper_bound < attrs.lower_bound {
            return Err(CircuitError::InvalidBounds {
                node: id,
                lower: attrs.lower_bound,
                upper: attrs.upper_bound,
            });
        }
    }
    // No stray node kinds in the component range.
    for id in graph.component_ids() {
        if matches!(
            graph.node(id).kind,
            NodeKind::Source | NodeKind::Sink | NodeKind::Driver
        ) {
            return Err(CircuitError::InvalidConnection {
                from: id,
                to: id,
                reason: "component index range must contain only gates and wires",
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::builder::CircuitBuilder;
    use crate::node::GateKind;
    use crate::tech::Technology;

    #[test]
    fn built_circuits_validate() {
        let mut b = CircuitBuilder::new(Technology::dac99());
        let d = b.add_driver("d", 100.0).unwrap();
        let w = b.add_wire("w", 10.0).unwrap();
        let g = b.add_gate("g", GateKind::Inv).unwrap();
        let w2 = b.add_wire("w2", 10.0).unwrap();
        b.connect(d, w).unwrap();
        b.connect(w, g).unwrap();
        b.connect(g, w2).unwrap();
        b.connect_output(w2, 1.0).unwrap();
        let c = b.build().unwrap();
        assert!(super::validate(&c).is_ok());
    }
}
