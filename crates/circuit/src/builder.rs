//! Incremental construction of [`CircuitGraph`]s.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::error::CircuitError;
use crate::graph::CircuitGraph;
use crate::id::NodeId;
use crate::node::{GateKind, Node, NodeAttrs, NodeKind};
use crate::tech::Technology;

/// Handle returned by the builder for a component added to the circuit under
/// construction. It is only meaningful for the builder that produced it; the
/// final [`CircuitGraph`] re-indexes all nodes topologically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BuildNode(usize);

/// Builder for [`CircuitGraph`].
///
/// Components may be added and connected in any order; [`CircuitBuilder::build`]
/// performs the topological re-indexing required by the paper's convention
/// (every edge goes from a lower to a higher index), inserts the artificial
/// source and sink, and validates the structure.
///
/// ```rust
/// use ncgws_circuit::{CircuitBuilder, GateKind, Technology};
///
/// # fn main() -> Result<(), ncgws_circuit::CircuitError> {
/// let mut b = CircuitBuilder::new(Technology::dac99());
/// let d1 = b.add_driver("a", 120.0)?;
/// let d2 = b.add_driver("b", 120.0)?;
/// let w1 = b.add_wire("w1", 30.0)?;
/// let w2 = b.add_wire("w2", 30.0)?;
/// let g = b.add_gate("g", GateKind::Nand)?;
/// let w3 = b.add_wire("w3", 60.0)?;
/// b.connect(d1, w1)?;
/// b.connect(d2, w2)?;
/// b.connect(w1, g)?;
/// b.connect(w2, g)?;
/// b.connect(g, w3)?;
/// b.connect_output(w3, 8.0)?;
/// let circuit = b.build()?;
/// assert_eq!(circuit.num_drivers(), 2);
/// assert_eq!(circuit.num_components(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CircuitBuilder {
    tech: Technology,
    nodes: Vec<Node>,
    edges: Vec<(usize, usize)>,
    edge_set: HashSet<(usize, usize)>,
    names: HashSet<String>,
    output_loads: HashMap<usize, f64>,
}

impl CircuitBuilder {
    /// Creates an empty builder with the given technology.
    pub fn new(tech: Technology) -> Self {
        CircuitBuilder {
            tech,
            nodes: Vec::new(),
            edges: Vec::new(),
            edge_set: HashSet::new(),
            names: HashSet::new(),
            output_loads: HashMap::new(),
        }
    }

    /// The technology this builder hands to the finished circuit.
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// Number of components added so far (drivers, gates and wires).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if no component has been added yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn register_name(&mut self, name: &str) -> Result<(), CircuitError> {
        if !self.names.insert(name.to_string()) {
            return Err(CircuitError::DuplicateName(name.to_string()));
        }
        Ok(())
    }

    /// Adds an input driver with resistance `rd` (Ω).
    ///
    /// # Errors
    ///
    /// Returns an error if `rd` is not positive and finite, or the name is
    /// already used.
    pub fn add_driver(&mut self, name: &str, rd: f64) -> Result<BuildNode, CircuitError> {
        if !(rd.is_finite() && rd > 0.0) {
            return Err(CircuitError::InvalidParameter {
                name: "driver_resistance",
                value: rd,
            });
        }
        self.register_name(name)?;
        self.nodes.push(Node {
            kind: NodeKind::Driver,
            name: name.to_string(),
            attrs: NodeAttrs::driver(rd),
        });
        Ok(BuildNode(self.nodes.len() - 1))
    }

    /// Adds a gate of the given logic kind.
    ///
    /// # Errors
    ///
    /// Returns an error if the name is already used.
    pub fn add_gate(&mut self, name: &str, kind: GateKind) -> Result<BuildNode, CircuitError> {
        self.register_name(name)?;
        self.nodes.push(Node {
            kind: NodeKind::Gate(kind),
            name: name.to_string(),
            attrs: NodeAttrs::gate(&self.tech),
        });
        Ok(BuildNode(self.nodes.len() - 1))
    }

    /// Adds a wire of the given length (µm).
    ///
    /// # Errors
    ///
    /// Returns an error if `length` is not positive and finite, or the name is
    /// already used.
    pub fn add_wire(&mut self, name: &str, length: f64) -> Result<BuildNode, CircuitError> {
        if !(length.is_finite() && length > 0.0) {
            return Err(CircuitError::InvalidParameter {
                name: "length",
                value: length,
            });
        }
        self.register_name(name)?;
        self.nodes.push(Node {
            kind: NodeKind::Wire,
            name: name.to_string(),
            attrs: NodeAttrs::wire(&self.tech, length),
        });
        Ok(BuildNode(self.nodes.len() - 1))
    }

    /// Overrides the size bounds of a sizable component.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown nodes, non-sizable nodes, or inverted /
    /// non-positive bounds.
    pub fn set_size_bounds(
        &mut self,
        node: BuildNode,
        lower: f64,
        upper: f64,
    ) -> Result<(), CircuitError> {
        let n = self
            .nodes
            .get_mut(node.0)
            .ok_or(CircuitError::UnknownNode(NodeId::new(node.0)))?;
        if !n.kind.is_sizable() {
            return Err(CircuitError::InvalidConnection {
                from: NodeId::new(node.0),
                to: NodeId::new(node.0),
                reason: "only gates and wires have size bounds",
            });
        }
        if !(lower.is_finite() && lower > 0.0) {
            return Err(CircuitError::InvalidParameter {
                name: "lower_bound",
                value: lower,
            });
        }
        if !(upper.is_finite() && upper >= lower) {
            return Err(CircuitError::InvalidBounds {
                node: NodeId::new(node.0),
                lower,
                upper,
            });
        }
        n.attrs.lower_bound = lower;
        n.attrs.upper_bound = upper;
        Ok(())
    }

    /// Connects component `from` to component `to` (data flows `from → to`).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown nodes, self-loops, duplicate edges, edges
    /// into a driver, edges out of nothing sensible, or a second driver of a
    /// wire (a wire has exactly one fanin).
    pub fn connect(&mut self, from: BuildNode, to: BuildNode) -> Result<(), CircuitError> {
        let from_id = NodeId::new(from.0);
        let to_id = NodeId::new(to.0);
        if from.0 >= self.nodes.len() {
            return Err(CircuitError::UnknownNode(from_id));
        }
        if to.0 >= self.nodes.len() {
            return Err(CircuitError::UnknownNode(to_id));
        }
        if from.0 == to.0 {
            return Err(CircuitError::SelfLoop(from_id));
        }
        if self.nodes[to.0].kind.is_driver() {
            return Err(CircuitError::InvalidConnection {
                from: from_id,
                to: to_id,
                reason: "input drivers cannot have fanin",
            });
        }
        if !self.edge_set.insert((from.0, to.0)) {
            return Err(CircuitError::DuplicateEdge(from_id, to_id));
        }
        if self.nodes[to.0].kind.is_wire() {
            let fanin_count = self.edges.iter().filter(|&&(_, t)| t == to.0).count();
            if fanin_count >= 1 {
                self.edge_set.remove(&(from.0, to.0));
                return Err(CircuitError::InvalidConnection {
                    from: from_id,
                    to: to_id,
                    reason: "a wire is driven by exactly one component",
                });
            }
        }
        self.edges.push((from.0, to.0));
        Ok(())
    }

    /// Marks `node` as driving a primary output with load capacitance
    /// `load` (fF). A component may drive at most one primary output; calling
    /// this twice accumulates the load.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown nodes, drivers, or a non-positive load.
    pub fn connect_output(&mut self, node: BuildNode, load: f64) -> Result<(), CircuitError> {
        if node.0 >= self.nodes.len() {
            return Err(CircuitError::UnknownNode(NodeId::new(node.0)));
        }
        if !(load.is_finite() && load >= 0.0) {
            return Err(CircuitError::InvalidParameter {
                name: "output_load",
                value: load,
            });
        }
        if self.nodes[node.0].kind.is_driver() {
            return Err(CircuitError::InvalidConnection {
                from: NodeId::new(node.0),
                to: NodeId::new(node.0),
                reason: "an input driver cannot directly drive a primary output",
            });
        }
        *self.output_loads.entry(node.0).or_insert(0.0) += load;
        Ok(())
    }

    /// Finalizes the circuit: inserts source and sink, re-indexes all nodes in
    /// topological order (drivers first), and validates connectivity.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph is cyclic, has no drivers or primary
    /// outputs, or contains dangling components.
    pub fn build(self) -> Result<CircuitGraph, CircuitError> {
        let CircuitBuilder {
            tech,
            nodes,
            edges,
            edge_set: _,
            names: _,
            output_loads,
        } = self;
        tech.validate()?;

        let total = nodes.len();
        let drivers: Vec<usize> = (0..total).filter(|&i| nodes[i].kind.is_driver()).collect();
        if drivers.is_empty() {
            return Err(CircuitError::NoDrivers);
        }
        if output_loads.is_empty() {
            return Err(CircuitError::NoPrimaryOutputs);
        }

        // Adjacency over the user's components only.
        let mut fanout: Vec<Vec<usize>> = vec![Vec::new(); total];
        let mut fanin: Vec<Vec<usize>> = vec![Vec::new(); total];
        for &(u, v) in &edges {
            fanout[u].push(v);
            fanin[v].push(u);
        }

        // Every non-driver component needs a fanin; every component that does
        // not drive a primary output needs a fanout.
        for i in 0..total {
            if !nodes[i].kind.is_driver() && fanin[i].is_empty() {
                return Err(CircuitError::DanglingInput(NodeId::new(i)));
            }
            if fanout[i].is_empty() && !output_loads.contains_key(&i) {
                return Err(CircuitError::DanglingOutput(NodeId::new(i)));
            }
        }

        // Kahn topological sort over the sizable components (drivers are
        // sources of the DAG and are placed first by convention).
        let mut indegree: Vec<usize> = fanin.iter().map(Vec::len).collect();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &d in &drivers {
            queue.push_back(d);
        }
        // Non-driver nodes with zero indegree were rejected above.
        let mut topo_components: Vec<usize> = Vec::with_capacity(total - drivers.len());
        let mut visited = 0usize;
        while let Some(u) = queue.pop_front() {
            visited += 1;
            if !nodes[u].kind.is_driver() {
                topo_components.push(u);
            }
            for &v in &fanout[u] {
                indegree[v] -= 1;
                if indegree[v] == 0 {
                    queue.push_back(v);
                }
            }
        }
        if visited != total {
            return Err(CircuitError::CyclicGraph);
        }

        // New indexing: source 0, drivers 1..=s, components s+1..=n+s, sink last.
        let s = drivers.len();
        let n = topo_components.len();
        let mut old_to_new: HashMap<usize, usize> = HashMap::with_capacity(total);
        for (k, &d) in drivers.iter().enumerate() {
            old_to_new.insert(d, 1 + k);
        }
        for (k, &c) in topo_components.iter().enumerate() {
            old_to_new.insert(c, s + 1 + k);
        }
        let sink_index = n + s + 1;

        let mut new_nodes: Vec<Node> = Vec::with_capacity(n + s + 2);
        new_nodes.push(Node {
            kind: NodeKind::Source,
            name: "~source".to_string(),
            attrs: NodeAttrs::artificial(),
        });
        // Place drivers then components according to the new order.
        let mut ordered_old: Vec<usize> = Vec::with_capacity(n + s);
        ordered_old.extend(drivers.iter().copied());
        ordered_old.extend(topo_components.iter().copied());
        for &old in &ordered_old {
            let mut node = nodes[old].clone();
            if let Some(&load) = output_loads.get(&old) {
                node.attrs.output_load = if load > 0.0 {
                    load
                } else {
                    tech.default_output_load
                };
            }
            new_nodes.push(node);
        }
        new_nodes.push(Node {
            kind: NodeKind::Sink,
            name: "~sink".to_string(),
            attrs: NodeAttrs::artificial(),
        });

        let mut new_fanin: Vec<Vec<NodeId>> = vec![Vec::new(); n + s + 2];
        let mut new_fanout: Vec<Vec<NodeId>> = vec![Vec::new(); n + s + 2];
        // Source feeds every driver.
        for &d in &drivers {
            let nd = old_to_new[&d];
            new_fanout[0].push(NodeId::new(nd));
            new_fanin[nd].push(NodeId::new(0));
        }
        // User edges.
        for &(u, v) in &edges {
            let (nu, nv) = (old_to_new[&u], old_to_new[&v]);
            new_fanout[nu].push(NodeId::new(nv));
            new_fanin[nv].push(NodeId::new(nu));
        }
        // Primary outputs feed the sink.
        let mut po: Vec<usize> = output_loads.keys().map(|&old| old_to_new[&old]).collect();
        po.sort_unstable();
        for p in po {
            new_fanout[p].push(NodeId::new(sink_index));
            new_fanin[sink_index].push(NodeId::new(p));
        }
        // Keep adjacency lists sorted for determinism.
        for list in new_fanin.iter_mut().chain(new_fanout.iter_mut()) {
            list.sort_unstable();
        }

        let graph = CircuitGraph::from_parts(new_nodes, new_fanin, new_fanout, tech, s, n);
        crate::validate::validate(&graph)?;
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::dac99()
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut b = CircuitBuilder::new(tech());
        b.add_wire("w", 10.0).unwrap();
        assert!(matches!(
            b.add_wire("w", 10.0),
            Err(CircuitError::DuplicateName(_))
        ));
    }

    #[test]
    fn rejects_bad_parameters() {
        let mut b = CircuitBuilder::new(tech());
        assert!(b.add_driver("d", 0.0).is_err());
        assert!(b.add_driver("d", f64::NAN).is_err());
        assert!(b.add_wire("w", -3.0).is_err());
        let w = b.add_wire("w", 3.0).unwrap();
        assert!(b.connect_output(w, -1.0).is_err());
        assert!(b.set_size_bounds(w, -1.0, 2.0).is_err());
        assert!(b.set_size_bounds(w, 3.0, 2.0).is_err());
    }

    #[test]
    fn rejects_self_loop_and_duplicate_edges() {
        let mut b = CircuitBuilder::new(tech());
        let d = b.add_driver("d", 100.0).unwrap();
        let w = b.add_wire("w", 10.0).unwrap();
        assert!(matches!(b.connect(w, w), Err(CircuitError::SelfLoop(_))));
        b.connect(d, w).unwrap();
        assert!(matches!(
            b.connect(d, w),
            Err(CircuitError::DuplicateEdge(_, _))
        ));
    }

    #[test]
    fn rejects_edge_into_driver_and_multi_driven_wire() {
        let mut b = CircuitBuilder::new(tech());
        let d = b.add_driver("d", 100.0).unwrap();
        let d2 = b.add_driver("d2", 100.0).unwrap();
        let w = b.add_wire("w", 10.0).unwrap();
        assert!(b.connect(w, d).is_err());
        b.connect(d, w).unwrap();
        assert!(matches!(
            b.connect(d2, w),
            Err(CircuitError::InvalidConnection { .. })
        ));
    }

    #[test]
    fn rejects_cycles() {
        let mut b = CircuitBuilder::new(tech());
        let d = b.add_driver("d", 100.0).unwrap();
        let w = b.add_wire("w", 10.0).unwrap();
        let g1 = b.add_gate("g1", GateKind::Buf).unwrap();
        let g2 = b.add_gate("g2", GateKind::Buf).unwrap();
        b.connect(d, w).unwrap();
        b.connect(w, g1).unwrap();
        b.connect(g1, g2).unwrap();
        b.connect(g2, g1).unwrap();
        b.connect_output(g2, 5.0).unwrap();
        assert!(matches!(b.build(), Err(CircuitError::CyclicGraph)));
    }

    #[test]
    fn rejects_dangling_components() {
        let mut b = CircuitBuilder::new(tech());
        let d = b.add_driver("d", 100.0).unwrap();
        let w = b.add_wire("w", 10.0).unwrap();
        let _orphan = b.add_gate("orphan", GateKind::Inv).unwrap();
        b.connect(d, w).unwrap();
        b.connect_output(w, 5.0).unwrap();
        let err = b.build().unwrap_err();
        assert!(matches!(
            err,
            CircuitError::DanglingInput(_) | CircuitError::DanglingOutput(_)
        ));
    }

    #[test]
    fn requires_drivers_and_outputs() {
        let b = CircuitBuilder::new(tech());
        assert!(matches!(b.build(), Err(CircuitError::NoDrivers)));

        let mut b = CircuitBuilder::new(tech());
        let d = b.add_driver("d", 100.0).unwrap();
        let w = b.add_wire("w", 10.0).unwrap();
        b.connect(d, w).unwrap();
        assert!(matches!(b.build(), Err(CircuitError::NoPrimaryOutputs)));
    }

    #[test]
    fn build_reindexes_topologically() {
        // Add components in reverse order to force re-indexing.
        let mut b = CircuitBuilder::new(tech());
        let w2 = b.add_wire("w2", 10.0).unwrap();
        let g = b.add_gate("g", GateKind::Inv).unwrap();
        let w1 = b.add_wire("w1", 10.0).unwrap();
        let d = b.add_driver("d", 100.0).unwrap();
        b.connect(d, w1).unwrap();
        b.connect(w1, g).unwrap();
        b.connect(g, w2).unwrap();
        b.connect_output(w2, 5.0).unwrap();
        let c = b.build().unwrap();
        for id in c.node_ids() {
            for &succ in c.fanout(id) {
                assert!(id < succ);
            }
        }
        // Names preserved.
        assert!(c.node_by_name("w1").is_some());
        assert!(c.node_by_name("g").is_some());
    }

    #[test]
    fn size_bound_overrides_are_kept() {
        let mut b = CircuitBuilder::new(tech());
        let d = b.add_driver("d", 100.0).unwrap();
        let w = b.add_wire("w", 10.0).unwrap();
        b.set_size_bounds(w, 0.5, 2.0).unwrap();
        b.connect(d, w).unwrap();
        b.connect_output(w, 5.0).unwrap();
        let c = b.build().unwrap();
        let wid = c.node_by_name("w").unwrap();
        assert_eq!(c.node(wid).attrs.lower_bound, 0.5);
        assert_eq!(c.node(wid).attrs.upper_bound, 2.0);
    }

    #[test]
    fn zero_output_load_defaults_to_technology_value() {
        let mut b = CircuitBuilder::new(tech());
        let d = b.add_driver("d", 100.0).unwrap();
        let w = b.add_wire("w", 10.0).unwrap();
        b.connect(d, w).unwrap();
        b.connect_output(w, 0.0).unwrap();
        let c = b.build().unwrap();
        let wid = c.node_by_name("w").unwrap();
        assert_eq!(c.node(wid).attrs.output_load, tech().default_output_load);
    }
}
