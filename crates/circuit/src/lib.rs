//! Circuit representation and timing substrate for the ncgws workspace.
//!
//! This crate implements Section 2 of the DAC 1999 paper *"Noise-Constrained
//! Performance Optimization by Simultaneous Gate and Wire Sizing Based on
//! Lagrangian Relaxation"*:
//!
//! * the **circuit graph** `H = (V, E)` — a directed acyclic graph whose nodes
//!   are circuit *components* (input drivers, gates, wires) plus an artificial
//!   source and sink, indexed in topological order ([`CircuitGraph`]);
//! * the **RC models** of gates and wires (Figure 3 of the paper): a gate of
//!   size `x` has resistance `r̂ / x` and input capacitance `ĉ · x`; a wire of
//!   size `x` has resistance `r̂ / x` and capacitance `ĉ · x + f` represented by
//!   the π-model ([`NodeAttrs`], [`Technology`]);
//! * the **Elmore delay** engine: downstream capacitances `C_i`, per-component
//!   delays `D_i = r_i · C_i`, arrival times `a_i` and the critical path
//!   ([`elmore`], [`timing`]);
//! * circuit-wide **area** and **power** evaluation used as objective and
//!   constraint by the sizing engine ([`area`], [`power`]).
//!
//! # Stage-bounded Elmore model
//!
//! The paper lumps each component's delay as `D_i = r_i · C_i` where `C_i` is
//! the capacitance downstream of component `i`. We use the standard
//! *stage-bounded* interpretation (the same one used by the Chen–Chu–Wong
//! ICCAD'98 formulation the paper builds on): a gate regenerates its output,
//! so the capacitance behind a gate input does **not** load the stage driving
//! that input. Concretely, a *stage* is the RC tree hanging from a driver or a
//! gate output; it is terminated by gate input capacitances and primary-output
//! loads. Path delay is then the sum of the per-component delays along the
//! path, exactly the quantity constrained by `a_j + D_i ≤ a_i` in the paper's
//! problem `PP`.
//!
//! # Example
//!
//! ```rust
//! use ncgws_circuit::{CircuitBuilder, GateKind, Technology};
//!
//! # fn main() -> Result<(), ncgws_circuit::CircuitError> {
//! let tech = Technology::dac99();
//! let mut builder = CircuitBuilder::new(tech);
//!
//! // One driver -> wire -> inverter -> wire -> output load.
//! let d = builder.add_driver("in", 100.0)?;
//! let w1 = builder.add_wire("w1", 50.0)?;
//! let g = builder.add_gate("g", GateKind::Inv)?;
//! let w2 = builder.add_wire("w2", 80.0)?;
//! builder.connect(d, w1)?;
//! builder.connect(w1, g)?;
//! builder.connect(g, w2)?;
//! builder.connect_output(w2, 5.0)?;
//!
//! let circuit = builder.build()?;
//! assert_eq!(circuit.num_components(), 3); // w1, g, w2 (the driver is not sizable)
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod area;
pub mod builder;
pub mod elmore;
pub mod engine;
pub mod error;
pub mod graph;
pub mod id;
pub mod node;
pub mod power;
#[cfg(feature = "race-check")]
pub mod race;
pub mod sizing;
pub mod tech;
pub mod timing;
pub mod topo;
pub mod traversal;
pub mod validate;

pub use area::total_area;
pub use builder::CircuitBuilder;
pub use elmore::{DownstreamCaps, ElmoreAnalyzer};
pub use engine::{
    lane_padded, propagate_arrivals_into, CircuitTopology, DelayModel, ElmoreModel, EvalWorkspace,
    IncrementalWorkspace, KindTag, SharedMut, LANES, MAX_CHUNK_NODES, NO_PRED,
};
pub use error::CircuitError;
pub use graph::CircuitGraph;
pub use id::NodeId;
pub use node::{GateKind, Node, NodeAttrs, NodeKind};
pub use power::{total_capacitance, total_power};
pub use sizing::SizeVector;
pub use tech::Technology;
pub use timing::{ArrivalTimes, TimingAnalysis};
pub use topo::TopologicalOrder;
pub use traversal::{downstream_stage, upstream_stage};
pub use validate::validate;
