//! Shadow claim map for [`SharedMut`](crate::SharedMut) writes — the
//! `race-check` debug feature.
//!
//! The parallel kernels rely on a discipline no type checks: during one
//! pass over a topological level, every index written through a `SharedMut`
//! view belongs to exactly one (level, chunk) owner. This module makes that
//! discipline *observable*: while a pass context is entered on a thread,
//! every `set`/`add` through any `SharedMut` records `(slice address,
//! index) -> (pass, owner)` in a global claim map and **panics** the moment
//! two different owners of the same pass write one index.
//!
//! The map never blocks writes outside a context (single-threaded code and
//! tests run untouched), and claims from earlier passes are invalidated by
//! pass-id mismatch instead of a global clear, so the map needs no
//! synchronization with pass boundaries.
//!
//! Everything here compiles only under `--features race-check`; the
//! production build keeps `SharedMut` free of any bookkeeping.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Monotonic pass-id source: every checked parallel pass gets a fresh id,
/// so stale claims from earlier passes can never collide with it.
static NEXT_PASS: AtomicU64 = AtomicU64::new(1);

/// `(slice base address, index)` — the identity of one written slot.
type Slot = (usize, usize);

/// `(pass, owner)` — who claimed a slot, and in which pass.
type Claim = (u64, u64);

/// Slot -> claim for every contextful write. Keyed by address so
/// independent engines (or a slice reallocated between passes) cannot
/// alias.
fn claims() -> &'static Mutex<HashMap<Slot, Claim>> {
    static CLAIMS: OnceLock<Mutex<HashMap<Slot, Claim>>> = OnceLock::new();
    CLAIMS.get_or_init(|| Mutex::new(HashMap::new()))
}

thread_local! {
    /// The `(pass, owner)` this thread's writes are attributed to, if any.
    static CONTEXT: Cell<Option<(u64, u64)>> = const { Cell::new(None) };
}

/// Allocates a fresh pass id. Call once per parallel pass (one level of a
/// leveled sweep, or one flat sweep), before entering any chunk context.
pub fn begin_pass() -> u64 {
    NEXT_PASS.fetch_add(1, Ordering::Relaxed)
}

/// Allocates a contiguous block of `n` pass ids and returns the first.
/// A leveled sweep claims one id per level up front (`base + level`), so
/// every worker derives the same id for a level without synchronizing —
/// and writes to one index from *different* levels (settled sequentially
/// by the barriers) never collide.
pub fn begin_passes(n: u64) -> u64 {
    NEXT_PASS.fetch_add(n.max(1), Ordering::Relaxed)
}

/// Clears the thread's context when the chunk body finishes (or unwinds).
pub struct ContextGuard {
    prev: Option<(u64, u64)>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CONTEXT.with(|c| c.set(self.prev));
    }
}

/// Enters a `(pass, owner)` context on this thread: until the returned
/// guard drops, every `SharedMut` write on this thread is claimed for
/// `owner`. Owners encode `(level, chunk)`; see
/// [`owner_id`].
pub fn enter(pass: u64, owner: u64) -> ContextGuard {
    let prev = CONTEXT.with(|c| c.replace(Some((pass, owner))));
    ContextGuard { prev }
}

/// Packs a (level, chunk) coordinate into an owner id. Flat (unleveled)
/// passes use `level = u32::MAX`.
pub fn owner_id(level: u32, chunk: u32) -> u64 {
    (u64::from(level) << 32) | u64::from(chunk)
}

/// Records a write of `slice[index]` by the current context, panicking on
/// an overlap: a prior claim of the same index by a *different* owner of
/// the *same* pass. Outside a context this is a no-op.
///
/// Called by `SharedMut::set`/`add`; not meant to be called directly.
#[inline]
pub fn claim_write(slice: usize, index: usize) {
    let Some((pass, owner)) = CONTEXT.with(|c| c.get()) else {
        return;
    };
    let mut map = claims().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some((prev_pass, prev_owner)) = map.insert((slice, index), (pass, owner)) {
        if prev_pass == pass && prev_owner != owner {
            drop(map);
            let (pl, pc) = ((prev_owner >> 32) as u32, prev_owner as u32);
            let (ol, oc) = ((owner >> 32) as u32, owner as u32);
            panic!(
                "race-check: overlapping write to index {index} of slice {slice:#x} in pass \
                 {pass}: chunk (level {pl}, chunk {pc}) and chunk (level {ol}, chunk {oc}) both \
                 wrote it — the level partition is violated"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_owners_pass_and_overlap_panics() {
        let pass = begin_pass();
        {
            let _g = enter(pass, owner_id(0, 0));
            claim_write(0x1000, 3);
            claim_write(0x1000, 4);
            // Same owner re-writing its own index is fine.
            claim_write(0x1000, 3);
        }
        {
            let _g = enter(pass, owner_id(0, 1));
            claim_write(0x1000, 5);
            // A different slice address never collides.
            claim_write(0x2000, 3);
        }
        let overlap = std::panic::catch_unwind(|| {
            let _g = enter(pass, owner_id(0, 1));
            claim_write(0x1000, 4);
        });
        assert!(overlap.is_err(), "cross-chunk overlap must panic");
    }

    #[test]
    fn stale_claims_from_earlier_passes_do_not_collide() {
        let first = begin_pass();
        {
            let _g = enter(first, owner_id(0, 0));
            claim_write(0x3000, 7);
        }
        let second = begin_pass();
        let _g = enter(second, owner_id(0, 1));
        // Same index, different pass: the level partition only holds
        // within a pass, so this must be accepted.
        claim_write(0x3000, 7);
    }

    #[test]
    fn writes_outside_a_context_are_ignored() {
        claim_write(0x4000, 0);
        claim_write(0x4000, 0);
    }
}
