//! Total capacitance and dynamic power.
//!
//! The paper's power constraint is `V² · f · Σ c_i ≤ P_B`, simplified (with
//! fixed supply voltage and frequency) to `Σ c_i ≤ P' = P_B / (V² f)`. The
//! sizing engine therefore works with the **total switched capacitance**; the
//! reporting layer converts it back to milliwatts using the technology's
//! [`power_scale_mw_per_ff`](crate::Technology::power_scale_mw_per_ff).

use crate::graph::CircuitGraph;
use crate::sizing::SizeVector;

/// Total component capacitance `Σ_{i=s+1}^{n+s} c_i` in fF (excluding
/// coupling capacitance, which the paper accounts for in the noise term).
pub fn total_capacitance(graph: &CircuitGraph, sizes: &SizeVector) -> f64 {
    graph
        .component_ids()
        .map(|id| graph.capacitance(id, sizes))
        .sum()
}

/// Dynamic power `V² · f · Σ c_i` in mW.
pub fn total_power(graph: &CircuitGraph, sizes: &SizeVector) -> f64 {
    total_capacitance(graph, sizes) * graph.technology().power_scale_mw_per_ff()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::node::GateKind;
    use crate::tech::Technology;

    fn circuit() -> CircuitGraph {
        let mut b = CircuitBuilder::new(Technology::dac99());
        let d = b.add_driver("d", 100.0).unwrap();
        let w1 = b.add_wire("w1", 100.0).unwrap();
        let g = b.add_gate("g", GateKind::Inv).unwrap();
        let w2 = b.add_wire("w2", 200.0).unwrap();
        b.connect(d, w1).unwrap();
        b.connect(w1, g).unwrap();
        b.connect(g, w2).unwrap();
        b.connect_output(w2, 5.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn capacitance_matches_hand_sum() {
        let c = circuit();
        let t = *c.technology();
        let sizes = c.uniform_sizes(1.0);
        let expected = (t.wire_unit_capacitance + t.wire_fringing_per_um) * 100.0
            + t.gate_unit_capacitance
            + (t.wire_unit_capacitance + t.wire_fringing_per_um) * 200.0;
        assert!((total_capacitance(&c, &sizes) - expected).abs() < 1e-9);
    }

    #[test]
    fn power_scales_with_capacitance_and_size() {
        let c = circuit();
        let small = c.uniform_sizes(1.0);
        let large = c.uniform_sizes(2.0);
        assert!(total_power(&c, &large) > total_power(&c, &small));
        let ratio = total_power(&c, &small) / total_capacitance(&c, &small);
        assert!((ratio - c.technology().power_scale_mw_per_ff()).abs() < 1e-12);
    }

    #[test]
    fn driver_contributes_no_power() {
        let c = circuit();
        let sizes = c.uniform_sizes(1.0);
        // Summing only over components is the definition; this guards against
        // accidentally including drivers or artificial nodes.
        let manual: f64 = c.component_ids().map(|id| c.capacitance(id, &sizes)).sum();
        assert_eq!(total_capacitance(&c, &sizes), manual);
    }
}
