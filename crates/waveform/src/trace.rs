//! Simulation traces and normalized waveforms.

use ncgws_circuit::NodeId;
use serde::{Deserialize, Serialize};

/// The normalized waveform `f(i, t)` of one node: `+1` when the node is
/// logically high at time step `t`, `−1` when it is low.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Waveform {
    levels: Vec<bool>,
}

impl Waveform {
    /// Builds a waveform from logic levels (`true` = high).
    pub fn from_levels(levels: Vec<bool>) -> Self {
        Waveform { levels }
    }

    /// Number of time steps `T_D`.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Returns `true` if the waveform has no samples.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// The normalized value `f(t) ∈ {−1, +1}`.
    pub fn value(&self, t: usize) -> f64 {
        if self.levels[t] {
            1.0
        } else {
            -1.0
        }
    }

    /// The raw logic level at time step `t`.
    pub fn level(&self, t: usize) -> bool {
        self.levels[t]
    }

    /// Number of transitions (level changes between consecutive samples) —
    /// the switching activity of the node.
    pub fn transitions(&self) -> usize {
        self.levels.windows(2).filter(|w| w[0] != w[1]).count()
    }

    /// Fraction of time the node spends high.
    pub fn duty_cycle(&self) -> f64 {
        if self.levels.is_empty() {
            return 0.0;
        }
        self.levels.iter().filter(|&&b| b).count() as f64 / self.levels.len() as f64
    }
}

/// The logic values of every node over every simulation time step.
///
/// Stored node-major so per-node waveforms are contiguous.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimulationTrace {
    num_nodes: usize,
    num_steps: usize,
    /// `levels[node][step]`
    levels: Vec<Vec<bool>>,
}

impl SimulationTrace {
    /// Builds a trace from per-step node values (`steps[t][node]`).
    pub fn from_steps(num_nodes: usize, steps: Vec<Vec<bool>>) -> Self {
        let num_steps = steps.len();
        let mut levels = vec![Vec::with_capacity(num_steps); num_nodes];
        for step in &steps {
            debug_assert_eq!(step.len(), num_nodes);
            for (node, &value) in step.iter().enumerate() {
                levels[node].push(value);
            }
        }
        SimulationTrace {
            num_nodes,
            num_steps,
            levels,
        }
    }

    /// Number of nodes covered by the trace.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of time steps `T_D`.
    pub fn num_steps(&self) -> usize {
        self.num_steps
    }

    /// The waveform of one node.
    pub fn waveform(&self, id: NodeId) -> Waveform {
        Waveform::from_levels(self.levels[id.index()].clone())
    }

    /// The raw levels of one node (no allocation).
    pub fn levels(&self, id: NodeId) -> &[bool] {
        &self.levels[id.index()]
    }

    /// Switching similarity between two nodes directly from the trace
    /// (avoids materializing [`Waveform`]s):
    /// `similarity(i, j) = (1/T) Σ_t f(i,t)·f(j,t) = (agreements − disagreements)/T`.
    pub fn similarity(&self, a: NodeId, b: NodeId) -> f64 {
        let la = &self.levels[a.index()];
        let lb = &self.levels[b.index()];
        debug_assert_eq!(la.len(), lb.len());
        if la.is_empty() {
            return 0.0;
        }
        let agree = la.iter().zip(lb.iter()).filter(|(x, y)| x == y).count();
        let disagree = la.len() - agree;
        (agree as f64 - disagree as f64) / la.len() as f64
    }

    /// An estimate (in bytes) of the memory held by the trace.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.levels
            .iter()
            .map(|v| v.capacity() * size_of::<bool>())
            .sum::<usize>()
            + self.levels.capacity() * size_of::<Vec<bool>>()
            + size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waveform_values_and_stats() {
        let w = Waveform::from_levels(vec![true, true, false, true]);
        assert_eq!(w.len(), 4);
        assert_eq!(w.value(0), 1.0);
        assert_eq!(w.value(2), -1.0);
        assert!(w.level(3));
        assert_eq!(w.transitions(), 2);
        assert!((w.duty_cycle() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_waveform() {
        let w = Waveform::from_levels(vec![]);
        assert!(w.is_empty());
        assert_eq!(w.duty_cycle(), 0.0);
        assert_eq!(w.transitions(), 0);
    }

    #[test]
    fn trace_transposes_steps() {
        // 3 nodes, 2 steps.
        let steps = vec![vec![true, false, true], vec![false, false, true]];
        let trace = SimulationTrace::from_steps(3, steps);
        assert_eq!(trace.num_nodes(), 3);
        assert_eq!(trace.num_steps(), 2);
        assert_eq!(trace.levels(NodeId::new(0)), &[true, false]);
        assert_eq!(trace.levels(NodeId::new(2)), &[true, true]);
        assert!(!trace.waveform(NodeId::new(1)).level(0));
    }

    #[test]
    fn similarity_bounds_and_symmetry() {
        let steps = vec![
            vec![true, true, false],
            vec![false, false, true],
            vec![true, true, false],
            vec![false, false, true],
        ];
        let trace = SimulationTrace::from_steps(3, steps);
        let a = NodeId::new(0);
        let b = NodeId::new(1);
        let c = NodeId::new(2);
        // a and b are identical: similarity 1.
        assert_eq!(trace.similarity(a, b), 1.0);
        // a and c are complementary: similarity -1.
        assert_eq!(trace.similarity(a, c), -1.0);
        // Symmetry.
        assert_eq!(trace.similarity(a, c), trace.similarity(c, a));
        // Self-similarity is 1.
        assert_eq!(trace.similarity(a, a), 1.0);
    }

    #[test]
    fn similarity_of_empty_trace_is_zero() {
        let trace = SimulationTrace::from_steps(2, vec![]);
        assert_eq!(trace.similarity(NodeId::new(0), NodeId::new(1)), 0.0);
    }

    #[test]
    fn memory_estimate_is_positive() {
        let trace = SimulationTrace::from_steps(2, vec![vec![true, false]]);
        assert!(trace.memory_bytes() > 0);
    }
}
