//! Pairwise switching similarity.

use ncgws_circuit::NodeId;
use serde::{Deserialize, Serialize};

use crate::trace::{SimulationTrace, Waveform};

/// Switching similarity of two waveforms:
/// `similarity(i, j) = (1/T_D) Σ_t f(i,t) · f(j,t) ∈ [−1, 1]`.
///
/// # Panics
///
/// Panics if the waveforms have different lengths.
pub fn similarity(a: &Waveform, b: &Waveform) -> f64 {
    assert_eq!(a.len(), b.len(), "waveforms must cover the same duration");
    if a.is_empty() {
        return 0.0;
    }
    let sum: f64 = (0..a.len()).map(|t| a.value(t) * b.value(t)).sum();
    sum / a.len() as f64
}

/// A dense matrix of pairwise similarities for a selected group of wires
/// (for example the wires sharing one routing channel).
///
/// Only the selected nodes are stored, so building a matrix for a channel of
/// `k` wires costs `O(k² · T_D)` regardless of the circuit size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimilarityMatrix {
    nodes: Vec<NodeId>,
    /// Row-major `k × k` matrix.
    values: Vec<f64>,
}

impl SimilarityMatrix {
    /// Computes the similarity matrix of the given nodes from a trace.
    pub fn from_trace(trace: &SimulationTrace, nodes: &[NodeId]) -> Self {
        let k = nodes.len();
        let mut values = vec![0.0; k * k];
        for i in 0..k {
            values[i * k + i] = 1.0;
            for j in (i + 1)..k {
                let s = trace.similarity(nodes[i], nodes[j]);
                values[i * k + j] = s;
                values[j * k + i] = s;
            }
        }
        SimilarityMatrix {
            nodes: nodes.to_vec(),
            values,
        }
    }

    /// Builds a matrix from explicit values (row-major, `k × k`).
    ///
    /// # Panics
    ///
    /// Panics if `values` is not `nodes.len()²` long.
    pub fn from_values(nodes: Vec<NodeId>, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), nodes.len() * nodes.len());
        SimilarityMatrix { nodes, values }
    }

    /// The nodes covered by this matrix, in row/column order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the matrix covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Similarity by position in the node list.
    pub fn by_position(&self, i: usize, j: usize) -> f64 {
        self.values[i * self.nodes.len() + j]
    }

    /// Similarity by node identifier, or `None` when either node is not covered.
    pub fn by_id(&self, a: NodeId, b: NodeId) -> Option<f64> {
        let i = self.nodes.iter().position(|&n| n == a)?;
        let j = self.nodes.iter().position(|&n| n == b)?;
        Some(self.by_position(i, j))
    }

    /// The ordering weight `1 − similarity` by position (the edge weight of
    /// the Switching-Similarity problem's complete graph `K_n`).
    pub fn weight(&self, i: usize, j: usize) -> f64 {
        1.0 - self.by_position(i, j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wf(bits: &[u8]) -> Waveform {
        Waveform::from_levels(bits.iter().map(|&b| b == 1).collect())
    }

    #[test]
    fn similarity_extremes() {
        let a = wf(&[1, 1, 0, 0]);
        let same = wf(&[1, 1, 0, 0]);
        let opposite = wf(&[0, 0, 1, 1]);
        assert_eq!(similarity(&a, &same), 1.0);
        assert_eq!(similarity(&a, &opposite), -1.0);
    }

    #[test]
    fn similarity_partial_agreement() {
        let a = wf(&[1, 1, 1, 1]);
        let b = wf(&[1, 1, 1, 0]);
        // 3 agreements, 1 disagreement: (3-1)/4 = 0.5.
        assert!((similarity(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn similarity_is_symmetric_and_bounded() {
        let a = wf(&[1, 0, 1, 0, 1, 1]);
        let b = wf(&[0, 0, 1, 1, 1, 0]);
        let s = similarity(&a, &b);
        assert_eq!(s, similarity(&b, &a));
        assert!((-1.0..=1.0).contains(&s));
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = similarity(&wf(&[1, 0]), &wf(&[1]));
    }

    #[test]
    fn matrix_from_trace() {
        let steps = vec![
            vec![true, true, false],
            vec![false, false, true],
            vec![true, true, true],
            vec![false, false, false],
        ];
        let trace = SimulationTrace::from_steps(3, steps);
        let nodes = vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)];
        let m = SimilarityMatrix::from_trace(&trace, &nodes);
        assert_eq!(m.len(), 3);
        assert_eq!(m.by_position(0, 0), 1.0);
        assert_eq!(m.by_position(0, 1), 1.0);
        assert_eq!(m.by_position(1, 0), 1.0);
        assert_eq!(m.by_id(NodeId::new(0), NodeId::new(2)), Some(0.0));
        assert_eq!(m.by_id(NodeId::new(0), NodeId::new(9)), None);
        assert!((m.weight(0, 1) - 0.0).abs() < 1e-12);
        assert!((m.weight(0, 2) - 1.0).abs() < 1e-12);
    }
}
