//! Switching-behavior substrate (Section 3.2 of the paper).
//!
//! The paper weights physical coupling by how similarly two wires switch:
//!
//! ```text
//! crosstalk(i, j) = switching_similarity(i, j) × coupling_capacitance(i, j)
//! similarity(i, j) = (1 / T_D) ∫₀^{T_D} f(i, t) f(j, t) dt
//! ```
//!
//! where `f(i, t) ∈ {−1, +1}` is the normalized waveform of wire `i`. Two
//! wires that always switch together (`similarity → 1`) enjoy the anti-Miller
//! effect (effective coupling → 0); two wires that always switch in opposite
//! directions (`similarity → −1`) suffer the Miller effect (effective
//! coupling → 2 × physical).
//!
//! The paper obtains waveforms "from the logic simulation stage". This crate
//! provides that stage from scratch:
//!
//! * [`PatternSet`] — reproducible pseudo-random primary-input vectors
//!   (our substitution for production test patterns);
//! * [`LogicSimulator`] — zero-delay logic simulation of the circuit graph,
//!   producing a logic value for every node and every vector;
//! * [`Waveform`] / [`SimulationTrace`] — the normalized ±1 waveforms;
//! * [`similarity()`], [`SimilarityMatrix`] — pairwise switching similarity;
//! * [`miller_factor`] — the mapping from similarity to the effective
//!   coupling multiplier in `[0, 2]`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod logic_sim;
pub mod miller;
pub mod patterns;
pub mod similarity;
pub mod trace;

pub use logic_sim::LogicSimulator;
pub use miller::{miller_factor, ordering_weight};
pub use patterns::PatternSet;
pub use similarity::{similarity, SimilarityMatrix};
pub use trace::{SimulationTrace, Waveform};
