//! Zero-delay logic simulation over the circuit graph.

use ncgws_circuit::{CircuitGraph, NodeKind};

use crate::patterns::PatternSet;
use crate::trace::SimulationTrace;

/// Zero-delay logic simulator.
///
/// Every node of the circuit graph carries a logic value per time step:
/// drivers take the primary-input vector, wires copy their single fanin, and
/// gates evaluate their [`GateKind`](ncgws_circuit::GateKind) over their
/// fanin values. One forward topological sweep per vector makes simulation
/// `O(E)` per time step.
#[derive(Debug, Clone, Copy)]
pub struct LogicSimulator<'a> {
    graph: &'a CircuitGraph,
}

impl<'a> LogicSimulator<'a> {
    /// Creates a simulator bound to a circuit.
    pub fn new(graph: &'a CircuitGraph) -> Self {
        LogicSimulator { graph }
    }

    /// Evaluates one input vector and returns the logic value of every node
    /// (raw node index). The source and sink mirror constant `false`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not provide one value per driver.
    pub fn evaluate(&self, inputs: &[bool]) -> Vec<bool> {
        let g = self.graph;
        assert_eq!(
            inputs.len(),
            g.num_drivers(),
            "one input value per driver required"
        );
        let mut values = vec![false; g.num_nodes()];
        let mut fanin_buf: Vec<bool> = Vec::new();
        for id in g.node_ids() {
            let idx = id.index();
            match g.node(id).kind {
                NodeKind::Source | NodeKind::Sink => values[idx] = false,
                NodeKind::Driver => values[idx] = inputs[idx - 1],
                NodeKind::Wire => {
                    // A wire has exactly one fanin (validated at build time).
                    let src = g.fanin(id)[0];
                    values[idx] = values[src.index()];
                }
                NodeKind::Gate(kind) => {
                    fanin_buf.clear();
                    fanin_buf.extend(g.fanin(id).iter().map(|j| values[j.index()]));
                    values[idx] = kind.eval(&fanin_buf);
                }
            }
        }
        values
    }

    /// Simulates the whole pattern set and collects the per-node waveforms.
    ///
    /// # Panics
    ///
    /// Panics if the pattern width does not match the number of drivers.
    pub fn simulate(&self, patterns: &PatternSet) -> SimulationTrace {
        let mut per_step = Vec::with_capacity(patterns.len());
        for vector in patterns.iter() {
            per_step.push(self.evaluate(vector));
        }
        SimulationTrace::from_steps(self.graph.num_nodes(), per_step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncgws_circuit::{CircuitBuilder, GateKind, Technology};

    /// d1, d2 -> w1, w2 -> NAND g -> w3 -> out; also d1 -> w4 -> INV g2 -> w5 -> out.
    fn circuit() -> CircuitGraph {
        let mut b = CircuitBuilder::new(Technology::dac99());
        let d1 = b.add_driver("d1", 100.0).unwrap();
        let d2 = b.add_driver("d2", 100.0).unwrap();
        let w1 = b.add_wire("w1", 10.0).unwrap();
        let w2 = b.add_wire("w2", 10.0).unwrap();
        let w4 = b.add_wire("w4", 10.0).unwrap();
        let g = b.add_gate("g", GateKind::Nand).unwrap();
        let g2 = b.add_gate("g2", GateKind::Inv).unwrap();
        let w3 = b.add_wire("w3", 10.0).unwrap();
        let w5 = b.add_wire("w5", 10.0).unwrap();
        b.connect(d1, w1).unwrap();
        b.connect(d2, w2).unwrap();
        b.connect(d1, w4).unwrap();
        b.connect(w1, g).unwrap();
        b.connect(w2, g).unwrap();
        b.connect(w4, g2).unwrap();
        b.connect(g, w3).unwrap();
        b.connect(g2, w5).unwrap();
        b.connect_output(w3, 2.0).unwrap();
        b.connect_output(w5, 2.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn nand_and_inverter_evaluate_correctly() {
        let c = circuit();
        let sim = LogicSimulator::new(&c);
        let w3 = c.node_by_name("w3").unwrap();
        let w5 = c.node_by_name("w5").unwrap();
        // Exhaustive over the two inputs.
        let truth = [
            ((false, false), (true, true)),
            ((false, true), (true, true)),
            ((true, false), (true, false)),
            ((true, true), (false, false)),
        ];
        for ((a, b), (nand, inv)) in truth {
            let values = sim.evaluate(&[a, b]);
            assert_eq!(values[w3.index()], nand, "nand({a},{b})");
            assert_eq!(values[w5.index()], inv, "inv({a})");
        }
    }

    #[test]
    fn wires_copy_their_driver() {
        let c = circuit();
        let sim = LogicSimulator::new(&c);
        let values = sim.evaluate(&[true, false]);
        let d1 = c.node_by_name("d1").unwrap();
        let w1 = c.node_by_name("w1").unwrap();
        let w4 = c.node_by_name("w4").unwrap();
        assert_eq!(values[w1.index()], values[d1.index()]);
        assert_eq!(values[w4.index()], values[d1.index()]);
    }

    #[test]
    #[should_panic]
    fn wrong_input_width_panics() {
        let c = circuit();
        let _ = LogicSimulator::new(&c).evaluate(&[true]);
    }

    #[test]
    fn simulate_produces_one_step_per_vector() {
        let c = circuit();
        let sim = LogicSimulator::new(&c);
        let patterns = crate::PatternSet::random(c.num_drivers(), 32, 5);
        let trace = sim.simulate(&patterns);
        assert_eq!(trace.num_steps(), 32);
        assert_eq!(trace.num_nodes(), c.num_nodes());
    }
}
