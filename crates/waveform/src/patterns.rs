//! Primary-input test patterns.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A sequence of primary-input vectors applied to the circuit, one per
/// simulation time step.
///
/// The paper assumes patterns "are available from the logic simulation
/// stage"; since no production traces ship with the benchmarks, this type
/// generates reproducible pseudo-random vectors (see DESIGN.md, substitution
/// 2). Deterministic seeding keeps every experiment repeatable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternSet {
    num_inputs: usize,
    vectors: Vec<Vec<bool>>,
}

impl PatternSet {
    /// Wraps explicit vectors. Every vector must have the same width.
    ///
    /// # Panics
    ///
    /// Panics if the vectors are not all `num_inputs` wide.
    pub fn from_vectors(num_inputs: usize, vectors: Vec<Vec<bool>>) -> Self {
        assert!(
            vectors.iter().all(|v| v.len() == num_inputs),
            "inconsistent vector width"
        );
        PatternSet {
            num_inputs,
            vectors,
        }
    }

    /// Generates `num_vectors` uniformly random vectors for `num_inputs`
    /// primary inputs, reproducibly from `seed`.
    pub fn random(num_inputs: usize, num_vectors: usize, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let vectors = (0..num_vectors)
            .map(|_| (0..num_inputs).map(|_| rng.gen_bool(0.5)).collect())
            .collect();
        PatternSet {
            num_inputs,
            vectors,
        }
    }

    /// Generates correlated random vectors: each input flips with probability
    /// `toggle_probability` between consecutive vectors, which produces
    /// realistic temporal correlation (and therefore a wider spread of
    /// switching similarities) than fully independent sampling.
    pub fn random_correlated(
        num_inputs: usize,
        num_vectors: usize,
        toggle_probability: f64,
        seed: u64,
    ) -> Self {
        let p = toggle_probability.clamp(0.0, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut current: Vec<bool> = (0..num_inputs).map(|_| rng.gen_bool(0.5)).collect();
        let mut vectors = Vec::with_capacity(num_vectors);
        for _ in 0..num_vectors {
            vectors.push(current.clone());
            for bit in current.iter_mut() {
                if rng.gen_bool(p) {
                    *bit = !*bit;
                }
            }
        }
        PatternSet {
            num_inputs,
            vectors,
        }
    }

    /// Number of primary inputs each vector covers.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of vectors (simulation time steps `T_D`).
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Returns `true` if the set holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// The vector applied at time step `t`.
    pub fn vector(&self, t: usize) -> &[bool] {
        &self.vectors[t]
    }

    /// Iterator over all vectors in time order.
    pub fn iter(&self) -> impl Iterator<Item = &[bool]> + '_ {
        self.vectors.iter().map(Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_reproducible() {
        let a = PatternSet::random(8, 64, 42);
        let b = PatternSet::random(8, 64, 42);
        let c = PatternSet::random(8, 64, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.num_inputs(), 8);
        assert_eq!(a.len(), 64);
    }

    #[test]
    fn random_is_roughly_balanced() {
        let p = PatternSet::random(4, 4000, 7);
        let ones: usize = p.iter().map(|v| v.iter().filter(|&&b| b).count()).sum();
        let total = 4 * 4000;
        let ratio = ones as f64 / total as f64;
        assert!((ratio - 0.5).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn correlated_patterns_toggle_at_requested_rate() {
        let p = PatternSet::random_correlated(6, 2000, 0.1, 3);
        let mut toggles = 0usize;
        let mut total = 0usize;
        for t in 1..p.len() {
            for i in 0..p.num_inputs() {
                total += 1;
                if p.vector(t)[i] != p.vector(t - 1)[i] {
                    toggles += 1;
                }
            }
        }
        let rate = toggles as f64 / total as f64;
        assert!((rate - 0.1).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn from_vectors_checks_width() {
        let ok = PatternSet::from_vectors(2, vec![vec![true, false], vec![false, false]]);
        assert_eq!(ok.len(), 2);
        assert_eq!(ok.vector(0), &[true, false]);
    }

    #[test]
    #[should_panic]
    fn from_vectors_rejects_ragged_input() {
        let _ = PatternSet::from_vectors(2, vec![vec![true], vec![false, false]]);
    }
}
