//! Miller / anti-Miller effective coupling factors.
//!
//! With physical coupling `C_c` between two wires:
//!
//! * the **Miller effect** (simultaneous switching in opposite directions)
//!   makes the equivalent coupling `2 C_c`,
//! * the **anti-Miller effect** (switching in the same direction) makes it
//!   `0`,
//! * a quiet neighbor leaves it at `C_c`.
//!
//! We interpolate between these extremes with the switching similarity:
//! `factor = 1 − similarity ∈ [0, 2]`, which is also exactly the edge weight
//! of the Switching-Similarity ordering problem.

/// Effective coupling multiplier in `[0, 2]` for a pair of wires with the
/// given switching similarity.
///
/// `similarity = 1` (always together) → `0` (anti-Miller);
/// `similarity = −1` (always opposite) → `2` (Miller);
/// `similarity = 0` → `1` (neutral).
/// Values outside `[−1, 1]` are clamped.
pub fn miller_factor(similarity: f64) -> f64 {
    (1.0 - similarity.clamp(-1.0, 1.0)).clamp(0.0, 2.0)
}

/// The edge weight used by the Switching-Similarity ordering problem:
/// `weight(i, j) = 1 − similarity(i, j)`. Identical to [`miller_factor`]
/// (the total effective loading of an ordering is the sum of the Miller
/// factors of adjacent pairs), provided separately for readability at call
/// sites that deal with the graph problem rather than with electricity.
pub fn ordering_weight(similarity: f64) -> f64 {
    miller_factor(similarity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extremes() {
        assert_eq!(miller_factor(1.0), 0.0);
        assert_eq!(miller_factor(-1.0), 2.0);
        assert_eq!(miller_factor(0.0), 1.0);
    }

    #[test]
    fn clamping() {
        assert_eq!(miller_factor(3.0), 0.0);
        assert_eq!(miller_factor(-5.0), 2.0);
    }

    #[test]
    fn monotone_decreasing_in_similarity() {
        let mut last = f64::INFINITY;
        for k in 0..=20 {
            let s = -1.0 + 2.0 * k as f64 / 20.0;
            let f = miller_factor(s);
            assert!(f <= last);
            last = f;
        }
    }

    #[test]
    fn ordering_weight_is_miller_factor() {
        for &s in &[-1.0, -0.5, 0.0, 0.3, 1.0] {
            assert_eq!(ordering_weight(s), miller_factor(s));
        }
    }
}
