//! Batch execution: many problem instances through the staged flow at once.
//!
//! [`BatchRunner`] is the throughput surface for serving many scenarios:
//! it runs one full two-stage flow per [`ProblemInstance`] and returns the
//! per-instance results in input order. With the `parallel` feature the
//! instances are fanned out across OS threads (`std::thread::scope`)
//! through an **atomic work queue**: each worker pops the next pending
//! instance as it finishes its current one, so a batch of mixed-size
//! instances never serializes behind the worker that drew the largest
//! contiguous chunk (the pre-queue behavior). Results are indexed back
//! into their input slots, so the output order — and, run for run, every
//! outcome — is identical to the serial path. Within each instance one
//! [`SizingEngine`](crate::SizingEngine) workspace serves every evaluation
//! of the sizing run, so a worker's live working set stays at one engine.
//!
//! All runs share one [`RunControl`]: one cancel flag stops the whole batch,
//! one deadline bounds its wall-clock time, and one observer (which takes
//! `&self` and must be `Sync`) watches every run's convergence. An instance
//! whose turn comes after cancellation or past the deadline is skipped
//! *before* its stage-1 ordering — its slot holds
//! [`CoreError::Interrupted`] with the [`StopReason`] —
//! while an instance interrupted mid-sizing still reports, with the reason
//! in its report. Either way the result vector lines up with the input
//! slice.

use ncgws_netlist::ProblemInstance;

use crate::control::{RunControl, StopReason};
use crate::error::CoreError;
use crate::flow::Flow;
use crate::optimizer::OptimizationOutcome;
use crate::problem::OptimizerConfig;

/// The per-instance [`StopReason`] of one batch slot, whichever side of the
/// `Result` it landed on: a completed run reports its own reason, a slot
/// skipped before stage 1 reports the interruption that skipped it, and any
/// other error yields `None`. Callers separating converged instances from
/// deadline-killed or cancelled ones branch on this instead of digging into
/// the report.
pub fn stop_reason_of(result: &Result<OptimizationOutcome, CoreError>) -> Option<StopReason> {
    match result {
        Ok(outcome) => Some(outcome.stop_reason()),
        Err(error) => error.interruption(),
    }
}

/// Executes many problem instances through the two-stage flow.
#[derive(Debug, Clone)]
pub struct BatchRunner {
    config: OptimizerConfig,
    threads: Option<usize>,
}

impl BatchRunner {
    /// Creates a runner applying one configuration to every instance.
    pub fn new(config: OptimizerConfig) -> Self {
        BatchRunner {
            config,
            threads: None,
        }
    }

    /// Caps the number of worker threads (only meaningful with the
    /// `parallel` feature; the serial build ignores it). Defaults to the
    /// machine's available parallelism.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// The configuration applied to every instance.
    pub fn config(&self) -> &OptimizerConfig {
        &self.config
    }

    /// Runs every instance, sharing `control` across all runs, and returns
    /// one result per instance in input order.
    ///
    /// Per-instance errors (invalid geometry, infeasible bounds, an
    /// interruption before the instance started) land in the corresponding
    /// slot without affecting the other instances.
    pub fn run(
        &self,
        instances: &[ProblemInstance],
        control: &RunControl<'_>,
    ) -> Vec<Result<OptimizationOutcome, CoreError>> {
        self.run_impl(instances, control)
    }

    fn run_one(
        &self,
        instance: &ProblemInstance,
        control: &RunControl<'_>,
    ) -> Result<OptimizationOutcome, CoreError> {
        // Don't pay stage 1 (simulation, similarity, ordering) for a run the
        // shared control has already stopped.
        if control.is_cancelled() {
            return Err(CoreError::Interrupted {
                reason: StopReason::Cancelled,
            });
        }
        if control.deadline_expired() {
            return Err(CoreError::Interrupted {
                reason: StopReason::DeadlineExpired,
            });
        }
        let ordered = Flow::prepare(instance, self.config.clone())?.order()?;
        let sized = ordered.size_with(control)?;
        Ok(OptimizationOutcome {
            report: sized.report,
            ordering: ordered.into_ordering(),
            ogws: sized.ogws,
        })
    }

    #[cfg(not(feature = "parallel"))]
    fn run_impl(
        &self,
        instances: &[ProblemInstance],
        control: &RunControl<'_>,
    ) -> Vec<Result<OptimizationOutcome, CoreError>> {
        instances
            .iter()
            .map(|instance| self.run_one(instance, control))
            .collect()
    }

    /// Fans the instances out across OS threads through an atomic work
    /// queue: whichever worker is free pops the next instance, so mixed-size
    /// batches never serialize behind the largest contiguous chunk. Each
    /// result lands in its input-index slot, so the output is identical to
    /// the serial path; an instance popped after the shared control was
    /// cancelled (or past its deadline) is still skipped *before* stage 1
    /// and its slot holds [`CoreError::Interrupted`] — PR 2's guarantee,
    /// regression-tested below.
    #[cfg(feature = "parallel")]
    fn run_impl(
        &self,
        instances: &[ProblemInstance],
        control: &RunControl<'_>,
    ) -> Vec<Result<OptimizationOutcome, CoreError>> {
        use std::sync::atomic::{AtomicUsize, Ordering};

        let workers = self
            .threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .min(instances.len())
            .max(1);
        if workers <= 1 {
            return instances
                .iter()
                .map(|instance| self.run_one(instance, control))
                .collect();
        }

        let mut slots: Vec<Option<Result<OptimizationOutcome, CoreError>>> = Vec::new();
        slots.resize_with(instances.len(), || None);
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    scope.spawn(move || {
                        let mut completed = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= instances.len() {
                                break;
                            }
                            completed.push((i, self.run_one(&instances[i], control)));
                        }
                        completed
                    })
                })
                .collect();
            for handle in handles {
                for (i, result) in handle.join().expect("batch worker panicked") {
                    slots[i] = Some(result);
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every instance was run"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::{CancelFlag, CollectObserver, StopReason};
    use crate::optimizer::Optimizer;
    use ncgws_netlist::{CircuitSpec, SyntheticGenerator};

    fn instances() -> Vec<ProblemInstance> {
        [(30usize, 70usize, 1u64), (40, 90, 2), (24, 55, 3)]
            .into_iter()
            .map(|(gates, wires, seed)| {
                SyntheticGenerator::new(
                    CircuitSpec::new(format!("batch-{seed}"), gates, wires)
                        .with_seed(seed)
                        .with_num_patterns(16),
                )
                .generate()
                .unwrap()
            })
            .collect()
    }

    fn quick_config() -> OptimizerConfig {
        OptimizerConfig {
            max_iterations: 30,
            max_lrs_sweeps: 20,
            ..OptimizerConfig::default()
        }
    }

    #[test]
    fn batch_matches_individual_runs_in_input_order() {
        let instances = instances();
        let runner = BatchRunner::new(quick_config());
        let results = runner.run(&instances, &RunControl::new());
        assert_eq!(results.len(), instances.len());
        for (instance, result) in instances.iter().zip(&results) {
            let batch = result.as_ref().expect("batch run succeeds");
            let solo = Optimizer::new(quick_config()).run(instance).unwrap();
            assert_eq!(batch.report.name, instance.name);
            assert_eq!(batch.sizes(), solo.sizes(), "{}", instance.name);
            assert_eq!(batch.report.final_metrics, solo.report.final_metrics);
        }
    }

    #[test]
    fn pre_cancelled_batch_skips_every_instance_before_stage_one() {
        let instances = instances();
        let flag = CancelFlag::new();
        flag.cancel();
        let control = RunControl::new().with_cancel_flag(flag);
        let results = BatchRunner::new(quick_config()).run(&instances, &control);
        assert_eq!(results.len(), instances.len());
        for result in &results {
            assert!(matches!(
                result,
                Err(CoreError::Interrupted {
                    reason: StopReason::Cancelled
                })
            ));
        }
    }

    /// An observer that cancels the shared flag as soon as it has seen
    /// `after` iteration events (interior mutability — one observer, many
    /// concurrent runs).
    struct CancelAfterEvents {
        flag: CancelFlag,
        after: usize,
        seen: std::sync::atomic::AtomicUsize,
    }

    impl crate::control::Observer for CancelAfterEvents {
        fn on_iteration(&self, _event: &crate::control::IterationEvent<'_>) {
            let seen = self.seen.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
            if seen >= self.after {
                self.flag.cancel();
            }
        }
    }

    /// Regression for the work-queue refactor: a cancellation observed
    /// *between* an instance being queued and its `run_one` must still
    /// yield `CoreError::Interrupted` in every remaining slot (PR 2's
    /// skip-before-stage-1 guarantee), with the slots still lining up with
    /// the input order.
    #[test]
    fn mid_batch_cancellation_interrupts_every_remaining_slot() {
        let instances: Vec<ProblemInstance> = (0..8u64)
            .map(|seed| {
                SyntheticGenerator::new(
                    CircuitSpec::new(format!("cancel-{seed}"), 30, 70)
                        .with_seed(seed)
                        .with_num_patterns(16),
                )
                .generate()
                .unwrap()
            })
            .collect();
        let flag = CancelFlag::new();
        let observer = CancelAfterEvents {
            flag: flag.clone(),
            after: 1,
            seen: std::sync::atomic::AtomicUsize::new(0),
        };
        let control = RunControl::new()
            .with_cancel_flag(flag)
            .with_observer(&observer);
        let results = BatchRunner::new(quick_config())
            .with_threads(2)
            .run(&instances, &control);

        assert_eq!(results.len(), instances.len(), "one slot per instance");
        let mut interrupted = 0usize;
        for (instance, result) in instances.iter().zip(&results) {
            match result {
                // An instance already past the pre-check finishes its run
                // cooperatively and reports the cancellation in its record.
                Ok(outcome) => assert_eq!(outcome.report.name, instance.name, "slot order"),
                Err(CoreError::Interrupted {
                    reason: StopReason::Cancelled,
                }) => interrupted += 1,
                Err(other) => panic!("unexpected error for {}: {other:?}", instance.name),
            }
        }
        // The flag fires during the very first iteration of the first
        // in-flight run, so at most the instances already popped from the
        // queue (one per worker) can complete; everything else must have
        // been skipped before its stage 1.
        assert!(
            interrupted >= instances.len().saturating_sub(4),
            "expected most slots interrupted, got {interrupted} of {}",
            instances.len()
        );
        assert!(interrupted >= 1, "at least one slot must be interrupted");
    }

    #[test]
    fn stop_reason_is_surfaced_on_both_result_sides() {
        let instances = instances();
        let runner = BatchRunner::new(quick_config());
        // Completed runs expose their own stop reason.
        let results = runner.run(&instances, &RunControl::new());
        for result in &results {
            let reason = stop_reason_of(result).expect("completed slots carry a reason");
            assert!(!reason.is_interrupted(), "uncontrolled runs complete");
        }
        // Pre-cancelled slots surface the interruption that skipped them.
        let flag = CancelFlag::new();
        flag.cancel();
        let control = RunControl::new().with_cancel_flag(flag);
        let results = runner.run(&instances, &control);
        for result in &results {
            assert_eq!(stop_reason_of(result), Some(StopReason::Cancelled));
        }
        // Non-interruption errors yield no reason.
        let err: Result<OptimizationOutcome, CoreError> = Err(CoreError::InvalidConfig {
            name: "max_iterations",
            reason: "must be positive".into(),
        });
        assert_eq!(stop_reason_of(&err), None);
    }

    #[test]
    fn shared_observer_sees_every_instance() {
        let instances = instances();
        let collector = CollectObserver::new();
        let control = RunControl::new().with_observer(&collector);
        let results = BatchRunner::new(quick_config())
            .with_threads(2)
            .run(&instances, &control);
        let total: usize = results
            .iter()
            .map(|r| r.as_ref().unwrap().report.iterations)
            .sum();
        assert_eq!(collector.count(), total);
    }
}
