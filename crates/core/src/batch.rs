//! Batch execution: many problem instances through the staged flow at once.
//!
//! [`BatchRunner`] is the throughput surface for serving many scenarios:
//! it runs one full two-stage flow per [`ProblemInstance`] and returns the
//! per-instance results in input order. With the `parallel` feature the
//! instances are fanned out across OS threads (`std::thread::scope`, like
//! the stage-1 channel fan-out); each worker processes its chunk
//! sequentially, and within each instance one
//! [`SizingEngine`](crate::SizingEngine) workspace serves every evaluation
//! of the sizing run, so a worker's live working set stays at one engine.
//!
//! All runs share one [`RunControl`]: one cancel flag stops the whole batch,
//! one deadline bounds its wall-clock time, and one observer (which takes
//! `&self` and must be `Sync`) watches every run's convergence. An instance
//! whose turn comes after cancellation or past the deadline is skipped
//! *before* its stage-1 ordering — its slot holds
//! [`CoreError::Interrupted`] with the [`StopReason`] —
//! while an instance interrupted mid-sizing still reports, with the reason
//! in its report. Either way the result vector lines up with the input
//! slice.

use ncgws_netlist::ProblemInstance;

use crate::control::{RunControl, StopReason};
use crate::error::CoreError;
use crate::flow::Flow;
use crate::optimizer::OptimizationOutcome;
use crate::problem::OptimizerConfig;

/// Executes many problem instances through the two-stage flow.
#[derive(Debug, Clone)]
pub struct BatchRunner {
    config: OptimizerConfig,
    threads: Option<usize>,
}

impl BatchRunner {
    /// Creates a runner applying one configuration to every instance.
    pub fn new(config: OptimizerConfig) -> Self {
        BatchRunner {
            config,
            threads: None,
        }
    }

    /// Caps the number of worker threads (only meaningful with the
    /// `parallel` feature; the serial build ignores it). Defaults to the
    /// machine's available parallelism.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// The configuration applied to every instance.
    pub fn config(&self) -> &OptimizerConfig {
        &self.config
    }

    /// Runs every instance, sharing `control` across all runs, and returns
    /// one result per instance in input order.
    ///
    /// Per-instance errors (invalid geometry, infeasible bounds, an
    /// interruption before the instance started) land in the corresponding
    /// slot without affecting the other instances.
    pub fn run(
        &self,
        instances: &[ProblemInstance],
        control: &RunControl<'_>,
    ) -> Vec<Result<OptimizationOutcome, CoreError>> {
        self.run_impl(instances, control)
    }

    fn run_one(
        &self,
        instance: &ProblemInstance,
        control: &RunControl<'_>,
    ) -> Result<OptimizationOutcome, CoreError> {
        // Don't pay stage 1 (simulation, similarity, ordering) for a run the
        // shared control has already stopped.
        if control.is_cancelled() {
            return Err(CoreError::Interrupted {
                reason: StopReason::Cancelled,
            });
        }
        if control.deadline_expired() {
            return Err(CoreError::Interrupted {
                reason: StopReason::DeadlineExpired,
            });
        }
        let ordered = Flow::prepare(instance, self.config.clone())?.order()?;
        let sized = ordered.size_with(control)?;
        Ok(OptimizationOutcome {
            report: sized.report,
            ordering: ordered.into_ordering(),
            ogws: sized.ogws,
        })
    }

    #[cfg(not(feature = "parallel"))]
    fn run_impl(
        &self,
        instances: &[ProblemInstance],
        control: &RunControl<'_>,
    ) -> Vec<Result<OptimizationOutcome, CoreError>> {
        instances
            .iter()
            .map(|instance| self.run_one(instance, control))
            .collect()
    }

    /// Fans the instances out across OS threads in contiguous chunks;
    /// results are reassembled in input order, so the output is identical to
    /// the serial path.
    #[cfg(feature = "parallel")]
    fn run_impl(
        &self,
        instances: &[ProblemInstance],
        control: &RunControl<'_>,
    ) -> Vec<Result<OptimizationOutcome, CoreError>> {
        let workers = self
            .threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .min(instances.len())
            .max(1);
        if workers <= 1 {
            return instances
                .iter()
                .map(|instance| self.run_one(instance, control))
                .collect();
        }

        let mut slots: Vec<Option<Result<OptimizationOutcome, CoreError>>> = Vec::new();
        slots.resize_with(instances.len(), || None);
        let chunk = instances.len().div_ceil(workers);
        std::thread::scope(|scope| {
            for (instance_chunk, slot_chunk) in instances.chunks(chunk).zip(slots.chunks_mut(chunk))
            {
                scope.spawn(move || {
                    for (instance, slot) in instance_chunk.iter().zip(slot_chunk.iter_mut()) {
                        *slot = Some(self.run_one(instance, control));
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every instance was run"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::{CancelFlag, CollectObserver, StopReason};
    use crate::optimizer::Optimizer;
    use ncgws_netlist::{CircuitSpec, SyntheticGenerator};

    fn instances() -> Vec<ProblemInstance> {
        [(30usize, 70usize, 1u64), (40, 90, 2), (24, 55, 3)]
            .into_iter()
            .map(|(gates, wires, seed)| {
                SyntheticGenerator::new(
                    CircuitSpec::new(format!("batch-{seed}"), gates, wires)
                        .with_seed(seed)
                        .with_num_patterns(16),
                )
                .generate()
                .unwrap()
            })
            .collect()
    }

    fn quick_config() -> OptimizerConfig {
        OptimizerConfig {
            max_iterations: 30,
            max_lrs_sweeps: 20,
            ..OptimizerConfig::default()
        }
    }

    #[test]
    fn batch_matches_individual_runs_in_input_order() {
        let instances = instances();
        let runner = BatchRunner::new(quick_config());
        let results = runner.run(&instances, &RunControl::new());
        assert_eq!(results.len(), instances.len());
        for (instance, result) in instances.iter().zip(&results) {
            let batch = result.as_ref().expect("batch run succeeds");
            let solo = Optimizer::new(quick_config()).run(instance).unwrap();
            assert_eq!(batch.report.name, instance.name);
            assert_eq!(batch.sizes(), solo.sizes(), "{}", instance.name);
            assert_eq!(batch.report.final_metrics, solo.report.final_metrics);
        }
    }

    #[test]
    fn pre_cancelled_batch_skips_every_instance_before_stage_one() {
        let instances = instances();
        let flag = CancelFlag::new();
        flag.cancel();
        let control = RunControl::new().with_cancel_flag(flag);
        let results = BatchRunner::new(quick_config()).run(&instances, &control);
        assert_eq!(results.len(), instances.len());
        for result in &results {
            assert!(matches!(
                result,
                Err(CoreError::Interrupted {
                    reason: StopReason::Cancelled
                })
            ));
        }
    }

    #[test]
    fn shared_observer_sees_every_instance() {
        let instances = instances();
        let collector = CollectObserver::new();
        let control = RunControl::new().with_observer(&collector);
        let results = BatchRunner::new(quick_config())
            .with_threads(2)
            .run(&instances, &control);
        let total: usize = results
            .iter()
            .map(|r| r.as_ref().unwrap().report.iterations)
            .sum();
        assert_eq!(collector.count(), total);
    }
}
