//! The staged `Flow` pipeline: the two-stage optimizer as a typestate API.
//!
//! The paper's algorithm has two clearly separated stages — WOSS wire
//! ordering (stage 1) and OGWS Lagrangian sizing (stage 2) — but the legacy
//! [`Optimizer::run`](crate::Optimizer::run) fuses them into one opaque
//! call. This module exposes each stage as a state of a typestate pipeline,
//! with the intermediates as first-class, inspectable values:
//!
//! ```text
//! Flow::prepare(&instance, config)?   validated configuration
//!     .order()?                       stage 1: ordering + coupling + bounds
//!     .size()?                        stage 2: sizing + report
//! ```
//!
//! * [`Prepared`] proves the configuration validated against nothing but
//!   itself;
//! * [`Ordered`] holds the stage-1 [`WireOrderingOutcome`], the initial
//!   metrics and the derived constraint bounds. It is the reuse point: one
//!   ordering can feed any number of sizing runs (cold, warm-started,
//!   cancelled, budgeted) without re-simulating or re-ordering;
//! * [`SizedOutcome`] carries the [`OptimizationReport`] and the raw
//!   [`OgwsOutcome`] of one sizing run.
//!
//! A cold `size()` is bit-identical to the legacy `Optimizer::run`, which is
//! now a thin wrapper over this pipeline (the `flow_api` integration tests
//! enforce the equivalence property-wise). The third state is named
//! `SizedOutcome` rather than `Sized` to avoid shadowing the marker trait of
//! the prelude.

use std::time::Instant;

use ncgws_circuit::{DelayModel, SizeVector};
use ncgws_netlist::ProblemInstance;

use crate::constraints::{lower_constraint_specs, ConstraintSet};
use crate::control::{RunControl, StopReason};
use crate::coupling_build::{build_coupling, WireOrderingOutcome};
use crate::engine::SizingEngine;
use crate::error::CoreError;
use crate::metrics::{CircuitMetrics, MemoryBreakdown};
use crate::ogws::{OgwsOutcome, OgwsSolver, FEASIBILITY_TOLERANCE};
use crate::problem::{ConstraintBounds, OptimizerConfig, SizingProblem};
use crate::report::{Improvements, OptimizationReport};
use crate::snapshot::Snapshot;

/// How one stage-2 run enters the OGWS loop.
enum SolveMode<'s> {
    /// A cold or warm-started run from iteration 1.
    Fresh(Option<&'s SizeVector>),
    /// A run re-entered from a checkpoint.
    Resume(&'s Snapshot),
}

/// Entry point of the staged pipeline.
///
/// `Flow` itself is uninhabited state: all data lives in the stage values it
/// produces, starting with [`Flow::prepare`].
#[derive(Debug, Clone, Copy)]
pub struct Flow;

impl Flow {
    /// Validates the configuration against a problem instance and starts the
    /// pipeline's wall clock.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the configuration is
    /// invalid.
    pub fn prepare(
        instance: &ProblemInstance,
        config: OptimizerConfig,
    ) -> Result<Prepared<'_>, CoreError> {
        config.validate()?;
        Ok(Prepared {
            instance,
            config,
            started: Instant::now(),
        })
    }
}

/// A validated configuration bound to a problem instance — the state before
/// stage 1.
#[derive(Debug, Clone)]
pub struct Prepared<'a> {
    instance: &'a ProblemInstance,
    config: OptimizerConfig,
    started: Instant,
}

impl<'a> Prepared<'a> {
    /// The problem instance the pipeline operates on.
    pub fn instance(&self) -> &'a ProblemInstance {
        self.instance
    }

    /// The validated configuration.
    pub fn config(&self) -> &OptimizerConfig {
        &self.config
    }

    /// Runs stage 1: logic simulation, switching-similarity wire ordering and
    /// coupling-model construction, then derives the constraint bounds from
    /// the initial (unsized) metrics.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Coupling`] when the induced coupling pairs are
    /// geometrically invalid for the instance's layout.
    pub fn order(self) -> Result<Ordered<'a>, CoreError> {
        let ordering = build_coupling(
            self.instance,
            self.config.ordering,
            self.config.effective_coupling,
        )?;
        let graph = &self.instance.circuit;
        let (initial_metrics, bounds, extras) = {
            let mut engine = SizingEngine::new(graph, &ordering.coupling);
            let initial_sizes = self.config.initial_sizes(graph);
            let initial_metrics = CircuitMetrics::evaluate_with(&mut engine, &initial_sizes);
            let bounds = self
                .config
                .absolute_bounds
                .unwrap_or_else(|| ConstraintBounds::from_initial(&initial_metrics, &self.config))
                .clamped_to_feasible(graph, &ordering.coupling);
            // Lower the configuration-level constraint specs into absolute
            // families now that the coupling model exists; like the global
            // bounds, the caps are derived from the initial sizing.
            let extras = lower_constraint_specs(
                &self.config.extra_constraints,
                self.instance,
                &ordering,
                &initial_sizes,
            )?;
            (initial_metrics, bounds, extras)
        };
        Ok(Ordered {
            instance: self.instance,
            config: self.config,
            stage1_seconds: self.started.elapsed().as_secs_f64(),
            ordering,
            initial_metrics,
            bounds,
            extras,
        })
    }
}

/// The stage-1 outcome — the state between ordering and sizing, and the
/// reuse point for repeated sizing runs over one ordering.
#[derive(Debug, Clone)]
pub struct Ordered<'a> {
    instance: &'a ProblemInstance,
    config: OptimizerConfig,
    // Wall-clock cost of prepare+order, folded into every sizing run's
    // reported runtime (each run re-measures only its own stage 2, so
    // repeated runs over one ordering do not accumulate each other's time).
    stage1_seconds: f64,
    ordering: WireOrderingOutcome,
    initial_metrics: CircuitMetrics,
    bounds: ConstraintBounds,
    extras: ConstraintSet,
}

impl<'a> Ordered<'a> {
    /// The problem instance the pipeline operates on.
    pub fn instance(&self) -> &'a ProblemInstance {
        self.instance
    }

    /// The validated configuration.
    pub fn config(&self) -> &OptimizerConfig {
        &self.config
    }

    /// The stage-1 wire-ordering outcome: per-channel orderings, their total
    /// effective loading, the coupling set and the induced adjacency.
    pub fn ordering(&self) -> &WireOrderingOutcome {
        &self.ordering
    }

    /// Metrics of the initial (unsized) circuit, coupling included.
    pub fn initial_metrics(&self) -> &CircuitMetrics {
        &self.initial_metrics
    }

    /// The absolute constraint bounds stage 2 will enforce (derived from the
    /// initial metrics unless the configuration carries absolute bounds,
    /// then clamped to what the layout can achieve at all).
    pub fn bounds(&self) -> ConstraintBounds {
        self.bounds
    }

    /// The extra constraint families stage 2 will enforce, lowered from the
    /// configuration's [`ConstraintSpec`](crate::ConstraintSpec)s against
    /// this ordering's coupling model (empty for the paper's formulation).
    pub fn extra_constraints(&self) -> &ConstraintSet {
        &self.extras
    }

    /// Consumes the state and returns the stage-1 outcome.
    pub fn into_ordering(self) -> WireOrderingOutcome {
        self.ordering
    }

    /// Runs stage 2 cold: OGWS Lagrangian sizing from scratch.
    ///
    /// Bit-identical to the sizing performed by the legacy
    /// [`Optimizer::run`](crate::Optimizer::run).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InfeasibleBounds`] when no sizing can satisfy
    /// the derived bounds.
    pub fn size(&self) -> Result<SizedOutcome, CoreError> {
        self.size_controlled(None, &RunControl::new())
    }

    /// Runs stage 2 warm-started from a previous solution (for example the
    /// [`sizes`](SizedOutcome::sizes) of an earlier run over this ordering).
    ///
    /// A feasible warm start becomes the initial primal upper bound, so the
    /// run converges in at most as many iterations as the cold run that
    /// produced it.
    ///
    /// # Errors
    ///
    /// As [`size`](Self::size), plus [`CoreError::InvalidConfig`] when
    /// `warm` has the wrong length for the circuit.
    pub fn size_warm(&self, warm: &SizeVector) -> Result<SizedOutcome, CoreError> {
        self.size_controlled(Some(warm), &RunControl::new())
    }

    /// Runs stage 2 cold under a [`RunControl`] (observer, cancellation,
    /// iteration budget, deadline).
    ///
    /// # Errors
    ///
    /// As [`size`](Self::size).
    pub fn size_with(&self, control: &RunControl<'_>) -> Result<SizedOutcome, CoreError> {
        self.size_controlled(None, control)
    }

    /// Runs stage 2 with both a warm start and a [`RunControl`], building a
    /// fresh engine for the run.
    ///
    /// Callers sizing the same ordering many times (warm-start loops,
    /// serving) should build the engine once with [`engine`](Self::engine)
    /// and use [`size_with_engine`](Self::size_with_engine) so the
    /// workspace allocation is paid once, not per run.
    ///
    /// # Errors
    ///
    /// As [`size_warm`](Self::size_warm).
    pub fn size_controlled(
        &self,
        warm: Option<&SizeVector>,
        control: &RunControl<'_>,
    ) -> Result<SizedOutcome, CoreError> {
        let mut engine = self.engine();
        self.size_with_engine(&mut engine, warm, control)
    }

    /// Builds a sizing engine bound to this ordering, for reuse across
    /// repeated [`size_with_engine`](Self::size_with_engine) calls.
    ///
    /// The engine starts with the sequential parallel policy; every sizing
    /// run applies the configuration's
    /// [`parallel`](crate::OptimizerConfig::parallel) policy (e.g.
    /// [`OptimizerConfigBuilder::threads`](crate::OptimizerConfigBuilder::threads))
    /// at solve start, so one engine can serve runs under different thread
    /// counts — with bitwise-identical outcomes across all of them.
    pub fn engine(&self) -> SizingEngine<'_> {
        SizingEngine::new(&self.instance.circuit, &self.ordering.coupling)
    }

    /// The fully general sizing call every other `size*` method delegates
    /// to: warm start, run control, and a caller-provided engine whose
    /// workspace is reused across runs.
    ///
    /// # Errors
    ///
    /// As [`size_warm`](Self::size_warm).
    ///
    /// # Panics
    ///
    /// Panics when `engine` was built for a different circuit or coupling
    /// set than this ordering (build it with [`engine`](Self::engine)).
    pub fn size_with_engine<M: DelayModel>(
        &self,
        engine: &mut SizingEngine<'_, M>,
        warm: Option<&SizeVector>,
        control: &RunControl<'_>,
    ) -> Result<SizedOutcome, CoreError> {
        if let Some(warm) = warm {
            if warm.len() != self.instance.circuit.num_components() {
                return Err(CoreError::InvalidConfig {
                    name: "warm_start",
                    reason: format!(
                        "warm-start vector has {} entries but the circuit has {} components",
                        warm.len(),
                        self.instance.circuit.num_components()
                    ),
                });
            }
        }
        self.run_sizing(engine, SolveMode::Fresh(warm), control)
    }

    /// Re-enters stage 2 from a [`Snapshot`] captured by an earlier run over
    /// this ordering, building a fresh engine for the run.
    ///
    /// The resumed run continues the interrupted trajectory — multipliers,
    /// best-feasible bookkeeping, iteration counter (the step schedule
    /// `ρ_k` picks up where it left off) and, under the adaptive strategy,
    /// the schedule's freeze state. Its final metrics match the
    /// uninterrupted run within `1e-6` relative (bitwise under the exact
    /// strategy, and for iteration-0 snapshots under both); the
    /// `serve_checkpoint` property tests pin this. The control's iteration
    /// budget covers only the resumed attempt.
    ///
    /// # Errors
    ///
    /// As [`size`](Self::size), plus [`CoreError::InvalidConfig`] (named
    /// `"snapshot"`) when the snapshot does not belong to this ordering's
    /// circuit.
    pub fn size_resume(
        &self,
        snapshot: &Snapshot,
        control: &RunControl<'_>,
    ) -> Result<SizedOutcome, CoreError> {
        let mut engine = self.engine();
        self.size_resume_with_engine(&mut engine, snapshot, control)
    }

    /// [`size_resume`](Self::size_resume) with a caller-provided engine (see
    /// [`size_with_engine`](Self::size_with_engine) for the reuse contract).
    ///
    /// # Errors
    ///
    /// As [`size_resume`](Self::size_resume).
    ///
    /// # Panics
    ///
    /// Panics when `engine` was built for a different circuit or coupling
    /// set than this ordering.
    pub fn size_resume_with_engine<M: DelayModel>(
        &self,
        engine: &mut SizingEngine<'_, M>,
        snapshot: &Snapshot,
        control: &RunControl<'_>,
    ) -> Result<SizedOutcome, CoreError> {
        if let Err(reason) = snapshot.validate_for(&self.instance.circuit) {
            return Err(CoreError::InvalidConfig {
                name: "snapshot",
                reason,
            });
        }
        self.run_sizing(engine, SolveMode::Resume(snapshot), control)
    }

    /// The shared stage-2 body behind every `size*` entry point.
    fn run_sizing<M: DelayModel>(
        &self,
        engine: &mut SizingEngine<'_, M>,
        mode: SolveMode<'_>,
        control: &RunControl<'_>,
    ) -> Result<SizedOutcome, CoreError> {
        let graph = &self.instance.circuit;
        let coupling = &self.ordering.coupling;
        assert!(
            std::ptr::eq(graph, engine.graph()),
            "engine was built for a different circuit than this ordering"
        );
        assert!(
            std::ptr::eq(coupling, engine.coupling()),
            "engine was built for a different coupling set than this ordering"
        );
        let sizing_started = Instant::now();

        let problem =
            SizingProblem::with_constraints(graph, coupling, self.bounds, self.extras.clone())?;
        let solver = OgwsSolver::new(self.config.clone());
        let ogws = match mode {
            SolveMode::Fresh(warm) => solver.solve_controlled(&problem, engine, warm, control),
            SolveMode::Resume(snapshot) => {
                solver.solve_resumed(&problem, engine, snapshot, control)
            }
        };
        let final_metrics = CircuitMetrics::evaluate_with(engine, &ogws.sizes);
        let constraint_slacks = problem.extras.slacks(&ogws.sizes, FEASIBILITY_TOLERANCE);

        // Stage 1 is paid once per ordering, stage 2 per run: report this
        // run's cost, not the sum over every sibling run or the idle time
        // between them.
        let runtime_seconds = self.stage1_seconds + sizing_started.elapsed().as_secs_f64();
        let memory = MemoryBreakdown {
            circuit_bytes: graph.memory_bytes(),
            coupling_bytes: coupling.memory_bytes(),
            multiplier_bytes: std::mem::size_of::<f64>() * (graph.num_edges() + 2),
            working_bytes: engine.memory_bytes(),
        };

        let report = OptimizationReport {
            name: self.instance.name.clone(),
            num_gates: graph.num_gates(),
            num_wires: graph.num_wires(),
            initial_metrics: self.initial_metrics,
            final_metrics,
            improvements: Improvements::between(&self.initial_metrics, &final_metrics),
            iterations: ogws.num_iterations(),
            runtime_seconds,
            seconds_per_iteration: ogws.seconds_per_iteration(),
            sweeps_total: ogws.sweeps_total(),
            mean_sweeps_per_solve: ogws.mean_sweeps_per_solve(),
            mean_touched_per_sweep: ogws.mean_touched_per_sweep(),
            memory,
            feasible: ogws.feasible,
            constraint_slacks,
            converged: ogws.converged,
            stop_reason: ogws.stop_reason,
            duality_gap: ogws.best_gap,
            iteration_records: ogws.iterations.clone(),
            ordering_effective_loading: self.ordering.total_effective_loading,
        };

        Ok(SizedOutcome { report, ogws })
    }
}

/// The stage-2 outcome of one sizing run: the report plus the raw OGWS data.
///
/// The pipeline's terminal state. Produced by the `size*` methods of
/// [`Ordered`]; several outcomes can be produced from one ordering.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SizedOutcome {
    /// The report (Table 1 row, iteration history, memory, improvements,
    /// stop reason).
    pub report: OptimizationReport,
    /// The raw OGWS outcome (sizes, multiplier values, convergence data).
    pub ogws: OgwsOutcome,
}

impl SizedOutcome {
    /// The final size vector (borrowed from the OGWS outcome, which owns it).
    pub fn sizes(&self) -> &SizeVector {
        &self.ogws.sizes
    }

    /// Why the sizing run stopped.
    pub fn stop_reason(&self) -> StopReason {
        self.report.stop_reason
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::{CancelFlag, CollectObserver};
    use ncgws_netlist::{CircuitSpec, SyntheticGenerator};

    fn instance(gates: usize, wires: usize, seed: u64) -> ProblemInstance {
        SyntheticGenerator::new(
            CircuitSpec::new("flow-test", gates, wires)
                .with_seed(seed)
                .with_num_patterns(32),
        )
        .generate()
        .unwrap()
    }

    fn quick_config() -> OptimizerConfig {
        OptimizerConfig {
            max_iterations: 40,
            max_lrs_sweeps: 20,
            ..OptimizerConfig::default()
        }
    }

    #[test]
    fn invalid_config_is_rejected_at_prepare() {
        let inst = instance(20, 45, 1);
        let config = OptimizerConfig {
            gap_tolerance: -1.0,
            ..OptimizerConfig::default()
        };
        assert!(matches!(
            Flow::prepare(&inst, config),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn stage_one_is_inspectable_before_sizing() {
        let inst = instance(40, 90, 3);
        let ordered = Flow::prepare(&inst, quick_config())
            .unwrap()
            .order()
            .unwrap();
        assert!(!ordered.ordering().orderings.is_empty());
        assert!(ordered.ordering().total_effective_loading >= 0.0);
        assert!(ordered.initial_metrics().area_um2 > 0.0);
        assert!(ordered.bounds().delay > 0.0);
        assert_eq!(
            ordered.instance().circuit.num_components(),
            inst.circuit.num_components()
        );
    }

    #[test]
    fn one_ordering_feeds_many_sizing_runs() {
        let inst = instance(40, 90, 5);
        let ordered = Flow::prepare(&inst, quick_config())
            .unwrap()
            .order()
            .unwrap();
        let a = ordered.size().unwrap();
        let b = ordered.size().unwrap();
        assert_eq!(a.sizes(), b.sizes(), "cold runs are deterministic");
        assert_eq!(a.report.final_metrics, b.report.final_metrics);
        // A warm run from a's solution is at least as good, in fewer or
        // equally many iterations.
        let warm = ordered.size_warm(a.sizes()).unwrap();
        assert!(warm.report.iterations <= a.report.iterations);
        assert!(warm.report.feasible);
    }

    #[test]
    fn one_engine_serves_repeated_sizing_runs() {
        let inst = instance(40, 90, 5);
        let ordered = Flow::prepare(&inst, quick_config())
            .unwrap()
            .order()
            .unwrap();
        let fresh = ordered.size().unwrap();
        let mut engine = ordered.engine();
        let control = RunControl::new();
        let a = ordered
            .size_with_engine(&mut engine, None, &control)
            .unwrap();
        let warm = ordered
            .size_with_engine(&mut engine, Some(a.sizes()), &control)
            .unwrap();
        assert_eq!(a.sizes(), fresh.sizes(), "engine reuse must not leak state");
        assert_eq!(a.report.final_metrics, fresh.report.final_metrics);
        assert!(warm.report.iterations <= a.report.iterations);
    }

    #[test]
    fn warm_start_of_wrong_length_is_rejected() {
        let inst = instance(30, 70, 7);
        let ordered = Flow::prepare(&inst, quick_config())
            .unwrap()
            .order()
            .unwrap();
        let warm = SizeVector::uniform(3, 1.0);
        assert!(matches!(
            ordered.size_warm(&warm),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn budget_and_observer_are_honored() {
        let inst = instance(40, 90, 9);
        let ordered = Flow::prepare(&inst, quick_config())
            .unwrap()
            .order()
            .unwrap();
        let collector = CollectObserver::new();
        let control = RunControl::new()
            .with_observer(&collector)
            .with_iteration_budget(4);
        let sized = ordered.size_with(&control).unwrap();
        assert_eq!(sized.report.iterations, 4);
        assert_eq!(sized.stop_reason(), StopReason::BudgetExhausted);
        assert_eq!(collector.count(), 4);
    }

    #[test]
    fn pre_cancelled_run_performs_no_iterations() {
        let inst = instance(30, 70, 11);
        let ordered = Flow::prepare(&inst, quick_config())
            .unwrap()
            .order()
            .unwrap();
        let flag = CancelFlag::new();
        flag.cancel();
        let control = RunControl::new().with_cancel_flag(flag);
        let sized = ordered.size_with(&control).unwrap();
        assert_eq!(sized.report.iterations, 0);
        assert_eq!(sized.stop_reason(), StopReason::Cancelled);
        assert!(!sized.report.feasible);
    }
}
