//! The end-to-end two-stage optimizer (legacy one-shot surface).
//!
//! [`Optimizer::run`] is a thin wrapper over the staged [`Flow`] pipeline:
//! it prepares, orders and sizes in
//! one call and returns the combined [`OptimizationOutcome`]. The staged API
//! in [`flow`](crate::flow) exposes the same computation with inspectable
//! intermediates, warm starts, run control and batch execution; a cold flow
//! run is bit-identical to this wrapper (the `flow_api` integration tests
//! enforce it). Extra constraint families configured through
//! [`OptimizerConfig::extra_constraints`] are honored here exactly as in
//! the staged pipeline — the wrapper delegates to it.

use ncgws_circuit::SizeVector;
use ncgws_netlist::ProblemInstance;

use crate::coupling_build::WireOrderingOutcome;
use crate::error::CoreError;
use crate::flow::Flow;
use crate::ogws::OgwsOutcome;
use crate::problem::OptimizerConfig;
use crate::report::OptimizationReport;

/// The result of a full optimization run.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct OptimizationOutcome {
    /// The report (Table 1 row, iteration history, memory, improvements).
    pub report: OptimizationReport,
    /// The stage-1 wire ordering outcome (orderings, coupling set, adjacency).
    pub ordering: WireOrderingOutcome,
    /// The raw OGWS outcome (multiplier values, convergence data).
    pub ogws: OgwsOutcome,
}

impl OptimizationOutcome {
    /// The final size vector. Borrowed from the OGWS outcome, which owns it
    /// — the outcome used to carry a redundant clone alongside `ogws.sizes`.
    pub fn sizes(&self) -> &SizeVector {
        &self.ogws.sizes
    }

    /// Why the sizing run stopped — the field batch callers branch on to
    /// separate converged instances from deadline-killed or cancelled ones
    /// (see [`batch::stop_reason_of`](crate::batch::stop_reason_of)).
    pub fn stop_reason(&self) -> crate::StopReason {
        self.ogws.stop_reason
    }
}

/// The two-stage noise-constrained gate and wire sizing optimizer.
#[derive(Debug, Clone)]
pub struct Optimizer {
    config: OptimizerConfig,
}

impl Optimizer {
    /// Creates an optimizer with the given configuration.
    pub fn new(config: OptimizerConfig) -> Self {
        Optimizer { config }
    }

    /// Creates an optimizer with the default configuration.
    pub fn with_defaults() -> Self {
        Optimizer::new(OptimizerConfig::default())
    }

    /// The configuration in use.
    pub fn config(&self) -> &OptimizerConfig {
        &self.config
    }

    /// Runs the full two-stage flow on a problem instance.
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is invalid, the coupling model
    /// cannot be built for the instance's geometry, or the derived constraint
    /// bounds are unsatisfiable.
    pub fn run(&self, instance: &ProblemInstance) -> Result<OptimizationOutcome, CoreError> {
        let ordered = Flow::prepare(instance, self.config.clone())?.order()?;
        let sized = ordered.size()?;
        Ok(OptimizationOutcome {
            report: sized.report,
            ordering: ordered.into_ordering(),
            ogws: sized.ogws,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ConstraintBounds;
    use ncgws_netlist::{CircuitSpec, SyntheticGenerator};

    fn instance(gates: usize, wires: usize, seed: u64) -> ProblemInstance {
        SyntheticGenerator::new(
            CircuitSpec::new("opt-test", gates, wires)
                .with_seed(seed)
                .with_num_patterns(32),
        )
        .generate()
        .unwrap()
    }

    fn quick_config() -> OptimizerConfig {
        OptimizerConfig {
            max_iterations: 40,
            max_lrs_sweeps: 20,
            ..OptimizerConfig::default()
        }
    }

    #[test]
    fn full_flow_improves_noise_power_and_area() {
        let inst = instance(60, 130, 7);
        let outcome = Optimizer::new(quick_config()).run(&inst).unwrap();
        let r = &outcome.report;
        assert!(r.feasible, "the optimizer must return a feasible sizing");
        assert!(r.final_metrics.noise_pf < r.initial_metrics.noise_pf);
        assert!(r.final_metrics.power_mw < r.initial_metrics.power_mw);
        assert!(r.final_metrics.area_um2 < r.initial_metrics.area_um2);
        assert!(
            r.improvements.noise_pct > 50.0,
            "noise improvement {}",
            r.improvements.noise_pct
        );
        assert!(
            r.improvements.area_pct > 50.0,
            "area improvement {}",
            r.improvements.area_pct
        );
        // Delay must respect the bound (factor 1.0 of the initial delay).
        assert!(
            r.final_metrics.delay_ps <= r.initial_metrics.delay_ps * (1.0 + 1e-6),
            "delay {} vs initial {}",
            r.final_metrics.delay_ps,
            r.initial_metrics.delay_ps
        );
        assert!(r.iterations >= 1);
        assert!(r.memory.total() > 0);
        assert_eq!(r.total_components(), 190);
    }

    #[test]
    fn final_sizes_respect_bounds_and_length() {
        let inst = instance(40, 90, 3);
        let outcome = Optimizer::new(quick_config()).run(&inst).unwrap();
        assert_eq!(outcome.sizes().len(), inst.circuit.num_components());
        assert!(inst.circuit.check_sizes(outcome.sizes()).is_ok());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let inst = instance(20, 45, 1);
        let config = OptimizerConfig {
            max_iterations: 0,
            ..OptimizerConfig::default()
        };
        assert!(matches!(
            Optimizer::new(config).run(&inst),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn absolute_bounds_override_factors() {
        let inst = instance(30, 70, 5);
        // Absurdly loose absolute bounds: the optimizer should shrink to the
        // minimum area regardless of the factor fields.
        let config = OptimizerConfig {
            absolute_bounds: Some(ConstraintBounds {
                delay: 1e15,
                total_capacitance: 1e15,
                crosstalk: 1e15,
            }),
            max_iterations: 30,
            ..OptimizerConfig::default()
        };
        let outcome = Optimizer::new(config).run(&inst).unwrap();
        let min_area = ncgws_circuit::total_area(&inst.circuit, &inst.circuit.minimum_sizes());
        assert!(outcome.report.final_metrics.area_um2 <= min_area * 1.05);
    }

    #[test]
    fn extra_constraints_thread_through_the_legacy_wrapper() {
        let inst = instance(30, 70, 5);
        let config = OptimizerConfig::builder()
            .per_net_crosstalk_cap(0.9)
            .driven_load_cap(1.5)
            .max_iterations(30)
            .build()
            .unwrap();
        let outcome = Optimizer::new(config).run(&inst).unwrap();
        assert_eq!(outcome.report.constraint_slacks.len(), 2);
        assert_eq!(outcome.ogws.extra_multipliers.len(), 2);
        if outcome.report.feasible {
            assert!(outcome
                .report
                .constraint_slacks
                .iter()
                .all(|slack| slack.satisfied));
        }
    }

    #[test]
    fn runs_are_reproducible() {
        let inst = instance(30, 70, 9);
        let a = Optimizer::new(quick_config()).run(&inst).unwrap();
        let b = Optimizer::new(quick_config()).run(&inst).unwrap();
        assert_eq!(a.sizes(), b.sizes());
        assert_eq!(a.report.final_metrics, b.report.final_metrics);
    }
}
