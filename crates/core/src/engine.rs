//! The cross-layer sizing engine: circuit + coupling + delay model + scratch.
//!
//! [`SizingEngine`] binds a circuit graph, its coupling set, a
//! [`DelayModel`] backend and an [`EvalWorkspace`] together, and adds the
//! dense per-component attribute tables the LRS closed-form resize reads in
//! its innermost loop. Built once per [`SizingProblem`] (or circuit), it
//! makes every evaluation the optimizer performs — coupling loads,
//! downstream capacitances, weighted upstream resistances, timing, metrics,
//! LRS sweeps — allocation-free after setup.
//!
//! The arithmetic is performed in exactly the same order as the
//! allocate-per-call reference path ([`crate::reference`],
//! [`CircuitMetrics::evaluate`]), so the two produce bitwise identical
//! results; the `property_eval_engine` integration test enforces this.
//!
//! Future delay-model backends (higher-order models, sharded evaluation)
//! implement [`DelayModel`] and plug in through
//! [`SizingEngine::with_model`].

use ncgws_circuit::{
    propagate_arrivals_into, CircuitGraph, DelayModel, ElmoreModel, EvalWorkspace, NodeId,
    SizeVector,
};
use ncgws_coupling::CouplingSet;

use crate::constraints::ConstraintSet;
use crate::lagrangian::Multipliers;
use crate::metrics::CircuitMetrics;
use crate::problem::SizingProblem;
use crate::units;

/// A borrowed, allocation-free view of one timing evaluation. All slices are
/// indexed by raw node index and stay valid until the engine's next
/// `&mut self` call.
#[derive(Debug)]
pub struct TimingView<'a> {
    /// Per-component Elmore delays `D_i`.
    pub delays: &'a [f64],
    /// Tightest arrival times `a_i`.
    pub arrival: &'a [f64],
    /// Delay of the critical path (the circuit delay `D`).
    pub critical_path_delay: f64,
    /// The nodes of one critical path, from a driver to a primary output.
    pub critical_path: &'a [NodeId],
}

/// The reusable evaluation engine threaded through the whole two-stage flow.
#[derive(Debug, Clone)]
pub struct SizingEngine<'a, M: DelayModel = ElmoreModel> {
    graph: &'a CircuitGraph,
    coupling: &'a CouplingSet,
    model: M,
    state: M::State,
    pub(crate) ws: EvalWorkspace,
    // Dense per-component tables (indexed by the graph's dense component
    // index). The hot loop reads these instead of chasing `Node` structs,
    // whose inline `String` names spread the numeric fields across cache
    // lines.
    pub(crate) comp_raw_index: Vec<usize>,
    pub(crate) comp_is_wire: Vec<bool>,
    pub(crate) unit_resistance: Vec<f64>,
    pub(crate) unit_capacitance: Vec<f64>,
    pub(crate) area_coefficient: Vec<f64>,
    pub(crate) lower_bound: Vec<f64>,
    pub(crate) upper_bound: Vec<f64>,
    pub(crate) coupling_sum: Vec<f64>,
    /// Per-component denominator contribution `Σ_f Σ_k μ_{f,k} · a_{f,k,i}`
    /// of the extra constraint families, aggregated once per LRS solve by
    /// [`load_extra_denominator`](Self::load_extra_denominator). All zeros
    /// when no extra families are active, which makes the sweep's
    /// `+ extra_denom[i]` a bitwise no-op on the legacy formulation.
    extra_denom: Vec<f64>,
    /// Dense coupling-pair table: raw node and dense component indices plus
    /// the cached geometry coefficients of each pair, so the per-sweep load
    /// accumulation never touches the pair objects.
    pair_table: Vec<PairEntry>,
}

/// One coupling pair in dense form (see `SizingEngine::pair_table`).
#[derive(Debug, Clone, Copy)]
struct PairEntry {
    a_raw: u32,
    b_raw: u32,
    a_comp: u32,
    b_comp: u32,
    /// Switching factor `sf_ij`.
    switching: f64,
    /// Size-independent coupling `~c_ij`.
    base: f64,
    /// Linear coefficient `ĉ_ij`.
    coeff: f64,
}

impl<'a> SizingEngine<'a, ElmoreModel> {
    /// Creates an engine with the Elmore backend.
    pub fn new(graph: &'a CircuitGraph, coupling: &'a CouplingSet) -> Self {
        SizingEngine::with_model(graph, coupling, ElmoreModel)
    }

    /// Creates an engine for an assembled sizing problem.
    pub fn for_problem(problem: &SizingProblem<'a>) -> Self {
        SizingEngine::new(problem.graph, problem.coupling)
    }
}

impl<'a, M: DelayModel> SizingEngine<'a, M> {
    /// Creates an engine with a custom delay-model backend.
    pub fn with_model(graph: &'a CircuitGraph, coupling: &'a CouplingSet, model: M) -> Self {
        // The dense pair table stores 32-bit indices.
        assert!(
            graph.num_nodes() <= u32::MAX as usize,
            "circuit too large for 32-bit indices"
        );
        let n = graph.num_components();
        let mut comp_raw_index = Vec::with_capacity(n);
        let mut comp_is_wire = Vec::with_capacity(n);
        let mut unit_resistance = Vec::with_capacity(n);
        let mut unit_capacitance = Vec::with_capacity(n);
        let mut area_coefficient = Vec::with_capacity(n);
        let mut lower_bound = Vec::with_capacity(n);
        let mut upper_bound = Vec::with_capacity(n);
        let mut coupling_sum = Vec::with_capacity(n);
        let state = model.prepare(graph);
        let sums = coupling.linear_coefficient_sums();
        let pair_table = coupling
            .pairs()
            .iter()
            .map(|pair| PairEntry {
                a_raw: pair.a.index() as u32,
                b_raw: pair.b.index() as u32,
                a_comp: graph
                    .component_index(pair.a)
                    .expect("coupled wires are sizable") as u32,
                b_comp: graph
                    .component_index(pair.b)
                    .expect("coupled wires are sizable") as u32,
                switching: pair.switching_factor,
                base: pair.base_capacitance(),
                coeff: pair.linear_coefficient(),
            })
            .collect();
        for id in graph.component_ids() {
            let node = graph.node(id);
            comp_raw_index.push(id.index());
            comp_is_wire.push(node.kind.is_wire());
            unit_resistance.push(node.attrs.unit_resistance);
            unit_capacitance.push(node.attrs.unit_capacitance);
            area_coefficient.push(node.attrs.area_coefficient);
            lower_bound.push(node.attrs.lower_bound);
            upper_bound.push(node.attrs.upper_bound);
            coupling_sum.push(sums[id.index()]);
        }
        SizingEngine {
            graph,
            coupling,
            model,
            state,
            ws: EvalWorkspace::new(graph),
            comp_raw_index,
            comp_is_wire,
            unit_resistance,
            unit_capacitance,
            area_coefficient,
            lower_bound,
            upper_bound,
            coupling_sum,
            extra_denom: vec![0.0; n],
            pair_table,
        }
    }

    /// The circuit this engine evaluates.
    pub fn graph(&self) -> &'a CircuitGraph {
        self.graph
    }

    /// The coupling set this engine evaluates.
    pub fn coupling(&self) -> &'a CouplingSet {
        self.coupling
    }

    /// The delay-model backend.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The scratch workspace (read access; the engine owns the mutation).
    pub fn workspace(&self) -> &EvalWorkspace {
        &self.ws
    }

    /// Bytes held by the engine's scratch and dense tables, for the
    /// Figure 10(a) memory accounting.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.ws.memory_bytes()
            + self.comp_raw_index.capacity() * size_of::<usize>()
            + self.comp_is_wire.capacity() * size_of::<bool>()
            + (self.unit_resistance.capacity()
                + self.unit_capacitance.capacity()
                + self.area_coefficient.capacity()
                + self.lower_bound.capacity()
                + self.upper_bound.capacity()
                + self.coupling_sum.capacity()
                + self.extra_denom.capacity())
                * size_of::<f64>()
            + self.pair_table.capacity() * size_of::<PairEntry>()
            + self.model.state_memory_bytes(&self.state)
    }

    /// Fills `ws.extra_cap` with the per-node coupling load for `sizes`,
    /// reading the dense pair table. Performs exactly the arithmetic of
    /// `CouplingSet::delay_load_into` (`sf · (~c + ĉ·(x_i + x_j))` per pair,
    /// in pair order), so the result is bitwise identical.
    pub(crate) fn refresh_coupling_load(&mut self, sizes: &SizeVector) {
        let load = &mut self.ws.extra_cap;
        load.fill(0.0);
        let sizes = sizes.as_slice();
        for pair in &self.pair_table {
            let xa = sizes[pair.a_comp as usize];
            let xb = sizes[pair.b_comp as usize];
            let c = pair.switching * (pair.base + pair.coeff * (xa + xb));
            load[pair.a_raw as usize] += c;
            load[pair.b_raw as usize] += c;
        }
    }

    /// Fills `ws.node_weights` with the aggregated edge multipliers.
    pub(crate) fn load_node_weights(&mut self, multipliers: &Multipliers) {
        multipliers.node_weights_into(self.graph, &mut self.ws.node_weights);
    }

    /// A2 aggregation for the extra constraint families: fills the dense
    /// `extra_denom` table with `Σ_f Σ_k μ_{f,k} · a_{f,k,i}` per component.
    /// Runs once per LRS solve (the multipliers are fixed within a solve),
    /// costs `O(total terms)` and allocates nothing. With an empty set the
    /// table is zeroed, so a subsequent legacy solve on a reused engine
    /// never sees stale contributions.
    pub(crate) fn load_extra_denominator(
        &mut self,
        extras: &ConstraintSet,
        multipliers: &Multipliers,
    ) {
        self.extra_denom.fill(0.0);
        extras.accumulate_denominator(multipliers.extra_blocks(), &mut self.extra_denom);
    }

    /// Resets `sizes` to the per-component lower bounds (step S1 of
    /// Figure 8) without allocating.
    pub(crate) fn reset_to_lower_bounds(&self, sizes: &mut SizeVector) {
        debug_assert_eq!(sizes.len(), self.lower_bound.len());
        sizes.as_mut_slice().copy_from_slice(&self.lower_bound);
    }

    /// One greedy LRS coordinate sweep (steps S2–S4 of Figure 8): recompute
    /// the capacitances, coupling loads and weighted upstream resistances at
    /// the current `sizes`, then apply the Theorem 5 closed-form resize to
    /// every component in topological order, updating in place.
    ///
    /// `ws.node_weights` must have been filled by
    /// [`load_node_weights`](Self::load_node_weights). Returns the largest
    /// relative size change of the sweep (the S5 convergence measure).
    pub(crate) fn lrs_sweep(&mut self, sizes: &mut SizeVector, beta: f64, gamma: f64) -> f64 {
        self.ws.prev_sizes.copy_from_slice(sizes.as_slice());

        // S2: downstream capacitances C_i with the coupling load included.
        self.refresh_coupling_load(sizes);
        let ws = &mut self.ws;
        self.model.downstream_caps_into(
            &self.state,
            sizes,
            Some(&ws.extra_cap),
            &mut ws.charged,
            &mut ws.presented,
        );
        // S3: λ-weighted upstream resistances R_i.
        self.model
            .upstream_resistance_into(&self.state, sizes, &ws.node_weights, &mut ws.upstream);

        // S4 + S5: greedy closed-form resize, updating in place, fused with
        // the convergence measure. All dense tables are pre-sliced to the
        // component count so the per-component indexing is check-free; the
        // three raw-node lookups are unchecked under the length assertions
        // below (every stored raw index is in range by construction).
        let n = self.comp_raw_index.len();
        assert_eq!(sizes.len(), n, "sizes must match the circuit");
        assert_eq!(
            ws.charged.len(),
            self.graph.num_nodes(),
            "workspace must match the circuit"
        );
        assert_eq!(ws.node_weights.len(), ws.charged.len());
        assert_eq!(ws.upstream.len(), ws.charged.len());
        let raw_index = &self.comp_raw_index[..n];
        let is_wire = &self.comp_is_wire[..n];
        let unit_res = &self.unit_resistance[..n];
        let unit_cap = &self.unit_capacitance[..n];
        let area = &self.area_coefficient[..n];
        let lower = &self.lower_bound[..n];
        let upper = &self.upper_bound[..n];
        let coupling_sums = &self.coupling_sum[..n];
        let extra_denom = &self.extra_denom[..n];
        let prev = &ws.prev_sizes[..n];
        let xs = &mut sizes.as_mut_slice()[..n];

        let mut worst = 0.0_f64;
        for dense in 0..n {
            let raw = raw_index[dense];
            // SAFETY: `raw` is a node index of the engine's circuit, and the
            // workspace buffers hold one entry per node (sized at
            // construction, lengths cross-checked above).
            let (lambda_i, charged, upstream) = unsafe {
                (
                    *ws.node_weights.get_unchecked(raw),
                    *ws.charged.get_unchecked(raw),
                    *ws.upstream.get_unchecked(raw),
                )
            };
            let x_i = xs[dense];
            let coupling_sum = coupling_sums[dense];

            // Numerator capacitance: C_i minus every term proportional to
            // x_i (own far-half capacitance and the x_i part of the
            // coupling), keeping the neighbor-width coupling term.
            let mut cap_num = charged;
            if is_wire[dense] {
                cap_num -= unit_cap[dense] * x_i / 2.0;
                cap_num -= coupling_sum * x_i;
            }
            // Guard against tiny negative values from floating-point noise.
            if cap_num < 0.0 {
                cap_num = 0.0;
            }

            // The extra-family term is exactly 0.0 when no families are
            // active, keeping the legacy arithmetic bitwise intact.
            let denominator = area[dense]
                + (beta + upstream) * unit_cap[dense]
                + gamma * coupling_sum
                + extra_denom[dense];
            let numerator = lambda_i * unit_res[dense] * cap_num;

            let opt = if denominator > 0.0 && numerator > 0.0 {
                (numerator / denominator).sqrt()
            } else {
                0.0
            };
            let x_new = opt.clamp(lower[dense], upper[dense]);
            xs[dense] = x_new;

            // S5's convergence measure: the largest relative change.
            worst = worst.max((x_new - prev[dense]).abs() / prev[dense].abs().max(1e-12));
        }
        worst
    }

    /// Full timing picture at `sizes` (coupling load included), evaluated
    /// into the workspace. The returned view borrows the engine.
    pub fn timing(&mut self, sizes: &SizeVector) -> TimingView<'_> {
        self.refresh_coupling_load(sizes);
        let ws = &mut self.ws;
        self.model.downstream_caps_into(
            &self.state,
            sizes,
            Some(&ws.extra_cap),
            &mut ws.charged,
            &mut ws.presented,
        );
        self.model
            .delays_into(&self.state, sizes, &ws.charged, &mut ws.delays);
        let critical_path_delay = propagate_arrivals_into(
            self.graph,
            &ws.delays,
            &mut ws.arrival,
            &mut ws.pred,
            &mut ws.critical_path,
        );
        TimingView {
            delays: &ws.delays,
            arrival: &ws.arrival,
            critical_path_delay,
            critical_path: &ws.critical_path,
        }
    }

    /// Evaluates the full circuit metrics at `sizes` without allocating.
    /// Bitwise identical to [`CircuitMetrics::evaluate`].
    pub fn metrics(&mut self, sizes: &SizeVector) -> CircuitMetrics {
        let critical = self.timing(sizes).critical_path_delay;
        let graph = self.graph;
        let total_cap = ncgws_circuit::total_capacitance(graph, sizes);
        let area = ncgws_circuit::total_area(graph, sizes);
        let noise_exact = self.coupling.total_physical_coupling(graph, sizes);
        let crosstalk_lin = self.coupling.total_crosstalk(graph, sizes);
        CircuitMetrics {
            noise_pf: units::pf_from_ff(noise_exact),
            delay_ps: units::ps_from_internal(critical),
            power_mw: units::mw_from_ff(total_cap, graph.technology().power_scale_mw_per_ff()),
            area_um2: area,
            crosstalk_ff: crosstalk_lin,
            delay_internal: critical,
            total_capacitance_ff: total_cap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ConstraintBounds;
    use ncgws_circuit::{CircuitBuilder, GateKind, Technology, TimingAnalysis};
    use ncgws_coupling::{CouplingPair, WirePairGeometry};

    fn setup() -> (CircuitGraph, CouplingSet) {
        let mut b = CircuitBuilder::new(Technology::dac99());
        let d = b.add_driver("d", 120.0).unwrap();
        let d2 = b.add_driver("d2", 150.0).unwrap();
        let w1 = b.add_wire("w1", 180.0).unwrap();
        let w2 = b.add_wire("w2", 220.0).unwrap();
        let g = b.add_gate("g", GateKind::Nand).unwrap();
        let w3 = b.add_wire("w3", 140.0).unwrap();
        b.connect(d, w1).unwrap();
        b.connect(d2, w2).unwrap();
        b.connect(w1, g).unwrap();
        b.connect(w2, g).unwrap();
        b.connect(g, w3).unwrap();
        b.connect_output(w3, 6.0).unwrap();
        let graph = b.build().unwrap();
        let w1 = graph.node_by_name("w1").unwrap();
        let w2 = graph.node_by_name("w2").unwrap();
        let geom = WirePairGeometry::new(150.0, 12.0, 0.03).unwrap();
        let coupling =
            CouplingSet::new(&graph, vec![CouplingPair::new(w1, w2, geom).unwrap()]).unwrap();
        (graph, coupling)
    }

    #[test]
    fn timing_matches_reference_bitwise() {
        let (graph, coupling) = setup();
        let sizes = graph.uniform_sizes(1.7);
        let extra = coupling.delay_load_per_node(&graph, &sizes);
        let reference = TimingAnalysis::run(&graph, &sizes, Some(&extra));

        let mut engine = SizingEngine::new(&graph, &coupling);
        let view = engine.timing(&sizes);
        assert_eq!(view.delays, reference.delays.as_slice());
        assert_eq!(view.arrival, reference.arrival.values.as_slice());
        assert_eq!(view.critical_path_delay, reference.critical_path_delay);
        assert_eq!(view.critical_path, reference.critical_path.as_slice());
    }

    #[test]
    fn metrics_match_reference_bitwise() {
        let (graph, coupling) = setup();
        let mut engine = SizingEngine::new(&graph, &coupling);
        for size in [0.4, 1.0, 3.2] {
            let sizes = graph.uniform_sizes(size);
            let reference = CircuitMetrics::evaluate(&graph, &coupling, &sizes);
            assert_eq!(engine.metrics(&sizes), reference);
        }
    }

    #[test]
    fn engine_is_reusable_across_evaluations() {
        let (graph, coupling) = setup();
        let mut engine = SizingEngine::new(&graph, &coupling);
        let a = engine.metrics(&graph.uniform_sizes(1.0));
        let _ = engine.metrics(&graph.uniform_sizes(5.0));
        let again = engine.metrics(&graph.uniform_sizes(1.0));
        assert_eq!(a, again, "workspace reuse must not leak state");
        assert!(engine.memory_bytes() > 0);
    }

    #[test]
    fn for_problem_binds_the_problem_inputs() {
        let (graph, coupling) = setup();
        let bounds = ConstraintBounds {
            delay: 1e12,
            total_capacitance: 1e12,
            crosstalk: 1e12,
        };
        let problem = SizingProblem::new(&graph, &coupling, bounds).unwrap();
        let engine = SizingEngine::for_problem(&problem);
        assert!(std::ptr::eq(engine.graph(), problem.graph));
        assert!(std::ptr::eq(engine.coupling(), problem.coupling));
    }
}
