//! The cross-layer sizing engine: circuit + coupling + delay model + scratch.
//!
//! [`SizingEngine`] binds a circuit graph, its coupling set, a
//! [`DelayModel`] backend and an [`EvalWorkspace`] together, and adds the
//! dense per-component attribute tables the LRS closed-form resize reads in
//! its innermost loop. Built once per [`SizingProblem`] (or circuit), it
//! makes every evaluation the optimizer performs — coupling loads,
//! downstream capacitances, weighted upstream resistances, timing, metrics,
//! LRS sweeps — allocation-free after setup.
//!
//! The arithmetic is performed in exactly the same order as the
//! allocate-per-call reference path ([`crate::reference`],
//! [`CircuitMetrics::evaluate`]), so the two produce bitwise identical
//! results; the `property_eval_engine` integration test enforces this.
//!
//! Future delay-model backends (higher-order models, sharded evaluation)
//! implement [`DelayModel`] and plug in through
//! [`SizingEngine::with_model`].

use ncgws_circuit::{
    CircuitGraph, CircuitTopology, DelayModel, ElmoreModel, EvalWorkspace, NodeId, SharedMut,
    SizeVector, LANES, NO_PRED,
};
use ncgws_coupling::CouplingSet;

use crate::constraints::ConstraintSet;
use crate::lagrangian::Multipliers;
use crate::metrics::CircuitMetrics;
use crate::par::{self, LevelGrid, ParRuntime, ParallelPolicy};
use crate::problem::SizingProblem;
use crate::schedule::{AdaptiveSchedule, ScheduleWorkspace};
use crate::units;

/// A borrowed, allocation-free view of one timing evaluation. All slices are
/// indexed by raw node index and stay valid until the engine's next
/// `&mut self` call.
#[derive(Debug)]
pub struct TimingView<'a> {
    /// Per-component Elmore delays `D_i`.
    pub delays: &'a [f64],
    /// Tightest arrival times `a_i`.
    pub arrival: &'a [f64],
    /// Delay of the critical path (the circuit delay `D`).
    pub critical_path_delay: f64,
    /// The nodes of one critical path, from a driver to a primary output.
    pub critical_path: &'a [NodeId],
}

/// The reusable evaluation engine threaded through the whole two-stage flow.
#[derive(Debug, Clone)]
pub struct SizingEngine<'a, M: DelayModel = ElmoreModel> {
    graph: &'a CircuitGraph,
    coupling: &'a CouplingSet,
    model: M,
    state: M::State,
    pub(crate) ws: EvalWorkspace,
    // Dense per-component tables (indexed by the graph's dense component
    // index). The hot loop reads these instead of chasing `Node` structs,
    // whose inline `String` names spread the numeric fields across cache
    // lines.
    pub(crate) comp_raw_index: Vec<usize>,
    pub(crate) comp_is_wire: Vec<bool>,
    /// `comp_is_wire` as a `{0.0, 1.0}` f64 mask, so the lane-blocked
    /// closed form can apply the wire-only numerator terms branch-free
    /// (`t - 0.0 == t` and `1.0 · t == t` bitwise) while streaming the SoA
    /// attribute columns.
    wire_mask: Vec<f64>,
    pub(crate) unit_resistance: Vec<f64>,
    pub(crate) unit_capacitance: Vec<f64>,
    pub(crate) area_coefficient: Vec<f64>,
    pub(crate) lower_bound: Vec<f64>,
    pub(crate) upper_bound: Vec<f64>,
    pub(crate) coupling_sum: Vec<f64>,
    /// Fringing capacitance per component (zero for gates), so the dense
    /// total-capacitance sum matches the per-node formula bitwise.
    fringing: Vec<f64>,
    /// Per-component denominator contribution `Σ_f Σ_k μ_{f,k} · a_{f,k,i}`
    /// of the extra constraint families, aggregated once per LRS solve by
    /// [`load_extra_denominator`](Self::load_extra_denominator). All zeros
    /// when no extra families are active, which makes the sweep's
    /// `+ extra_denom[i]` a bitwise no-op on the legacy formulation.
    extra_denom: Vec<f64>,
    /// Dense coupling-pair table: raw node and dense component indices plus
    /// the cached geometry coefficients of each pair in structure-of-arrays
    /// form, so the per-sweep load accumulation never touches the pair
    /// objects and streams each column contiguously.
    pair_table: PairTable,
    /// CSR adjacency from dense component index to the indices of the
    /// coupling pairs it participates in, for the sparse pair scatter of the
    /// adaptive schedule.
    comp_pair_start: Vec<u32>,
    comp_pair_list: Vec<u32>,
    /// Mutable state of the adaptive solve schedule (active/frozen
    /// partition, dirty sets, incremental-evaluation scratch).
    pub(crate) sched: ScheduleWorkspace,
    /// The parallel runtime ([`crate::par`]): policy, worker pool and
    /// work-queue heads. Sequential until [`set_parallel`](Self::set_parallel)
    /// selects the level grid.
    pub(crate) par: ParRuntime,
    /// The deterministic chunk grid over the backend's level partition
    /// (empty when the backend exposes no dense topology).
    grid: LevelGrid,
    /// Coupling-pair indices grouped by *channel shard* (connected
    /// components of the pair graph), global pair order within each shard —
    /// so concurrent shards never write the same per-node accumulator and
    /// every node's adds happen in global pair order (bitwise identical to
    /// the sequential scatter).
    scatter_pairs: Vec<u32>,
    /// CSR offsets into `scatter_pairs`, one per shard plus a trailing total.
    scatter_shard_start: Vec<u32>,
    /// Chunk grid over the shards: chunk `c` covers shards
    /// `scatter_chunk_start[c]..scatter_chunk_start[c + 1]`, grouped to a
    /// fixed pair budget (thread-count independent).
    scatter_chunk_start: Vec<u32>,
    /// Per-chunk reduction slots of the parallel sweeps, merged in fixed
    /// chunk order after every pass.
    pscratch: ParScratch,
    /// Enables the lane-blocked (reassociated) aggregate reductions of
    /// [`total_capacitance`](Self::total_capacitance) /
    /// [`total_area`](Self::total_area) /
    /// [`crosstalk_lhs`](Self::crosstalk_lhs) while a `Level` policy is
    /// active. Off by default so the exact strategy stays bitwise-pinned
    /// to `crate::reference` under every policy.
    lane_aggregates: bool,
}

/// Per-chunk reduction slots for the parallel sweeps (sized once per
/// engine). Each chunk writes only its own slots / scratch segment during a
/// pass; the caller merges them in fixed chunk order afterwards, which is
/// what makes the reductions independent of the thread count.
#[derive(Debug, Clone, Default)]
struct ParScratch {
    /// Worst relative size change seen by each chunk.
    chunk_worst: Vec<f64>,
    /// Components touched (resized) by each chunk.
    chunk_touched: Vec<u32>,
    /// Number of entries each chunk wrote into its `chunk_changed` segment.
    chunk_changed_len: Vec<u32>,
    /// Changed-component records, one disjoint segment per chunk (indexed
    /// by the chunk's level-ordered node-position base).
    chunk_changed: Vec<u32>,
}

impl ParScratch {
    fn new(total_chunks: usize, num_nodes: usize) -> Self {
        ParScratch {
            chunk_worst: vec![0.0; total_chunks],
            chunk_touched: vec![0; total_chunks],
            chunk_changed_len: vec![0; total_chunks],
            chunk_changed: vec![0; num_nodes],
        }
    }

    fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.chunk_worst.capacity() * size_of::<f64>()
            + (self.chunk_touched.capacity()
                + self.chunk_changed_len.capacity()
                + self.chunk_changed.capacity())
                * size_of::<u32>()
    }
}

/// Per-sweep immutable view of the Theorem-5 closed-form resize inputs,
/// shared by the fused-pass closures (indexed by dense component).
struct ResizeTables<'a> {
    is_wire: &'a [bool],
    wire_mask: &'a [f64],
    unit_resistance: &'a [f64],
    unit_capacitance: &'a [f64],
    area_coefficient: &'a [f64],
    lower_bound: &'a [f64],
    upper_bound: &'a [f64],
    coupling_sum: &'a [f64],
    extra_denom: &'a [f64],
    beta: f64,
    gamma: f64,
}

impl ResizeTables<'_> {
    /// The closed-form resize of one component — the same arithmetic as the
    /// inner loop of `lrs_sweep`. Returns `(x_new, relative_change)`.
    #[inline(always)]
    fn closed_form(
        &self,
        comp: usize,
        x_i: f64,
        charged_i: f64,
        upstream_i: f64,
        lambda_i: f64,
    ) -> (f64, f64) {
        let coupling_sum = self.coupling_sum[comp];
        let mut cap_num = charged_i;
        if self.is_wire[comp] {
            cap_num -= self.unit_capacitance[comp] * x_i / 2.0;
            cap_num -= coupling_sum * x_i;
        }
        if cap_num < 0.0 {
            cap_num = 0.0;
        }
        let denominator = self.area_coefficient[comp]
            + (self.beta + upstream_i) * self.unit_capacitance[comp]
            + self.gamma * coupling_sum
            + self.extra_denom[comp];
        let numerator = lambda_i * self.unit_resistance[comp] * cap_num;
        let opt = if denominator > 0.0 && numerator > 0.0 {
            (numerator / denominator).sqrt()
        } else {
            0.0
        };
        let x_new = opt.clamp(self.lower_bound[comp], self.upper_bound[comp]);
        let rel = (x_new - x_i).abs() / x_i.abs().max(1e-12);
        (x_new, rel)
    }

    /// The closed-form resize of [`LANES`] components as one lane block —
    /// per-lane bitwise identical to [`closed_form`](Self::closed_form).
    /// The wire-only numerator terms are applied through the `{0.0, 1.0}`
    /// `wire_mask` (`t - 0.0 == t` and `1.0 · t == t` bitwise, so the
    /// masked expression reproduces both the wire and the gate branch
    /// exactly), and every other expression keeps the scalar association.
    /// The scalar gathers feed fixed-trip `[f64; LANES]` loops that LLVM
    /// autovectorizes; callers with fewer than [`LANES`] live lanes pass
    /// any in-range component index in the unused slots and ignore those
    /// results.
    #[inline(always)]
    fn closed_form_lanes(
        &self,
        comps: &[usize; LANES],
        x: &[f64; LANES],
        charged: &[f64; LANES],
        upstream: &[f64; LANES],
        lambda: &[f64; LANES],
    ) -> ([f64; LANES], [f64; LANES]) {
        let mut wm = [0.0f64; LANES];
        let mut ur = [0.0f64; LANES];
        let mut uc = [0.0f64; LANES];
        let mut ar = [0.0f64; LANES];
        let mut lo = [0.0f64; LANES];
        let mut hi = [0.0f64; LANES];
        let mut cs = [0.0f64; LANES];
        let mut exd = [0.0f64; LANES];
        for j in 0..LANES {
            let comp = comps[j];
            wm[j] = self.wire_mask[comp];
            ur[j] = self.unit_resistance[comp];
            uc[j] = self.unit_capacitance[comp];
            ar[j] = self.area_coefficient[comp];
            lo[j] = self.lower_bound[comp];
            hi[j] = self.upper_bound[comp];
            cs[j] = self.coupling_sum[comp];
            exd[j] = self.extra_denom[comp];
        }
        let mut x_new = [0.0f64; LANES];
        let mut rel = [0.0f64; LANES];
        for j in 0..LANES {
            let m = wm[j];
            let cap_num = (charged[j] - m * (uc[j] * x[j] / 2.0)) - m * (cs[j] * x[j]);
            let cap_num = if cap_num < 0.0 { 0.0 } else { cap_num };
            let denominator =
                ar[j] + (self.beta + upstream[j]) * uc[j] + self.gamma * cs[j] + exd[j];
            let numerator = lambda[j] * ur[j] * cap_num;
            let opt = if denominator > 0.0 && numerator > 0.0 {
                (numerator / denominator).sqrt()
            } else {
                0.0
            };
            x_new[j] = opt.clamp(lo[j], hi[j]);
            rel[j] = (x_new[j] - x[j]).abs() / x[j].abs().max(1e-12);
        }
        (x_new, rel)
    }
}

/// Chunk-shared context of one level-parallel fused resize pass: the
/// Theorem-5 tables, the freeze schedule and the shared per-component
/// views. [`apply_batch`](Self::apply_batch) is the single place the
/// parallel passes' per-component semantics live — both traversal
/// directions feed it their fresh quantity and the pass-fixed complement,
/// and the calm/freeze rule delegates to
/// [`ScheduleWorkspace::note_resize_shared`], the canonical home it shares
/// with the sequential schedule.
struct FusedChunkCtx<'a> {
    tables: ResizeTables<'a>,
    schedule: &'a AdaptiveSchedule,
    resize_all: bool,
    calm: SharedMut<'a, u32>,
    frozen: SharedMut<'a, bool>,
    /// Changed-component scratch; each chunk writes only its own disjoint
    /// segment (based at its level-ordered node position).
    chunk_changed: SharedMut<'a, u32>,
}

/// Per-chunk running reductions of one fused pass, merged in fixed chunk
/// order by the caller.
#[derive(Default)]
struct ChunkStats {
    worst: f64,
    touched: u32,
    changed: u32,
}

impl FusedChunkCtx<'_> {
    /// The chunk-side resize entry point of the phased lane kernels
    /// (frozen-skip, closed form, calm/freeze bookkeeping and the chunk's
    /// dirty-frontier records): compacts the chunk's sizable, non-frozen components into
    /// [`LANES`]-wide blocks, runs [`ResizeTables::closed_form_lanes`] per
    /// block and performs the per-component bookkeeping in chunk node
    /// order — so `touched` / `worst` / the dirty-frontier records (and
    /// every calm/freeze transition) are exactly those of the per-node
    /// path. `values[k]` is the freshly traversed quantity of `nodes[k]`
    /// (charged when `value_is_charged`, upstream otherwise); `fixed` and
    /// `lambda` are the pass-fixed node-indexed complements.
    ///
    /// # Safety
    ///
    /// Every sizable component of `nodes` belongs to the calling chunk (no
    /// other chunk touches its `calm`/`frozen` entries or its size) and
    /// `seg` is the chunk's disjoint scratch segment; `values` has one
    /// entry per node and `fixed` / `lambda` one entry per circuit node.
    #[allow(clippy::too_many_arguments)]
    unsafe fn apply_batch(
        &self,
        topo: &CircuitTopology,
        nodes: &[u32],
        values: &[f64],
        value_is_charged: bool,
        fixed: &[f64],
        lambda: &[f64],
        xs: SharedMut<'_, f64>,
        seg: usize,
        stats: &mut ChunkStats,
    ) {
        let mut lc = [0usize; LANES];
        let mut lx = [0.0f64; LANES];
        let mut lv = [0.0f64; LANES];
        let mut lf = [0.0f64; LANES];
        let mut ll = [0.0f64; LANES];
        let mut fill = 0usize;
        for (k, &idx) in nodes.iter().enumerate() {
            let idx = idx as usize;
            let Some(comp) = topo.component_of(idx) else {
                continue;
            };
            if !self.resize_all && self.frozen.get(comp) {
                continue;
            }
            lc[fill] = comp;
            lx[fill] = xs.get(comp);
            lv[fill] = *values.get_unchecked(k);
            lf[fill] = *fixed.get_unchecked(idx);
            ll[fill] = *lambda.get_unchecked(idx);
            fill += 1;
            if fill == LANES {
                self.flush_lanes(
                    &lc,
                    &lx,
                    &lv,
                    value_is_charged,
                    &lf,
                    &ll,
                    LANES,
                    xs,
                    seg,
                    stats,
                );
                fill = 0;
            }
        }
        if fill > 0 {
            self.flush_lanes(
                &lc,
                &lx,
                &lv,
                value_is_charged,
                &lf,
                &ll,
                fill,
                xs,
                seg,
                stats,
            );
        }
    }

    /// Runs one (possibly partial) lane block and the in-order bookkeeping
    /// of its `fill` live lanes. Stale trailing lanes hold the previous
    /// block's (valid, in-range) component indices; their results are
    /// computed and discarded.
    ///
    /// # Safety
    ///
    /// Every entry of `comps` — live lanes *and* stale trailing lanes —
    /// must be a valid component index for `xs`, `self.calm` and
    /// `self.frozen`, and the components written through `xs` must belong
    /// exclusively to this chunk for the duration of the pass (the
    /// level-partition invariant), since `xs.set` is an unsynchronized
    /// write into the shared sizes slice.
    #[allow(clippy::too_many_arguments)]
    unsafe fn flush_lanes(
        &self,
        comps: &[usize; LANES],
        x: &[f64; LANES],
        value: &[f64; LANES],
        value_is_charged: bool,
        fixed: &[f64; LANES],
        lambda: &[f64; LANES],
        fill: usize,
        xs: SharedMut<'_, f64>,
        seg: usize,
        stats: &mut ChunkStats,
    ) {
        let (x_new, rel) = if value_is_charged {
            self.tables
                .closed_form_lanes(comps, x, value, fixed, lambda)
        } else {
            self.tables
                .closed_form_lanes(comps, x, fixed, value, lambda)
        };
        for j in 0..fill {
            let comp = comps[j];
            stats.touched += 1;
            stats.worst = stats.worst.max(rel[j]);
            ScheduleWorkspace::note_resize_shared(
                self.calm,
                self.frozen,
                comp,
                rel[j],
                self.schedule,
            );
            if x_new[j] != x[j] {
                xs.set(comp, x_new[j]);
                self.chunk_changed
                    .set(seg + stats.changed as usize, comp as u32);
                stats.changed += 1;
            }
        }
    }
}

/// The dense coupling-pair table in structure-of-arrays form (see
/// `SizingEngine::pair_table`): seven parallel columns indexed by the
/// pair's global order. The per-sweep scatter and the crosstalk
/// aggregation read one column at a time, so a [`LANES`]-wide block
/// streams four contiguous entries per column instead of striding over
/// interleaved 56-byte records.
#[derive(Debug, Clone, Default)]
struct PairTable {
    a_raw: Vec<u32>,
    b_raw: Vec<u32>,
    a_comp: Vec<u32>,
    b_comp: Vec<u32>,
    /// Switching factor `sf_ij`.
    switching: Vec<f64>,
    /// Size-independent coupling `~c_ij`.
    base: Vec<f64>,
    /// Linear coefficient `ĉ_ij`.
    coeff: Vec<f64>,
}

impl PairTable {
    fn with_capacity(n: usize) -> Self {
        PairTable {
            a_raw: Vec::with_capacity(n),
            b_raw: Vec::with_capacity(n),
            a_comp: Vec::with_capacity(n),
            b_comp: Vec::with_capacity(n),
            switching: Vec::with_capacity(n),
            base: Vec::with_capacity(n),
            coeff: Vec::with_capacity(n),
        }
    }

    fn len(&self) -> usize {
        self.a_raw.len()
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        a_raw: u32,
        b_raw: u32,
        a_comp: u32,
        b_comp: u32,
        switching: f64,
        base: f64,
        coeff: f64,
    ) {
        self.a_raw.push(a_raw);
        self.b_raw.push(b_raw);
        self.a_comp.push(a_comp);
        self.b_comp.push(b_comp);
        self.switching.push(switching);
        self.base.push(base);
        self.coeff.push(coeff);
    }

    /// The switching-weighted coupling capacitance of pair `p` at the given
    /// endpoint sizes — exactly the per-pair arithmetic of
    /// [`ncgws_coupling::CouplingSet::delay_load_into`].
    ///
    /// # Safety
    ///
    /// `p < self.len()`.
    #[inline(always)]
    unsafe fn cap_unchecked(&self, p: usize, xa: f64, xb: f64) -> f64 {
        *self.switching.get_unchecked(p)
            * (*self.base.get_unchecked(p) + *self.coeff.get_unchecked(p) * (xa + xb))
    }

    fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.a_raw.capacity()
            + self.b_raw.capacity()
            + self.a_comp.capacity()
            + self.b_comp.capacity())
            * size_of::<u32>()
            + (self.switching.capacity() + self.base.capacity() + self.coeff.capacity())
                * size_of::<f64>()
    }
}

impl<'a> SizingEngine<'a, ElmoreModel> {
    /// Creates an engine with the Elmore backend.
    pub fn new(graph: &'a CircuitGraph, coupling: &'a CouplingSet) -> Self {
        SizingEngine::with_model(graph, coupling, ElmoreModel)
    }

    /// Creates an engine for an assembled sizing problem.
    pub fn for_problem(problem: &SizingProblem<'a>) -> Self {
        SizingEngine::new(problem.graph, problem.coupling)
    }
}

impl<'a, M: DelayModel> SizingEngine<'a, M> {
    /// Creates an engine with a custom delay-model backend.
    pub fn with_model(graph: &'a CircuitGraph, coupling: &'a CouplingSet, model: M) -> Self {
        // The dense pair table stores 32-bit indices.
        assert!(
            graph.num_nodes() <= u32::MAX as usize,
            "circuit too large for 32-bit indices"
        );
        let n = graph.num_components();
        let mut comp_raw_index = Vec::with_capacity(n);
        let mut comp_is_wire = Vec::with_capacity(n);
        let mut wire_mask = Vec::with_capacity(n);
        let mut unit_resistance = Vec::with_capacity(n);
        let mut unit_capacitance = Vec::with_capacity(n);
        let mut area_coefficient = Vec::with_capacity(n);
        let mut lower_bound = Vec::with_capacity(n);
        let mut upper_bound = Vec::with_capacity(n);
        let mut coupling_sum = Vec::with_capacity(n);
        let mut fringing = Vec::with_capacity(n);
        let state = model.prepare(graph);
        let sums = coupling.linear_coefficient_sums();
        let mut pair_table = PairTable::with_capacity(coupling.pairs().len());
        for pair in coupling.pairs() {
            pair_table.push(
                pair.a.index() as u32,
                pair.b.index() as u32,
                graph
                    .component_index(pair.a)
                    .expect("coupled wires are sizable") as u32,
                graph
                    .component_index(pair.b)
                    .expect("coupled wires are sizable") as u32,
                pair.switching_factor,
                pair.base_capacitance(),
                pair.linear_coefficient(),
            );
        }
        for id in graph.component_ids() {
            let node = graph.node(id);
            comp_raw_index.push(id.index());
            comp_is_wire.push(node.kind.is_wire());
            wire_mask.push(if node.kind.is_wire() { 1.0 } else { 0.0 });
            unit_resistance.push(node.attrs.unit_resistance);
            unit_capacitance.push(node.attrs.unit_capacitance);
            area_coefficient.push(node.attrs.area_coefficient);
            lower_bound.push(node.attrs.lower_bound);
            upper_bound.push(node.attrs.upper_bound);
            coupling_sum.push(sums[id.index()]);
            fringing.push(if node.kind.is_wire() {
                node.attrs.fringing_capacitance
            } else {
                0.0
            });
        }
        let (comp_pair_start, comp_pair_list) = Self::build_pair_adjacency(n, &pair_table);
        let grid = match model.dense_topology(&state) {
            Some(topo) => LevelGrid::new((0..topo.num_levels()).map(|l| topo.level(l).len())),
            None => LevelGrid::default(),
        };
        let (scatter_pairs, scatter_shard_start, scatter_chunk_start) =
            Self::build_scatter_shards(graph.num_nodes(), &pair_table);
        let total_chunks = grid.total_chunks().max(par::flat_chunks(graph.num_nodes()));
        let pscratch = ParScratch::new(total_chunks, graph.num_nodes());
        SizingEngine {
            graph,
            coupling,
            model,
            state,
            ws: EvalWorkspace::new(graph),
            comp_raw_index,
            comp_is_wire,
            wire_mask,
            unit_resistance,
            unit_capacitance,
            area_coefficient,
            lower_bound,
            upper_bound,
            coupling_sum,
            fringing,
            extra_denom: vec![0.0; n],
            pair_table,
            comp_pair_start,
            comp_pair_list,
            sched: ScheduleWorkspace::new(graph.num_nodes(), n),
            par: ParRuntime::new(),
            grid,
            scatter_pairs,
            scatter_shard_start,
            scatter_chunk_start,
            pscratch,
            lane_aggregates: false,
        }
    }

    /// Groups the coupling pairs into *channel shards*: the connected
    /// components of the pair graph (wires of one routing channel couple
    /// only to each other, so each channel lands in its own shard). Within a
    /// shard the pairs keep their global order, so every node's accumulation
    /// sequence under a sharded scatter is exactly its subsequence of the
    /// sequential scatter — bitwise identical sums. Shards are then grouped
    /// into chunks of a fixed pair budget for the flat runner.
    fn build_scatter_shards(num_nodes: usize, pairs: &PairTable) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
        if pairs.len() == 0 {
            return (Vec::new(), vec![0], vec![0]);
        }
        // Union-find over raw node indices (path halving).
        let mut parent: Vec<u32> = (0..num_nodes as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                let grand = parent[parent[x as usize] as usize];
                parent[x as usize] = grand;
                x = grand;
            }
            x
        }
        for p in 0..pairs.len() {
            let a = find(&mut parent, pairs.a_raw[p]);
            let b = find(&mut parent, pairs.b_raw[p]);
            if a != b {
                parent[b as usize] = a;
            }
        }
        // Assign shard ids in order of first appearance (deterministic),
        // then bucket the pair indices per shard in global order.
        const UNASSIGNED: u32 = u32::MAX;
        let mut shard_of_root = vec![UNASSIGNED; num_nodes];
        let mut pair_shard = Vec::with_capacity(pairs.len());
        let mut num_shards = 0u32;
        for p in 0..pairs.len() {
            let root = find(&mut parent, pairs.a_raw[p]) as usize;
            if shard_of_root[root] == UNASSIGNED {
                shard_of_root[root] = num_shards;
                num_shards += 1;
            }
            pair_shard.push(shard_of_root[root]);
        }
        let mut shard_start = vec![0u32; num_shards as usize + 1];
        for &s in &pair_shard {
            shard_start[s as usize + 1] += 1;
        }
        for s in 0..num_shards as usize {
            shard_start[s + 1] += shard_start[s];
        }
        let mut scatter_pairs = vec![0u32; pairs.len()];
        let mut cursor = shard_start.clone();
        for (p, &s) in pair_shard.iter().enumerate() {
            scatter_pairs[cursor[s as usize] as usize] = p as u32;
            cursor[s as usize] += 1;
        }
        // Chunk the shards to a fixed pair budget (independent of thread
        // count, so the grid — and with it every accumulation — is stable).
        let mut chunk_start = vec![0u32];
        let mut in_chunk = 0usize;
        for s in 0..num_shards as usize {
            let len = (shard_start[s + 1] - shard_start[s]) as usize;
            if in_chunk > 0 && in_chunk + len > par::CHUNK_NODES {
                chunk_start.push(s as u32);
                in_chunk = 0;
            }
            in_chunk += len;
        }
        chunk_start.push(num_shards);
        (scatter_pairs, shard_start, chunk_start)
    }

    /// Selects how this engine's traversals are distributed across threads
    /// (see [`ParallelPolicy`]); [`OgwsSolver`](crate::OgwsSolver) applies
    /// the configuration's policy at the start of every run. The `Level`
    /// policy only changes *who computes what*: outcomes are bitwise
    /// identical for every thread count, and the exact solve strategy stays
    /// bitwise-pinned to [`crate::reference`].
    pub fn set_parallel(&mut self, policy: ParallelPolicy) {
        self.par.configure(policy, self.grid.num_levels());
    }

    /// The active parallel policy.
    pub fn parallel_policy(&self) -> ParallelPolicy {
        self.par.policy()
    }

    /// Enables the lane-blocked aggregate reductions
    /// ([`total_capacitance`](Self::total_capacitance),
    /// [`total_area`](Self::total_area),
    /// [`crosstalk_lhs`](Self::crosstalk_lhs)) while a `Level` policy is
    /// active. The blocks keep [`LANES`] partial sums, which reassociates
    /// the reduction: results are epsilon-pinned (1e-6 end-to-end, the
    /// PR 4 adaptive-vs-exact contract) instead of bitwise. Off by
    /// default, and [`OgwsSolver`](crate::OgwsSolver) only switches it on
    /// for the adaptive strategy, so the exact strategy stays
    /// bitwise-pinned to [`crate::reference`] under every policy.
    pub fn set_lane_aggregates(&mut self, enable: bool) {
        self.lane_aggregates = enable;
    }

    /// The parallel runtime, for sibling subsystems (subgradient update,
    /// flow projection) that run their own deterministic passes.
    pub(crate) fn par_runtime(&self) -> &ParRuntime {
        &self.par
    }

    /// The dense topology + chunk grid behind the level-parallel paths,
    /// when the policy and the backend enable them.
    pub(crate) fn level_ctx(&self) -> Option<(&CircuitTopology, &LevelGrid)> {
        if !self.par.active() {
            return None;
        }
        let topo = self.model.dense_topology(&self.state)?;
        Some((topo, &self.grid))
    }

    /// Builds the component → coupling-pair CSR adjacency (each pair appears
    /// under both of its endpoints).
    fn build_pair_adjacency(num_components: usize, pairs: &PairTable) -> (Vec<u32>, Vec<u32>) {
        let mut start = vec![0u32; num_components + 1];
        for p in 0..pairs.len() {
            start[pairs.a_comp[p] as usize + 1] += 1;
            start[pairs.b_comp[p] as usize + 1] += 1;
        }
        for i in 0..num_components {
            start[i + 1] += start[i];
        }
        let mut list = vec![0u32; start[num_components] as usize];
        let mut cursor = start.clone();
        for p in 0..pairs.len() {
            for comp in [pairs.a_comp[p] as usize, pairs.b_comp[p] as usize] {
                list[cursor[comp] as usize] = p as u32;
                cursor[comp] += 1;
            }
        }
        (start, list)
    }

    /// The circuit this engine evaluates.
    pub fn graph(&self) -> &'a CircuitGraph {
        self.graph
    }

    /// The coupling set this engine evaluates.
    pub fn coupling(&self) -> &'a CouplingSet {
        self.coupling
    }

    /// The delay-model backend.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The scratch workspace (read access; the engine owns the mutation).
    pub fn workspace(&self) -> &EvalWorkspace {
        &self.ws
    }

    /// Bytes held by the engine's scratch and dense tables, for the
    /// Figure 10(a) memory accounting. Covers every engine-owned
    /// allocation: the evaluation workspace, the dense per-component
    /// attribute tables, the coupling-pair table and its per-component CSR
    /// adjacency, the adaptive-schedule buffers (dirty sets, active set,
    /// incremental scratch) and the delay model's prepared state.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.ws.memory_bytes()
            + self.comp_raw_index.capacity() * size_of::<usize>()
            + self.comp_is_wire.capacity() * size_of::<bool>()
            + (self.wire_mask.capacity()
                + self.unit_resistance.capacity()
                + self.unit_capacitance.capacity()
                + self.area_coefficient.capacity()
                + self.lower_bound.capacity()
                + self.upper_bound.capacity()
                + self.coupling_sum.capacity()
                + self.fringing.capacity()
                + self.extra_denom.capacity())
                * size_of::<f64>()
            + self.pair_table.memory_bytes()
            + (self.comp_pair_start.capacity()
                + self.comp_pair_list.capacity()
                + self.scatter_pairs.capacity()
                + self.scatter_shard_start.capacity()
                + self.scatter_chunk_start.capacity())
                * size_of::<u32>()
            + self.sched.memory_bytes()
            + self.grid.memory_bytes()
            + self.pscratch.memory_bytes()
            + self.par.memory_bytes()
            + self.model.state_memory_bytes(&self.state)
    }

    /// Total component capacitance `Σ c_i` (fF, excluding coupling) over
    /// the dense attribute tables — bitwise identical to
    /// [`ncgws_circuit::total_capacitance`] (same per-component arithmetic,
    /// same accumulation order), at a fraction of the pointer-chasing cost.
    ///
    /// With [`set_lane_aggregates`](Self::set_lane_aggregates) on and a
    /// `Level` policy active, the sum is kept in [`LANES`] partial
    /// accumulators instead (reassociated, epsilon-pinned rather than
    /// bitwise).
    pub fn total_capacitance(&self, sizes: &SizeVector) -> f64 {
        let xs = sizes.as_slice();
        let n = self.unit_capacitance.len();
        assert_eq!(xs.len(), n, "sizes must match the circuit");
        if self.lane_aggregates && self.par.active() {
            let mut acc = [0.0f64; LANES];
            let mut i = 0usize;
            while i + LANES <= n {
                for (j, slot) in acc.iter_mut().enumerate() {
                    let k = i + j;
                    *slot += self.unit_capacitance[k] * xs[k] + self.fringing[k];
                }
                i += LANES;
            }
            let mut tail = 0.0;
            for ((&unit_cap, &x), &fringing) in self.unit_capacitance[i..n]
                .iter()
                .zip(&xs[i..n])
                .zip(&self.fringing[i..n])
            {
                tail += unit_cap * x + fringing;
            }
            return acc.iter().fold(0.0, |a, &v| a + v) + tail;
        }
        let mut acc = 0.0;
        for ((&unit_cap, &x), &fringing) in self.unit_capacitance.iter().zip(xs).zip(&self.fringing)
        {
            acc += unit_cap * x + fringing;
        }
        acc
    }

    /// Total area `Σ α_i x_i` (µm²) over the dense attribute tables —
    /// bitwise identical to [`ncgws_circuit::total_area`] (lane-blocked and
    /// epsilon-pinned when
    /// [`set_lane_aggregates`](Self::set_lane_aggregates) is on, as
    /// [`total_capacitance`](Self::total_capacitance)).
    pub fn total_area(&self, sizes: &SizeVector) -> f64 {
        let xs = sizes.as_slice();
        let n = self.area_coefficient.len();
        assert_eq!(xs.len(), n, "sizes must match the circuit");
        if self.lane_aggregates && self.par.active() {
            let mut acc = [0.0f64; LANES];
            let mut i = 0usize;
            while i + LANES <= n {
                for (j, slot) in acc.iter_mut().enumerate() {
                    let k = i + j;
                    *slot += self.area_coefficient[k] * xs[k];
                }
                i += LANES;
            }
            let mut tail = 0.0;
            for (&alpha, &x) in self.area_coefficient[i..n].iter().zip(&xs[i..n]) {
                tail += alpha * x;
            }
            return acc.iter().fold(0.0, |a, &v| a + v) + tail;
        }
        let mut acc = 0.0;
        for (&alpha, &x) in self.area_coefficient.iter().zip(xs) {
            acc += alpha * x;
        }
        acc
    }

    /// Crosstalk left-hand side `Σ sf_ij · ĉ_ij · (x_i + x_j)` over the
    /// dense pair table — bitwise identical to
    /// [`CouplingSet::crosstalk_lhs`] (same pair order; lane-blocked and
    /// epsilon-pinned when
    /// [`set_lane_aggregates`](Self::set_lane_aggregates) is on, as
    /// [`total_capacitance`](Self::total_capacitance)).
    pub fn crosstalk_lhs(&self, sizes: &SizeVector) -> f64 {
        let xs = sizes.as_slice();
        assert_eq!(
            xs.len(),
            self.comp_raw_index.len(),
            "sizes must match the circuit"
        );
        let pairs = &self.pair_table;
        let np = pairs.len();
        if self.lane_aggregates && self.par.active() {
            let mut acc = [0.0f64; LANES];
            let mut p = 0usize;
            while p + LANES <= np {
                for (j, slot) in acc.iter_mut().enumerate() {
                    let q = p + j;
                    *slot += pairs.switching[q]
                        * pairs.coeff[q]
                        * (xs[pairs.a_comp[q] as usize] + xs[pairs.b_comp[q] as usize]);
                }
                p += LANES;
            }
            let mut tail = 0.0;
            for q in p..np {
                tail += pairs.switching[q]
                    * pairs.coeff[q]
                    * (xs[pairs.a_comp[q] as usize] + xs[pairs.b_comp[q] as usize]);
            }
            return acc.iter().fold(0.0, |a, &v| a + v) + tail;
        }
        let mut acc = 0.0;
        for q in 0..np {
            acc += pairs.switching[q]
                * pairs.coeff[q]
                * (xs[pairs.a_comp[q] as usize] + xs[pairs.b_comp[q] as usize]);
        }
        acc
    }

    /// Fills `ws.extra_cap` with the per-node coupling load for `sizes`,
    /// reading the dense pair table. Performs exactly the arithmetic of
    /// `CouplingSet::delay_load_into` (`sf · (~c + ĉ·(x_i + x_j))` per pair,
    /// in pair order), so the result is bitwise identical.
    pub(crate) fn refresh_coupling_load(&mut self, sizes: &SizeVector) {
        let load = &mut self.ws.extra_cap;
        load.fill(0.0);
        let sizes = sizes.as_slice();
        // Hoisted length assertions, as in `lrs_sweep`: every raw node and
        // dense component index stored in the pair table is in range for the
        // engine's circuit by construction, so after tying the slices to the
        // circuit the per-pair loads and stores below cannot go out of
        // bounds.
        assert_eq!(
            load.len(),
            self.graph.num_nodes(),
            "workspace must match the circuit"
        );
        assert_eq!(
            sizes.len(),
            self.comp_raw_index.len(),
            "sizes must match the circuit"
        );
        // Channel-sharded scatter under the level-parallel policy: chunks
        // cover whole shards (connected channels), so concurrent chunks
        // never write the same per-node accumulator, and within a shard the
        // pairs keep global order — every node's adds happen in exactly the
        // sequential order, making the result bitwise identical to the loop
        // below for every thread count.
        if self.par.active() && self.scatter_chunk_start.len() > 2 {
            let chunks = self.scatter_chunk_start.len() - 1;
            let load_s = SharedMut::new(load.as_mut_slice());
            let pairs = &self.pair_table;
            let scatter_pairs = &self.scatter_pairs;
            let shard_start = &self.scatter_shard_start;
            let chunk_start = &self.scatter_chunk_start;
            self.par.run_flat(chunks, |c| {
                for shard in chunk_start[c] as usize..chunk_start[c + 1] as usize {
                    let pair_range = shard_start[shard] as usize..shard_start[shard + 1] as usize;
                    for &p in &scatter_pairs[pair_range] {
                        let p = p as usize;
                        // SAFETY: lengths asserted above; shards own
                        // disjoint node sets, so no concurrent writes alias.
                        unsafe {
                            let xa = *sizes.get_unchecked(*pairs.a_comp.get_unchecked(p) as usize);
                            let xb = *sizes.get_unchecked(*pairs.b_comp.get_unchecked(p) as usize);
                            let cap = pairs.cap_unchecked(p, xa, xb);
                            load_s.add(*pairs.a_raw.get_unchecked(p) as usize, cap);
                            load_s.add(*pairs.b_raw.get_unchecked(p) as usize, cap);
                        }
                    }
                }
            });
            return;
        }
        // Blocked sequential scatter: the per-pair capacitance arithmetic
        // is independent, so a LANES-wide block computes four caps from the
        // contiguous SoA columns at once; the scatter adds then run in
        // exact global pair order, so every node's accumulation sequence —
        // and with it the result — stays bitwise identical to the
        // one-pair-at-a-time loop.
        let pairs = &self.pair_table;
        let np = pairs.len();
        let mut p = 0usize;
        while p + LANES <= np {
            let mut cap = [0.0f64; LANES];
            // SAFETY: lengths asserted above; the stored indices are in
            // range by construction.
            unsafe {
                for (j, slot) in cap.iter_mut().enumerate() {
                    let q = p + j;
                    let xa = *sizes.get_unchecked(*pairs.a_comp.get_unchecked(q) as usize);
                    let xb = *sizes.get_unchecked(*pairs.b_comp.get_unchecked(q) as usize);
                    *slot = pairs.cap_unchecked(q, xa, xb);
                }
                for (j, &c) in cap.iter().enumerate() {
                    let q = p + j;
                    *load.get_unchecked_mut(*pairs.a_raw.get_unchecked(q) as usize) += c;
                    *load.get_unchecked_mut(*pairs.b_raw.get_unchecked(q) as usize) += c;
                }
            }
            p += LANES;
        }
        for q in p..np {
            // SAFETY: as above.
            unsafe {
                let xa = *sizes.get_unchecked(*pairs.a_comp.get_unchecked(q) as usize);
                let xb = *sizes.get_unchecked(*pairs.b_comp.get_unchecked(q) as usize);
                let c = pairs.cap_unchecked(q, xa, xb);
                *load.get_unchecked_mut(*pairs.a_raw.get_unchecked(q) as usize) += c;
                *load.get_unchecked_mut(*pairs.b_raw.get_unchecked(q) as usize) += c;
            }
        }
    }

    /// Fills `ws.node_weights` with the aggregated edge multipliers.
    pub(crate) fn load_node_weights(&mut self, multipliers: &Multipliers) {
        multipliers.node_weights_into(self.graph, &mut self.ws.node_weights);
    }

    /// A2 aggregation for the extra constraint families: fills the dense
    /// `extra_denom` table with `Σ_f Σ_k μ_{f,k} · a_{f,k,i}` per component.
    /// Runs once per LRS solve (the multipliers are fixed within a solve),
    /// costs `O(total terms)` and allocates nothing. With an empty set the
    /// table is zeroed, so a subsequent legacy solve on a reused engine
    /// never sees stale contributions.
    pub(crate) fn load_extra_denominator(
        &mut self,
        extras: &ConstraintSet,
        multipliers: &Multipliers,
    ) {
        self.extra_denom.fill(0.0);
        extras.accumulate_denominator(multipliers.extra_blocks(), &mut self.extra_denom);
    }

    /// Resets `sizes` to the per-component lower bounds (step S1 of
    /// Figure 8) without allocating.
    pub(crate) fn reset_to_lower_bounds(&self, sizes: &mut SizeVector) {
        debug_assert_eq!(sizes.len(), self.lower_bound.len());
        sizes.as_mut_slice().copy_from_slice(&self.lower_bound);
    }

    /// Full downstream-capacitance rebuild at `sizes` (the coupling load
    /// must already be in `ws.extra_cap`): level-parallel over the chunk
    /// grid when the policy and backend allow, the sequential model call
    /// otherwise. Per-node results are bitwise identical either way — each
    /// node's accumulation runs over its own CSR fanout list in list order,
    /// reading only settled later levels.
    fn rebuild_downstream_caps(&mut self, sizes: &SizeVector) {
        if self.par.active() {
            if let Some(topo) = self.model.dense_topology(&self.state) {
                let n = topo.num_nodes();
                let ws = &mut self.ws;
                assert_eq!(ws.charged.len(), n, "workspace must match the circuit");
                assert_eq!(ws.presented.len(), n);
                assert_eq!(ws.extra_cap.len(), n);
                assert_eq!(
                    sizes.len(),
                    self.comp_raw_index.len(),
                    "sizes must match the circuit"
                );
                let xs = sizes.as_slice();
                let charged_s = SharedMut::new(ws.charged.as_mut_slice());
                let presented_s = SharedMut::new(ws.presented.as_mut_slice());
                let extra: &[f64] = &ws.extra_cap;
                let grid = &self.grid;
                self.par.run_leveled(grid, true, |l, c| {
                    let level = topo.level(l);
                    let range = grid.chunk_range(level.len(), c);
                    // SAFETY: chunks of one level own disjoint nodes;
                    // levels settle in reverse dependency order; lengths
                    // asserted above.
                    unsafe {
                        topo.downstream_caps_chunk(&level[range], xs, extra, charged_s, presented_s)
                    };
                });
                return;
            }
        }
        let ws = &mut self.ws;
        self.model.downstream_caps_into(
            &self.state,
            sizes,
            Some(&ws.extra_cap),
            &mut ws.charged,
            &mut ws.presented,
        );
    }

    /// Full λ-weighted upstream-resistance rebuild at `sizes` (weights from
    /// `ws.node_weights`): the forward-leveled counterpart of
    /// [`rebuild_downstream_caps`](Self::rebuild_downstream_caps).
    fn rebuild_upstream(&mut self, sizes: &SizeVector) {
        if self.par.active() {
            if let Some(topo) = self.model.dense_topology(&self.state) {
                let n = topo.num_nodes();
                let ws = &mut self.ws;
                assert_eq!(ws.upstream.len(), n, "workspace must match the circuit");
                assert_eq!(ws.node_weights.len(), n);
                assert_eq!(
                    sizes.len(),
                    self.comp_raw_index.len(),
                    "sizes must match the circuit"
                );
                let xs = sizes.as_slice();
                let upstream_s = SharedMut::new(ws.upstream.as_mut_slice());
                let weights: &[f64] = &ws.node_weights;
                let grid = &self.grid;
                self.par.run_leveled(grid, false, |l, c| {
                    let level = topo.level(l);
                    let range = grid.chunk_range(level.len(), c);
                    // SAFETY: chunks of one level own disjoint nodes;
                    // levels settle in forward dependency order.
                    unsafe {
                        topo.upstream_resistance_chunk(&level[range], xs, weights, upstream_s)
                    };
                });
                return;
            }
        }
        let ws = &mut self.ws;
        self.model
            .upstream_resistance_into(&self.state, sizes, &ws.node_weights, &mut ws.upstream);
    }

    /// One greedy LRS coordinate sweep (steps S2–S4 of Figure 8): recompute
    /// the capacitances, coupling loads and weighted upstream resistances at
    /// the current `sizes`, then apply the Theorem 5 closed-form resize to
    /// every component in topological order, updating in place.
    ///
    /// `ws.node_weights` must have been filled by
    /// [`load_node_weights`](Self::load_node_weights). Returns the largest
    /// relative size change of the sweep (the S5 convergence measure).
    pub(crate) fn lrs_sweep(&mut self, sizes: &mut SizeVector, beta: f64, gamma: f64) -> f64 {
        // The exact sweep rebuilds the cached tables at its own sizes and
        // then resizes in place, so the adaptive schedule's sync snapshot no
        // longer describes them.
        self.sched.caps_synced = false;
        self.sched.charged_fresh = false;
        self.ws.prev_sizes.copy_from_slice(sizes.as_slice());

        // S2: downstream capacitances C_i with the coupling load included.
        self.refresh_coupling_load(sizes);
        self.rebuild_downstream_caps(sizes);
        // S3: λ-weighted upstream resistances R_i.
        self.rebuild_upstream(sizes);

        // Level-parallel S4: the closed-form resize is component-separable
        // (each component reads only the fixed charged/upstream/λ tables and
        // its own size), so flat chunks distribute it freely; per-chunk
        // worst-change maxima merge in fixed chunk order. The arithmetic is
        // the sequential loop's, expression for expression, so the exact
        // path stays bitwise-pinned to `crate::reference` at any thread
        // count.
        if self.par.active() && self.model.dense_topology(&self.state).is_some() {
            let ws = &mut self.ws;
            let n = self.comp_raw_index.len();
            assert_eq!(sizes.len(), n, "sizes must match the circuit");
            assert_eq!(
                ws.charged.len(),
                self.graph.num_nodes(),
                "workspace must match the circuit"
            );
            assert_eq!(ws.node_weights.len(), ws.charged.len());
            assert_eq!(ws.upstream.len(), ws.charged.len());
            let tables = ResizeTables {
                is_wire: &self.comp_is_wire,
                wire_mask: &self.wire_mask,
                unit_resistance: &self.unit_resistance,
                unit_capacitance: &self.unit_capacitance,
                area_coefficient: &self.area_coefficient,
                lower_bound: &self.lower_bound,
                upper_bound: &self.upper_bound,
                coupling_sum: &self.coupling_sum,
                extra_denom: &self.extra_denom,
                beta,
                gamma,
            };
            let raw_index = &self.comp_raw_index[..n];
            let charged: &[f64] = &ws.charged;
            let upstream: &[f64] = &ws.upstream;
            let node_weights: &[f64] = &ws.node_weights;
            let xs_s = SharedMut::new(&mut sizes.as_mut_slice()[..n]);
            let chunks = par::flat_chunks(n);
            let chunk_worst = SharedMut::new(self.pscratch.chunk_worst.as_mut_slice());
            self.par.run_flat(chunks, |c| {
                let mut local = 0.0f64;
                let range = par::flat_range(n, c);
                // LANES-wide blocks over the chunk's contiguous dense
                // components, scalar tail. The lane closed form is per-lane
                // bitwise identical to the scalar one and the worst-change
                // max folds in the same component order, so the sweep stays
                // bitwise-pinned to `crate::reference`.
                let mut dense = range.start;
                while dense + LANES <= range.end {
                    let comps: [usize; LANES] = std::array::from_fn(|j| dense + j);
                    let mut x = [0.0f64; LANES];
                    let mut ch = [0.0f64; LANES];
                    let mut up = [0.0f64; LANES];
                    let mut la = [0.0f64; LANES];
                    // SAFETY: `raw` is a node index of the engine's circuit
                    // (lengths cross-checked above); each `dense` is owned
                    // by this chunk, so the size reads/writes cannot alias.
                    unsafe {
                        for j in 0..LANES {
                            let raw = raw_index[comps[j]];
                            x[j] = xs_s.get(comps[j]);
                            ch[j] = *charged.get_unchecked(raw);
                            up[j] = *upstream.get_unchecked(raw);
                            la[j] = *node_weights.get_unchecked(raw);
                        }
                        let (x_new, rel) = tables.closed_form_lanes(&comps, &x, &ch, &up, &la);
                        for j in 0..LANES {
                            xs_s.set(comps[j], x_new[j]);
                            local = local.max(rel[j]);
                        }
                    }
                    dense += LANES;
                }
                for (dense, &raw) in raw_index.iter().enumerate().take(range.end).skip(dense) {
                    // SAFETY: as the lane blocks above.
                    unsafe {
                        let x_i = xs_s.get(dense);
                        let (x_new, rel) = tables.closed_form(
                            dense,
                            x_i,
                            *charged.get_unchecked(raw),
                            *upstream.get_unchecked(raw),
                            *node_weights.get_unchecked(raw),
                        );
                        xs_s.set(dense, x_new);
                        local = local.max(rel);
                    }
                }
                // SAFETY: slot `c` is owned by this chunk.
                unsafe { chunk_worst.set(c, local) };
            });
            let mut worst = 0.0f64;
            for c in 0..chunks {
                worst = worst.max(self.pscratch.chunk_worst[c]);
            }
            return worst;
        }

        let ws = &mut self.ws;
        // S4 + S5: greedy closed-form resize, updating in place, fused with
        // the convergence measure. All dense tables are pre-sliced to the
        // component count so the per-component indexing is check-free; the
        // three raw-node lookups are unchecked under the length assertions
        // below (every stored raw index is in range by construction).
        let n = self.comp_raw_index.len();
        assert_eq!(sizes.len(), n, "sizes must match the circuit");
        assert_eq!(
            ws.charged.len(),
            self.graph.num_nodes(),
            "workspace must match the circuit"
        );
        assert_eq!(ws.node_weights.len(), ws.charged.len());
        assert_eq!(ws.upstream.len(), ws.charged.len());
        let raw_index = &self.comp_raw_index[..n];
        let is_wire = &self.comp_is_wire[..n];
        let unit_res = &self.unit_resistance[..n];
        let unit_cap = &self.unit_capacitance[..n];
        let area = &self.area_coefficient[..n];
        let lower = &self.lower_bound[..n];
        let upper = &self.upper_bound[..n];
        let coupling_sums = &self.coupling_sum[..n];
        let extra_denom = &self.extra_denom[..n];
        let prev = &ws.prev_sizes[..n];
        let xs = &mut sizes.as_mut_slice()[..n];

        let mut worst = 0.0_f64;
        for dense in 0..n {
            let raw = raw_index[dense];
            // SAFETY: `raw` is a node index of the engine's circuit, and the
            // workspace buffers hold one entry per node (sized at
            // construction, lengths cross-checked above).
            let (lambda_i, charged, upstream) = unsafe {
                (
                    *ws.node_weights.get_unchecked(raw),
                    *ws.charged.get_unchecked(raw),
                    *ws.upstream.get_unchecked(raw),
                )
            };
            let x_i = xs[dense];
            let coupling_sum = coupling_sums[dense];

            // Numerator capacitance: C_i minus every term proportional to
            // x_i (own far-half capacitance and the x_i part of the
            // coupling), keeping the neighbor-width coupling term.
            let mut cap_num = charged;
            if is_wire[dense] {
                cap_num -= unit_cap[dense] * x_i / 2.0;
                cap_num -= coupling_sum * x_i;
            }
            // Guard against tiny negative values from floating-point noise.
            if cap_num < 0.0 {
                cap_num = 0.0;
            }

            // The extra-family term is exactly 0.0 when no families are
            // active, keeping the legacy arithmetic bitwise intact.
            let denominator = area[dense]
                + (beta + upstream) * unit_cap[dense]
                + gamma * coupling_sum
                + extra_denom[dense];
            let numerator = lambda_i * unit_res[dense] * cap_num;

            let opt = if denominator > 0.0 && numerator > 0.0 {
                (numerator / denominator).sqrt()
            } else {
                0.0
            };
            let x_new = opt.clamp(lower[dense], upper[dense]);
            xs[dense] = x_new;

            // S5's convergence measure: the largest relative change.
            worst = worst.max((x_new - prev[dense]).abs() / prev[dense].abs().max(1e-12));
        }
        worst
    }

    // ------------------------------------------------------------------
    // Adaptive solve schedule (`crate::schedule`): cache-sync bookkeeping,
    // sparse incremental evaluation and active-set sweeps. The exact path
    // above stays bitwise-pinned to `crate::reference`; everything below is
    // validated by invariants (`schedule_strategies` integration tests).
    // ------------------------------------------------------------------

    /// Records that `ws.extra_cap`/`ws.charged`/`ws.presented` reflect
    /// `sizes` exactly, clearing every pending dirty set.
    pub(crate) fn note_caps_synced(&mut self, sizes: &SizeVector) {
        self.sched.eval_sizes.copy_from_slice(sizes.as_slice());
        self.sched.caps_synced = true;
        self.sched.charged_fresh = false;
        self.sched.clear_changed();
    }

    /// Resets the adaptive-schedule state (everything active, caches
    /// untrusted). [`OgwsSolver`](crate::OgwsSolver) calls this once per
    /// adaptive run so freeze state never leaks between runs sharing one
    /// engine; call it yourself before driving
    /// [`LrsSolver::solve_scheduled`](crate::LrsSolver::solve_scheduled)
    /// standalone.
    pub fn reset_schedule(&mut self) {
        self.sched.reset();
    }

    /// Captures the adaptive schedule's serializable cross-solve state for
    /// a [`Snapshot`](crate::Snapshot).
    pub(crate) fn schedule_state(&self) -> crate::schedule::ScheduleState {
        self.sched.capture()
    }

    /// Restores a captured schedule state (freeze sets + sweep counter);
    /// the cached tables stay unsynced so the next solve rebuilds them from
    /// the restored sizes.
    pub(crate) fn restore_schedule_state(&mut self, state: &crate::schedule::ScheduleState) {
        self.sched.restore(state);
    }

    /// Number of currently frozen components.
    pub(crate) fn frozen_components(&self) -> usize {
        self.sched.num_frozen
    }

    /// Whether the active set is empty (every component frozen).
    pub(crate) fn active_set_is_empty(&self) -> bool {
        self.sched.active.is_empty()
    }

    /// Counter of sweeps performed across the run (drives the verification
    /// cadence).
    pub(crate) fn bump_global_sweep(&mut self) -> usize {
        self.sched.global_sweep += 1;
        self.sched.global_sweep
    }

    /// Full exact evaluation of every cached table (coupling loads,
    /// downstream capacitances, λ-weighted upstream resistances) at `sizes`
    /// — the S2+S3 arithmetic of the exact sweep, leaving the caches synced.
    ///
    /// The capacitance-side tables are skipped when they already reflect
    /// `sizes` exactly (as after a [`timing`](Self::timing) evaluation at
    /// the same sizes — the OGWS steady state), since rebuilding them would
    /// reproduce the identical values; the λ-weighted upstream resistances
    /// are always rebuilt because the node weights change between solves.
    fn full_eval(&mut self, sizes: &SizeVector) {
        let caps_current = self.sched.caps_synced
            && self.sched.changed.is_empty()
            && self.sched.eval_sizes.as_slice() == sizes.as_slice();
        if !caps_current {
            self.refresh_coupling_load(sizes);
            self.rebuild_downstream_caps(sizes);
            self.note_caps_synced(sizes);
        }
        self.rebuild_upstream(sizes);
    }

    /// Sparse counterpart of [`refresh_coupling_load`](Self::refresh_coupling_load):
    /// scatters the coupling-load delta of every component in
    /// `sched.changed` through the per-component pair CSR, updating
    /// `ws.extra_cap` in place and recording the per-node deltas for the
    /// downstream-capacitance propagation.
    fn refresh_coupling_load_sparse(&mut self, sizes: &SizeVector) {
        let xs = sizes.as_slice();
        let sched = &mut self.sched;
        let load = &mut self.ws.extra_cap;
        sched.extra_delta.clear();
        for &comp in &sched.changed {
            let comp = comp as usize;
            let dx = xs[comp] - sched.eval_sizes[comp];
            if dx == 0.0 {
                continue;
            }
            let start = self.comp_pair_start[comp] as usize;
            let end = self.comp_pair_start[comp + 1] as usize;
            for &p in &self.comp_pair_list[start..end] {
                let p = p as usize;
                let a_raw = self.pair_table.a_raw[p];
                let b_raw = self.pair_table.b_raw[p];
                let delta = self.pair_table.switching[p] * self.pair_table.coeff[p] * dx;
                load[a_raw as usize] += delta;
                load[b_raw as usize] += delta;
                sched.extra_delta.push((a_raw, delta));
                sched.extra_delta.push((b_raw, delta));
            }
        }
    }

    /// Brings every cached table up to date with `sizes` by propagating the
    /// deltas of the components resized since the last evaluation. Falls
    /// back to a full rebuild when the caches are not synced, the backend
    /// has no incremental paths, the schedule disables them, or the dirty
    /// set is so large a rebuild is cheaper.
    fn incremental_eval(&mut self, sizes: &SizeVector, schedule: &AdaptiveSchedule) {
        let n = self.comp_raw_index.len();
        if !self.sched.caps_synced
            || !schedule.incremental
            || !self.model.supports_incremental()
            || self.sched.changed.len() * 4 > n
        {
            self.full_eval(sizes);
            return;
        }
        if self.sched.changed.is_empty() {
            return;
        }
        self.refresh_coupling_load_sparse(sizes);
        let model = &self.model;
        let state = &self.state;
        let ws = &mut self.ws;
        let sched = &mut self.sched;
        // After a fused sweep the charged/presented tables already carry the
        // changed components' own-capacitance updates (the pass maintains
        // them); only the coupling-load deltas remain to be propagated.
        let cap_dirty_comps: &[u32] = if sched.charged_fresh {
            &[]
        } else {
            &sched.changed
        };
        model.downstream_caps_update(
            state,
            sizes,
            &sched.eval_sizes,
            cap_dirty_comps,
            &ws.extra_cap,
            &sched.extra_delta,
            &mut ws.charged,
            &mut ws.presented,
            &mut sched.inc,
        );
        sched.charged_fresh = false;
        model.upstream_resistance_update(
            state,
            sizes,
            &sched.eval_sizes,
            &sched.changed,
            &ws.node_weights,
            &mut ws.upstream,
            &mut sched.inc,
        );
        let xs = sizes.as_slice();
        for &comp in &sched.changed {
            sched.eval_sizes[comp as usize] = xs[comp as usize];
        }
        sched.clear_changed();
    }

    /// Brings every cached table up to date with `sizes` after a scheduled
    /// solve, when the remaining dirty set is small — so the timing
    /// evaluation that follows every solve in the OGWS loop can skip its
    /// full coupling + downstream rebuild ([`timing`](Self::timing)'s
    /// synced fast path). A no-op when a rebuild would be needed anyway.
    pub(crate) fn finish_solve_sync(&mut self, sizes: &SizeVector, schedule: &AdaptiveSchedule) {
        let n = self.comp_raw_index.len();
        if self.sched.caps_synced
            && schedule.incremental
            && self.model.supports_incremental()
            && self.sched.changed.len() * 4 <= n
        {
            self.incremental_eval(sizes, schedule);
        }
    }

    /// The per-sweep view of the closed-form resize inputs (one struct of
    /// borrowed tables, shared by every sweep variant so the Theorem-5
    /// arithmetic lives in exactly one place:
    /// [`ResizeTables::closed_form`]).
    fn resize_tables(&self, beta: f64, gamma: f64) -> ResizeTables<'_> {
        ResizeTables {
            is_wire: &self.comp_is_wire,
            wire_mask: &self.wire_mask,
            unit_resistance: &self.unit_resistance,
            unit_capacitance: &self.unit_capacitance,
            area_coefficient: &self.area_coefficient,
            lower_bound: &self.lower_bound,
            upper_bound: &self.upper_bound,
            coupling_sum: &self.coupling_sum,
            extra_denom: &self.extra_denom,
            beta,
            gamma,
        }
    }

    /// The Theorem-5 closed-form resize of one component over the cached
    /// workspace tables. Returns `(x_new, relative_change)`.
    #[inline(always)]
    fn resize_component(&self, dense: usize, x_i: f64, beta: f64, gamma: f64) -> (f64, f64) {
        let raw = self.comp_raw_index[dense];
        self.resize_tables(beta, gamma).closed_form(
            dense,
            x_i,
            self.ws.charged[raw],
            self.ws.upstream[raw],
            self.ws.node_weights[raw],
        )
    }

    /// Ensures `ws.charged`/`ws.presented` reflect `sizes` exactly — the
    /// precondition of a forward fused pass, whose resizes read the charged
    /// table. No-op when they are already current: right after a backward
    /// fused pass (which maintains them through every resize), or after a
    /// [`timing`](Self::timing) evaluation at the same sizes (the OGWS
    /// steady state).
    fn ensure_charged_fresh(&mut self, sizes: &SizeVector) {
        if self.sched.charged_fresh
            || (self.sched.caps_synced
                && self.sched.changed.is_empty()
                && self.sched.eval_sizes.as_slice() == sizes.as_slice())
        {
            return;
        }
        self.refresh_coupling_load(sizes);
        self.rebuild_downstream_caps(sizes);
        self.note_caps_synced(sizes);
    }

    /// Brings `ws.extra_cap` up to date with `sizes` ahead of a backward
    /// fused pass, scattering only the changed components' pair deltas
    /// through the per-component CSR when the dirty set is small.
    /// `force_full` (verification sweeps) always rebuilds from scratch so
    /// the sparse scatter's floating-point accumulation drift is squashed
    /// on the verification cadence, as the schedule contract promises.
    fn prepare_coupling(
        &mut self,
        sizes: &SizeVector,
        schedule: &AdaptiveSchedule,
        force_full: bool,
    ) {
        let n = self.comp_raw_index.len();
        if !force_full
            && self.sched.caps_synced
            && schedule.incremental
            && self.sched.changed.len() * 4 <= n
        {
            self.refresh_coupling_load_sparse(sizes);
            let sched = &mut self.sched;
            let xs = sizes.as_slice();
            for &comp in &sched.changed {
                sched.eval_sizes[comp as usize] = xs[comp as usize];
            }
            sched.clear_changed();
        } else {
            self.refresh_coupling_load(sizes);
            self.sched.eval_sizes.copy_from_slice(sizes.as_slice());
            self.sched.caps_synced = true;
            self.sched.clear_changed();
        }
    }

    /// One forward fused Gauss–Seidel pass
    /// ([`DelayModel::fused_upstream_resize`]): a single forward-topological
    /// traversal recomputes the λ-weighted upstream resistances over the
    /// freshly resized upstream state and resizes each component the moment
    /// its upstream resistance is known, reading the charged table of the
    /// previous backward pass. With `resize_all` every component is
    /// re-checked (verification semantics); otherwise frozen components are
    /// skipped. Returns `None` when the backend has no fused path.
    pub(crate) fn fused_forward_sweep(
        &mut self,
        sizes: &mut SizeVector,
        beta: f64,
        gamma: f64,
        schedule: &AdaptiveSchedule,
        resize_all: bool,
    ) -> Option<(f64, usize)> {
        if !self.model.supports_fused() {
            return None;
        }
        self.ensure_charged_fresh(sizes);
        if self.par.active() && self.model.dense_topology(&self.state).is_some() {
            return Some(
                self.fused_parallel_sweep(sizes, beta, gamma, schedule, resize_all, false),
            );
        }
        let EvalWorkspace {
            charged,
            upstream,
            node_weights,
            ..
        } = &mut self.ws;
        let charged: &[f64] = charged;
        let node_weights: &[f64] = node_weights;
        let sched = &mut self.sched;
        let tables = ResizeTables {
            is_wire: &self.comp_is_wire,
            wire_mask: &self.wire_mask,
            unit_resistance: &self.unit_resistance,
            unit_capacitance: &self.unit_capacitance,
            area_coefficient: &self.area_coefficient,
            lower_bound: &self.lower_bound,
            upper_bound: &self.upper_bound,
            coupling_sum: &self.coupling_sum,
            extra_denom: &self.extra_denom,
            beta,
            gamma,
        };
        let mut worst = 0.0_f64;
        let mut touched = 0usize;
        let supported = {
            let mut resize = |comp: usize, node: usize, upstream_i: f64, x_i: f64| -> f64 {
                if !resize_all && sched.frozen[comp] {
                    return x_i;
                }
                touched += 1;
                let (x_new, rel) =
                    tables.closed_form(comp, x_i, charged[node], upstream_i, node_weights[node]);
                worst = worst.max(rel);
                sched.note_resize(comp, rel, schedule);
                if x_new != x_i {
                    sched.push_changed(comp);
                }
                x_new
            };
            self.model.fused_upstream_resize(
                &self.state,
                sizes,
                node_weights,
                upstream,
                &mut resize,
            )
        };
        // `supports_fused()` was checked before any state was touched; a
        // backend returning `false` here broke that contract, and silently
        // falling back would leave the caches it promised to rebuild stale.
        assert!(
            supported,
            "DelayModel::supports_fused() promised a fused pass that was not performed"
        );
        // The resizes invalidated the charged table (it still reflects the
        // pre-pass sizes); the next backward pass rebuilds it.
        sched.charged_fresh = false;
        sched.rebuild_active();
        Some((worst, touched))
    }

    /// One backward fused Gauss–Seidel pass
    /// ([`DelayModel::fused_downstream_resize`]): the coupling loads are
    /// brought up to date (sparsely when the dirty set is small), then a
    /// single reverse-topological traversal re-accumulates the downstream
    /// capacitances and resizes each component the moment its charged
    /// capacitance is known, reading the upstream table of the previous
    /// forward pass. Alternating the two directions refreshes both sides
    /// of the Theorem-5 formula with one traversal each and roughly squares
    /// the per-pass contraction, so solves converge in far fewer sweeps.
    pub(crate) fn fused_backward_sweep(
        &mut self,
        sizes: &mut SizeVector,
        beta: f64,
        gamma: f64,
        schedule: &AdaptiveSchedule,
        resize_all: bool,
    ) -> Option<(f64, usize)> {
        if !self.model.supports_fused() {
            return None;
        }
        self.prepare_coupling(sizes, schedule, resize_all);
        if self.par.active() && self.model.dense_topology(&self.state).is_some() {
            return Some(self.fused_parallel_sweep(sizes, beta, gamma, schedule, resize_all, true));
        }
        let EvalWorkspace {
            charged,
            presented,
            upstream,
            extra_cap,
            node_weights,
            ..
        } = &mut self.ws;
        let upstream: &[f64] = upstream;
        let node_weights: &[f64] = node_weights;
        let extra_cap: &[f64] = extra_cap;
        let sched = &mut self.sched;
        let tables = ResizeTables {
            is_wire: &self.comp_is_wire,
            wire_mask: &self.wire_mask,
            unit_resistance: &self.unit_resistance,
            unit_capacitance: &self.unit_capacitance,
            area_coefficient: &self.area_coefficient,
            lower_bound: &self.lower_bound,
            upper_bound: &self.upper_bound,
            coupling_sum: &self.coupling_sum,
            extra_denom: &self.extra_denom,
            beta,
            gamma,
        };
        let mut worst = 0.0_f64;
        let mut touched = 0usize;
        let supported = {
            let mut resize = |comp: usize, node: usize, charged_i: f64, x_i: f64| -> f64 {
                if !resize_all && sched.frozen[comp] {
                    return x_i;
                }
                touched += 1;
                let (x_new, rel) =
                    tables.closed_form(comp, x_i, charged_i, upstream[node], node_weights[node]);
                worst = worst.max(rel);
                sched.note_resize(comp, rel, schedule);
                if x_new != x_i {
                    sched.push_changed(comp);
                }
                x_new
            };
            self.model.fused_downstream_resize(
                &self.state,
                sizes,
                extra_cap,
                charged,
                presented,
                &mut resize,
            )
        };
        // `supports_fused()` was checked before any state was touched; a
        // backend returning `false` here broke that contract, and silently
        // falling back would leave the caches it promised to rebuild stale.
        assert!(
            supported,
            "DelayModel::supports_fused() promised a fused pass that was not performed"
        );
        // The pass maintained charged/presented through every resize, so
        // they reflect the post-sweep sizes already.
        sched.charged_fresh = true;
        sched.rebuild_active();
        Some((worst, touched))
    }

    /// One level-parallel fused Gauss–Seidel pass over the chunk grid —
    /// the multi-threaded counterpart of the sequential
    /// [`fused_backward_sweep`](Self::fused_backward_sweep) (`backward`) /
    /// [`fused_forward_sweep`](Self::fused_forward_sweep) bodies. The
    /// caller has already prepared the pass's fixed-side caches.
    ///
    /// Determinism: chunk boundaries come from the fixed grid; per-node
    /// arithmetic reads only settled neighbor levels; the calm/frozen
    /// bookkeeping touches each chunk's own components; and the worst /
    /// touched / dirty-frontier reductions are written to per-chunk slots
    /// and merged below in fixed chunk order — so the outcome is bitwise
    /// identical for every thread count (including the sequential grid
    /// walk used when threads = 1 or the `parallel` feature is off).
    fn fused_parallel_sweep(
        &mut self,
        sizes: &mut SizeVector,
        beta: f64,
        gamma: f64,
        schedule: &AdaptiveSchedule,
        resize_all: bool,
        backward: bool,
    ) -> (f64, usize) {
        let topo = self
            .model
            .dense_topology(&self.state)
            .expect("caller checked dense_topology");
        let n_nodes = topo.num_nodes();
        let n_comps = self.comp_raw_index.len();
        assert_eq!(sizes.len(), n_comps, "sizes must match the circuit");
        let EvalWorkspace {
            charged,
            presented,
            upstream,
            extra_cap,
            node_weights,
            ..
        } = &mut self.ws;
        assert_eq!(charged.len(), n_nodes, "workspace must match the circuit");
        assert_eq!(presented.len(), n_nodes);
        assert_eq!(upstream.len(), n_nodes);
        assert_eq!(extra_cap.len(), n_nodes);
        assert_eq!(node_weights.len(), n_nodes);
        let sched = &mut self.sched;
        assert_eq!(sched.calm.len(), n_comps);
        assert_eq!(sched.frozen.len(), n_comps);
        let tables = ResizeTables {
            is_wire: &self.comp_is_wire,
            wire_mask: &self.wire_mask,
            unit_resistance: &self.unit_resistance,
            unit_capacitance: &self.unit_capacitance,
            area_coefficient: &self.area_coefficient,
            lower_bound: &self.lower_bound,
            upper_bound: &self.upper_bound,
            coupling_sum: &self.coupling_sum,
            extra_denom: &self.extra_denom,
            beta,
            gamma,
        };
        let xs_s = SharedMut::new(sizes.as_mut_slice());
        let ps = &mut self.pscratch;
        let chunk_worst = SharedMut::new(ps.chunk_worst.as_mut_slice());
        let chunk_touched = SharedMut::new(ps.chunk_touched.as_mut_slice());
        let chunk_changed_len = SharedMut::new(ps.chunk_changed_len.as_mut_slice());
        let grid = &self.grid;
        let ctx = FusedChunkCtx {
            tables,
            schedule,
            resize_all,
            calm: SharedMut::new(sched.calm.as_mut_slice()),
            frozen: SharedMut::new(sched.frozen.as_mut_slice()),
            chunk_changed: SharedMut::new(ps.chunk_changed.as_mut_slice()),
        };

        let mut worst = 0.0f64;
        let mut touched_total = 0usize;
        if backward {
            let upstream_r: &[f64] = upstream;
            let weights_r: &[f64] = node_weights;
            let extra_r: &[f64] = extra_cap;
            let charged_s = SharedMut::new(charged.as_mut_slice());
            let presented_s = SharedMut::new(presented.as_mut_slice());
            self.par.run_leveled(grid, true, |l, c| {
                let level = topo.level(l);
                let range = grid.chunk_range(level.len(), c);
                let id = grid.chunk_id(l, c);
                let seg = grid.node_base(l) + range.start;
                let mut stats = ChunkStats::default();
                let mut batch = |nodes: &[u32], values: &[f64], xs: SharedMut<'_, f64>| {
                    // SAFETY: the chunk's components/nodes are chunk-owned
                    // (one node per component); `upstream`/`weights` are
                    // fixed for the pass; `values` has one entry per node.
                    unsafe {
                        ctx.apply_batch(
                            topo, nodes, values, true, upstream_r, weights_r, xs, seg, &mut stats,
                        )
                    }
                };
                // SAFETY: chunk disjointness within the level; levels settle
                // in reverse dependency order; lengths asserted above; the
                // grid's chunks are at most one `MAX_CHUNK_NODES` granule.
                unsafe {
                    topo.fused_downstream_chunk_lanes(
                        &level[range],
                        xs_s,
                        extra_r,
                        charged_s,
                        presented_s,
                        &mut batch,
                    );
                    chunk_worst.set(id, stats.worst);
                    chunk_touched.set(id, stats.touched);
                    chunk_changed_len.set(id, stats.changed);
                }
            });
        } else {
            let charged_r: &[f64] = charged;
            let weights_r: &[f64] = node_weights;
            let upstream_s = SharedMut::new(upstream.as_mut_slice());
            self.par.run_leveled(grid, false, |l, c| {
                let level = topo.level(l);
                let range = grid.chunk_range(level.len(), c);
                let id = grid.chunk_id(l, c);
                let seg = grid.node_base(l) + range.start;
                let mut stats = ChunkStats::default();
                let mut batch = |nodes: &[u32], values: &[f64], xs: SharedMut<'_, f64>| {
                    // SAFETY: as the backward direction; `charged` is fixed
                    // for the pass.
                    unsafe {
                        ctx.apply_batch(
                            topo, nodes, values, false, charged_r, weights_r, xs, seg, &mut stats,
                        )
                    }
                };
                // SAFETY: chunk disjointness within the level; levels settle
                // in forward dependency order; chunks are at most one
                // `MAX_CHUNK_NODES` granule.
                unsafe {
                    topo.fused_upstream_chunk_lanes(
                        &level[range],
                        xs_s,
                        weights_r,
                        upstream_s,
                        &mut batch,
                    );
                    chunk_worst.set(id, stats.worst);
                    chunk_touched.set(id, stats.touched);
                    chunk_changed_len.set(id, stats.changed);
                }
            });
        }

        // Merge the per-chunk reductions in fixed chunk order (the pass's
        // traversal order), independent of which worker ran what.
        let mut merge_level = |l: usize, sched: &mut ScheduleWorkspace| {
            let level_len = topo.level(l).len();
            for c in 0..grid.chunks_in(l) {
                let id = grid.chunk_id(l, c);
                worst = worst.max(ps.chunk_worst[id]);
                touched_total += ps.chunk_touched[id] as usize;
                let seg = grid.node_base(l) + grid.chunk_range(level_len, c).start;
                for k in 0..ps.chunk_changed_len[id] as usize {
                    sched.push_changed(ps.chunk_changed[seg + k] as usize);
                }
            }
        };
        if backward {
            for l in (0..grid.num_levels()).rev() {
                merge_level(l, sched);
            }
        } else {
            for l in 0..grid.num_levels() {
                merge_level(l, sched);
            }
        }
        // Cache status mirrors the sequential passes: a backward pass
        // maintains charged/presented through every resize, a forward pass
        // leaves them describing the pre-pass sizes.
        sched.charged_fresh = backward;
        sched.rebuild_active();
        (worst, touched_total)
    }

    /// One verification sweep: exact full re-evaluation at the current
    /// sizes, every component resized, calm streaks updated, movers
    /// unfrozen and the active set rebuilt. Returns `(worst relative
    /// change, components touched)`.
    pub(crate) fn verification_sweep(
        &mut self,
        sizes: &mut SizeVector,
        beta: f64,
        gamma: f64,
        schedule: &AdaptiveSchedule,
    ) -> (f64, usize) {
        self.full_eval(sizes);
        let n = self.comp_raw_index.len();
        let mut worst = 0.0_f64;
        // Lane-blocked resize under a `Level` policy: the closed form reads
        // only pass-fixed tables and each component's own size, so batching
        // LANES components per block reorders no observable access, and the
        // bookkeeping below runs in component order — bitwise identical to
        // the scalar loop, which stays the sequential-policy oracle.
        if self.par.active() {
            let tables = ResizeTables {
                is_wire: &self.comp_is_wire,
                wire_mask: &self.wire_mask,
                unit_resistance: &self.unit_resistance,
                unit_capacitance: &self.unit_capacitance,
                area_coefficient: &self.area_coefficient,
                lower_bound: &self.lower_bound,
                upper_bound: &self.upper_bound,
                coupling_sum: &self.coupling_sum,
                extra_denom: &self.extra_denom,
                beta,
                gamma,
            };
            let raw_index = &self.comp_raw_index;
            let ws = &self.ws;
            let sched = &mut self.sched;
            let mut dense = 0usize;
            while dense + LANES <= n {
                let comps: [usize; LANES] = std::array::from_fn(|j| dense + j);
                let mut x = [0.0f64; LANES];
                let mut ch = [0.0f64; LANES];
                let mut up = [0.0f64; LANES];
                let mut la = [0.0f64; LANES];
                for j in 0..LANES {
                    let raw = raw_index[comps[j]];
                    x[j] = sizes[comps[j]];
                    ch[j] = ws.charged[raw];
                    up[j] = ws.upstream[raw];
                    la[j] = ws.node_weights[raw];
                }
                let (x_new, rel) = tables.closed_form_lanes(&comps, &x, &ch, &up, &la);
                for j in 0..LANES {
                    let d = comps[j];
                    if x_new[j] != x[j] {
                        sizes[d] = x_new[j];
                        sched.push_changed(d);
                    }
                    worst = worst.max(rel[j]);
                    sched.note_resize(d, rel[j], schedule);
                }
                dense += LANES;
            }
            for dense in dense..n {
                let raw = raw_index[dense];
                let x_i = sizes[dense];
                let (x_new, rel) = tables.closed_form(
                    dense,
                    x_i,
                    ws.charged[raw],
                    ws.upstream[raw],
                    ws.node_weights[raw],
                );
                if x_new != x_i {
                    sizes[dense] = x_new;
                    sched.push_changed(dense);
                }
                worst = worst.max(rel);
                sched.note_resize(dense, rel, schedule);
            }
            sched.rebuild_active();
            return (worst, n);
        }
        for dense in 0..n {
            let x_i = sizes[dense];
            let (x_new, rel) = self.resize_component(dense, x_i, beta, gamma);
            if x_new != x_i {
                sizes[dense] = x_new;
                self.sched.push_changed(dense);
            }
            worst = worst.max(rel);
            self.sched.note_resize(dense, rel, schedule);
        }
        self.sched.rebuild_active();
        (worst, n)
    }

    /// One active-set sweep: incremental evaluation for the components that
    /// moved last sweep, then the closed-form resize over the active
    /// frontier only, freezing components whose calm streak reached the
    /// threshold. Returns `(worst relative change over the frontier,
    /// components touched)`.
    pub(crate) fn active_sweep(
        &mut self,
        sizes: &mut SizeVector,
        beta: f64,
        gamma: f64,
        schedule: &AdaptiveSchedule,
    ) -> (f64, usize) {
        self.incremental_eval(sizes, schedule);
        let touched = self.sched.active.len();
        let mut worst = 0.0_f64;
        let mut write = 0usize;
        // Lane-blocked frontier resize under a `Level` policy: gather up to
        // LANES active components per block (the compute reads only
        // pass-fixed tables and each component's own size), then run the
        // calm/freeze bookkeeping and the in-place active-list compaction
        // strictly in frontier order — every transition, record and the
        // compacted list are exactly those of the scalar loop below, which
        // stays the sequential-policy oracle. The compaction write cursor
        // never overtakes the block's read positions (the gathered values
        // are already copied out).
        if self.par.active() {
            let tables = ResizeTables {
                is_wire: &self.comp_is_wire,
                wire_mask: &self.wire_mask,
                unit_resistance: &self.unit_resistance,
                unit_capacitance: &self.unit_capacitance,
                area_coefficient: &self.area_coefficient,
                lower_bound: &self.lower_bound,
                upper_bound: &self.upper_bound,
                coupling_sum: &self.coupling_sum,
                extra_denom: &self.extra_denom,
                beta,
                gamma,
            };
            let raw_index = &self.comp_raw_index;
            let ws = &self.ws;
            let sched = &mut self.sched;
            let mut read = 0usize;
            while read < touched {
                let fill = LANES.min(touched - read);
                let mut comps = [0usize; LANES];
                let mut x = [0.0f64; LANES];
                let mut ch = [0.0f64; LANES];
                let mut up = [0.0f64; LANES];
                let mut la = [0.0f64; LANES];
                for j in 0..fill {
                    let d = sched.active[read + j] as usize;
                    comps[j] = d;
                    x[j] = sizes[d];
                    let raw = raw_index[d];
                    ch[j] = ws.charged[raw];
                    up[j] = ws.upstream[raw];
                    la[j] = ws.node_weights[raw];
                }
                // Stale trailing lanes re-use a live in-range component;
                // their results are discarded.
                for j in fill..LANES {
                    comps[j] = comps[0];
                }
                let (x_new, rel) = tables.closed_form_lanes(&comps, &x, &ch, &up, &la);
                for j in 0..fill {
                    let dense = comps[j];
                    if x_new[j] != x[j] {
                        sizes[dense] = x_new[j];
                        sched.push_changed(dense);
                    }
                    worst = worst.max(rel[j]);
                    let keep = if rel[j] <= schedule.freeze_tolerance {
                        let calm = sched.calm[dense].saturating_add(1);
                        sched.calm[dense] = calm;
                        !(schedule.active_set && calm as usize >= schedule.freeze_after)
                    } else {
                        sched.calm[dense] = 0;
                        true
                    };
                    if keep {
                        sched.active[write] = dense as u32;
                        write += 1;
                    } else {
                        sched.frozen[dense] = true;
                        sched.num_frozen += 1;
                    }
                }
                read += fill;
            }
            sched.active.truncate(write);
            return (worst, touched);
        }
        for read in 0..self.sched.active.len() {
            let dense = self.sched.active[read] as usize;
            let x_i = sizes[dense];
            let (x_new, rel) = self.resize_component(dense, x_i, beta, gamma);
            if x_new != x_i {
                sizes[dense] = x_new;
                self.sched.push_changed(dense);
            }
            worst = worst.max(rel);
            let keep = if rel <= schedule.freeze_tolerance {
                let calm = self.sched.calm[dense].saturating_add(1);
                self.sched.calm[dense] = calm;
                !(schedule.active_set && calm as usize >= schedule.freeze_after)
            } else {
                self.sched.calm[dense] = 0;
                true
            };
            if keep {
                self.sched.active[write] = dense as u32;
                write += 1;
            } else {
                self.sched.frozen[dense] = true;
                self.sched.num_frozen += 1;
            }
        }
        self.sched.active.truncate(write);
        (worst, touched)
    }

    /// Full timing picture at `sizes` (coupling load included), evaluated
    /// into the workspace. The returned view borrows the engine.
    pub fn timing(&mut self, sizes: &SizeVector) -> TimingView<'_> {
        // Skip the coupling + downstream rebuild when the cached tables
        // already reflect exactly these size values (after a previous
        // evaluation at the same sizes, or after an adaptive solve's final
        // sync): recomputing them is idempotent, so the skip never changes
        // a result.
        let synced = self.sched.caps_synced
            && self.sched.changed.is_empty()
            && self.sched.eval_sizes.as_slice() == sizes.as_slice();
        if !synced {
            self.refresh_coupling_load(sizes);
            self.rebuild_downstream_caps(sizes);
            // The coupling loads and downstream capacitances now reflect
            // `sizes` exactly; record that so a warm adaptive solve right
            // after this evaluation (the OGWS steady state) can reuse them
            // instead of rebuilding.
            self.note_caps_synced(sizes);
        }
        // Level-parallel timing: delays are per-node independent (flat
        // chunks), arrival propagation settles levels forward; the
        // critical-path walk over `pred` stays a sequential epilogue. Per
        // node the arithmetic (and the `>=` tie-breaking) is exactly the
        // sequential recurrence, so both paths are bitwise identical.
        if self.par.active() {
            if let Some(topo) = self.model.dense_topology(&self.state) {
                let n = topo.num_nodes();
                let ws = &mut self.ws;
                assert_eq!(ws.delays.len(), n, "workspace must match the circuit");
                assert_eq!(ws.arrival.len(), n);
                assert_eq!(ws.pred.len(), n);
                assert_eq!(
                    sizes.len(),
                    self.comp_raw_index.len(),
                    "sizes must match the circuit"
                );
                let xs = sizes.as_slice();
                {
                    // Scatter the component sizes into the lane-padded
                    // node-size slab once, then stream the SoA columns
                    // (unit resistance, node size, charged) through the
                    // 4-lane delay kernel — bitwise identical to
                    // `delays_chunk` for every node kind.
                    topo.fill_node_sizes(xs, &mut ws.node_size);
                    let node_size: &[f64] = &ws.node_size;
                    let charged: &[f64] = &ws.charged;
                    let delays_s = SharedMut::new(ws.delays.as_mut_slice());
                    self.par.run_flat(par::flat_chunks(n), |c| {
                        // SAFETY: flat chunks own disjoint node ranges;
                        // `node_size` mirrors `sizes` (filled above) and
                        // `charged` is a downstream-caps result.
                        unsafe {
                            topo.delays_chunk_lanes(
                                par::flat_range(n, c),
                                node_size,
                                charged,
                                delays_s,
                            )
                        };
                    });
                }
                {
                    let delays: &[f64] = &ws.delays;
                    let arrival_s = SharedMut::new(ws.arrival.as_mut_slice());
                    let pred_s = SharedMut::new(ws.pred.as_mut_slice());
                    let grid = &self.grid;
                    self.par.run_leveled(grid, false, |l, c| {
                        let level = topo.level(l);
                        let range = grid.chunk_range(level.len(), c);
                        // SAFETY: chunks of one level own disjoint nodes;
                        // levels settle in forward dependency order.
                        unsafe { topo.arrivals_chunk(&level[range], delays, arrival_s, pred_s) };
                    });
                }
                let sink = self.graph.sink().index();
                let critical_path_delay = ws.arrival[sink];
                ws.critical_path.clear();
                let mut cursor = ws.pred[sink];
                while cursor != NO_PRED {
                    ws.critical_path.push(NodeId::new(cursor));
                    cursor = ws.pred[cursor];
                }
                ws.critical_path.reverse();
                return TimingView {
                    delays: &ws.delays,
                    arrival: &ws.arrival,
                    critical_path_delay,
                    critical_path: &ws.critical_path,
                };
            }
        }
        let ws = &mut self.ws;
        self.model
            .delays_into(&self.state, sizes, &ws.charged, &mut ws.delays);
        let critical_path_delay = self.model.propagate_arrivals(
            &self.state,
            self.graph,
            &ws.delays,
            &mut ws.arrival,
            &mut ws.pred,
            &mut ws.critical_path,
        );
        TimingView {
            delays: &ws.delays,
            arrival: &ws.arrival,
            critical_path_delay,
            critical_path: &ws.critical_path,
        }
    }

    /// Evaluates the full circuit metrics at `sizes` without allocating.
    /// Bitwise identical to [`CircuitMetrics::evaluate`].
    pub fn metrics(&mut self, sizes: &SizeVector) -> CircuitMetrics {
        let critical = self.timing(sizes).critical_path_delay;
        let graph = self.graph;
        let total_cap = ncgws_circuit::total_capacitance(graph, sizes);
        let area = ncgws_circuit::total_area(graph, sizes);
        let noise_exact = self.coupling.total_physical_coupling(graph, sizes);
        let crosstalk_lin = self.coupling.total_crosstalk(graph, sizes);
        CircuitMetrics {
            noise_pf: units::pf_from_ff(noise_exact),
            delay_ps: units::ps_from_internal(critical),
            power_mw: units::mw_from_ff(total_cap, graph.technology().power_scale_mw_per_ff()),
            area_um2: area,
            crosstalk_ff: crosstalk_lin,
            delay_internal: critical,
            total_capacitance_ff: total_cap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ConstraintBounds;
    use ncgws_circuit::{CircuitBuilder, GateKind, Technology, TimingAnalysis};
    use ncgws_coupling::{CouplingPair, WirePairGeometry};

    fn setup() -> (CircuitGraph, CouplingSet) {
        let mut b = CircuitBuilder::new(Technology::dac99());
        let d = b.add_driver("d", 120.0).unwrap();
        let d2 = b.add_driver("d2", 150.0).unwrap();
        let w1 = b.add_wire("w1", 180.0).unwrap();
        let w2 = b.add_wire("w2", 220.0).unwrap();
        let g = b.add_gate("g", GateKind::Nand).unwrap();
        let w3 = b.add_wire("w3", 140.0).unwrap();
        b.connect(d, w1).unwrap();
        b.connect(d2, w2).unwrap();
        b.connect(w1, g).unwrap();
        b.connect(w2, g).unwrap();
        b.connect(g, w3).unwrap();
        b.connect_output(w3, 6.0).unwrap();
        let graph = b.build().unwrap();
        let w1 = graph.node_by_name("w1").unwrap();
        let w2 = graph.node_by_name("w2").unwrap();
        let geom = WirePairGeometry::new(150.0, 12.0, 0.03).unwrap();
        let coupling =
            CouplingSet::new(&graph, vec![CouplingPair::new(w1, w2, geom).unwrap()]).unwrap();
        (graph, coupling)
    }

    #[test]
    fn timing_matches_reference_bitwise() {
        let (graph, coupling) = setup();
        let sizes = graph.uniform_sizes(1.7);
        let extra = coupling.delay_load_per_node(&graph, &sizes);
        let reference = TimingAnalysis::run(&graph, &sizes, Some(&extra));

        let mut engine = SizingEngine::new(&graph, &coupling);
        let view = engine.timing(&sizes);
        assert_eq!(view.delays, reference.delays.as_slice());
        assert_eq!(view.arrival, reference.arrival.values.as_slice());
        assert_eq!(view.critical_path_delay, reference.critical_path_delay);
        assert_eq!(view.critical_path, reference.critical_path.as_slice());
    }

    #[test]
    fn metrics_match_reference_bitwise() {
        let (graph, coupling) = setup();
        let mut engine = SizingEngine::new(&graph, &coupling);
        for size in [0.4, 1.0, 3.2] {
            let sizes = graph.uniform_sizes(size);
            let reference = CircuitMetrics::evaluate(&graph, &coupling, &sizes);
            assert_eq!(engine.metrics(&sizes), reference);
        }
    }

    #[test]
    fn engine_is_reusable_across_evaluations() {
        let (graph, coupling) = setup();
        let mut engine = SizingEngine::new(&graph, &coupling);
        let a = engine.metrics(&graph.uniform_sizes(1.0));
        let _ = engine.metrics(&graph.uniform_sizes(5.0));
        let again = engine.metrics(&graph.uniform_sizes(1.0));
        assert_eq!(a, again, "workspace reuse must not leak state");
        assert!(engine.memory_bytes() > 0);
    }

    #[test]
    fn memory_accounting_covers_all_engine_buffers() {
        use std::mem::size_of;
        let (graph, coupling) = setup();
        let engine = SizingEngine::new(&graph, &coupling);
        let n = graph.num_components();

        // Lower bound assembled field by field: the evaluation workspace,
        // the adaptive-schedule buffers (dirty sets, active set, incremental
        // scratch), the eight dense f64 attribute tables plus the f64 wire
        // mask, the raw-index and wire-flag tables, the SoA pair table
        // (four u32 and three f64 columns) with its per-component CSR
        // adjacency, and the model state. `memory_bytes` must cover all of
        // them (capacities can only exceed the lengths used here).
        let floor = engine.ws.memory_bytes()
            + engine.sched.memory_bytes()
            + 9 * n * size_of::<f64>()
            + n * size_of::<usize>()
            + n * size_of::<bool>()
            + engine.pair_table.len() * (4 * size_of::<u32>() + 3 * size_of::<f64>())
            + (n + 1) * size_of::<u32>()
            + 2 * coupling.len() * size_of::<u32>()
            + engine.model.state_memory_bytes(&engine.state);
        assert!(
            engine.memory_bytes() >= floor,
            "memory accounting {} must cover the per-field floor {}",
            engine.memory_bytes(),
            floor
        );

        // The schedule workspace itself accounts for every dirty/active-set
        // buffer it owns, including the incremental-propagation scratch.
        let sched_floor = n * size_of::<f64>()      // eval_sizes
            + n * size_of::<u32>()                   // calm
            + 2 * n * size_of::<bool>()              // frozen + changed_mark
            + n * size_of::<u32>()                   // active (starts full)
            + engine.sched.inc.memory_bytes();
        assert!(
            engine.sched.memory_bytes() >= sched_floor,
            "schedule accounting {} must cover its buffers {}",
            engine.sched.memory_bytes(),
            sched_floor
        );
    }

    #[test]
    fn dense_aggregates_match_the_reference_functions_bitwise() {
        let (graph, coupling) = setup();
        let engine = SizingEngine::new(&graph, &coupling);
        for size in [0.4, 1.0, 2.7] {
            let sizes = graph.uniform_sizes(size);
            assert_eq!(
                engine.total_capacitance(&sizes),
                ncgws_circuit::total_capacitance(&graph, &sizes)
            );
            assert_eq!(
                engine.total_area(&sizes),
                ncgws_circuit::total_area(&graph, &sizes)
            );
            assert_eq!(
                engine.crosstalk_lhs(&sizes),
                coupling.crosstalk_lhs(&graph, &sizes)
            );
        }
    }

    #[test]
    fn lane_aggregates_are_epsilon_pinned_to_the_scalar_reductions() {
        let (graph, coupling) = setup();
        let mut engine = SizingEngine::new(&graph, &coupling);
        let scalar: Vec<[f64; 3]> = [0.4, 1.0, 2.7]
            .iter()
            .map(|&s| {
                let sizes = graph.uniform_sizes(s);
                [
                    engine.total_capacitance(&sizes),
                    engine.total_area(&sizes),
                    engine.crosstalk_lhs(&sizes),
                ]
            })
            .collect();
        engine.set_parallel(ParallelPolicy::threads(1));
        engine.set_lane_aggregates(true);
        for (&s, exact) in [0.4, 1.0, 2.7].iter().zip(&scalar) {
            let sizes = graph.uniform_sizes(s);
            let laned = [
                engine.total_capacitance(&sizes),
                engine.total_area(&sizes),
                engine.crosstalk_lhs(&sizes),
            ];
            for (l, e) in laned.iter().zip(exact) {
                let tol = 1e-12 * e.abs().max(1.0);
                assert!(
                    (l - e).abs() <= tol,
                    "lane-blocked aggregate {l} drifted from scalar {e}"
                );
            }
        }
        // Turning the flag back off restores the bitwise-pinned scalar
        // reduction even while the Level policy stays active.
        engine.set_lane_aggregates(false);
        let sizes = graph.uniform_sizes(1.0);
        assert_eq!(
            engine.total_capacitance(&sizes),
            ncgws_circuit::total_capacitance(&graph, &sizes)
        );
    }

    #[test]
    fn for_problem_binds_the_problem_inputs() {
        let (graph, coupling) = setup();
        let bounds = ConstraintBounds {
            delay: 1e12,
            total_capacitance: 1e12,
            crosstalk: 1e12,
        };
        let problem = SizingProblem::new(&graph, &coupling, bounds).unwrap();
        let engine = SizingEngine::for_problem(&problem);
        assert!(std::ptr::eq(engine.graph(), problem.graph));
        assert!(std::ptr::eq(engine.coupling(), problem.coupling));
    }
}
