//! Error type for the sizing engine.

use std::fmt;

use ncgws_circuit::CircuitError;
use ncgws_coupling::CouplingError;
use ncgws_ordering::OrderingError;

use crate::control::StopReason;

/// Errors produced by the sizing engine.
#[derive(Debug)]
pub enum CoreError {
    /// The underlying circuit analysis failed.
    Circuit(CircuitError),
    /// The coupling model could not be built.
    Coupling(CouplingError),
    /// The wire-ordering stage failed.
    Ordering(OrderingError),
    /// A configuration value is invalid.
    InvalidConfig {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable reason.
        reason: String,
    },
    /// The constraint bounds are unsatisfiable even at the extreme sizes
    /// (for example a crosstalk bound below the size-independent coupling).
    InfeasibleBounds {
        /// Human-readable description of the violated bound.
        reason: String,
    },
    /// A [`RunControl`](crate::RunControl) stopped the run before it could
    /// start (the [`BatchRunner`](crate::BatchRunner) skips instances once
    /// the shared control is cancelled or past its deadline, so the
    /// expensive stage-1 ordering is not paid for work nobody wants).
    Interrupted {
        /// Why the run was stopped.
        reason: StopReason,
    },
}

impl CoreError {
    /// The [`StopReason`] behind an [`Interrupted`](Self::Interrupted)
    /// error, `None` for every other variant — the error-side counterpart of
    /// [`OptimizationOutcome::stop_reason`](crate::OptimizationOutcome::stop_reason).
    pub fn interruption(&self) -> Option<StopReason> {
        match self {
            CoreError::Interrupted { reason } => Some(*reason),
            _ => None,
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Circuit(e) => write!(f, "circuit analysis failed: {e}"),
            CoreError::Coupling(e) => write!(f, "coupling model failed: {e}"),
            CoreError::Ordering(e) => write!(f, "wire ordering failed: {e}"),
            CoreError::InvalidConfig { name, reason } => {
                write!(f, "invalid configuration {name}: {reason}")
            }
            CoreError::InfeasibleBounds { reason } => {
                write!(f, "infeasible constraint bounds: {reason}")
            }
            CoreError::Interrupted { reason } => {
                write!(f, "run interrupted before it started: {reason}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Circuit(e) => Some(e),
            CoreError::Coupling(e) => Some(e),
            CoreError::Ordering(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CircuitError> for CoreError {
    fn from(e: CircuitError) -> Self {
        CoreError::Circuit(e)
    }
}

impl From<CouplingError> for CoreError {
    fn from(e: CouplingError) -> Self {
        CoreError::Coupling(e)
    }
}

impl From<OrderingError> for CoreError {
    fn from(e: OrderingError) -> Self {
        CoreError::Ordering(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        use std::error::Error;
        let e = CoreError::from(CircuitError::NoDrivers);
        assert!(e.to_string().contains("circuit"));
        assert!(e.source().is_some());
        let e = CoreError::InvalidConfig {
            name: "max_iterations",
            reason: "must be positive".into(),
        };
        assert!(e.to_string().contains("max_iterations"));
        assert!(e.source().is_none());
        let e = CoreError::InfeasibleBounds {
            reason: "crosstalk bound too small".into(),
        };
        assert!(e.to_string().contains("crosstalk"));
        let e = CoreError::Interrupted {
            reason: StopReason::DeadlineExpired,
        };
        assert!(e.to_string().contains("deadline-expired"));
        assert!(e.source().is_none());
    }
}
