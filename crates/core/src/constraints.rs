//! Composable posynomial constraint system.
//!
//! The paper's problem `PP` carries exactly three global bounds — delay
//! `A₀`, power `P'` and crosstalk `X'` — and its optimality story (Theorems
//! 1, 3 and 5) only needs every constraint to be *posynomial*. This module
//! generalizes the formulation so new workloads can add constraint families
//! without touching the solver:
//!
//! * [`ScalarConstraint`] — one linear posynomial constraint
//!   `g(x) = c₀ + Σ_k a_k · x_{i_k} ≤ b` over the dense component sizes
//!   (all coefficients non-negative, so the constraint penalizes growth);
//! * [`ConstraintFamily`] — the seam a family plugs into: it declares its
//!   multiplier block, evaluates per-constraint values/violations for the
//!   OGWS subgradient step, accumulates its μ-weighted per-component
//!   coefficients into the engine's dense denominator table (so the
//!   Theorem 5 closed-form resize just reads one extra slice and stays
//!   allocation-free), and contributes its `Σ μ_k (g_k − b_k)` term to the
//!   dual value;
//! * [`ScalarFamily`] — the concrete linear family every shipped scenario
//!   uses ([`ConstraintSpec::PerNetCrosstalk`], [`ConstraintSpec::DrivenLoad`]);
//! * [`ConstraintSet`] — the extra families attached to a
//!   [`SizingProblem`](crate::SizingProblem). The default (empty) set is the
//!   paper's original formulation: the three global bounds keep their exact
//!   legacy arithmetic, and with no extra families every added term is a
//!   bitwise no-op (`x + 0.0`), which the `property_eval_engine` suite pins.
//!
//! # Why linear families keep the closed form
//!
//! Theorem 5's resize is `x_i* = sqrt(numerator / denominator)` clamped to
//! the size bounds, where the numerator collects the `x_i⁻¹`-shaped delay
//! terms and the denominator the terms linear in `x_i` (area, `β`-weighted
//! capacitance, upstream-resistance load, `γ`-weighted coupling). A family
//! whose constraints are **linear in the sizes** adds `Σ μ_k a_{k,i}` to
//! component `i`'s denominator and nothing to the numerator, so the
//! relaxation stays separable and the same sweep converges to its unique
//! optimum. Families with `x_i⁻¹` terms would need a numerator hook; the
//! trait leaves that extension open but nothing here requires it.
//!
//! # Adding a family
//!
//! 1. Describe it as a [`ConstraintSpec`] (configuration-level, serde,
//!    relative to the initial circuit) and extend
//!    [`lower_constraint_specs`] to lower it into a [`ScalarFamily`] —
//!    bounds in internal units ([`units`](crate::units)), coefficients per
//!    dense component index.
//! 2. That's all: multiplier initialization, the subgradient step,
//!    projection clamping, dual/KKT accounting, feasibility and the
//!    per-family slack report all iterate over the [`ConstraintSet`].

use std::fmt;

use ncgws_circuit::{CircuitGraph, NodeKind, SizeVector};
use ncgws_netlist::ProblemInstance;
use serde::{Deserialize, Serialize};

use crate::coupling_build::WireOrderingOutcome;
use crate::error::CoreError;

/// Safety margin applied when an unachievable bound is raised to the minimum
/// achievable value (matches `ConstraintBounds::clamped_to_feasible`).
const MARGIN: f64 = 1.0 + 1e-6;

/// One linear posynomial constraint `c₀ + Σ_k a_k · x_{i_k} ≤ b` over the
/// dense component sizes. Coefficients are non-negative, so the constraint
/// always penalizes size growth (the "load-type" shape Theorem 5's
/// denominator absorbs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalarConstraint {
    label: String,
    /// `(dense component index, coefficient)`, coefficients `> 0`.
    terms: Vec<(u32, f64)>,
    constant: f64,
    bound: f64,
}

impl ScalarConstraint {
    /// Creates a constraint. Terms with non-positive or non-finite
    /// coefficients are dropped (a zero coefficient contributes nothing and
    /// a negative one would break posynomiality).
    ///
    /// # Panics
    ///
    /// Panics when `constant` is negative or not finite (posynomial
    /// constants are non-negative; a negative one would also invert the
    /// direction of the feasibility clamp), or when `bound` is not finite
    /// (a NaN bound would make every feasibility comparison silently
    /// false).
    pub fn new(
        label: impl Into<String>,
        terms: impl IntoIterator<Item = (usize, f64)>,
        constant: f64,
        bound: f64,
    ) -> Self {
        assert!(
            constant.is_finite() && constant >= 0.0,
            "constraint constant must be finite and non-negative, got {constant}"
        );
        assert!(
            bound.is_finite(),
            "constraint bound must be finite, got {bound}"
        );
        ScalarConstraint {
            label: label.into(),
            terms: terms
                .into_iter()
                .filter(|&(_, a)| a.is_finite() && a > 0.0)
                .map(|(i, a)| (i as u32, a))
                .collect(),
            constant,
            bound,
        }
    }

    /// Human-readable label (channel name, node name, …).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The right-hand side `b`, in internal units.
    pub fn bound(&self) -> f64 {
        self.bound
    }

    /// The size-independent part `c₀`.
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// The `(dense component index, coefficient)` terms.
    pub fn terms(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.terms.iter().map(|&(i, a)| (i as usize, a))
    }

    /// Whether the constraint has any size-dependent term.
    pub fn is_vacuous(&self) -> bool {
        self.terms.is_empty()
    }

    /// `g(x) = c₀ + Σ a_k x_{i_k}` at `sizes`.
    pub fn value(&self, sizes: &SizeVector) -> f64 {
        let xs = sizes.as_slice();
        self.constant
            + self
                .terms
                .iter()
                .map(|&(i, a)| a * xs[i as usize])
                .sum::<f64>()
    }

    /// `g(x) − b`: positive when violated, negative slack when met.
    pub fn violation(&self, sizes: &SizeVector) -> f64 {
        self.value(sizes) - self.bound
    }

    /// The smallest achievable value, at the per-component lower bounds
    /// (coefficients are non-negative, so the minimum is at the box corner).
    pub fn min_value(&self, lower_bounds: &[f64]) -> f64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|&(i, a)| a * lower_bounds[i as usize])
                .sum::<f64>()
    }

    /// Raises the bound to the minimum achievable value (plus margin) when
    /// it is unachievable, mirroring `ConstraintBounds::clamped_to_feasible`.
    fn clamp_to_feasible(&mut self, lower_bounds: &[f64]) {
        let min = self.min_value(lower_bounds);
        if self.bound < min * MARGIN {
            self.bound = min * MARGIN;
        }
    }
}

/// Discriminates the shipped constraint families in reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FamilyKind {
    /// Channel-local crosstalk caps (one constraint per routing channel).
    PerNetCrosstalk,
    /// Per-node caps on the directly driven component load.
    DrivenLoad,
    /// A caller-assembled family.
    Custom,
}

impl fmt::Display for FamilyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FamilyKind::PerNetCrosstalk => "per-net-crosstalk",
            FamilyKind::DrivenLoad => "driven-load",
            FamilyKind::Custom => "custom",
        };
        f.write_str(s)
    }
}

/// The seam a constraint family plugs into the solver stack through. See the
/// module docs for the contract each method serves (multiplier block size,
/// OGWS slack evaluation, dense denominator aggregation, dual term).
pub trait ConstraintFamily: fmt::Debug {
    /// Family name for reports.
    fn name(&self) -> &str;

    /// Family kind for reports.
    fn kind(&self) -> FamilyKind;

    /// Number of constraints — the size of the family's multiplier block.
    fn len(&self) -> usize;

    /// `true` when the family carries no constraints.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `k`-th constraint's bound, in internal units.
    fn bound(&self, k: usize) -> f64;

    /// The `k`-th constraint's left-hand side at `sizes`.
    fn value(&self, k: usize, sizes: &SizeVector) -> f64;

    /// The `k`-th constraint's violation `g_k(x) − b_k` at `sizes`.
    fn violation(&self, k: usize, sizes: &SizeVector) -> f64 {
        self.value(k, sizes) - self.bound(k)
    }

    /// Normalizes a raw violation of the `k`-th constraint by its bound —
    /// the **single** definition of "relative violation" the subgradient
    /// step, feasibility checks, KKT residuals and slack reports all share.
    fn relative_violation(&self, k: usize, violation: f64) -> f64 {
        violation / self.bound(k).abs().max(1e-12)
    }

    /// Adds `Σ_k μ_k · ∂g_k/∂x_i` to `denominator[i]` for every dense
    /// component index `i` — the family's contribution to the Theorem 5
    /// closed-form denominator. Must not allocate: this runs once per LRS
    /// solve inside the OGWS loop.
    fn accumulate_denominator(&self, multipliers: &[f64], denominator: &mut [f64]);

    /// The family's dual-value term `Σ_k μ_k (g_k(x) − b_k)`.
    fn dual_term(&self, multipliers: &[f64], sizes: &SizeVector) -> f64;
}

/// A named group of [`ScalarConstraint`]s sharing one multiplier block —
/// the concrete [`ConstraintFamily`] every shipped scenario lowers into.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalarFamily {
    name: String,
    kind: FamilyKind,
    constraints: Vec<ScalarConstraint>,
}

impl ScalarFamily {
    /// Creates a family. Vacuous constraints (no size-dependent term) are
    /// dropped: their value is constant, so after feasibility clamping they
    /// could never bind and would only dilute the multiplier block.
    pub fn new(
        name: impl Into<String>,
        kind: FamilyKind,
        constraints: Vec<ScalarConstraint>,
    ) -> Self {
        ScalarFamily {
            name: name.into(),
            kind,
            constraints: constraints
                .into_iter()
                .filter(|c| !c.is_vacuous())
                .collect(),
        }
    }

    /// The constraints of the family.
    pub fn constraints(&self) -> &[ScalarConstraint] {
        &self.constraints
    }
}

impl ConstraintFamily for ScalarFamily {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> FamilyKind {
        self.kind
    }

    fn len(&self) -> usize {
        self.constraints.len()
    }

    fn bound(&self, k: usize) -> f64 {
        self.constraints[k].bound
    }

    fn value(&self, k: usize, sizes: &SizeVector) -> f64 {
        self.constraints[k].value(sizes)
    }

    fn accumulate_denominator(&self, multipliers: &[f64], denominator: &mut [f64]) {
        debug_assert_eq!(multipliers.len(), self.constraints.len());
        for (constraint, &mu) in self.constraints.iter().zip(multipliers) {
            if mu == 0.0 {
                continue;
            }
            // Blocked scatter: the `μ · a` products of one constraint are
            // independent, so a LANES-wide block computes four at once; the
            // adds then run in exact term order, so each slot's
            // accumulation sequence — and the result — stays bitwise
            // identical to the one-term-at-a-time loop.
            let terms = &constraint.terms;
            let nt = terms.len();
            let mut t = 0usize;
            while t + ncgws_circuit::LANES <= nt {
                let mut prod = [0.0f64; ncgws_circuit::LANES];
                for (j, slot) in prod.iter_mut().enumerate() {
                    *slot = mu * terms[t + j].1;
                }
                for (j, &v) in prod.iter().enumerate() {
                    denominator[terms[t + j].0 as usize] += v;
                }
                t += ncgws_circuit::LANES;
            }
            for &(i, a) in &terms[t..] {
                denominator[i as usize] += mu * a;
            }
        }
    }

    fn dual_term(&self, multipliers: &[f64], sizes: &SizeVector) -> f64 {
        self.constraints
            .iter()
            .zip(multipliers)
            .map(|(constraint, &mu)| mu * constraint.violation(sizes))
            .sum()
    }
}

/// Per-family slack summary of a solution — the reporting view of the
/// constraint system (one entry per family in
/// [`OptimizationReport::constraint_slacks`](crate::OptimizationReport::constraint_slacks)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct FamilySlack {
    /// Family name.
    pub family: String,
    /// Family kind.
    pub kind: FamilyKind,
    /// Number of constraints in the family.
    pub constraints: usize,
    /// Worst `g_k(x) − b_k` over the family (internal units; ≤ 0 when the
    /// family is met).
    pub worst_violation: f64,
    /// Worst violation relative to its bound.
    pub worst_relative_violation: f64,
    /// Label of the constraint attaining the worst violation.
    pub worst_label: String,
    /// Whether every constraint is within the feasibility tolerance.
    pub satisfied: bool,
}

/// The extra constraint families of a sizing problem, beyond the paper's
/// three global bounds. The default (empty) set reproduces the paper's
/// formulation exactly.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConstraintSet {
    families: Vec<ScalarFamily>,
}

impl ConstraintSet {
    /// An empty set: the paper's original three-bound formulation.
    pub fn new() -> Self {
        ConstraintSet::default()
    }

    /// A `const` empty set, usable in statics (the legacy solve paths share
    /// one).
    pub const fn empty_static() -> Self {
        ConstraintSet {
            families: Vec::new(),
        }
    }

    /// Adds a family.
    pub fn push(&mut self, family: ScalarFamily) {
        self.families.push(family);
    }

    /// The families, in insertion order (parallel to the multiplier blocks).
    pub fn families(&self) -> &[ScalarFamily] {
        &self.families
    }

    /// `true` when no extra families are attached.
    pub fn is_empty(&self) -> bool {
        self.families.iter().all(|f| f.is_empty())
    }

    /// Number of families (including empty ones, to keep multiplier blocks
    /// aligned).
    pub fn num_families(&self) -> usize {
        self.families.len()
    }

    /// Total number of constraints across all families.
    pub fn total_constraints(&self) -> usize {
        self.families.iter().map(ScalarFamily::len).sum()
    }

    /// The multiplier-block sizes, one per family.
    pub fn block_sizes(&self) -> Vec<usize> {
        self.families.iter().map(ScalarFamily::len).collect()
    }

    /// Accumulates every family's μ-weighted coefficients into the dense
    /// per-component `denominator` slice. `blocks` must be parallel to the
    /// families (as produced by
    /// [`Multipliers::attach_extras`](crate::Multipliers::attach_extras));
    /// missing blocks are treated as all-zero.
    pub fn accumulate_denominator(&self, blocks: &[Vec<f64>], denominator: &mut [f64]) {
        for (family, block) in self.families.iter().zip(blocks) {
            family.accumulate_denominator(block, denominator);
        }
    }

    /// `Σ_f Σ_k μ_{f,k} (g_{f,k}(x) − b_{f,k})` — the extra families' share
    /// of the dual value. Zero for an empty set.
    pub fn dual_term(&self, blocks: &[Vec<f64>], sizes: &SizeVector) -> f64 {
        self.families
            .iter()
            .zip(blocks)
            .map(|(family, block)| family.dual_term(block, sizes))
            .sum()
    }

    /// Writes every constraint's violation `g(x) − b` into `out`, flattened
    /// in family order (length [`total_constraints`](Self::total_constraints)).
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `out` has the wrong length.
    pub fn violations_into(&self, sizes: &SizeVector, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.total_constraints());
        let mut offset = 0;
        for family in &self.families {
            for (k, slot) in out[offset..offset + family.len()].iter_mut().enumerate() {
                *slot = family.violation(k, sizes);
            }
            offset += family.len();
        }
    }

    /// The worst violation relative to its bound, over every constraint.
    /// `None` for an empty set.
    pub fn worst_relative_violation(&self, sizes: &SizeVector) -> Option<f64> {
        let mut worst: Option<f64> = None;
        for family in &self.families {
            for k in 0..family.len() {
                let rel = family.relative_violation(k, family.violation(k, sizes));
                worst = Some(worst.map_or(rel, |w: f64| w.max(rel)));
            }
        }
        worst
    }

    /// The worst relative violation over a precomputed flattened violation
    /// slice (as filled by [`violations_into`](Self::violations_into)) —
    /// the allocation-free variant the OGWS loop uses. `None` for an empty
    /// set.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `violations` has the wrong length.
    pub fn worst_relative_from(&self, violations: &[f64]) -> Option<f64> {
        debug_assert_eq!(violations.len(), self.total_constraints());
        let mut worst: Option<f64> = None;
        let mut offset = 0;
        for family in &self.families {
            for k in 0..family.len() {
                let rel = family.relative_violation(k, violations[offset + k]);
                worst = Some(worst.map_or(rel, |w: f64| w.max(rel)));
            }
            offset += family.len();
        }
        worst
    }

    /// `true` when every constraint is met up to `tolerance` (relative to
    /// its bound). An empty set is trivially feasible.
    pub fn feasible_within(&self, sizes: &SizeVector, tolerance: f64) -> bool {
        self.worst_relative_violation(sizes)
            .is_none_or(|worst| worst <= tolerance)
    }

    /// Raises every unachievable bound to the minimum achievable value plus
    /// a small margin, mirroring `ConstraintBounds::clamped_to_feasible`.
    pub fn clamped_to_feasible(mut self, graph: &CircuitGraph) -> Self {
        let lower = graph.minimum_sizes();
        for family in &mut self.families {
            for constraint in &mut family.constraints {
                constraint.clamp_to_feasible(lower.as_slice());
            }
        }
        self
    }

    /// Checks every bound is achievable at the minimum sizes.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InfeasibleBounds`] naming the first violated
    /// constraint.
    pub fn check_feasible(&self, graph: &CircuitGraph) -> Result<(), CoreError> {
        let lower = graph.minimum_sizes();
        for family in &self.families {
            for constraint in &family.constraints {
                let min = constraint.min_value(lower.as_slice());
                if min > constraint.bound {
                    return Err(CoreError::InfeasibleBounds {
                        reason: format!(
                            "{} bound {:.3} of `{}` is below the minimum-size value {:.3}",
                            family.kind(),
                            constraint.bound,
                            constraint.label,
                            min
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Per-family slack summary at `sizes` (see [`FamilySlack`]).
    /// `tolerance` is the relative feasibility tolerance.
    pub fn slacks(&self, sizes: &SizeVector, tolerance: f64) -> Vec<FamilySlack> {
        self.families
            .iter()
            .map(|family| {
                let mut worst = f64::NEG_INFINITY;
                let mut worst_rel = f64::NEG_INFINITY;
                let mut worst_label = String::new();
                for (k, constraint) in family.constraints.iter().enumerate() {
                    let violation = family.violation(k, sizes);
                    let rel = family.relative_violation(k, violation);
                    if rel > worst_rel {
                        worst_rel = rel;
                        worst = violation;
                        worst_label = constraint.label.clone();
                    }
                }
                if family.is_empty() {
                    // No constraints: vacuously satisfied, zero slack.
                    worst = 0.0;
                    worst_rel = 0.0;
                }
                FamilySlack {
                    family: family.name.clone(),
                    kind: family.kind,
                    constraints: family.len(),
                    worst_violation: worst,
                    worst_relative_violation: worst_rel,
                    worst_label,
                    satisfied: worst_rel <= tolerance,
                }
            })
            .collect()
    }
}

/// Configuration-level description of an extra constraint family, relative
/// to the initial circuit. Lowered into absolute [`ScalarFamily`] instances
/// by [`lower_constraint_specs`] once stage 1 has produced the coupling
/// model (the [`Flow::order`](crate::Flow) step).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ConstraintSpec {
    /// Cap each routing channel's linearized crosstalk at `factor` × its
    /// initial value — one constraint per channel with in-channel coupling.
    /// This is channel-*local*: a noisy channel cannot borrow headroom from
    /// a quiet one the way the paper's single global bound allows.
    PerNetCrosstalk {
        /// Cap as a fraction of each channel's initial crosstalk.
        factor: f64,
    },
    /// Cap the component load each driver and gate directly drives (the
    /// input/wire capacitance attached to its output) at `factor` × its
    /// initial value — one constraint per driving node.
    DrivenLoad {
        /// Cap as a fraction of each node's initial driven load.
        factor: f64,
    },
}

impl ConstraintSpec {
    /// Validates the spec's parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when a factor is not positive
    /// and finite.
    pub fn validate(&self) -> Result<(), CoreError> {
        let (name, factor) = match *self {
            ConstraintSpec::PerNetCrosstalk { factor } => ("per_net_crosstalk.factor", factor),
            ConstraintSpec::DrivenLoad { factor } => ("driven_load.factor", factor),
        };
        if !(factor.is_finite() && factor > 0.0) {
            return Err(CoreError::InvalidConfig {
                name,
                reason: format!("must be positive and finite, got {factor}"),
            });
        }
        Ok(())
    }
}

/// Lowers configuration-level [`ConstraintSpec`]s into absolute
/// [`ScalarFamily`] instances for one problem: per-net caps aggregate the
/// channel-local coupling of the stage-1 ordering, driven-load caps read
/// the circuit's fanout structure. Bounds are derived from the value at
/// `initial_sizes` and clamped to what the minimum sizes can achieve, so
/// relative factors stay usable across instances.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] when a spec's parameters are
/// invalid.
pub fn lower_constraint_specs(
    specs: &[ConstraintSpec],
    instance: &ProblemInstance,
    ordering: &WireOrderingOutcome,
    initial_sizes: &SizeVector,
) -> Result<ConstraintSet, CoreError> {
    let graph = &instance.circuit;
    let mut set = ConstraintSet::new();
    for spec in specs {
        spec.validate()?;
        let family = match *spec {
            ConstraintSpec::PerNetCrosstalk { factor } => {
                lower_per_net_crosstalk(factor, instance, ordering, initial_sizes)
            }
            ConstraintSpec::DrivenLoad { factor } => {
                lower_driven_load(factor, graph, initial_sizes)
            }
        };
        set.push(family);
    }
    Ok(set.clamped_to_feasible(graph))
}

/// One constraint per routing channel: the channel's linearized crosstalk
/// (base + size-dependent part, switching-weighted) stays below `factor` ×
/// its initial value.
fn lower_per_net_crosstalk(
    factor: f64,
    instance: &ProblemInstance,
    ordering: &WireOrderingOutcome,
    initial_sizes: &SizeVector,
) -> ScalarFamily {
    let graph = &instance.circuit;
    let coupling = &ordering.coupling;
    let mut constraints = Vec::new();
    for (idx, channel) in instance.channels.iter().enumerate() {
        if channel.len() < 2 {
            continue;
        }
        let sums = coupling.group_linear_sums(channel);
        if sums.is_empty() {
            continue;
        }
        let terms: Vec<(usize, f64)> = sums
            .iter()
            .map(|&(id, a)| {
                (
                    graph
                        .component_index(id)
                        .expect("coupled wires are sizable components"),
                    a,
                )
            })
            .collect();
        let constant = coupling.group_base_capacitance(channel);
        let constraint = ScalarConstraint::new(format!("net-{idx}"), terms, constant, 0.0);
        let initial = constraint.value(initial_sizes);
        let mut constraint = constraint;
        constraint.bound = initial * factor;
        constraints.push(constraint);
    }
    ScalarFamily::new(
        "per-net crosstalk",
        FamilyKind::PerNetCrosstalk,
        constraints,
    )
}

/// One constraint per driver/gate: the component capacitance directly
/// attached to its output (gate input caps plus full wire caps, fringing
/// included as the constant part) stays below `factor` × its initial value.
fn lower_driven_load(
    factor: f64,
    graph: &CircuitGraph,
    initial_sizes: &SizeVector,
) -> ScalarFamily {
    let mut constraints = Vec::new();
    for id in graph.node_ids() {
        if !matches!(graph.node(id).kind, NodeKind::Driver | NodeKind::Gate(_)) {
            continue;
        }
        let mut terms: Vec<(usize, f64)> = Vec::new();
        let mut constant = 0.0;
        for &child in graph.fanout(id) {
            let node = graph.node(child);
            match node.kind {
                NodeKind::Gate(_) | NodeKind::Wire => {
                    if let Some(dense) = graph.component_index(child) {
                        terms.push((dense, node.attrs.unit_capacitance));
                    }
                    constant += node.attrs.fringing_capacitance;
                }
                NodeKind::Sink => constant += graph.node(id).attrs.output_load,
                NodeKind::Driver | NodeKind::Source => {}
            }
        }
        if terms.is_empty() {
            continue;
        }
        let constraint = ScalarConstraint::new(graph.node(id).name.clone(), terms, constant, 0.0);
        let initial = constraint.value(initial_sizes);
        let mut constraint = constraint;
        constraint.bound = initial * factor;
        constraints.push(constraint);
    }
    ScalarFamily::new("driven load", FamilyKind::DrivenLoad, constraints)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncgws_circuit::{CircuitBuilder, GateKind, Technology};

    fn graph() -> CircuitGraph {
        let mut b = CircuitBuilder::new(Technology::dac99());
        let d = b.add_driver("d", 100.0).unwrap();
        let w1 = b.add_wire("w1", 120.0).unwrap();
        let g = b.add_gate("g", GateKind::Inv).unwrap();
        let w2 = b.add_wire("w2", 90.0).unwrap();
        b.connect(d, w1).unwrap();
        b.connect(w1, g).unwrap();
        b.connect(g, w2).unwrap();
        b.connect_output(w2, 5.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn scalar_constraint_evaluates_and_clamps() {
        let g = graph();
        let sizes = g.uniform_sizes(2.0);
        let c = ScalarConstraint::new("t", vec![(0, 1.5), (1, 0.0), (2, -3.0)], 4.0, 10.0);
        // Zero and negative coefficients are dropped.
        assert_eq!(c.terms().count(), 1);
        assert_eq!(c.value(&sizes), 4.0 + 1.5 * 2.0);
        assert_eq!(c.violation(&sizes), 4.0 + 3.0 - 10.0);

        // An unachievable bound is raised to the minimum achievable value.
        let mut tight = ScalarConstraint::new("t2", vec![(0, 1.0)], 0.0, 1e-9);
        let lower = g.minimum_sizes();
        tight.clamp_to_feasible(lower.as_slice());
        assert!(tight.bound >= lower[0]);
        let mut set = ConstraintSet::new();
        set.push(ScalarFamily::new(
            "f",
            FamilyKind::Custom,
            vec![tight.clone()],
        ));
        assert!(set.check_feasible(&g).is_ok());
    }

    #[test]
    fn family_accumulates_weighted_denominator() {
        let f = ScalarFamily::new(
            "f",
            FamilyKind::Custom,
            vec![
                ScalarConstraint::new("a", vec![(0, 2.0), (2, 1.0)], 0.0, 1.0),
                ScalarConstraint::new("b", vec![(0, 0.5)], 0.0, 1.0),
            ],
        );
        let mut denom = vec![0.0; 3];
        f.accumulate_denominator(&[3.0, 4.0], &mut denom);
        assert_eq!(denom, vec![3.0 * 2.0 + 4.0 * 0.5, 0.0, 3.0 * 1.0]);
        // A zero multiplier contributes nothing.
        let mut denom2 = vec![0.0; 3];
        f.accumulate_denominator(&[3.0, 0.0], &mut denom2);
        assert_eq!(denom2, vec![6.0, 0.0, 3.0]);
    }

    #[test]
    fn set_violations_dual_and_slacks() {
        let g = graph();
        let sizes = g.uniform_sizes(1.0);
        let mut set = ConstraintSet::new();
        set.push(ScalarFamily::new(
            "met",
            FamilyKind::Custom,
            vec![ScalarConstraint::new("ok", vec![(0, 1.0)], 0.0, 100.0)],
        ));
        set.push(ScalarFamily::new(
            "violated",
            FamilyKind::Custom,
            vec![ScalarConstraint::new("bad", vec![(1, 2.0)], 1.0, 0.5)],
        ));
        assert_eq!(set.total_constraints(), 2);
        assert!(!set.is_empty());
        assert_eq!(set.block_sizes(), vec![1, 1]);

        let mut v = vec![0.0; 2];
        set.violations_into(&sizes, &mut v);
        assert_eq!(v[0], 1.0 - 100.0);
        assert_eq!(v[1], 1.0 + 2.0 - 0.5);

        let worst = set.worst_relative_violation(&sizes).unwrap();
        assert!((worst - v[1] / 0.5).abs() < 1e-12);
        assert!(!set.feasible_within(&sizes, 1e-3));

        let blocks = vec![vec![2.0], vec![3.0]];
        let dual = set.dual_term(&blocks, &sizes);
        assert!((dual - (2.0 * v[0] + 3.0 * v[1])).abs() < 1e-12);

        let slacks = set.slacks(&sizes, 1e-3);
        assert_eq!(slacks.len(), 2);
        assert!(slacks[0].satisfied);
        assert!(!slacks[1].satisfied);
        assert_eq!(slacks[1].worst_label, "bad");
        assert_eq!(slacks[1].kind, FamilyKind::Custom);

        // Aggregation adds over families.
        let mut denom = vec![0.0; g.num_components()];
        set.accumulate_denominator(&blocks, &mut denom);
        assert_eq!(denom[0], 2.0);
        assert_eq!(denom[1], 6.0);
    }

    #[test]
    fn empty_set_is_trivially_feasible_and_free() {
        let g = graph();
        let sizes = g.uniform_sizes(1.0);
        let set = ConstraintSet::new();
        assert!(set.is_empty());
        assert_eq!(set.worst_relative_violation(&sizes), None);
        assert!(set.feasible_within(&sizes, 0.0));
        assert_eq!(set.dual_term(&[], &sizes), 0.0);
        assert!(set.slacks(&sizes, 1e-3).is_empty());
        assert!(set.check_feasible(&g).is_ok());
    }

    #[test]
    fn spec_validation_rejects_bad_factors() {
        assert!(ConstraintSpec::PerNetCrosstalk { factor: 0.5 }
            .validate()
            .is_ok());
        assert!(ConstraintSpec::PerNetCrosstalk { factor: 0.0 }
            .validate()
            .is_err());
        assert!(ConstraintSpec::DrivenLoad {
            factor: f64::INFINITY
        }
        .validate()
        .is_err());
    }

    #[test]
    fn driven_load_lowering_caps_each_driving_node() {
        let g = graph();
        let initial = g.maximum_sizes();
        let family = lower_driven_load(0.5, &g, &initial);
        // The driver drives w1, the gate drives w2: two constraints.
        assert_eq!(family.len(), 2);
        for constraint in family.constraints() {
            let init = constraint.value(&initial);
            assert!((constraint.bound() - init * 0.5).abs() < 1e-12);
            assert!(constraint.terms().count() >= 1);
        }
        // The caps bind at the initial sizes (factor < 1) and relax as the
        // driven components shrink.
        let min = g.minimum_sizes();
        for (k, _) in family.constraints().iter().enumerate() {
            assert!(
                family.violation(k, &initial) > 0.0,
                "a 0.5 cap must be violated at the initial sizes"
            );
            assert!(family.violation(k, &min) < family.violation(k, &initial));
        }
    }
}
