//! TILOS-style greedy sensitivity sizing (independent cross-check baseline).

use ncgws_circuit::{CircuitGraph, SizeVector};
use ncgws_coupling::CouplingSet;
use serde::{Deserialize, Serialize};

use crate::engine::SizingEngine;

/// Result of the greedy sizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GreedyOutcome {
    /// The sizing found.
    pub sizes: SizeVector,
    /// Critical-path delay of that sizing (internal units, with coupling load).
    pub delay: f64,
    /// Whether the delay bound was met.
    pub feasible: bool,
    /// Number of upsizing moves performed.
    pub moves: usize,
}

/// Greedy delay-bounded sizing: start at the minimum sizes and repeatedly
/// upsize the critical-path component with the best delay-reduction per area
/// increase until the bound is met, no move helps, or `max_moves` is reached.
///
/// The coupling set contributes load (and therefore delay) but is not
/// constrained — like most industrial TILOS descendants, the heuristic is
/// noise-oblivious. Compared to the Lagrangian engine it needs a full timing
/// evaluation per candidate move, so it is polynomially slower; the ablation
/// bench quantifies that.
pub fn greedy_delay_sizing(
    graph: &CircuitGraph,
    coupling: &CouplingSet,
    delay_bound: f64,
    max_moves: usize,
) -> GreedyOutcome {
    let upsize_factor = 1.3_f64;
    let mut engine = SizingEngine::new(graph, coupling);
    let mut sizes = graph.minimum_sizes();
    let mut moves = 0usize;

    // Reused buffers: candidate sizing and the current critical path (copied
    // out of the engine workspace so trial evaluations can overwrite it).
    let mut trial = graph.minimum_sizes();
    let mut critical_path = Vec::with_capacity(graph.num_nodes());

    let mut delay = {
        let view = engine.timing(&sizes);
        critical_path.clear();
        critical_path.extend_from_slice(view.critical_path);
        view.critical_path_delay
    };

    while delay > delay_bound && moves < max_moves {
        let mut best: Option<(f64, usize, f64)> = None; // (score, dense index, new size)
        for &node in &critical_path {
            let Some(dense) = graph.component_index(node) else {
                continue;
            };
            let attrs = &graph.node(node).attrs;
            let current = sizes[dense];
            if current >= attrs.upper_bound - 1e-12 {
                continue;
            }
            let candidate = (current * upsize_factor).min(attrs.upper_bound);
            trial.copy_from(&sizes);
            trial[dense] = candidate;
            let trial_delay = engine.timing(&trial).critical_path_delay;
            let delay_gain = delay - trial_delay;
            if delay_gain <= 0.0 {
                continue;
            }
            let area_cost = attrs.area_coefficient * (candidate - current);
            let score = delay_gain / area_cost.max(1e-12);
            if best.as_ref().is_none_or(|(s, _, _)| score > *s) {
                best = Some((score, dense, candidate));
            }
        }
        match best {
            Some((_, dense, candidate)) => {
                sizes[dense] = candidate;
                moves += 1;
                let view = engine.timing(&sizes);
                delay = view.critical_path_delay;
                critical_path.clear();
                critical_path.extend_from_slice(view.critical_path);
            }
            None => break,
        }
    }

    GreedyOutcome {
        sizes,
        delay,
        feasible: delay <= delay_bound,
        moves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncgws_circuit::{CircuitBuilder, GateKind, Technology};

    fn chain() -> CircuitGraph {
        let mut b = CircuitBuilder::new(Technology::dac99());
        let d = b.add_driver("d", 150.0).unwrap();
        let w1 = b.add_wire("w1", 300.0).unwrap();
        let g1 = b.add_gate("g1", GateKind::Inv).unwrap();
        let w2 = b.add_wire("w2", 300.0).unwrap();
        let g2 = b.add_gate("g2", GateKind::Buf).unwrap();
        let w3 = b.add_wire("w3", 200.0).unwrap();
        b.connect(d, w1).unwrap();
        b.connect(w1, g1).unwrap();
        b.connect(g1, w2).unwrap();
        b.connect(w2, g2).unwrap();
        b.connect(g2, w3).unwrap();
        b.connect_output(w3, 10.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn meets_an_achievable_bound() {
        let graph = chain();
        let coupling = CouplingSet::empty(&graph);
        // Delay at minimum sizes is the starting point; ask for 30% better.
        let start = greedy_delay_sizing(&graph, &coupling, f64::MAX, 0).delay;
        let target = start * 0.7;
        let outcome = greedy_delay_sizing(&graph, &coupling, target, 500);
        assert!(
            outcome.feasible,
            "delay {} vs target {target}",
            outcome.delay
        );
        assert!(outcome.moves > 0);
        assert!(graph.check_sizes(&outcome.sizes).is_ok());
    }

    #[test]
    fn zero_moves_when_already_feasible() {
        let graph = chain();
        let coupling = CouplingSet::empty(&graph);
        let outcome = greedy_delay_sizing(&graph, &coupling, f64::MAX, 100);
        assert!(outcome.feasible);
        assert_eq!(outcome.moves, 0);
        // Everything stays at the lower bound.
        for (x, id) in outcome.sizes.iter().zip(graph.component_ids()) {
            assert!((x - graph.node(id).attrs.lower_bound).abs() < 1e-12);
        }
    }

    #[test]
    fn gives_up_gracefully_on_unachievable_bounds() {
        let graph = chain();
        let coupling = CouplingSet::empty(&graph);
        let outcome = greedy_delay_sizing(&graph, &coupling, 1e-6, 200);
        assert!(!outcome.feasible);
        // It must terminate (either by exhausting moves or running out of
        // helpful upsizes) without panicking.
        assert!(outcome.moves <= 200);
    }

    #[test]
    fn respects_move_budget() {
        let graph = chain();
        let coupling = CouplingSet::empty(&graph);
        let start = greedy_delay_sizing(&graph, &coupling, f64::MAX, 0).delay;
        let outcome = greedy_delay_sizing(&graph, &coupling, start * 0.1, 3);
        assert!(outcome.moves <= 3);
    }
}
