//! Delay/area-only Lagrangian sizing (noise- and power-oblivious baseline).

use ncgws_circuit::SizeVector;
use ncgws_coupling::CouplingSet;
use ncgws_netlist::ProblemInstance;
use serde::{Deserialize, Serialize};

use crate::coupling_build::build_coupling;
use crate::engine::SizingEngine;
use crate::error::CoreError;
use crate::metrics::CircuitMetrics;
use crate::ogws::OgwsSolver;
use crate::problem::{ConstraintBounds, OptimizerConfig, SizingProblem};

/// Result of a baseline run, with metrics evaluated against the *real*
/// coupling model so it is directly comparable to the full optimizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineOutcome {
    /// The sizing the baseline chose.
    pub sizes: SizeVector,
    /// Metrics of that sizing under the real coupling model.
    pub metrics: CircuitMetrics,
    /// Metrics before sizing (same initial point as the full optimizer).
    pub initial_metrics: CircuitMetrics,
    /// Whether the baseline met its own delay bound.
    pub feasible: bool,
    /// Number of outer iterations used.
    pub iterations: usize,
}

/// Runs area-minimization subject to **only** the delay bound, ignoring
/// coupling both as a constraint and as a load — the formulation of the
/// prior work the paper extends. The returned metrics are evaluated with the
/// instance's real coupling so the baseline's (typically worse) noise is
/// visible.
///
/// # Errors
///
/// Propagates configuration and coupling-model errors.
pub fn lr_delay_area(
    instance: &ProblemInstance,
    config: &OptimizerConfig,
) -> Result<BaselineOutcome, CoreError> {
    config.validate()?;
    let graph = &instance.circuit;

    // The real coupling model, used only for reporting and for deriving the
    // same delay bound the full optimizer would use.
    let ordering = build_coupling(instance, config.ordering, config.effective_coupling)?;
    let real_coupling = &ordering.coupling;
    let mut real_engine = SizingEngine::new(graph, real_coupling);
    let initial_sizes = config.initial_sizes(graph);
    let initial_metrics = CircuitMetrics::evaluate_with(&mut real_engine, &initial_sizes);

    // The baseline's own view of the world: no coupling, no power/noise bounds.
    let empty = CouplingSet::empty(graph);
    let bounds = ConstraintBounds {
        delay: initial_metrics.delay_internal * config.delay_bound_factor,
        total_capacitance: f64::MAX / 4.0,
        crosstalk: f64::MAX / 4.0,
    };
    let problem = SizingProblem::new(graph, &empty, bounds)?;
    let ogws = OgwsSolver::new(config.clone()).solve(&problem);

    let metrics = CircuitMetrics::evaluate_with(&mut real_engine, &ogws.sizes);
    let iterations = ogws.num_iterations();
    Ok(BaselineOutcome {
        sizes: ogws.sizes,
        metrics,
        initial_metrics,
        feasible: ogws.feasible,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Optimizer;
    use ncgws_netlist::{CircuitSpec, SyntheticGenerator};

    fn instance() -> ProblemInstance {
        SyntheticGenerator::new(
            CircuitSpec::new("baseline", 50, 110)
                .with_seed(23)
                .with_num_patterns(32),
        )
        .generate()
        .unwrap()
    }

    fn quick_config() -> OptimizerConfig {
        OptimizerConfig {
            max_iterations: 40,
            max_lrs_sweeps: 20,
            ..OptimizerConfig::default()
        }
    }

    #[test]
    fn baseline_meets_its_delay_bound_and_improves_area() {
        let inst = instance();
        let outcome = lr_delay_area(&inst, &quick_config()).unwrap();
        assert!(outcome.feasible);
        assert!(outcome.metrics.area_um2 < outcome.initial_metrics.area_um2);
        assert!(outcome.iterations >= 1);
    }

    #[test]
    fn noise_constrained_optimizer_never_has_more_noise_than_the_baseline() {
        let inst = instance();
        let config = quick_config();
        let baseline = lr_delay_area(&inst, &config).unwrap();
        let full = Optimizer::new(config).run(&inst).unwrap();
        assert!(full.report.feasible);
        // The full optimizer enforces a crosstalk bound at ~11% of the initial
        // noise; the baseline has no such bound, so it can only do worse or equal.
        assert!(
            full.report.final_metrics.noise_pf <= baseline.metrics.noise_pf + 1e-9,
            "full {} vs baseline {}",
            full.report.final_metrics.noise_pf,
            baseline.metrics.noise_pf
        );
    }
}
