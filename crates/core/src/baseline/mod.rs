//! Baseline sizers used for comparisons and ablation studies.
//!
//! * [`lr_delay_area()`] — Lagrangian-relaxation sizing with **only** the delay
//!   constraint (the Chen–Chu–Wong ICCAD'98 style formulation the paper
//!   builds on). It is noise- and power-oblivious, so comparing it against
//!   the full optimizer isolates what the noise/power constraints cost and
//!   buy.
//! * [`greedy`] — a TILOS-style sensitivity heuristic: repeatedly upsize the
//!   critical-path component with the best delay-per-area payoff until the
//!   delay bound is met. It shares no machinery with the Lagrangian engine,
//!   which makes it a useful independent cross-check.

pub mod greedy;
pub mod lr_delay_area;

pub use greedy::{greedy_delay_sizing, GreedyOutcome};
pub use lr_delay_area::{lr_delay_area, BaselineOutcome};
