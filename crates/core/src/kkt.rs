//! Verification of the optimality conditions of Theorem 6.
//!
//! These checks are not needed by the solver itself (it maintains the
//! conditions by construction), but they give tests, examples and the
//! ablation benches a direct way to certify a solution:
//!
//! 1. flow conservation of the edge multipliers (Theorem 3),
//! 2. complementary slackness of every relaxed constraint,
//! 3. primal feasibility,
//! 4. non-negativity of the multipliers,
//! 5. the closed-form sizing equation of Theorem 5 (checked inside
//!    [`LrsSolver`](crate::LrsSolver) tests, where the required intermediate
//!    quantities are available).

use ncgws_circuit::{SizeVector, TimingAnalysis};
use serde::{Deserialize, Serialize};

use crate::constraints::ConstraintFamily;
use crate::lagrangian::Multipliers;
use crate::problem::SizingProblem;
use crate::projection::flow_conservation_residual;

/// The residuals of the Theorem 6 conditions at a candidate solution.
/// All residuals are non-negative; zero (up to numerical noise) certifies the
/// corresponding condition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KktResiduals {
    /// Largest flow-conservation violation over all nodes.
    pub flow_conservation: f64,
    /// Largest relative primal constraint violation (delay, power,
    /// crosstalk, and every extra constraint family).
    pub primal_feasibility: f64,
    /// Largest relative complementary-slackness product for the scalar
    /// multipliers `β`, `γ`, the extra-family multipliers `μ` and the sink
    /// (delay-bound) multipliers.
    pub complementary_slackness: f64,
    /// Most negative multiplier (0 when all are non-negative).
    pub negativity: f64,
}

impl KktResiduals {
    /// Returns `true` when every residual is below `tolerance`.
    pub fn is_satisfied(&self, tolerance: f64) -> bool {
        self.flow_conservation <= tolerance
            && self.primal_feasibility <= tolerance
            && self.complementary_slackness <= tolerance
            && self.negativity <= tolerance
    }
}

/// Evaluates the KKT residuals of a `(sizes, multipliers)` pair.
pub fn kkt_residuals(
    problem: &SizingProblem<'_>,
    sizes: &SizeVector,
    multipliers: &Multipliers,
) -> KktResiduals {
    let graph = problem.graph;
    let coupling = problem.coupling;
    let bounds = problem.bounds;

    let flow = flow_conservation_residual(graph, multipliers);

    let extra = coupling.delay_load_per_node(graph, sizes);
    let timing = TimingAnalysis::run(graph, sizes, Some(&extra));
    let total_cap = ncgws_circuit::total_capacitance(graph, sizes);
    let crosstalk_lhs = coupling.crosstalk_lhs(graph, sizes);

    let delay_violation = (timing.critical_path_delay - bounds.delay) / bounds.delay.max(1e-12);
    let power_violation =
        (total_cap - bounds.total_capacitance) / bounds.total_capacitance.max(1e-12);
    let reduced = problem.reduced_crosstalk_bound();
    let crosstalk_violation = (crosstalk_lhs - reduced) / reduced.abs().max(1e-12);
    let extra_violation = problem
        .extras
        .worst_relative_violation(sizes)
        .unwrap_or(f64::NEG_INFINITY);
    let primal = delay_violation
        .max(power_violation)
        .max(crosstalk_violation)
        .max(extra_violation)
        .max(0.0);

    // Complementary slackness: multiplier × slack must vanish. Normalize by
    // the multiplier scale so the residual is dimensionless.
    let power_cs = multipliers.beta * power_violation.abs();
    let crosstalk_cs = multipliers.gamma * crosstalk_violation.abs();
    // Extra families: μ_k × relative slack per constraint. Blocks may be
    // absent (legacy multipliers on a constrained problem count as zero).
    let mut extra_cs = 0.0_f64;
    let mut max_extra_mu = 0.0_f64;
    for (family, block) in problem
        .extras
        .families()
        .iter()
        .zip(multipliers.extra_blocks())
    {
        for (k, &mu) in block.iter().enumerate() {
            let rel = family.relative_violation(k, family.violation(k, sizes));
            extra_cs = extra_cs.max(mu * rel.abs());
            max_extra_mu = max_extra_mu.max(mu);
        }
    }
    let sink_cs = {
        let sink = graph.sink();
        graph
            .fanin(sink)
            .iter()
            .enumerate()
            .map(|(slot, &j)| {
                let slack = (bounds.delay - timing.arrival.of(j)).abs() / bounds.delay.max(1e-12);
                multipliers.edge(sink, slot) * slack
            })
            .fold(0.0_f64, f64::max)
    };
    let scale = multipliers
        .beta
        .max(multipliers.gamma)
        .max(max_extra_mu)
        .max(1.0);
    let complementary = power_cs.max(crosstalk_cs).max(sink_cs).max(extra_cs) / scale;

    let mut most_negative: f64 = 0.0;
    for id in graph.node_ids() {
        for &value in multipliers.edges_of(id) {
            most_negative = most_negative.min(value);
        }
    }
    most_negative = most_negative.min(multipliers.beta).min(multipliers.gamma);
    for block in multipliers.extra_blocks() {
        for &value in block {
            most_negative = most_negative.min(value);
        }
    }

    KktResiduals {
        flow_conservation: flow,
        primal_feasibility: primal,
        complementary_slackness: complementary,
        negativity: (-most_negative).max(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ConstraintBounds;
    use ncgws_circuit::{CircuitBuilder, GateKind, Technology};
    use ncgws_coupling::CouplingSet;

    fn setup() -> (ncgws_circuit::CircuitGraph, CouplingSet) {
        let mut b = CircuitBuilder::new(Technology::dac99());
        let d = b.add_driver("d", 100.0).unwrap();
        let w1 = b.add_wire("w1", 100.0).unwrap();
        let g = b.add_gate("g", GateKind::Inv).unwrap();
        let w2 = b.add_wire("w2", 100.0).unwrap();
        b.connect(d, w1).unwrap();
        b.connect(w1, g).unwrap();
        b.connect(g, w2).unwrap();
        b.connect_output(w2, 5.0).unwrap();
        let graph = b.build().unwrap();
        let coupling = CouplingSet::empty(&graph);
        (graph, coupling)
    }

    #[test]
    fn zero_multipliers_with_loose_bounds_satisfy_kkt() {
        let (graph, coupling) = setup();
        let bounds = ConstraintBounds {
            delay: 1e12,
            total_capacitance: 1e12,
            crosstalk: 1.0,
        };
        let problem = SizingProblem::new(&graph, &coupling, bounds).unwrap();
        let sizes = graph.minimum_sizes();
        let multipliers = Multipliers::uniform(&graph, 0.0, 0.0);
        let residuals = kkt_residuals(&problem, &sizes, &multipliers);
        assert!(residuals.is_satisfied(1e-9), "{residuals:?}");
    }

    #[test]
    fn infeasible_sizing_is_flagged() {
        let (graph, coupling) = setup();
        // Delay bound far below what minimum sizes achieve.
        let bounds = ConstraintBounds {
            delay: 1e-3,
            total_capacitance: 1e12,
            crosstalk: 1.0,
        };
        let problem = SizingProblem::new(&graph, &coupling, bounds).unwrap();
        let sizes = graph.minimum_sizes();
        let multipliers = Multipliers::uniform(&graph, 0.0, 0.0);
        let residuals = kkt_residuals(&problem, &sizes, &multipliers);
        assert!(residuals.primal_feasibility > 0.0);
        assert!(!residuals.is_satisfied(1e-9));
    }

    #[test]
    fn violated_slackness_is_flagged() {
        let (graph, coupling) = setup();
        let bounds = ConstraintBounds {
            delay: 1e12,
            total_capacitance: 1e12,
            crosstalk: 1.0,
        };
        let problem = SizingProblem::new(&graph, &coupling, bounds).unwrap();
        let sizes = graph.minimum_sizes();
        // β large while the power constraint has huge slack.
        let mut multipliers = Multipliers::uniform(&graph, 0.0, 0.0);
        multipliers.beta = 10.0;
        let residuals = kkt_residuals(&problem, &sizes, &multipliers);
        assert!(residuals.complementary_slackness > 1e-3);
    }

    #[test]
    fn negative_multipliers_are_flagged() {
        let (graph, coupling) = setup();
        let bounds = ConstraintBounds {
            delay: 1e12,
            total_capacitance: 1e12,
            crosstalk: 1.0,
        };
        let problem = SizingProblem::new(&graph, &coupling, bounds).unwrap();
        let sizes = graph.minimum_sizes();
        let mut multipliers = Multipliers::uniform(&graph, 0.0, 0.0);
        let w1 = graph.node_by_name("w1").unwrap();
        *multipliers.edge_mut(w1, 0) = -0.5;
        let residuals = kkt_residuals(&problem, &sizes, &multipliers);
        assert!((residuals.negativity - 0.5).abs() < 1e-12);
    }
}
