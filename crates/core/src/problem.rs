//! Problem formulation: constraint bounds and optimizer configuration.

use ncgws_circuit::{CircuitGraph, SizeVector};
use ncgws_coupling::CouplingSet;
use serde::{Deserialize, Serialize};

use crate::constraints::{ConstraintSet, ConstraintSpec};
use crate::coupling_build::OrderingStrategy;
use crate::error::CoreError;
use crate::metrics::CircuitMetrics;
use crate::par::ParallelPolicy;
use crate::schedule::{AdaptiveSchedule, SolveStrategy};
use crate::step::StepSchedule;
use crate::units;

/// Absolute constraint bounds of problem `PP`.
///
/// All three are in the *internal* units of the engine: delay in Ω·fF,
/// power as total switched capacitance in fF (the constraint
/// `Σ c_i ≤ P' = P_B / (V²·f)`), crosstalk as total coupling capacitance in
/// fF. The reporting layer converts to ps / mW / pF.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConstraintBounds {
    /// Circuit delay bound `A₀` (Ω·fF).
    pub delay: f64,
    /// Total-capacitance (power) bound `P'` (fF).
    pub total_capacitance: f64,
    /// Total-crosstalk bound `X_B` (fF), including the size-independent part.
    pub crosstalk: f64,
}

impl ConstraintBounds {
    /// Derives absolute bounds from the metrics of the initial sizing and the
    /// relative factors of an [`OptimizerConfig`].
    ///
    /// The crosstalk bound is derived from the **exact** initial coupling
    /// (the quantity the paper's noise column reports); the sizing engine
    /// then enforces it on the linearized posynomial form.
    pub fn from_initial(initial: &CircuitMetrics, config: &OptimizerConfig) -> Self {
        ConstraintBounds {
            delay: initial.delay_internal * config.delay_bound_factor,
            total_capacitance: initial.total_capacitance_ff * config.power_bound_factor,
            crosstalk: units::ff_from_pf(initial.noise_pf) * config.crosstalk_bound_factor,
        }
    }

    /// Raises any bound that is unachievable even at the minimum sizes up to
    /// the achievable minimum (plus a small margin). This keeps relative
    /// bound factors usable across instances whose irreducible coupling or
    /// fringing capacitance would otherwise make them infeasible.
    pub fn clamped_to_feasible(mut self, graph: &CircuitGraph, coupling: &CouplingSet) -> Self {
        const MARGIN: f64 = 1.0 + 1e-6;
        let min_sizes = graph.minimum_sizes();
        let min_cap = ncgws_circuit::total_capacitance(graph, &min_sizes);
        if self.total_capacitance < min_cap * MARGIN {
            self.total_capacitance = min_cap * MARGIN;
        }
        let min_crosstalk = coupling.total_crosstalk(graph, &min_sizes);
        if self.crosstalk < min_crosstalk * MARGIN {
            self.crosstalk = min_crosstalk * MARGIN;
        }
        self
    }

    /// Checks the bounds are achievable at all: the crosstalk bound must
    /// exceed the size-independent coupling plus the minimum-size coupling,
    /// and the power bound must exceed the capacitance at minimum sizes.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InfeasibleBounds`] naming the violated bound.
    pub fn check_feasible(
        &self,
        graph: &CircuitGraph,
        coupling: &CouplingSet,
    ) -> Result<(), CoreError> {
        let min_sizes = graph.minimum_sizes();
        let min_cap = ncgws_circuit::total_capacitance(graph, &min_sizes);
        if min_cap > self.total_capacitance {
            return Err(CoreError::InfeasibleBounds {
                reason: format!(
                    "power bound {:.3} fF is below the minimum-size capacitance {:.3} fF",
                    self.total_capacitance, min_cap
                ),
            });
        }
        let min_crosstalk = coupling.total_crosstalk(graph, &min_sizes);
        if min_crosstalk > self.crosstalk {
            return Err(CoreError::InfeasibleBounds {
                reason: format!(
                    "crosstalk bound {:.3} fF is below the minimum-size crosstalk {:.3} fF",
                    self.crosstalk, min_crosstalk
                ),
            });
        }
        if self.delay <= 0.0 {
            return Err(CoreError::InfeasibleBounds {
                reason: "delay bound must be positive".to_string(),
            });
        }
        Ok(())
    }
}

/// Configuration of the two-stage optimizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizerConfig {
    /// Initial component size; `None` starts every component at its upper
    /// bound (the paper's "Init" column corresponds to the unsized circuit,
    /// which we model as maximum sizes — see EXPERIMENTS.md).
    pub initial_size: Option<f64>,
    /// Delay bound as a multiple of the initial circuit delay.
    pub delay_bound_factor: f64,
    /// Power bound as a multiple of the initial total capacitance.
    pub power_bound_factor: f64,
    /// Crosstalk bound as a multiple of the initial total crosstalk.
    pub crosstalk_bound_factor: f64,
    /// Explicit absolute bounds; when set they override the factors above.
    pub absolute_bounds: Option<ConstraintBounds>,
    /// Maximum number of OGWS (outer, subgradient) iterations.
    pub max_iterations: usize,
    /// Relative duality-gap stopping threshold (the paper uses 1 %).
    pub gap_tolerance: f64,
    /// Step-size schedule `ρ_k` for the subgradient updates.
    pub step_schedule: StepSchedule,
    /// Maximum number of inner LRS sweeps per outer iteration.
    pub max_lrs_sweeps: usize,
    /// Convergence threshold for an LRS sweep (max relative size change).
    pub lrs_tolerance: f64,
    /// Which wire-ordering strategy stage 1 uses.
    pub ordering: OrderingStrategy,
    /// Weight coupling by switching similarity (effective crosstalk) instead
    /// of pure physical coupling in the constraint and delay model.
    pub effective_coupling: bool,
    /// Initial value of every edge multiplier `λ_ji`.
    pub initial_edge_multiplier: f64,
    /// Initial value of the power multiplier `β`, crosstalk multiplier `γ`
    /// and every extra-family multiplier `μ`.
    pub initial_scalar_multiplier: f64,
    /// Extra constraint families beyond the paper's three global bounds,
    /// lowered into absolute [`ConstraintSet`]s during
    /// [`Flow::order`](crate::Flow) (empty by default — the paper's
    /// formulation).
    pub extra_constraints: Vec<ConstraintSpec>,
    /// How the OGWS inner loop schedules its LRS solves:
    /// [`SolveStrategy::Exact`] (the default) is the paper's Figure-8
    /// schedule, bitwise-pinned to the reference;
    /// [`SolveStrategy::Adaptive`] enables warm-started solves, active-set
    /// sweeps and sparse incremental evaluation (see [`crate::schedule`]).
    pub solve_strategy: SolveStrategy,
    /// How the stage-2 inner loop distributes its traversals across threads
    /// (see [`crate::par`]): [`ParallelPolicy::Sequential`] (the default)
    /// keeps the single-threaded traversals;
    /// [`ParallelPolicy::Level`] runs them level-parallel over a fixed
    /// chunk grid, with outcomes **bitwise identical for every thread
    /// count** and the exact solve strategy still bitwise-pinned to
    /// [`crate::reference`]. Takes effect with the `parallel` feature;
    /// without it the same deterministic grid runs on one thread.
    pub parallel: ParallelPolicy,
}

impl OptimizerConfig {
    /// Starts a validating builder seeded with the default configuration.
    ///
    /// [`OptimizerConfigBuilder::build`] validates the assembled
    /// configuration, so a configuration obtained through the builder never
    /// fails validation later in the pipeline.
    pub fn builder() -> OptimizerConfigBuilder {
        OptimizerConfigBuilder::new()
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] naming the first invalid field.
    pub fn validate(&self) -> Result<(), CoreError> {
        let positive = [
            ("delay_bound_factor", self.delay_bound_factor),
            ("power_bound_factor", self.power_bound_factor),
            ("crosstalk_bound_factor", self.crosstalk_bound_factor),
            ("gap_tolerance", self.gap_tolerance),
            ("lrs_tolerance", self.lrs_tolerance),
        ];
        for (name, value) in positive {
            if !(value.is_finite() && value > 0.0) {
                return Err(CoreError::InvalidConfig {
                    name,
                    reason: format!("must be positive and finite, got {value}"),
                });
            }
        }
        if self.max_iterations == 0 {
            return Err(CoreError::InvalidConfig {
                name: "max_iterations",
                reason: "must be at least 1".to_string(),
            });
        }
        if self.max_lrs_sweeps == 0 {
            return Err(CoreError::InvalidConfig {
                name: "max_lrs_sweeps",
                reason: "must be at least 1".to_string(),
            });
        }
        if let Some(size) = self.initial_size {
            if !(size.is_finite() && size > 0.0) {
                return Err(CoreError::InvalidConfig {
                    name: "initial_size",
                    reason: format!("must be positive and finite, got {size}"),
                });
            }
        }
        if self.initial_edge_multiplier < 0.0 || self.initial_scalar_multiplier < 0.0 {
            return Err(CoreError::InvalidConfig {
                name: "initial multipliers",
                reason: "must be non-negative".to_string(),
            });
        }
        for spec in &self.extra_constraints {
            spec.validate()?;
        }
        self.solve_strategy.validate()?;
        self.parallel.validate()?;
        Ok(())
    }

    /// The initial size vector for a circuit under this configuration.
    pub fn initial_sizes(&self, graph: &CircuitGraph) -> SizeVector {
        match self.initial_size {
            Some(size) => graph.uniform_sizes(size),
            None => graph.maximum_sizes(),
        }
    }
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            initial_size: None,
            delay_bound_factor: 1.0,
            power_bound_factor: 0.13,
            crosstalk_bound_factor: 0.115,
            absolute_bounds: None,
            max_iterations: 100,
            gap_tolerance: 0.01,
            step_schedule: StepSchedule::default(),
            max_lrs_sweeps: 50,
            lrs_tolerance: 1e-6,
            ordering: OrderingStrategy::Woss,
            effective_coupling: false,
            initial_edge_multiplier: 1.0,
            initial_scalar_multiplier: 1.0,
            extra_constraints: Vec::new(),
            solve_strategy: SolveStrategy::Exact,
            parallel: ParallelPolicy::Sequential,
        }
    }
}

/// Validating builder for [`OptimizerConfig`].
///
/// Starts from the default configuration; every setter overrides one field,
/// and [`build`](Self::build) validates the whole assembly so invalid
/// configurations are caught where they are written rather than deep inside
/// a run.
///
/// ```
/// use ncgws_core::{OptimizerConfig, OrderingStrategy};
///
/// let config = OptimizerConfig::builder()
///     .max_iterations(150)
///     .gap_tolerance(0.01)
///     .ordering(OrderingStrategy::Woss)
///     .build()
///     .expect("valid configuration");
/// assert_eq!(config.max_iterations, 150);
///
/// assert!(OptimizerConfig::builder().max_iterations(0).build().is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct OptimizerConfigBuilder {
    config: OptimizerConfig,
}

impl OptimizerConfigBuilder {
    /// A builder seeded with [`OptimizerConfig::default`].
    pub fn new() -> Self {
        OptimizerConfigBuilder::default()
    }

    /// Uniform initial component size (`None`, the default, starts at the
    /// upper bounds).
    pub fn initial_size(mut self, size: f64) -> Self {
        self.config.initial_size = Some(size);
        self
    }

    /// Delay bound as a multiple of the initial circuit delay.
    pub fn delay_bound_factor(mut self, factor: f64) -> Self {
        self.config.delay_bound_factor = factor;
        self
    }

    /// Power bound as a multiple of the initial total capacitance.
    pub fn power_bound_factor(mut self, factor: f64) -> Self {
        self.config.power_bound_factor = factor;
        self
    }

    /// Crosstalk bound as a multiple of the initial total crosstalk.
    pub fn crosstalk_bound_factor(mut self, factor: f64) -> Self {
        self.config.crosstalk_bound_factor = factor;
        self
    }

    /// Explicit absolute bounds, overriding the relative factors.
    pub fn absolute_bounds(mut self, bounds: ConstraintBounds) -> Self {
        self.config.absolute_bounds = Some(bounds);
        self
    }

    /// Maximum number of OGWS (outer, subgradient) iterations.
    pub fn max_iterations(mut self, iterations: usize) -> Self {
        self.config.max_iterations = iterations;
        self
    }

    /// Relative duality-gap stopping threshold (the paper uses 1 %).
    pub fn gap_tolerance(mut self, tolerance: f64) -> Self {
        self.config.gap_tolerance = tolerance;
        self
    }

    /// Step-size schedule `ρ_k` for the subgradient updates.
    pub fn step_schedule(mut self, schedule: StepSchedule) -> Self {
        self.config.step_schedule = schedule;
        self
    }

    /// Maximum number of inner LRS sweeps per outer iteration.
    pub fn max_lrs_sweeps(mut self, sweeps: usize) -> Self {
        self.config.max_lrs_sweeps = sweeps;
        self
    }

    /// Convergence threshold for an LRS sweep (max relative size change).
    pub fn lrs_tolerance(mut self, tolerance: f64) -> Self {
        self.config.lrs_tolerance = tolerance;
        self
    }

    /// Which wire-ordering strategy stage 1 uses.
    pub fn ordering(mut self, strategy: OrderingStrategy) -> Self {
        self.config.ordering = strategy;
        self
    }

    /// Weight coupling by switching similarity (effective crosstalk).
    pub fn effective_coupling(mut self, enabled: bool) -> Self {
        self.config.effective_coupling = enabled;
        self
    }

    /// Initial value of every edge multiplier `λ_ji`.
    pub fn initial_edge_multiplier(mut self, value: f64) -> Self {
        self.config.initial_edge_multiplier = value;
        self
    }

    /// Initial value of the power, crosstalk and extra-family multipliers
    /// `β`, `γ`, `μ`.
    pub fn initial_scalar_multiplier(mut self, value: f64) -> Self {
        self.config.initial_scalar_multiplier = value;
        self
    }

    /// Adds an extra constraint family (see [`ConstraintSpec`]).
    pub fn extra_constraint(mut self, spec: ConstraintSpec) -> Self {
        self.config.extra_constraints.push(spec);
        self
    }

    /// How the OGWS inner loop schedules its LRS solves (see
    /// [`crate::schedule`]).
    pub fn solve_strategy(mut self, strategy: SolveStrategy) -> Self {
        self.config.solve_strategy = strategy;
        self
    }

    /// Selects the adaptive solve schedule with its default tuning
    /// (shorthand for
    /// `solve_strategy(SolveStrategy::Adaptive(AdaptiveSchedule::default()))`):
    /// warm-started LRS solves, active-set sweeps and sparse incremental
    /// evaluation.
    pub fn adaptive_schedule(self) -> Self {
        self.solve_strategy(SolveStrategy::Adaptive(AdaptiveSchedule::default()))
    }

    /// How the stage-2 inner loop distributes its traversals across threads
    /// (see [`crate::par`] and [`ParallelPolicy`]).
    pub fn parallel(mut self, policy: ParallelPolicy) -> Self {
        self.config.parallel = policy;
        self
    }

    /// Runs the inner loop level-parallel on `threads` workers (`0` = the
    /// machine's available parallelism) — shorthand for
    /// `parallel(ParallelPolicy::threads(threads))`. Outcomes are bitwise
    /// identical for every thread count; see [`crate::par`].
    pub fn threads(self, threads: usize) -> Self {
        self.parallel(ParallelPolicy::threads(threads))
    }

    /// Caps each routing channel's crosstalk at `factor` × its initial value
    /// (shorthand for [`ConstraintSpec::PerNetCrosstalk`]) — a channel-local
    /// bound the paper's single global `X_B` cannot express.
    pub fn per_net_crosstalk_cap(self, factor: f64) -> Self {
        self.extra_constraint(ConstraintSpec::PerNetCrosstalk { factor })
    }

    /// Caps the component load each driver/gate directly drives at `factor`
    /// × its initial value (shorthand for [`ConstraintSpec::DrivenLoad`]).
    pub fn driven_load_cap(self, factor: f64) -> Self {
        self.extra_constraint(ConstraintSpec::DrivenLoad { factor })
    }

    /// Validates the assembled configuration and returns it.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] naming the first invalid field.
    pub fn build(self) -> Result<OptimizerConfig, CoreError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// A fully assembled sizing problem: the circuit, its coupling set, the
/// absolute constraint bounds of the paper's three global constraints, and
/// any extra constraint families. This is what the OGWS solver operates on
/// (the [`Optimizer`](crate::Optimizer) builds it from a
/// [`ProblemInstance`](ncgws_netlist::ProblemInstance)).
#[derive(Debug, Clone)]
pub struct SizingProblem<'a> {
    /// The circuit being sized.
    pub graph: &'a CircuitGraph,
    /// The coupling capacitors between adjacent wires.
    pub coupling: &'a CouplingSet,
    /// Absolute constraint bounds of the three global constraints.
    pub bounds: ConstraintBounds,
    /// Extra constraint families (empty for the paper's formulation).
    pub extras: ConstraintSet,
}

impl<'a> SizingProblem<'a> {
    /// Creates a problem with no extra constraint families (the paper's
    /// three-bound formulation), after checking the bounds are achievable.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InfeasibleBounds`] when no sizing can satisfy the
    /// bounds.
    pub fn new(
        graph: &'a CircuitGraph,
        coupling: &'a CouplingSet,
        bounds: ConstraintBounds,
    ) -> Result<Self, CoreError> {
        SizingProblem::with_constraints(graph, coupling, bounds, ConstraintSet::new())
    }

    /// Creates a problem carrying extra constraint families, after checking
    /// every bound (global and extra) is achievable.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InfeasibleBounds`] when no sizing can satisfy the
    /// bounds.
    pub fn with_constraints(
        graph: &'a CircuitGraph,
        coupling: &'a CouplingSet,
        bounds: ConstraintBounds,
        extras: ConstraintSet,
    ) -> Result<Self, CoreError> {
        bounds.check_feasible(graph, coupling)?;
        extras.check_feasible(graph)?;
        Ok(SizingProblem {
            graph,
            coupling,
            bounds,
            extras,
        })
    }

    /// The reduced crosstalk bound `X' = X_B − Σ ~c_ij` of the linearized
    /// constraint.
    pub fn reduced_crosstalk_bound(&self) -> f64 {
        self.bounds.crosstalk - self.coupling.total_base_capacitance()
    }

    /// The total area of the circuit under `sizes` — the primal objective.
    pub fn area(&self, sizes: &SizeVector) -> f64 {
        ncgws_circuit::total_area(self.graph, sizes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(OptimizerConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let c = OptimizerConfig {
            max_iterations: 0,
            ..OptimizerConfig::default()
        };
        assert!(c.validate().is_err());

        let c = OptimizerConfig {
            gap_tolerance: 0.0,
            ..OptimizerConfig::default()
        };
        assert!(c.validate().is_err());

        let c = OptimizerConfig {
            initial_size: Some(-2.0),
            ..OptimizerConfig::default()
        };
        assert!(c.validate().is_err());

        let c = OptimizerConfig {
            initial_edge_multiplier: -1.0,
            ..OptimizerConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn builder_validates_at_build() {
        let config = OptimizerConfig::builder()
            .max_iterations(25)
            .power_bound_factor(0.2)
            .effective_coupling(true)
            .initial_size(2.0)
            .build()
            .expect("valid configuration");
        assert_eq!(config.max_iterations, 25);
        assert_eq!(config.power_bound_factor, 0.2);
        assert!(config.effective_coupling);
        assert_eq!(config.initial_size, Some(2.0));

        assert!(matches!(
            OptimizerConfig::builder().gap_tolerance(0.0).build(),
            Err(CoreError::InvalidConfig {
                name: "gap_tolerance",
                ..
            })
        ));
        assert!(OptimizerConfig::builder()
            .initial_size(-1.0)
            .build()
            .is_err());
        assert!(OptimizerConfig::builder()
            .max_lrs_sweeps(0)
            .build()
            .is_err());
    }

    #[test]
    fn initial_sizes_default_to_upper_bounds() {
        use ncgws_circuit::{CircuitBuilder, GateKind, Technology};
        let mut b = CircuitBuilder::new(Technology::dac99());
        let d = b.add_driver("d", 100.0).unwrap();
        let w = b.add_wire("w", 10.0).unwrap();
        let g = b.add_gate("g", GateKind::Inv).unwrap();
        let w2 = b.add_wire("w2", 10.0).unwrap();
        b.connect(d, w).unwrap();
        b.connect(w, g).unwrap();
        b.connect(g, w2).unwrap();
        b.connect_output(w2, 2.0).unwrap();
        let graph = b.build().unwrap();

        let config = OptimizerConfig::default();
        let sizes = config.initial_sizes(&graph);
        assert!(sizes.iter().all(|&x| (x - 10.0).abs() < 1e-12));

        let config = OptimizerConfig {
            initial_size: Some(1.0),
            ..OptimizerConfig::default()
        };
        let sizes = config.initial_sizes(&graph);
        assert!(sizes.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }
}
