//! The LRS subroutine (Figure 8): optimal solution of the Lagrangian
//! relaxation subproblem `LRS₂` for fixed multipliers.
//!
//! For fixed `(λ, β, γ)` satisfying the flow-conservation condition, the
//! relaxed problem separates and Theorem 5 gives the optimal size of each
//! component in closed form:
//!
//! ```text
//! x_i* = min(U_i, max(L_i, opt_i)),
//! opt_i = sqrt( λ_i · r̂_i · (C'_i + Σ_{j∈N(i)} ĉ_ij x_j)
//!             / (α_i + (β + R_i) ĉ_i + γ Σ_{j∈N(i)} ĉ_ij) )
//! ```
//!
//! where `C'_i` is the downstream capacitance of `i` stripped of the terms
//! that depend on `x_i`, and `R_i` is the λ-weighted upstream resistance.
//! Because the subproblem is convex (posynomial) with a unique optimum, the
//! greedy coordinate sweep — recompute `C'`, `R`, update every `x_i`, repeat
//! until nothing changes — converges to that optimum.
//!
//! Extra constraint families ([`ConstraintSet`]) keep the closed form: each
//! linear family adds its μ-weighted coefficient `Σ μ_k a_{k,i}` to the
//! denominator, aggregated once per solve into the engine's dense
//! `extra_denom` table so the sweep stays allocation-free
//! ([`LrsSolver::solve_constrained`]).
//!
//! Each sweep is `O(V + E + P)` time (`P` = number of coupling pairs), which
//! is the per-iteration linearity the paper emphasizes.

use ncgws_circuit::{DelayModel, SizeVector};
use serde::{Deserialize, Serialize};

use crate::constraints::ConstraintSet;
use crate::control::RunControl;
use crate::engine::SizingEngine;
use crate::lagrangian::Multipliers;
use crate::problem::SizingProblem;
use crate::schedule::{AdaptiveSchedule, ScheduledStats};

/// Result of one LRS call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LrsOutcome {
    /// The minimizing size vector.
    pub sizes: SizeVector,
    /// Number of coordinate sweeps performed.
    pub sweeps: usize,
    /// Whether the sweep converged below the tolerance (as opposed to hitting
    /// the sweep limit).
    pub converged: bool,
}

/// Convergence statistics of an in-place LRS solve
/// ([`LrsSolver::solve_with`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LrsStats {
    /// Number of coordinate sweeps performed.
    pub sweeps: usize,
    /// Whether the sweep converged below the tolerance.
    pub converged: bool,
}

/// Solver for the Lagrangian relaxation subproblem.
#[derive(Debug, Clone, Copy)]
pub struct LrsSolver {
    max_sweeps: usize,
    tolerance: f64,
}

impl LrsSolver {
    /// Creates a solver with the given sweep limit and convergence tolerance
    /// (maximum relative size change per sweep).
    pub fn new(max_sweeps: usize, tolerance: f64) -> Self {
        LrsSolver {
            max_sweeps: max_sweeps.max(1),
            tolerance: tolerance.max(0.0),
        }
    }

    /// Solves `LRS₂` for the given multipliers.
    ///
    /// Convenience wrapper that builds a fresh [`SizingEngine`] for the
    /// problem and returns an owned outcome. Callers in a loop (OGWS, the
    /// benches) should create the engine once and use
    /// [`solve_with`](Self::solve_with), which performs no heap allocation
    /// at all.
    pub fn solve(&self, problem: &SizingProblem<'_>, multipliers: &Multipliers) -> LrsOutcome {
        let mut engine = SizingEngine::for_problem(problem);
        let mut sizes = problem.graph.minimum_sizes();
        let stats = self.solve_constrained(
            &mut engine,
            &problem.extras,
            multipliers,
            &mut sizes,
            &RunControl::new(),
        );
        LrsOutcome {
            sizes,
            sweeps: stats.sweeps,
            converged: stats.converged,
        }
    }

    /// Solves `LRS₂` in place, writing the minimizer into `sizes` and using
    /// only the engine's pre-sized buffers.
    ///
    /// Follows Figure 8: start at the lower bounds, then repeat
    /// (recompute `C'`, recompute `R`, greedy resize every component) until
    /// no component moves by more than the tolerance. Each sweep is
    /// `O(V + E + P)` with zero heap allocation.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when `sizes` does not match the engine's
    /// circuit.
    pub fn solve_with<M: DelayModel>(
        &self,
        engine: &mut SizingEngine<'_, M>,
        multipliers: &Multipliers,
        sizes: &mut SizeVector,
    ) -> LrsStats {
        self.solve_controlled(engine, multipliers, sizes, &RunControl::new())
    }

    /// [`solve_with`](Self::solve_with) under a [`RunControl`]: between
    /// sweeps the control's cancellation flag and deadline are checked, so a
    /// cancelled run stops within one sweep instead of finishing the solve.
    ///
    /// Solves the paper's original relaxation (no extra families); see
    /// [`solve_constrained`](Self::solve_constrained) for the general form.
    pub fn solve_controlled<M: DelayModel>(
        &self,
        engine: &mut SizingEngine<'_, M>,
        multipliers: &Multipliers,
        sizes: &mut SizeVector,
        control: &RunControl<'_>,
    ) -> LrsStats {
        static EMPTY: ConstraintSet = ConstraintSet::empty_static();
        self.solve_constrained(engine, &EMPTY, multipliers, sizes, control)
    }

    /// The fully general LRS solve: relaxes the paper's three global bounds
    /// **and** the problem's extra [`ConstraintSet`] families, whose
    /// μ-weighted coefficients are aggregated into the engine's dense
    /// denominator table once per solve (so every sweep still performs zero
    /// heap allocation). With an empty set the aggregated table is all
    /// zeros and the sweep arithmetic is bitwise identical to the legacy
    /// path.
    ///
    /// With a default control the checks read two `Option`s per sweep and
    /// never touch the clock, so the sweep sequence is bit-identical to an
    /// uncontrolled solve. An interrupted solve reports `converged: false`
    /// and leaves `sizes` at the last completed sweep's iterate (or the
    /// lower bounds when interrupted before the first sweep).
    pub fn solve_constrained<M: DelayModel>(
        &self,
        engine: &mut SizingEngine<'_, M>,
        extras: &ConstraintSet,
        multipliers: &Multipliers,
        sizes: &mut SizeVector,
        control: &RunControl<'_>,
    ) -> LrsStats {
        // A2 aggregation: node weights λ_i and the extra-family denominator
        // contributions, once per solve.
        engine.load_node_weights(multipliers);
        engine.load_extra_denominator(extras, multipliers);
        // S1: start at the lower bounds.
        engine.reset_to_lower_bounds(sizes);

        let mut sweeps = 0;
        let mut converged = false;
        while sweeps < self.max_sweeps {
            if control.interrupted() {
                break;
            }
            sweeps += 1;
            // S2–S4 in the engine; S5: repeat until no improvement.
            let delta = engine.lrs_sweep(sizes, multipliers.beta, multipliers.gamma);
            if delta <= self.tolerance {
                converged = true;
                break;
            }
        }
        LrsStats { sweeps, converged }
    }

    /// Solves `LRS₂` under an [`AdaptiveSchedule`] (see
    /// [`crate::schedule`]): the solve is warm-started from the incoming
    /// `sizes` instead of the lower bounds (when the schedule says so),
    /// sweeps touch only the active frontier, and between the periodic full
    /// verification sweeps the electrical tables are updated incrementally
    /// along the perturbed subgraph only.
    ///
    /// Under [`ParallelPolicy::Level`](crate::ParallelPolicy) (selected via
    /// [`SizingEngine::set_parallel`]) each fused pass runs level-parallel
    /// over the engine's fixed chunk grid — same per-component arithmetic,
    /// per-chunk reductions merged in fixed chunk order, so the solve's
    /// outcome is bitwise identical for every thread count.
    ///
    /// The engine's schedule state (active/frozen partition, calm streaks,
    /// cache-sync snapshot) persists across the solves of one OGWS run;
    /// reset it with [`SizingEngine::reset_schedule`] at run start. The
    /// convergence measure is the worst relative change over the touched
    /// components, so a solve may converge on a sparse sweep; the
    /// verification cadence bounds how long a frozen component can drift
    /// from its Theorem-5 fixed point before being re-checked.
    pub fn solve_scheduled<M: DelayModel>(
        &self,
        engine: &mut SizingEngine<'_, M>,
        extras: &ConstraintSet,
        multipliers: &Multipliers,
        sizes: &mut SizeVector,
        control: &RunControl<'_>,
        schedule: &AdaptiveSchedule,
    ) -> ScheduledStats {
        // A2 aggregation, exactly as the exact path.
        engine.load_node_weights(multipliers);
        engine.load_extra_denominator(extras, multipliers);
        if !schedule.warm_start {
            // S1 of Figure 8: restart from the lower bounds. The previous
            // iterate's caches and freeze state describe a different point,
            // so drop both.
            engine.reset_to_lower_bounds(sizes);
            engine.reset_schedule();
        }

        let beta = multipliers.beta;
        let gamma = multipliers.gamma;
        let mut sweeps = 0;
        let mut full_sweeps = 0;
        let mut touched_components = 0;
        let mut converged = false;
        while sweeps < self.max_sweeps {
            if control.interrupted() {
                break;
            }
            sweeps += 1;
            let global = engine.bump_global_sweep();
            // The first sweep of every solve is a verification sweep: the
            // multipliers changed, so every component — frozen or not — is
            // re-resized once under the new weights before the active-set
            // pruning applies (a component whose re-check stays calm keeps
            // its streak and refreezes immediately). Later sweeps verify on
            // the periodic cadence, when the frontier empties, or always
            // when the schedule never freezes.
            let verify = sweeps == 1
                || !schedule.active_set
                || global.is_multiple_of(schedule.verify_every)
                || engine.active_set_is_empty();
            if verify {
                full_sweeps += 1;
            }
            // Sweep mode: alternating fused Gauss–Seidel passes — odd
            // sweeps walk forward refreshing the upstream resistances over
            // the freshly resized upstream state, even sweeps walk backward
            // refreshing the downstream capacitances — so each sweep is one
            // traversal and both sides of the closed form stay at most one
            // half-sweep stale. Backends without a fused path fall back to
            // the separate Jacobi-style passes with incremental updates.
            let fused = if !sweeps.is_multiple_of(2) {
                engine.fused_forward_sweep(sizes, beta, gamma, schedule, verify)
            } else {
                engine.fused_backward_sweep(sizes, beta, gamma, schedule, verify)
            };
            let (worst, touched) = match fused {
                Some(result) => result,
                None if verify => engine.verification_sweep(sizes, beta, gamma, schedule),
                None => engine.active_sweep(sizes, beta, gamma, schedule),
            };
            touched_components += touched;
            if worst <= self.tolerance {
                converged = true;
                break;
            }
            // An empty frontier certifies every component is within the
            // freeze tolerance of its per-pass fixed point (each was
            // re-checked under these multipliers — the solve's first pass
            // resizes everything); further sweeps cannot move anything.
            if schedule.active_set && engine.active_set_is_empty() {
                converged = true;
                break;
            }
        }
        // Propagate the last sweep's deltas into the cached tables (cheap —
        // the converged frontier is small) so the caller's follow-up timing
        // evaluation can take its synced fast path instead of rebuilding.
        engine.finish_solve_sync(sizes, schedule);
        ScheduledStats {
            sweeps,
            full_sweeps,
            touched_components,
            frozen_components: engine.frozen_components(),
            converged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ConstraintBounds;
    use ncgws_circuit::{CircuitBuilder, CircuitGraph, GateKind, Technology};
    use ncgws_coupling::{CouplingPair, CouplingSet, WirePairGeometry};

    fn chain() -> CircuitGraph {
        let mut b = CircuitBuilder::new(Technology::dac99());
        let d = b.add_driver("d", 150.0).unwrap();
        let w1 = b.add_wire("w1", 200.0).unwrap();
        let g1 = b.add_gate("g1", GateKind::Inv).unwrap();
        let w2 = b.add_wire("w2", 300.0).unwrap();
        let g2 = b.add_gate("g2", GateKind::Buf).unwrap();
        let w3 = b.add_wire("w3", 150.0).unwrap();
        b.connect(d, w1).unwrap();
        b.connect(w1, g1).unwrap();
        b.connect(g1, w2).unwrap();
        b.connect(w2, g2).unwrap();
        b.connect(g2, w3).unwrap();
        b.connect_output(w3, 10.0).unwrap();
        b.build().unwrap()
    }

    fn loose_bounds() -> ConstraintBounds {
        ConstraintBounds {
            delay: 1e12,
            total_capacitance: 1e12,
            crosstalk: 1e12,
        }
    }

    #[test]
    fn zero_multipliers_give_minimum_sizes() {
        let graph = chain();
        let coupling = CouplingSet::empty(&graph);
        let problem = SizingProblem::new(&graph, &coupling, loose_bounds()).unwrap();
        let multipliers = Multipliers::uniform(&graph, 0.0, 0.0);
        let outcome = LrsSolver::new(50, 1e-9).solve(&problem, &multipliers);
        assert!(outcome.converged);
        for (&x, id) in outcome.sizes.iter().zip(graph.component_ids()) {
            assert!((x - graph.node(id).attrs.lower_bound).abs() < 1e-12);
        }
    }

    #[test]
    fn larger_delay_multipliers_give_larger_sizes() {
        let graph = chain();
        let coupling = CouplingSet::empty(&graph);
        let problem = SizingProblem::new(&graph, &coupling, loose_bounds()).unwrap();
        let solver = LrsSolver::new(100, 1e-9);
        let small = solver.solve(&problem, &Multipliers::uniform(&graph, 1e-4, 0.0));
        let large = solver.solve(&problem, &Multipliers::uniform(&graph, 1e-1, 0.0));
        assert!(large.sizes.sum() > small.sizes.sum());
    }

    #[test]
    fn larger_power_multiplier_gives_smaller_sizes() {
        let graph = chain();
        let coupling = CouplingSet::empty(&graph);
        let problem = SizingProblem::new(&graph, &coupling, loose_bounds()).unwrap();
        let solver = LrsSolver::new(100, 1e-9);
        let mut m = Multipliers::uniform(&graph, 0.05, 0.0);
        let relaxed = solver.solve(&problem, &m);
        m.beta = 50.0;
        let constrained = solver.solve(&problem, &m);
        assert!(constrained.sizes.sum() <= relaxed.sizes.sum() + 1e-12);
    }

    #[test]
    fn crosstalk_multiplier_shrinks_coupled_wires_only() {
        let graph = chain();
        let w1 = graph.node_by_name("w1").unwrap();
        let w2 = graph.node_by_name("w2").unwrap();
        let geom = WirePairGeometry::new(150.0, 12.0, 0.03).unwrap();
        let coupling =
            CouplingSet::new(&graph, vec![CouplingPair::new(w1, w2, geom).unwrap()]).unwrap();
        let problem = SizingProblem::new(&graph, &coupling, loose_bounds()).unwrap();
        let solver = LrsSolver::new(200, 1e-9);
        let mut m = Multipliers::uniform(&graph, 0.05, 0.0);
        let before = solver.solve(&problem, &m);
        m.gamma = 100.0;
        let after = solver.solve(&problem, &m);
        let w1_dense = graph.component_index(w1).unwrap();
        let w2_dense = graph.component_index(w2).unwrap();
        assert!(after.sizes[w1_dense] <= before.sizes[w1_dense] + 1e-12);
        assert!(after.sizes[w2_dense] <= before.sizes[w2_dense] + 1e-12);
        // The uncoupled wire w3 should not shrink because of γ.
        let w3 = graph.node_by_name("w3").unwrap();
        let w3_dense = graph.component_index(w3).unwrap();
        assert!((after.sizes[w3_dense] - before.sizes[w3_dense]).abs() < 1e-6);
    }

    #[test]
    fn solution_satisfies_theorem5_fixed_point() {
        // At convergence every component either sits at a bound or satisfies
        // the closed-form optimality equation.
        let graph = chain();
        let coupling = CouplingSet::empty(&graph);
        let problem = SizingProblem::new(&graph, &coupling, loose_bounds()).unwrap();
        let multipliers = Multipliers::uniform(&graph, 0.02, 0.0);
        let outcome = LrsSolver::new(500, 1e-12).solve(&problem, &multipliers);
        assert!(outcome.converged);
        let sizes = &outcome.sizes;
        let analyzer = ncgws_circuit::ElmoreAnalyzer::new(&graph);
        let lambda = multipliers.node_weights(&graph);
        let caps = analyzer.downstream_caps(sizes, None);
        let upstream = analyzer.weighted_upstream_resistance(sizes, &lambda);
        for id in graph.component_ids() {
            let dense = graph.component_index(id).unwrap();
            let attrs = &graph.node(id).attrs;
            let mut cap_num = caps.charged_of(id);
            if graph.node(id).kind.is_wire() {
                cap_num -= attrs.unit_capacitance * sizes[dense] / 2.0;
            }
            let denom = attrs.area_coefficient + upstream[id.index()] * attrs.unit_capacitance;
            let opt = (lambda[id.index()] * attrs.unit_resistance * cap_num / denom).sqrt();
            let expected = opt.clamp(attrs.lower_bound, attrs.upper_bound);
            assert!(
                (sizes[dense] - expected).abs() / expected < 1e-5,
                "component {id}: {} vs {}",
                sizes[dense],
                expected
            );
        }
    }

    #[test]
    fn respects_size_bounds() {
        let graph = chain();
        let coupling = CouplingSet::empty(&graph);
        let problem = SizingProblem::new(&graph, &coupling, loose_bounds()).unwrap();
        // Heavy timing pressure on the last wire only (tiny weights upstream,
        // so its weighted upstream resistance stays small): its closed-form
        // optimum exceeds the upper bound and must be clamped there.
        let mut m = Multipliers::uniform(&graph, 1e-9, 0.0);
        let w3 = graph.node_by_name("w3").unwrap();
        *m.edge_mut(w3, 0) = 1e9;
        let outcome = LrsSolver::new(100, 1e-9).solve(&problem, &m);
        assert!(graph.check_sizes(&outcome.sizes).is_ok());
        let w3_dense = graph.component_index(w3).unwrap();
        assert!(
            (outcome.sizes[w3_dense] - graph.node(w3).attrs.upper_bound).abs() < 1e-9,
            "w3 should saturate at its upper bound, got {}",
            outcome.sizes[w3_dense]
        );
        // Components with negligible weight sit at their lower bound.
        let w1 = graph.node_by_name("w1").unwrap();
        let w1_dense = graph.component_index(w1).unwrap();
        assert!((outcome.sizes[w1_dense] - graph.node(w1).attrs.lower_bound).abs() < 1e-6);
    }

    #[test]
    fn sweep_limit_is_respected() {
        let graph = chain();
        let coupling = CouplingSet::empty(&graph);
        let problem = SizingProblem::new(&graph, &coupling, loose_bounds()).unwrap();
        let outcome =
            LrsSolver::new(1, 0.0).solve(&problem, &Multipliers::uniform(&graph, 0.01, 0.0));
        assert_eq!(outcome.sweeps, 1);
    }
}
