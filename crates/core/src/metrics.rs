//! Circuit metrics (noise, delay, power, area) and run instrumentation.

use ncgws_circuit::{CircuitGraph, SizeVector, TimingAnalysis};
use ncgws_coupling::CouplingSet;
use serde::{Deserialize, Serialize};

use crate::units;

/// The four quantities of the paper's Table 1, plus the raw internal values
/// the optimizer works with.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CircuitMetrics {
    /// Total crosstalk (physical coupling capacitance, exact model) in pF.
    pub noise_pf: f64,
    /// Critical-path delay in ps.
    pub delay_ps: f64,
    /// Dynamic power in mW.
    pub power_mw: f64,
    /// Total area in µm².
    pub area_um2: f64,
    /// Total crosstalk in the engine's fF units (linearized constraint form).
    pub crosstalk_ff: f64,
    /// Critical-path delay in the engine's Ω·fF units.
    pub delay_internal: f64,
    /// Total switched capacitance in fF (the power constraint's quantity).
    pub total_capacitance_ff: f64,
}

impl CircuitMetrics {
    /// Evaluates all metrics through a reusable
    /// [`SizingEngine`](crate::SizingEngine), without allocating. Bitwise
    /// identical to [`evaluate`](Self::evaluate).
    pub fn evaluate_with<M: ncgws_circuit::DelayModel>(
        engine: &mut crate::engine::SizingEngine<'_, M>,
        sizes: &SizeVector,
    ) -> Self {
        engine.metrics(sizes)
    }

    /// Evaluates all metrics for a circuit under `sizes`, with coupling
    /// included in the delay model.
    ///
    /// This is the allocate-per-call reference path; hot loops should build
    /// a [`SizingEngine`](crate::SizingEngine) once and use
    /// [`evaluate_with`](Self::evaluate_with).
    pub fn evaluate(graph: &CircuitGraph, coupling: &CouplingSet, sizes: &SizeVector) -> Self {
        let extra = coupling.delay_load_per_node(graph, sizes);
        let timing = TimingAnalysis::run(graph, sizes, Some(&extra));
        let total_cap = ncgws_circuit::total_capacitance(graph, sizes);
        let area = ncgws_circuit::total_area(graph, sizes);
        let noise_exact = coupling.total_physical_coupling(graph, sizes);
        let crosstalk_lin = coupling.total_crosstalk(graph, sizes);
        CircuitMetrics {
            noise_pf: units::pf_from_ff(noise_exact),
            delay_ps: units::ps_from_internal(timing.critical_path_delay),
            power_mw: units::mw_from_ff(total_cap, graph.technology().power_scale_mw_per_ff()),
            area_um2: area,
            crosstalk_ff: crosstalk_lin,
            delay_internal: timing.critical_path_delay,
            total_capacitance_ff: total_cap,
        }
    }
}

/// One outer (OGWS) iteration's progress record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// Iteration number (1-based).
    pub iteration: usize,
    /// Primal objective `Σ α_i x_i` of the LRS solution (µm²).
    pub primal_area: f64,
    /// Dual value `min_x L(x)` including the `−A₀·Σλ` constant (µm²).
    pub dual_value: f64,
    /// Relative duality gap used for the stopping rule.
    pub gap: f64,
    /// Worst delay-constraint violation (Ω·fF; ≤ 0 when met).
    pub delay_violation: f64,
    /// Power-constraint violation (fF; ≤ 0 when met).
    pub power_violation: f64,
    /// Crosstalk-constraint violation (fF; ≤ 0 when met).
    pub crosstalk_violation: f64,
    /// Worst violation of the extra constraint families, relative to its
    /// bound and clamped at zero (0 when all extra constraints are met or
    /// none exist).
    pub extra_violation: f64,
    /// Wall-clock time of this iteration in seconds.
    pub seconds: f64,
    /// Number of inner LRS sweeps performed.
    pub lrs_sweeps: usize,
    /// Total component resize operations across this solve's sweeps (an
    /// exact-schedule sweep touches every component, so this is
    /// `lrs_sweeps × components` there; the adaptive schedule touches only
    /// the active frontier).
    pub touched_components: usize,
    /// Components frozen by the active-set schedule at the end of this
    /// solve (0 under the exact schedule).
    pub frozen_components: usize,
}

/// Byte-level accounting of the optimizer's live data structures, the
/// quantity plotted in Figure 10(a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryBreakdown {
    /// Bytes held by the circuit graph.
    pub circuit_bytes: usize,
    /// Bytes held by the coupling set.
    pub coupling_bytes: usize,
    /// Bytes held by the multipliers.
    pub multiplier_bytes: usize,
    /// Bytes held by per-node working vectors (sizes, delays, arrival times,
    /// capacitances, upstream resistances).
    pub working_bytes: usize,
}

impl MemoryBreakdown {
    /// Total bytes.
    pub fn total(&self) -> usize {
        self.circuit_bytes + self.coupling_bytes + self.multiplier_bytes + self.working_bytes
    }

    /// Total in mebibytes.
    pub fn total_mib(&self) -> f64 {
        self.total() as f64 / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncgws_circuit::{CircuitBuilder, GateKind, NodeId, Technology};
    use ncgws_coupling::{CouplingPair, WirePairGeometry};

    fn setup() -> (CircuitGraph, CouplingSet) {
        let mut b = CircuitBuilder::new(Technology::dac99());
        let d = b.add_driver("d", 100.0).unwrap();
        let d2 = b.add_driver("d2", 100.0).unwrap();
        let w1 = b.add_wire("w1", 120.0).unwrap();
        let w2 = b.add_wire("w2", 150.0).unwrap();
        let g = b.add_gate("g", GateKind::Nand).unwrap();
        let w3 = b.add_wire("w3", 90.0).unwrap();
        b.connect(d, w1).unwrap();
        b.connect(d2, w2).unwrap();
        b.connect(w1, g).unwrap();
        b.connect(w2, g).unwrap();
        b.connect(g, w3).unwrap();
        b.connect_output(w3, 5.0).unwrap();
        let graph = b.build().unwrap();
        let w1 = graph.node_by_name("w1").unwrap();
        let w2 = graph.node_by_name("w2").unwrap();
        let geom = WirePairGeometry::new(100.0, 12.0, 0.03).unwrap();
        let coupling =
            CouplingSet::new(&graph, vec![CouplingPair::new(w1, w2, geom).unwrap()]).unwrap();
        (graph, coupling)
    }

    #[test]
    fn metrics_are_positive_and_scale_with_size() {
        let (graph, coupling) = setup();
        let small = CircuitMetrics::evaluate(&graph, &coupling, &graph.uniform_sizes(0.5));
        let large = CircuitMetrics::evaluate(&graph, &coupling, &graph.uniform_sizes(5.0));
        for m in [&small, &large] {
            assert!(m.noise_pf > 0.0);
            assert!(m.delay_ps > 0.0);
            assert!(m.power_mw > 0.0);
            assert!(m.area_um2 > 0.0);
        }
        assert!(large.area_um2 > small.area_um2);
        assert!(large.power_mw > small.power_mw);
        assert!(large.noise_pf > small.noise_pf);
    }

    #[test]
    fn unit_conversions_are_consistent() {
        let (graph, coupling) = setup();
        let sizes = graph.uniform_sizes(1.0);
        let m = CircuitMetrics::evaluate(&graph, &coupling, &sizes);
        assert!((m.delay_ps - m.delay_internal / 1000.0).abs() < 1e-9);
        let expected_power = m.total_capacitance_ff * graph.technology().power_scale_mw_per_ff();
        assert!((m.power_mw - expected_power).abs() < 1e-9);
    }

    #[test]
    fn coupling_free_circuit_has_zero_noise() {
        let (graph, _) = setup();
        let empty = CouplingSet::empty(&graph);
        let m = CircuitMetrics::evaluate(&graph, &empty, &graph.uniform_sizes(1.0));
        assert_eq!(m.noise_pf, 0.0);
        assert_eq!(m.crosstalk_ff, 0.0);
        let _ = NodeId::new(0);
    }

    #[test]
    fn memory_breakdown_totals() {
        let mb = MemoryBreakdown {
            circuit_bytes: 1000,
            coupling_bytes: 500,
            multiplier_bytes: 200,
            working_bytes: 300,
        };
        assert_eq!(mb.total(), 2000);
        assert!((mb.total_mib() - 2000.0 / 1048576.0).abs() < 1e-12);
    }
}
