//! Lagrange multipliers and evaluation of the Lagrangian / dual function.

use ncgws_circuit::{CircuitGraph, NodeId, SizeVector};
use serde::{Deserialize, Serialize};

use crate::constraints::ConstraintSet;
use crate::problem::SizingProblem;

/// The Lagrange multipliers of problem `PP`:
///
/// * one `λ_{ji}` per edge `(j, i)` of the circuit graph (delay constraints,
///   including the source→driver edges for `D_i ≤ a_i` and the
///   output→sink edges for `a_j ≤ A₀`);
/// * `β` for the power constraint;
/// * `γ` for the crosstalk constraint;
/// * one block `μ_f` per extra [`ConstraintFamily`](crate::ConstraintFamily)
///   of the problem's [`ConstraintSet`] (empty for the paper's original
///   three-bound formulation).
///
/// Edge multipliers are stored in one flat CSR-style array parallel to the
/// concatenation of every node's fanin list (`offsets[i]..offsets[i+1]` are
/// node `i`'s slots), so the per-iteration multiplier walks — node-weight
/// aggregation, subgradient bumps, flow projection — run over contiguous
/// memory instead of one heap allocation per node; extra blocks are stored
/// parallel to the constraint set's families.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Multipliers {
    /// Flat `λ` values: `values[offsets[i] + slot]` is `λ_{ji}` where
    /// `j = fanin(i)[slot]`.
    values: Vec<f64>,
    /// CSR offsets, one entry per node plus a trailing total.
    offsets: Vec<u32>,
    /// Power-constraint multiplier `β ≥ 0`.
    pub beta: f64,
    /// Crosstalk-constraint multiplier `γ ≥ 0`.
    pub gamma: f64,
    /// Extra-family multiplier blocks `μ_f ≥ 0`, parallel to the problem's
    /// [`ConstraintSet::families`]. Empty when no extra families exist.
    extra: Vec<Vec<f64>>,
}

impl Multipliers {
    /// Creates multipliers with every edge multiplier set to `edge_value` and
    /// both scalar multipliers set to `scalar_value`; no extra blocks (the
    /// paper's formulation — attach blocks with
    /// [`attach_extras`](Self::attach_extras)).
    pub fn uniform(graph: &CircuitGraph, edge_value: f64, scalar_value: f64) -> Self {
        let mut offsets = Vec::with_capacity(graph.num_nodes() + 1);
        let mut total = 0u32;
        offsets.push(0);
        for id in graph.node_ids() {
            total += graph.fanin(id).len() as u32;
            offsets.push(total);
        }
        Multipliers {
            values: vec![edge_value; total as usize],
            offsets,
            beta: scalar_value,
            gamma: scalar_value,
            extra: Vec::new(),
        }
    }

    /// Rebuilds multipliers from their serialized parts (the snapshot
    /// decode path — see [`Snapshot`](crate::Snapshot)).
    ///
    /// # Errors
    ///
    /// Returns a reason when the CSR shape is inconsistent (non-monotone
    /// offsets, value length mismatch, missing leading zero).
    pub fn from_parts(
        values: Vec<f64>,
        offsets: Vec<u32>,
        beta: f64,
        gamma: f64,
        extra: Vec<Vec<f64>>,
    ) -> Result<Self, String> {
        if offsets.first() != Some(&0) {
            return Err("multiplier offsets must start at 0".into());
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("multiplier offsets must be non-decreasing".into());
        }
        let total = *offsets.last().expect("offsets are non-empty") as usize;
        if values.len() != total {
            return Err(format!(
                "multiplier values cover {} slots but offsets expect {total}",
                values.len()
            ));
        }
        Ok(Multipliers {
            values,
            offsets,
            beta,
            gamma,
            extra,
        })
    }

    /// `true` when this multiplier set's CSR layout matches `graph`'s fanin
    /// structure (same node count and per-node fanin degrees).
    pub fn matches(&self, graph: &CircuitGraph) -> bool {
        if self.offsets.len() != graph.num_nodes() + 1 {
            return false;
        }
        graph.node_ids().all(|id| {
            let i = id.index();
            (self.offsets[i + 1] - self.offsets[i]) as usize == graph.fanin(id).len()
        })
    }

    /// The flat slot range of a node's fanin-edge multipliers.
    #[inline(always)]
    fn range(&self, node: NodeId) -> std::ops::Range<usize> {
        let i = node.index();
        self.offsets[i] as usize..self.offsets[i + 1] as usize
    }

    /// Sizes one multiplier block per family of `extras`, every multiplier
    /// initialized to `value`. Replaces any existing blocks.
    pub fn attach_extras(&mut self, extras: &ConstraintSet, value: f64) {
        self.extra = extras
            .block_sizes()
            .into_iter()
            .map(|len| vec![value; len])
            .collect();
    }

    /// The extra-family multiplier blocks, parallel to the problem's
    /// constraint-set families (empty when none were attached).
    pub fn extra_blocks(&self) -> &[Vec<f64>] {
        &self.extra
    }

    /// Mutable access to the extra-family multiplier blocks.
    pub fn extra_blocks_mut(&mut self) -> &mut [Vec<f64>] {
        &mut self.extra
    }

    /// The multiplier `λ_{ji}` on the fanin edge `slot` of node `i`.
    pub fn edge(&self, node: NodeId, slot: usize) -> f64 {
        self.values[self.range(node)][slot]
    }

    /// Mutable access to the multiplier on the fanin edge `slot` of node `i`.
    pub fn edge_mut(&mut self, node: NodeId, slot: usize) -> &mut f64 {
        let range = self.range(node);
        &mut self.values[range][slot]
    }

    /// All fanin-edge multipliers of a node.
    pub fn edges_of(&self, node: NodeId) -> &[f64] {
        &self.values[self.range(node)]
    }

    /// Mutable access to all fanin-edge multipliers of a node.
    pub fn edges_of_mut(&mut self, node: NodeId) -> &mut [f64] {
        let range = self.range(node);
        &mut self.values[range]
    }

    /// The flat CSR view `(offsets, values)` of every edge multiplier — the
    /// hot-loop surface for the projection and subgradient walks.
    pub fn flat(&self) -> (&[u32], &[f64]) {
        (&self.offsets, &self.values)
    }

    /// Mutable flat values with the offsets (see [`flat`](Self::flat)).
    pub fn flat_mut(&mut self) -> (&[u32], &mut [f64]) {
        (&self.offsets, &mut self.values)
    }

    /// The node delay weight `λ_i = Σ_{j ∈ input(i)} λ_{ji}`.
    pub fn node_weight(&self, node: NodeId) -> f64 {
        self.values[self.range(node)].iter().sum()
    }

    /// The node delay weights for every node, indexed by raw node index.
    pub fn node_weights(&self, graph: &CircuitGraph) -> Vec<f64> {
        graph.node_ids().map(|id| self.node_weight(id)).collect()
    }

    /// Fills `out` (one slot per raw node index) with the node delay weights
    /// without allocating — the hot-loop variant of
    /// [`node_weights`](Self::node_weights).
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `out` has the wrong length.
    pub fn node_weights_into(&self, graph: &CircuitGraph, out: &mut [f64]) {
        debug_assert_eq!(out.len(), graph.num_nodes());
        debug_assert_eq!(out.len() + 1, self.offsets.len());
        for (i, weight) in out.iter_mut().enumerate() {
            let range = self.offsets[i] as usize..self.offsets[i + 1] as usize;
            *weight = self.values[range].iter().sum();
        }
    }

    /// The sum of the multipliers on the sink's fanin edges,
    /// `Σ_{j∈input(m)} λ_{jm}` — the coefficient of the `−A₀` constant in the
    /// dual function.
    pub fn sink_weight(&self, graph: &CircuitGraph) -> f64 {
        self.node_weight(graph.sink())
    }

    /// Clamps every multiplier to be non-negative (condition (4) of
    /// Theorem 6).
    pub fn clamp_non_negative(&mut self) {
        for value in &mut self.values {
            if *value < 0.0 {
                *value = 0.0;
            }
        }
        if self.beta < 0.0 {
            self.beta = 0.0;
        }
        if self.gamma < 0.0 {
            self.gamma = 0.0;
        }
        for block in &mut self.extra {
            for value in block {
                if *value < 0.0 {
                    *value = 0.0;
                }
            }
        }
    }

    /// An estimate (in bytes) of the multiplier storage, used by the
    /// Figure 10(a) reproduction.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.values.capacity() * size_of::<f64>()
            + self.offsets.capacity() * size_of::<u32>()
            + self
                .extra
                .iter()
                .map(|v| size_of::<Vec<f64>>() + v.capacity() * size_of::<f64>())
                .sum::<usize>()
            + size_of::<Self>()
    }
}

/// Evaluates the dual function value at the given multipliers and the LRS
/// minimizer `sizes`:
///
/// ```text
/// D(λ, β, γ, μ) = Σ α_i x_i
///              + β (Σ c_i − P')
///              + γ (Σ ĉ_ij (x_i + x_j) − X')
///              + Σ_f Σ_k μ_{f,k} (g_{f,k}(x) − b_{f,k})
///              + Σ_i λ_i D_i
///              − A₀ · Σ_{j∈input(m)} λ_{jm}
/// ```
///
/// The `μ` sum ranges over the problem's extra
/// [`ConstraintSet`] families; with none attached it is exactly `0.0` and
/// the value is bitwise identical to the paper's three-bound dual.
///
/// The form assumes the flow-conservation condition of Theorem 3 holds (the
/// arrival-time terms then telescope away); the OGWS loop projects the
/// multipliers before every LRS call, so this is always the case when the
/// solver calls it.
pub fn dual_value(
    problem: &SizingProblem<'_>,
    multipliers: &Multipliers,
    sizes: &SizeVector,
    delays: &[f64],
) -> f64 {
    let graph = problem.graph;
    let area = problem.area(sizes);
    let cap = ncgws_circuit::total_capacitance(graph, sizes);
    let crosstalk_lhs = problem.coupling.crosstalk_lhs(graph, sizes);
    dual_value_from_parts(
        problem,
        multipliers,
        sizes,
        delays,
        area,
        cap,
        crosstalk_lhs,
    )
}

/// [`dual_value`] with the `O(V)`/`O(P)` aggregates (`area`, `cap`,
/// `crosstalk_lhs`) precomputed by the caller — the OGWS loop already has
/// them from its per-iteration constraint evaluation (through the engine's
/// dense tables), so recomputing them here would walk the pointer-rich
/// graph a second time. Bitwise identical to [`dual_value`] given
/// bitwise-equal aggregates.
pub fn dual_value_from_parts(
    problem: &SizingProblem<'_>,
    multipliers: &Multipliers,
    sizes: &SizeVector,
    delays: &[f64],
    area: f64,
    cap: f64,
    crosstalk_lhs: f64,
) -> f64 {
    let graph = problem.graph;
    let weighted_delay: f64 = graph
        .node_ids()
        .map(|id| multipliers.node_weight(id) * delays[id.index()])
        .sum();
    let extra = problem.extras.dual_term(multipliers.extra_blocks(), sizes);
    area + multipliers.beta * (cap - problem.bounds.total_capacitance)
        + multipliers.gamma * (crosstalk_lhs - problem.reduced_crosstalk_bound())
        + weighted_delay
        - problem.bounds.delay * multipliers.sink_weight(graph)
        + extra
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncgws_circuit::{CircuitBuilder, GateKind, Technology};
    use ncgws_coupling::CouplingSet;

    fn graph() -> CircuitGraph {
        let mut b = CircuitBuilder::new(Technology::dac99());
        let d1 = b.add_driver("d1", 100.0).unwrap();
        let d2 = b.add_driver("d2", 100.0).unwrap();
        let w1 = b.add_wire("w1", 50.0).unwrap();
        let w2 = b.add_wire("w2", 60.0).unwrap();
        let g = b.add_gate("g", GateKind::Nand).unwrap();
        let w3 = b.add_wire("w3", 70.0).unwrap();
        b.connect(d1, w1).unwrap();
        b.connect(d2, w2).unwrap();
        b.connect(w1, g).unwrap();
        b.connect(w2, g).unwrap();
        b.connect(g, w3).unwrap();
        b.connect_output(w3, 5.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn uniform_construction_and_weights() {
        let g = graph();
        let m = Multipliers::uniform(&g, 2.0, 0.5);
        assert_eq!(m.beta, 0.5);
        assert_eq!(m.gamma, 0.5);
        // The NAND gate has two fanin edges: λ_g = 4.
        let gate = g.node_by_name("g").unwrap();
        assert_eq!(m.node_weight(gate), 4.0);
        // A wire has one fanin edge.
        let w1 = g.node_by_name("w1").unwrap();
        assert_eq!(m.node_weight(w1), 2.0);
        // Node weights vector covers all nodes.
        assert_eq!(m.node_weights(&g).len(), g.num_nodes());
        assert!(m.memory_bytes() > 0);
    }

    #[test]
    fn clamp_removes_negative_values() {
        let g = graph();
        let mut m = Multipliers::uniform(&g, 1.0, 1.0);
        let w1 = g.node_by_name("w1").unwrap();
        *m.edge_mut(w1, 0) = -3.0;
        m.beta = -1.0;
        m.clamp_non_negative();
        assert_eq!(m.edge(w1, 0), 0.0);
        assert_eq!(m.beta, 0.0);
        assert_eq!(m.gamma, 1.0);
    }

    #[test]
    fn dual_value_reduces_to_area_when_multipliers_vanish() {
        let g = graph();
        let coupling = CouplingSet::empty(&g);
        let bounds = crate::problem::ConstraintBounds {
            delay: 1e9,
            total_capacitance: 1e9,
            crosstalk: 1e9,
        };
        let problem = SizingProblem::new(&g, &coupling, bounds).unwrap();
        let m = Multipliers::uniform(&g, 0.0, 0.0);
        let sizes = g.uniform_sizes(1.0);
        let delays = vec![0.0; g.num_nodes()];
        let d = dual_value(&problem, &m, &sizes, &delays);
        assert!((d - problem.area(&sizes)).abs() < 1e-9);
    }

    #[test]
    fn dual_value_penalizes_violations_and_rewards_slack() {
        let g = graph();
        let coupling = CouplingSet::empty(&g);
        let sizes = g.uniform_sizes(1.0);
        let cap = ncgws_circuit::total_capacitance(&g, &sizes);
        // Tight power bound (half the current capacitance): positive β term.
        let tight = crate::problem::ConstraintBounds {
            delay: 1e9,
            total_capacitance: cap / 2.0,
            crosstalk: 1e9,
        };
        let problem = SizingProblem::new(&g, &coupling, tight).unwrap();
        let mut m = Multipliers::uniform(&g, 0.0, 0.0);
        m.beta = 1.0;
        let delays = vec![0.0; g.num_nodes()];
        let d = dual_value(&problem, &m, &sizes, &delays);
        assert!(d > problem.area(&sizes));
        // Loose bound: negative β term.
        let loose = crate::problem::ConstraintBounds {
            delay: 1e9,
            total_capacitance: cap * 2.0,
            crosstalk: 1e9,
        };
        let problem = SizingProblem::new(&g, &coupling, loose).unwrap();
        let d = dual_value(&problem, &m, &sizes, &delays);
        assert!(d < problem.area(&sizes));
    }
}
