//! Mid-run OGWS checkpoints: the [`Snapshot`] type and its JSON codec.
//!
//! A [`Snapshot`] captures everything the outer loop needs to re-enter at an
//! iteration boundary: the current iterate, the full multiplier state (flat
//! CSR edge block, `β`/`γ`, and the extra constraint-family blocks), the
//! best-primal bookkeeping, the stagnation counter, the iteration count
//! (which drives the step schedule `ρ_k`), and — under the adaptive solve
//! strategy — the schedule's freeze/verification state
//! ([`ScheduleState`]).
//!
//! Snapshots are always taken at *completed-iteration boundaries* (the OGWS
//! loop discards a partially solved iteration when a control interrupt cuts
//! its inner LRS descent short), so a resumed run continues the exact
//! trajectory the interrupted run was on:
//!
//! * under [`SolveStrategy::Exact`](crate::SolveStrategy) the continuation
//!   is **bitwise identical** to the uninterrupted run (every LRS solve
//!   restarts from the lower bounds, so the only cross-iteration state is
//!   what the snapshot restores exactly);
//! * under the adaptive strategy the restored schedule state re-derives its
//!   electrical caches from the snapshot sizes instead of continuing the
//!   incrementally maintained ones, so resumed metrics land within `1e-6`
//!   of the uninterrupted run (pinned by the `serve_checkpoint` tests);
//! * a snapshot taken at iteration 0 restores the exact run-start state, so
//!   its resume is bitwise identical under both strategies.
//!
//! Serialization uses the workspace's serde stand-in ([`Snapshot::to_json`]);
//! since that stand-in has no deserializer, [`Snapshot::from_json`] decodes
//! through the small recursive-descent parser in [`json`] (the same
//! hand-rolled-scanner idiom the bench crate's perfguard uses). Rust formats
//! `f64` with the shortest string that parses back to the same bits, so the
//! JSON round trip is lossless and a resume from a persisted snapshot equals
//! a resume from the in-memory one.

use ncgws_circuit::{CircuitGraph, SizeVector};
use serde::Serialize;

use crate::lagrangian::Multipliers;
use crate::schedule::ScheduleState;

/// Current snapshot format version ([`Snapshot::format`]).
pub const SNAPSHOT_FORMAT: u32 = 1;

/// A checkpoint of mid-run OGWS state, captured at a completed-iteration
/// boundary and sufficient to re-enter the loop via
/// [`Ordered::size_resume`](crate::flow::Ordered::size_resume) (or
/// [`OgwsSolver::solve_resumed`](crate::OgwsSolver::solve_resumed)).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Snapshot {
    /// Format version, for persisted snapshots ([`SNAPSHOT_FORMAT`]).
    pub format: u32,
    /// Completed outer iterations (global count — a resumed run continues
    /// the step schedule at `iterations_done + 1`).
    pub iterations_done: usize,
    /// Number of sizable components of the circuit the snapshot belongs to
    /// (validated against the graph on resume).
    pub num_components: usize,
    /// The iterate after the last completed iteration (the warm seed of the
    /// adaptive schedule's next LRS solve).
    pub sizes: SizeVector,
    /// The full multiplier state after that iteration's A4 subgradient step
    /// and A5 flow projection — ready for the next LRS solve.
    pub multipliers: Multipliers,
    /// Best feasible solution found so far, if any.
    pub best_sizes: Option<SizeVector>,
    /// Area of [`best_sizes`](Self::best_sizes) (the primal upper bound);
    /// `None` exactly when no feasible iterate has been seen.
    pub best_area: Option<f64>,
    /// Best (smallest) relative duality gap observed; `None` while still
    /// infinite (no iteration completed).
    pub best_gap: Option<f64>,
    /// Best dual lower bound observed; `None` while still infinite.
    pub best_dual: Option<f64>,
    /// Consecutive iterations without primal or dual improvement (the
    /// stagnation stopping rule's counter).
    pub stagnant: usize,
    /// The adaptive schedule's freeze/verification state; `None` under the
    /// exact strategy.
    pub schedule: Option<ScheduleState>,
}

impl Snapshot {
    /// Validates that this snapshot can resume a run on `graph`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the snapshot belongs to a
    /// different circuit (component count, multiplier CSR shape, schedule
    /// dimensions) or is internally inconsistent.
    pub fn validate_for(&self, graph: &CircuitGraph) -> Result<(), String> {
        if self.format != SNAPSHOT_FORMAT {
            return Err(format!(
                "snapshot format {} is not the supported format {SNAPSHOT_FORMAT}",
                self.format
            ));
        }
        let n = graph.num_components();
        if self.num_components != n {
            return Err(format!(
                "snapshot has {} components but the circuit has {n}",
                self.num_components
            ));
        }
        if self.sizes.len() != n {
            return Err(format!(
                "snapshot size vector has {} entries, expected {n}",
                self.sizes.len()
            ));
        }
        if !self.multipliers.matches(graph) {
            return Err("snapshot multipliers do not match the circuit's fanin structure".into());
        }
        match (&self.best_sizes, self.best_area) {
            (Some(best), Some(area)) => {
                if best.len() != n {
                    return Err(format!(
                        "snapshot best-size vector has {} entries, expected {n}",
                        best.len()
                    ));
                }
                if !area.is_finite() {
                    return Err("snapshot best_area must be finite when present".into());
                }
            }
            (None, None) => {}
            _ => {
                return Err(
                    "snapshot best_sizes and best_area must be present or absent together".into(),
                )
            }
        }
        if let Some(state) = &self.schedule {
            if state.num_components() != n {
                return Err(format!(
                    "snapshot schedule state covers {} components, expected {n}",
                    state.num_components()
                ));
            }
        }
        Ok(())
    }

    /// Whether a feasible iterate had been found when the snapshot was taken.
    pub fn has_feasible(&self) -> bool {
        self.best_sizes.is_some()
    }

    /// Heap + inline bytes held by the snapshot buffers (for the memory
    /// accounting that extends the Figure 10(a) breakdown to checkpoints).
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let sizes = |v: &SizeVector| v.len() * size_of::<f64>();
        size_of::<Self>()
            + sizes(&self.sizes)
            + self.multipliers.memory_bytes()
            + self.best_sizes.as_ref().map_or(0, sizes)
            + self
                .schedule
                .as_ref()
                .map_or(0, ScheduleState::memory_bytes)
    }

    /// Serializes the snapshot to compact JSON (lossless: `f64` values are
    /// written in Rust's shortest round-trip decimal form).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serialization is infallible")
    }

    /// Decodes a snapshot from the JSON produced by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or missing field.
    pub fn from_json(input: &str) -> Result<Snapshot, String> {
        let value = json::parse(input)?;
        let obj = value.as_object().ok_or("snapshot JSON must be an object")?;
        let field = |name: &str| -> Result<&json::JsonValue, String> {
            json::get(obj, name).ok_or_else(|| format!("snapshot JSON is missing `{name}`"))
        };
        let format = field("format")?
            .as_usize()
            .filter(|&n| n <= u32::MAX as usize)
            .ok_or("`format` must be a u32 integer")? as u32;
        let iterations_done = field("iterations_done")?
            .as_usize()
            .ok_or("`iterations_done` must be an integer")?;
        let num_components = field("num_components")?
            .as_usize()
            .ok_or("`num_components` must be an integer")?;
        let sizes = SizeVector::new(decode_size_values(field("sizes")?)?);
        let multipliers = decode_multipliers(field("multipliers")?)?;
        let best_sizes = match field("best_sizes")? {
            json::JsonValue::Null => None,
            v => Some(SizeVector::new(decode_size_values(v)?)),
        };
        let best_area = field("best_area")?.as_opt_f64("best_area")?;
        let best_gap = field("best_gap")?.as_opt_f64("best_gap")?;
        let best_dual = field("best_dual")?.as_opt_f64("best_dual")?;
        let stagnant = field("stagnant")?
            .as_usize()
            .ok_or("`stagnant` must be an integer")?;
        let schedule = match field("schedule")? {
            json::JsonValue::Null => None,
            v => Some(decode_schedule(v)?),
        };
        Ok(Snapshot {
            format,
            iterations_done,
            num_components,
            sizes,
            multipliers,
            best_sizes,
            best_area,
            best_gap,
            best_dual,
            stagnant,
            schedule,
        })
    }
}

/// Decodes a serialized [`SizeVector`] (`{"values":[...]}`).
fn decode_size_values(value: &json::JsonValue) -> Result<Vec<f64>, String> {
    let obj = value.as_object().ok_or("size vector must be an object")?;
    json::get(obj, "values")
        .ok_or("size vector is missing `values`")?
        .as_f64_array("values")
}

/// Decodes a serialized [`Multipliers`] block.
fn decode_multipliers(value: &json::JsonValue) -> Result<Multipliers, String> {
    let obj = value.as_object().ok_or("multipliers must be an object")?;
    let field = |name: &str| -> Result<&json::JsonValue, String> {
        json::get(obj, name).ok_or_else(|| format!("multipliers are missing `{name}`"))
    };
    let values = field("values")?.as_f64_array("multiplier values")?;
    let offsets: Vec<u32> = field("offsets")?
        .as_array()
        .ok_or("`offsets` must be an array")?
        .iter()
        .map(|v| {
            v.as_usize()
                .filter(|&n| n <= u32::MAX as usize)
                .map(|n| n as u32)
                .ok_or_else(|| "`offsets` entries must be u32 integers".to_string())
        })
        .collect::<Result<_, _>>()?;
    let beta = field("beta")?
        .as_f64()
        .ok_or("`beta` must be a finite number")?;
    let gamma = field("gamma")?
        .as_f64()
        .ok_or("`gamma` must be a finite number")?;
    let extra = field("extra")?
        .as_array()
        .ok_or("`extra` must be an array")?
        .iter()
        .map(|block| block.as_f64_array("extra multiplier block"))
        .collect::<Result<Vec<_>, _>>()?;
    Multipliers::from_parts(values, offsets, beta, gamma, extra)
}

/// Decodes a serialized [`ScheduleState`].
fn decode_schedule(value: &json::JsonValue) -> Result<ScheduleState, String> {
    let obj = value
        .as_object()
        .ok_or("schedule state must be an object")?;
    let field = |name: &str| -> Result<&json::JsonValue, String> {
        json::get(obj, name).ok_or_else(|| format!("schedule state is missing `{name}`"))
    };
    let calm: Vec<u32> = field("calm")?
        .as_array()
        .ok_or("`calm` must be an array")?
        .iter()
        .map(|v| {
            v.as_usize()
                .filter(|&n| n <= u32::MAX as usize)
                .map(|n| n as u32)
                .ok_or_else(|| "`calm` entries must be u32 integers".to_string())
        })
        .collect::<Result<_, _>>()?;
    let frozen: Vec<bool> = field("frozen")?
        .as_array()
        .ok_or("`frozen` must be an array")?
        .iter()
        .map(|v| {
            v.as_bool()
                .ok_or_else(|| "`frozen` entries must be booleans".to_string())
        })
        .collect::<Result<_, _>>()?;
    let global_sweep = field("global_sweep")?
        .as_usize()
        .ok_or("`global_sweep` must be an integer")?;
    if calm.len() != frozen.len() {
        return Err("`calm` and `frozen` must have the same length".into());
    }
    Ok(ScheduleState {
        calm,
        frozen,
        global_sweep,
    })
}

/// A minimal JSON value model and recursive-descent parser — the read side
/// of the workspace's write-only serde stand-in. Covers exactly the grammar
/// that stand-in emits: objects, arrays, strings with `\uXXXX` escapes,
/// numbers in Rust's `f64` `Display`/integer forms, booleans and `null`.
pub mod json {
    /// Maximum nesting depth the parser accepts. The serializer's output is
    /// a handful of levels deep; the cap exists so adversarial input like
    /// `[[[[…` fails with an error instead of overflowing the stack.
    pub const MAX_DEPTH: usize = 128;

    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum JsonValue {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// A number whose lexeme is a plain integer (no `.`/`e`/`E`), kept
        /// exact so `u64` fields such as RNG seeds survive a round trip —
        /// `f64` would silently round anything above 2⁵³.
        Int(i128),
        /// Any other JSON number (parsed through `str::parse::<f64>`, which
        /// recovers Rust-formatted floats bit-exactly).
        Number(f64),
        /// A string literal, unescaped.
        String(String),
        /// An array.
        Array(Vec<JsonValue>),
        /// An object, as ordered key/value pairs.
        Object(Vec<(String, JsonValue)>),
    }

    impl JsonValue {
        /// The object's pairs, if this is an object.
        pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
            match self {
                JsonValue::Object(pairs) => Some(pairs),
                _ => None,
            }
        }

        /// The array's elements, if this is an array.
        pub fn as_array(&self) -> Option<&[JsonValue]> {
            match self {
                JsonValue::Array(items) => Some(items),
                _ => None,
            }
        }

        /// The string contents, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                JsonValue::String(s) => Some(s),
                _ => None,
            }
        }

        /// The boolean, if this is a boolean.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                JsonValue::Bool(b) => Some(*b),
                _ => None,
            }
        }

        /// The number as a finite `f64`, if this is a number. Integer
        /// lexemes convert exactly when within `f64`'s 2⁵³ integer range
        /// (the serializer never emits integral floats wider than that).
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                JsonValue::Number(x) if x.is_finite() => Some(*x),
                JsonValue::Int(i) => Some(*i as f64),
                _ => None,
            }
        }

        /// The number as a `usize`, if this is a non-negative integer.
        pub fn as_usize(&self) -> Option<usize> {
            match self {
                JsonValue::Int(i) => usize::try_from(*i).ok(),
                JsonValue::Number(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => {
                    Some(*x as usize)
                }
                _ => None,
            }
        }

        /// The number as a `u64`, if this is a non-negative integer. Exact
        /// for the full `u64` range (seeds above 2⁵³ included).
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                JsonValue::Int(i) => u64::try_from(*i).ok(),
                JsonValue::Number(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => {
                    Some(*x as u64)
                }
                _ => None,
            }
        }

        /// The number as an `i64`, if this is an integer in range.
        pub fn as_i64(&self) -> Option<i64> {
            match self {
                JsonValue::Int(i) => i64::try_from(*i).ok(),
                JsonValue::Number(x)
                    if x.fract() == 0.0 && x.abs() <= 2f64.powi(53) && x.is_finite() =>
                {
                    Some(*x as i64)
                }
                _ => None,
            }
        }

        /// A finite `f64` or `null` (for the optional-float fields the
        /// serializer writes as `null` when non-finite or absent).
        pub fn as_opt_f64(&self, name: &str) -> Result<Option<f64>, String> {
            match self {
                JsonValue::Null => Ok(None),
                _ => self
                    .as_f64()
                    .map(Some)
                    .ok_or_else(|| format!("`{name}` must be a number or null")),
            }
        }

        /// An array of finite `f64`s.
        pub fn as_f64_array(&self, name: &str) -> Result<Vec<f64>, String> {
            self.as_array()
                .ok_or_else(|| format!("`{name}` must be an array"))?
                .iter()
                .map(|v| {
                    v.as_f64()
                        .ok_or_else(|| format!("`{name}` entries must be finite numbers"))
                })
                .collect()
        }
    }

    /// Looks a key up in an object's pairs (linear — objects here are small).
    pub fn get<'a>(pairs: &'a [(String, JsonValue)], key: &str) -> Option<&'a JsonValue> {
        pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Parses one JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(input: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(value)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
        depth: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while let Some(&b) = self.bytes.get(self.pos) {
                if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, byte: u8) -> Result<(), String> {
            if self.peek() == Some(byte) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected `{}` at byte {}", byte as char, self.pos))
            }
        }

        fn value(&mut self) -> Result<JsonValue, String> {
            match self.peek() {
                Some(b'{') => self.nested(Self::object),
                Some(b'[') => self.nested(Self::array),
                Some(b'"') => Ok(JsonValue::String(self.string()?)),
                Some(b't') => self.literal("true", JsonValue::Bool(true)),
                Some(b'f') => self.literal("false", JsonValue::Bool(false)),
                Some(b'n') => self.literal("null", JsonValue::Null),
                Some(b'-' | b'0'..=b'9') => self.number(),
                _ => Err(format!("unexpected input at byte {}", self.pos)),
            }
        }

        fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, String> {
            if self.bytes[self.pos..].starts_with(text.as_bytes()) {
                self.pos += text.len();
                Ok(value)
            } else {
                Err(format!("expected `{text}` at byte {}", self.pos))
            }
        }

        fn nested(
            &mut self,
            inner: fn(&mut Self) -> Result<JsonValue, String>,
        ) -> Result<JsonValue, String> {
            self.depth += 1;
            if self.depth > MAX_DEPTH {
                return Err(format!(
                    "nesting deeper than {MAX_DEPTH} at byte {}",
                    self.pos
                ));
            }
            let value = inner(self)?;
            self.depth -= 1;
            Ok(value)
        }

        fn number(&mut self) -> Result<JsonValue, String> {
            let start = self.pos;
            let mut integral = true;
            while let Some(b) = self.peek() {
                if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                    if matches!(b, b'.' | b'e' | b'E') {
                        integral = false;
                    }
                    self.pos += 1;
                } else {
                    break;
                }
            }
            let text =
                std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
            // Plain-integer lexemes stay exact (u64 seeds survive); `-0`
            // must remain a float so negative zero round-trips bitwise.
            if integral && text != "-0" {
                if let Ok(i) = text.parse::<i128>() {
                    return Ok(JsonValue::Int(i));
                }
            }
            text.parse::<f64>()
                .map(JsonValue::Number)
                .map_err(|_| format!("malformed number at byte {start}"))
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            Some(b'r') => out.push('\r'),
                            Some(b'b') => out.push('\u{0008}'),
                            Some(b'f') => out.push('\u{000C}'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| "malformed \\u escape".to_string())?;
                                out.push(
                                    char::from_u32(code)
                                        .ok_or("\\u escape is not a scalar value")?,
                                );
                                self.pos += 4;
                            }
                            _ => return Err(format!("bad escape at byte {}", self.pos)),
                        }
                        self.pos += 1;
                    }
                    Some(b) if b < 0x80 => {
                        out.push(b as char);
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Multi-byte UTF-8: copy the full scalar.
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|_| "invalid UTF-8 in string".to_string())?;
                        let c = rest.chars().next().expect("non-empty");
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn object(&mut self) -> Result<JsonValue, String> {
            self.expect(b'{')?;
            let mut pairs = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(JsonValue::Object(pairs));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let value = self.value()?;
                pairs.push((key, value));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(JsonValue::Object(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
                }
            }
        }

        fn array(&mut self) -> Result<JsonValue, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::json::{parse, JsonValue};
    use super::*;

    #[test]
    fn parser_handles_the_serializer_grammar() {
        let v = parse(r#"{"a":[1,2.5,-3e-2],"b":null,"c":true,"d":"x\"y"}"#).unwrap();
        let obj = v.as_object().unwrap();
        let a = json::get(obj, "a").unwrap().as_f64_array("a").unwrap();
        assert_eq!(a, vec![1.0, 2.5, -3e-2]);
        assert_eq!(json::get(obj, "b"), Some(&JsonValue::Null));
        assert_eq!(json::get(obj, "c").unwrap().as_bool(), Some(true));
        assert_eq!(json::get(obj, "d").unwrap().as_str(), Some("x\"y"));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn parser_rejects_deep_nesting_without_overflowing() {
        // Well past any legitimate snapshot depth; must error, not crash.
        let bomb = "[".repeat(100_000);
        assert!(parse(&bomb).is_err());
        let closed = format!("{}{}", "[".repeat(200), "]".repeat(200));
        assert!(parse(&closed).is_err());
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn integer_lexemes_stay_exact_beyond_f64_range() {
        let seed = u64::MAX - 1; // would round under an f64-only parser
        let v = parse(&format!("{{\"seed\":{seed}}}")).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(json::get(obj, "seed").unwrap().as_u64(), Some(seed));
        // But `-0` stays a float so the sign bit survives.
        let neg = parse("-0").unwrap().as_f64().unwrap();
        assert_eq!(neg.to_bits(), (-0.0f64).to_bits());
        // And integral floats written without a fraction convert exactly.
        assert_eq!(parse("3").unwrap().as_f64(), Some(3.0));
        assert_eq!(parse("-7").unwrap().as_i64(), Some(-7));
    }

    #[test]
    fn float_round_trip_is_bitwise() {
        // Rust's f64 Display is shortest-round-trip; the parser recovers the
        // exact bits through str::parse::<f64>.
        for &x in &[
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1.797_693_134_862_315_7e308,
            -2.2250738585072014e-308,
            123_456_789.123_456_78,
        ] {
            let json = serde_json::to_string(&x).unwrap();
            let back = parse(&json).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {json}");
        }
    }
}
