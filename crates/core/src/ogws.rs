//! The OGWS algorithm (Figure 9): optimal gate and wire sizing by solving
//! the Lagrangian dual with a projected subgradient method.
//!
//! Each outer iteration
//!
//! 1. aggregates the edge multipliers into node weights `λ_i` (A2),
//! 2. calls [`LrsSolver`] to minimize the Lagrangian for the current
//!    multipliers and computes arrival times (A3),
//! 3. moves every multiplier along its (normalized) constraint violation with
//!    step `ρ_k` (A4) — violated constraints push their multiplier up, slack
//!    constraints let it decay,
//! 4. projects the edge multipliers back onto the flow-conservation
//!    optimality condition (A5),
//! 5. stops when the relative duality gap falls below the configured bound
//!    (A7), which the paper sets to 1 %.
//!
//! Violations are normalized by their bounds so the step size is
//! dimensionless; this does not change the fixed points of the update.

use std::time::Instant;

use ncgws_circuit::{DelayModel, NodeKind, SharedMut, SizeVector};
use serde::{Deserialize, Serialize};

use crate::constraints::ConstraintFamily;
use crate::control::{IterationEvent, RunControl, StopReason};
use crate::engine::SizingEngine;
use crate::lagrangian::{dual_value_from_parts, Multipliers};
use crate::lrs::LrsSolver;
use crate::metrics::IterationRecord;
use crate::par::{self, ParRuntime};
use crate::problem::{OptimizerConfig, SizingProblem};
use crate::projection::{
    project_flow_conservation_indexed, project_flow_conservation_leveled, FlowIndex,
};
use crate::schedule::{ScheduleState, SolveStrategy};
use crate::snapshot::{Snapshot, SNAPSHOT_FORMAT};

/// Relative tolerance used to declare an iterate primal-feasible.
///
/// The duality-gap stopping rule is what controls solution quality; this
/// tolerance only decides whether an iterate is eligible to be remembered as
/// the "best feasible so far" (one part in a thousand of each bound).
pub(crate) const FEASIBILITY_TOLERANCE: f64 = 1e-3;

/// Number of consecutive iterations without any improvement of the primal or
/// dual bound after which the outer loop stops early (secondary stopping
/// rule; the duality gap of the returned solution is still reported).
const STAGNATION_LIMIT: usize = 15;

/// Result of an OGWS run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct OgwsOutcome {
    /// The final size vector: the best feasible solution found, or the last
    /// LRS solution when no iterate was feasible.
    pub sizes: SizeVector,
    /// Whether [`sizes`](Self::sizes) satisfies all constraints.
    pub feasible: bool,
    /// Whether the duality gap dropped below the configured tolerance.
    pub converged: bool,
    /// Why the outer loop stopped.
    pub stop_reason: StopReason,
    /// Per-iteration progress records.
    pub iterations: Vec<IterationRecord>,
    /// The best (smallest) relative duality gap observed.
    pub best_gap: f64,
    /// Final value of the power multiplier `β`.
    pub beta: f64,
    /// Final value of the crosstalk multiplier `γ`.
    pub gamma: f64,
    /// Final extra-family multiplier blocks, parallel to the problem's
    /// [`ConstraintSet::families`](crate::ConstraintSet::families) (empty
    /// for the paper's three-bound formulation).
    pub extra_multipliers: Vec<Vec<f64>>,
}

impl OgwsOutcome {
    /// Number of outer iterations performed.
    pub fn num_iterations(&self) -> usize {
        self.iterations.len()
    }

    /// Total wall-clock seconds spent in the outer loop.
    pub fn total_seconds(&self) -> f64 {
        self.iterations.iter().map(|r| r.seconds).sum()
    }

    /// Average seconds per outer iteration (the quantity of Figure 10(b)).
    pub fn seconds_per_iteration(&self) -> f64 {
        if self.iterations.is_empty() {
            0.0
        } else {
            self.total_seconds() / self.iterations.len() as f64
        }
    }

    /// Total inner LRS sweeps across every outer iteration.
    pub fn sweeps_total(&self) -> usize {
        self.iterations.iter().map(|r| r.lrs_sweeps).sum()
    }

    /// Average inner sweeps per LRS solve — the quantity the adaptive
    /// schedule's warm starts cut from "restart the whole coordinate
    /// descent" to "one or two".
    pub fn mean_sweeps_per_solve(&self) -> f64 {
        if self.iterations.is_empty() {
            0.0
        } else {
            self.sweeps_total() as f64 / self.iterations.len() as f64
        }
    }

    /// Total component resize operations across the run.
    pub fn touched_components_total(&self) -> usize {
        self.iterations.iter().map(|r| r.touched_components).sum()
    }

    /// Average components touched per sweep — sublinear in the circuit size
    /// in the adaptive steady state, exactly the component count under the
    /// exact schedule.
    pub fn mean_touched_per_sweep(&self) -> f64 {
        let sweeps = self.sweeps_total();
        if sweeps == 0 {
            0.0
        } else {
            self.touched_components_total() as f64 / sweeps as f64
        }
    }
}

/// The OGWS solver.
#[derive(Debug, Clone)]
pub struct OgwsSolver {
    config: OptimizerConfig,
}

impl OgwsSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: OptimizerConfig) -> Self {
        OgwsSolver { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &OptimizerConfig {
        &self.config
    }

    /// Runs the outer loop on an assembled sizing problem.
    ///
    /// Convenience wrapper that builds one [`SizingEngine`] for the problem
    /// and reuses it across every iteration; see
    /// [`solve_with`](Self::solve_with) to share an engine across solves.
    pub fn solve(&self, problem: &SizingProblem<'_>) -> OgwsOutcome {
        let mut engine = SizingEngine::for_problem(problem);
        self.solve_with(problem, &mut engine)
    }

    /// Runs the outer loop using a caller-provided engine.
    ///
    /// The engine must have been built for the same circuit and coupling set
    /// as `problem`. After the one-time setup below, the per-iteration loop
    /// performs no heap allocation: the LRS sweeps, timing analysis and
    /// multiplier updates all run inside the engine's workspace, and the
    /// candidate/best/last size vectors are preallocated buffers.
    ///
    /// # Panics
    ///
    /// Panics when the engine is bound to a different circuit or coupling
    /// set than `problem` (the check is two pointer comparisons, free
    /// relative to a solve, and a mismatch would silently produce garbage).
    pub fn solve_with<M: DelayModel>(
        &self,
        problem: &SizingProblem<'_>,
        engine: &mut SizingEngine<'_, M>,
    ) -> OgwsOutcome {
        self.solve_controlled(problem, engine, None, &RunControl::new())
    }

    /// Runs the outer loop with an optional warm start and a [`RunControl`].
    ///
    /// With `warm_start == None` and a default control this is **exactly**
    /// [`solve_with`](Self::solve_with): the control checks read two
    /// `Option`s per iteration and never touch the clock, so the iterate
    /// sequence is bit-identical.
    ///
    /// A warm-start vector (clamped into the component bounds) seeds the
    /// "best feasible so far" candidate before the first iteration when it
    /// satisfies every constraint. The multiplier trajectory — and hence the
    /// dual bound — is unaffected, so a run warm-started from a feasible
    /// solution converges in at most as many iterations as the cold run that
    /// produced it (its duality gap at every iteration is no larger).
    ///
    /// The control is consulted before every iteration (cancellation, then
    /// deadline, then iteration budget) and between LRS sweeps within an
    /// iteration (cancellation and deadline); the reason the loop stopped is
    /// recorded in [`OgwsOutcome::stop_reason`]. The observer, if any,
    /// receives one [`IterationEvent`] per completed iteration.
    ///
    /// # Panics
    ///
    /// Panics when the engine is bound to a different circuit or coupling
    /// set than `problem`, or when `warm_start` has the wrong length.
    pub fn solve_controlled<M: DelayModel>(
        &self,
        problem: &SizingProblem<'_>,
        engine: &mut SizingEngine<'_, M>,
        warm_start: Option<&SizeVector>,
        control: &RunControl<'_>,
    ) -> OgwsOutcome {
        self.solve_impl(problem, engine, warm_start, None, control)
    }

    /// Re-enters the outer loop from a [`Snapshot`] instead of restarting.
    ///
    /// The snapshot (captured by an earlier run through the control's
    /// [`CheckpointSink`](crate::CheckpointSink)) restores the multiplier
    /// state, the last completed iterate, the best-feasible bookkeeping and
    /// — under the adaptive strategy — the schedule's freeze/verification
    /// state; iteration `iterations_done + 1` then runs with the step
    /// schedule, feasibility rules and stopping rules of an uninterrupted
    /// run. Under [`SolveStrategy::Exact`] the continuation is bitwise
    /// identical to the run that produced the snapshot; under the adaptive
    /// strategy the final metrics land within `1e-6` relative (the cached
    /// electrical tables are re-derived from the snapshot sizes rather than
    /// carried over). A control's iteration budget counts only the resumed
    /// attempt's iterations, so a serving layer can give every attempt the
    /// same slice.
    ///
    /// # Panics
    ///
    /// Panics when the engine is bound to a different circuit or coupling
    /// set than `problem`, or when the snapshot does not belong to this
    /// problem (see [`Snapshot::validate_for`]). Fallible validation lives
    /// at the flow layer
    /// ([`Ordered::size_resume`](crate::flow::Ordered::size_resume)).
    pub fn solve_resumed<M: DelayModel>(
        &self,
        problem: &SizingProblem<'_>,
        engine: &mut SizingEngine<'_, M>,
        snapshot: &Snapshot,
        control: &RunControl<'_>,
    ) -> OgwsOutcome {
        if let Err(reason) = snapshot.validate_for(problem.graph) {
            panic!("cannot resume from snapshot: {reason}");
        }
        self.solve_impl(problem, engine, None, Some(snapshot), control)
    }

    fn solve_impl<M: DelayModel>(
        &self,
        problem: &SizingProblem<'_>,
        engine: &mut SizingEngine<'_, M>,
        warm_start: Option<&SizeVector>,
        resume: Option<&Snapshot>,
        control: &RunControl<'_>,
    ) -> OgwsOutcome {
        assert!(
            std::ptr::eq(problem.graph, engine.graph()),
            "engine was built for a different circuit than the problem"
        );
        assert!(
            std::ptr::eq(problem.coupling, engine.coupling()),
            "engine was built for a different coupling set than the problem"
        );
        let graph = problem.graph;
        let bounds = problem.bounds;
        let extras = &problem.extras;
        // Apply the configuration's parallel policy for the whole run. Under
        // `ParallelPolicy::Level` every traversal (LRS sweeps, timing,
        // subgradient update, flow projection) runs over the fixed chunk
        // grid, bitwise identical for every thread count; `Sequential` (the
        // default) keeps the single-threaded paths untouched.
        engine.set_parallel(self.config.parallel);
        let lrs = LrsSolver::new(self.config.max_lrs_sweeps, self.config.lrs_tolerance);
        // The adaptive schedule keeps freeze/cache state on the engine
        // across the solves of one run; start every run clean so engines
        // shared across runs stay reproducible.
        let adaptive = match &self.config.solve_strategy {
            SolveStrategy::Exact => None,
            SolveStrategy::Adaptive(schedule) => {
                engine.reset_schedule();
                Some(*schedule)
            }
        };
        // Lane-blocked aggregate reductions ride the adaptive strategy's
        // epsilon-pinned contract; the exact strategy keeps the strictly
        // ordered scalar reductions bitwise-pinned to `crate::reference`
        // under every parallel policy.
        engine.set_lane_aggregates(adaptive.is_some());
        // A resumed adaptive run carries the interrupted run's freeze sets
        // and verification cadence forward (after the reset above wiped any
        // leaked state).
        if let Some(snapshot) = resume {
            if adaptive.is_some() {
                if let Some(state) = &snapshot.schedule {
                    engine.restore_schedule_state(state);
                }
            }
        }
        let num_components = graph.num_components();

        // A1: initial multipliers (projected so Theorem 3 holds from the
        // start); one extra block per constraint family. The fanout→slot
        // cross-reference is built once so every per-iteration projection is
        // a contiguous walk.
        let flow_index = FlowIndex::new(graph);
        let mut multipliers = match resume {
            // A resume re-enters after the snapshot iteration's A4/A5 steps:
            // the stored multipliers are already projected, so re-running A1
            // (or re-projecting) would perturb the trajectory.
            Some(snapshot) => {
                let blocks: Vec<usize> = snapshot
                    .multipliers
                    .extra_blocks()
                    .iter()
                    .map(Vec::len)
                    .collect();
                assert_eq!(
                    blocks,
                    extras.block_sizes(),
                    "snapshot multipliers' extra blocks must match the problem's constraint families"
                );
                snapshot.multipliers.clone()
            }
            None => {
                let mut multipliers = Multipliers::uniform(
                    graph,
                    self.config.initial_edge_multiplier,
                    self.config.initial_scalar_multiplier,
                );
                multipliers.attach_extras(extras, self.config.initial_scalar_multiplier);
                project_flow_conservation_indexed(graph, &flow_index, &mut multipliers);
                multipliers
            }
        };

        // One-time buffer setup; the loop below reuses all of these. The
        // record capacity is capped so an extravagant iteration limit does
        // not become an extravagant upfront allocation.
        let mut iterations = Vec::with_capacity(self.config.max_iterations.min(1024));
        let mut sizes = graph.minimum_sizes();
        let mut best_sizes = graph.minimum_sizes();
        let mut best_area = f64::INFINITY;
        let mut have_feasible = false;
        let mut best_gap = f64::INFINITY;
        let mut best_dual = f64::NEG_INFINITY;
        let mut converged = false;
        let mut stagnant = 0usize;
        let mut stop_reason = StopReason::IterationLimit;
        // Flattened per-constraint violations of the extra families, reused
        // across iterations (empty — and allocation-free — without extras).
        let mut extra_violations = vec![0.0; extras.total_constraints()];

        // Warm start: a feasible seed becomes the initial primal upper bound,
        // so the gap stopping rule can fire from the first iteration.
        if let Some(warm) = warm_start {
            assert_eq!(
                warm.len(),
                sizes.len(),
                "warm-start vector must have one entry per sizable component"
            );
            sizes.copy_from(warm);
            sizes.clamp_into(&engine.lower_bound, &engine.upper_bound);
            let total_cap = engine.total_capacitance(&sizes);
            let crosstalk_lhs = engine.crosstalk_lhs(&sizes);
            let warm_area = engine.total_area(&sizes);
            let timing = engine.timing(&sizes);
            let feasible = timing.critical_path_delay - bounds.delay
                <= bounds.delay * FEASIBILITY_TOLERANCE
                && total_cap - bounds.total_capacitance
                    <= bounds.total_capacitance * FEASIBILITY_TOLERANCE
                && crosstalk_lhs - problem.reduced_crosstalk_bound()
                    <= bounds.crosstalk * FEASIBILITY_TOLERANCE
                && extras.feasible_within(&sizes, FEASIBILITY_TOLERANCE);
            if feasible {
                best_area = warm_area;
                best_sizes.copy_from(&sizes);
                have_feasible = true;
            }
        }

        // Resume: restore the interrupted run's loop state. The iteration
        // counter continues globally (the step schedule `ρ_k` and the
        // periodic checkpoint cadence both key off it), while the records —
        // and any iteration budget — cover only this attempt.
        let start_k = match resume {
            Some(snapshot) => {
                sizes.copy_from(&snapshot.sizes);
                if let Some(best) = &snapshot.best_sizes {
                    best_sizes.copy_from(best);
                    best_area = snapshot.best_area.unwrap_or(f64::INFINITY);
                    have_feasible = true;
                }
                best_gap = snapshot.best_gap.unwrap_or(f64::INFINITY);
                best_dual = snapshot.best_dual.unwrap_or(f64::NEG_INFINITY);
                stagnant = snapshot.stagnant;
                snapshot.iterations_done
            }
            None => 0,
        };

        // Checkpoint bookkeeping. The loop keeps the state of the last
        // *completed* iteration aside, because an interrupt that cuts an LRS
        // solve short leaves `sizes` (and the adaptive schedule) holding a
        // partial iterate that must never leak into a snapshot. Without a
        // sink none of this allocates or runs.
        let checkpointing = control.has_checkpoint_sink();
        let mut completed_sizes = checkpointing.then(|| sizes.clone());
        let mut completed_schedule = if checkpointing && adaptive.is_some() {
            Some(engine.schedule_state())
        } else {
            None
        };
        let mut last_completed = start_k;

        for k in (start_k + 1)..=self.config.max_iterations {
            // Cooperative limits, checked before any work so a cancelled or
            // expired run performs no further iterations.
            if let Some(reason) = control.stop_before_iteration(iterations.len()) {
                stop_reason = reason;
                break;
            }
            let started = Instant::now();

            // A2 + A3: solve the relaxation and analyze timing at its solution.
            let (lrs_sweeps, touched_components, frozen_components) = match &adaptive {
                None => {
                    let stats =
                        lrs.solve_constrained(engine, extras, &multipliers, &mut sizes, control);
                    // An exact sweep touches every component.
                    (stats.sweeps, stats.sweeps * num_components, 0)
                }
                Some(schedule) => {
                    let stats = lrs.solve_scheduled(
                        engine,
                        extras,
                        &multipliers,
                        &mut sizes,
                        control,
                        schedule,
                    );
                    (
                        stats.sweeps,
                        stats.touched_components,
                        stats.frozen_components,
                    )
                }
            };
            // With a checkpoint sink attached, an interrupt that fired
            // mid-solve invalidates this iteration (the coordinate descent
            // was cut short); discard the partial iterate so every snapshot
            // — and the resumed trajectory — sits on a completed-iteration
            // boundary. Without a sink the historical behavior is kept: the
            // truncated iterate still finishes its iteration.
            if checkpointing && control.interrupted() {
                stop_reason = if control.is_cancelled() {
                    StopReason::Cancelled
                } else {
                    StopReason::DeadlineExpired
                };
                break;
            }
            // Constraint values and the primal objective, through the
            // engine's dense tables (bitwise identical to the graph walks,
            // at a fraction of the pointer-chasing cost), then the timing
            // picture.
            let total_cap = engine.total_capacitance(&sizes);
            let crosstalk_lhs = engine.crosstalk_lhs(&sizes);
            let primal_area = engine.total_area(&sizes);
            // End the timing view's exclusive borrow right away: the delays
            // and arrivals stay in the engine workspace (stable until the
            // next `&mut` evaluation), which lets the A4/A5 steps below
            // share the engine's parallel runtime.
            let critical_path_delay = engine.timing(&sizes).critical_path_delay;
            let ws = engine.workspace();
            let delay_violation = critical_path_delay - bounds.delay;
            let power_violation = total_cap - bounds.total_capacitance;
            let crosstalk_violation = crosstalk_lhs - problem.reduced_crosstalk_bound();
            extras.violations_into(&sizes, &mut extra_violations);
            let worst_extra_rel = extras
                .worst_relative_from(&extra_violations)
                .map_or(0.0, |worst| worst.max(0.0));
            let feasible = delay_violation <= bounds.delay * FEASIBILITY_TOLERANCE
                && power_violation <= bounds.total_capacitance * FEASIBILITY_TOLERANCE
                && crosstalk_violation <= bounds.crosstalk * FEASIBILITY_TOLERANCE
                && worst_extra_rel <= FEASIBILITY_TOLERANCE;

            // Primal / dual book-keeping. Every dual value is a valid lower
            // bound on the optimal area, so the gap is measured between the
            // best feasible (upper bound) and the best dual (lower bound)
            // seen so far.
            let dual = dual_value_from_parts(
                problem,
                &multipliers,
                &sizes,
                &ws.delays,
                primal_area,
                total_cap,
                crosstalk_lhs,
            );
            let mut improved = false;
            if !best_dual.is_finite() || dual > best_dual + best_dual.abs() * 1e-4 {
                improved = true;
            }
            best_dual = best_dual.max(dual);
            if feasible {
                let better = !have_feasible || primal_area < best_area * (1.0 - 1e-4);
                if better {
                    best_area = primal_area;
                    best_sizes.copy_from(&sizes);
                    have_feasible = true;
                    improved = true;
                }
            }
            let reference = if have_feasible {
                best_area
            } else {
                primal_area
            };
            let gap = (reference - best_dual).max(0.0) / reference.abs().max(1e-12);
            best_gap = best_gap.min(gap);
            stagnant = if improved { 0 } else { stagnant + 1 };

            // A4: subgradient step on every multiplier, normalized
            // violations. Each node updates only its own fanin multipliers,
            // so the walk distributes over flat chunks with bitwise-
            // identical results (the engine's runtime runs it sequentially
            // under the default policy).
            let step = self.config.step_schedule.value(k);
            Self::update_multipliers(
                problem,
                &flow_index,
                &mut multipliers,
                &ws.arrival,
                &ws.delays,
                step,
                power_violation,
                crosstalk_violation,
                &extra_violations,
                engine.par_runtime(),
            );
            // A5: project back onto the optimality condition — level-
            // parallel (reverse dependency order) when the engine exposes
            // its grid, the sequential walk otherwise; bitwise identical
            // either way.
            match engine.level_ctx() {
                Some((topo, grid)) => project_flow_conservation_leveled(
                    graph,
                    &flow_index,
                    &mut multipliers,
                    topo,
                    grid,
                    engine.par_runtime(),
                ),
                None => project_flow_conservation_indexed(graph, &flow_index, &mut multipliers),
            }

            iterations.push(IterationRecord {
                iteration: k,
                primal_area,
                dual_value: dual,
                gap,
                delay_violation,
                power_violation,
                crosstalk_violation,
                extra_violation: worst_extra_rel,
                seconds: started.elapsed().as_secs_f64(),
                lrs_sweeps,
                touched_components,
                frozen_components,
            });
            control.notify(&IterationEvent {
                record: iterations.last().expect("record just pushed"),
                step,
                best_gap,
                feasible,
            });

            // Completed-iteration bookkeeping for checkpointing, plus the
            // periodic capture policy (keyed on the global iteration, so a
            // resumed run keeps the original cadence).
            if checkpointing {
                last_completed = k;
                completed_sizes
                    .as_mut()
                    .expect("allocated when checkpointing")
                    .copy_from(&sizes);
                if adaptive.is_some() {
                    completed_schedule = Some(engine.schedule_state());
                }
                if control.checkpoint_due(k) {
                    control.deliver_checkpoint(Self::make_snapshot(
                        k,
                        num_components,
                        &sizes,
                        &multipliers,
                        have_feasible,
                        &best_sizes,
                        best_area,
                        best_gap,
                        best_dual,
                        stagnant,
                        completed_schedule.clone(),
                    ));
                }
            }

            // A7: stop on a small duality gap once a feasible iterate exists.
            if gap <= self.config.gap_tolerance && have_feasible {
                converged = true;
                stop_reason = StopReason::Converged;
                break;
            }
            // Secondary stop: neither bound has moved for a long stretch —
            // the subgradient method has stalled within its step resolution,
            // so further iterations cannot tighten the certificate.
            if stagnant >= STAGNATION_LIMIT && have_feasible {
                stop_reason = StopReason::Stagnated;
                break;
            }
        }

        // A cancellation or deadline that fired during the *final* configured
        // iteration would otherwise masquerade as an ordinary
        // iteration-limit exit (the loop leaves through the range bound
        // before the next boundary check); report what actually cut the
        // iteration short. Uncontrolled runs read two `None`s here.
        if stop_reason == StopReason::IterationLimit {
            if control.is_cancelled() {
                stop_reason = StopReason::Cancelled;
            } else if control.deadline_expired() {
                stop_reason = StopReason::DeadlineExpired;
            }
        }

        // Final snapshot for interrupted runs, from the last completed
        // iteration's state (a discarded partial iterate never leaks: its
        // A4/A5 steps did not run, so `multipliers` still belong to the
        // last completed boundary).
        if stop_reason.is_interrupted() && control.checkpoint_on_interrupt() {
            let boundary_sizes = completed_sizes.as_ref().expect("sink implies buffers");
            control.deliver_checkpoint(Self::make_snapshot(
                last_completed,
                num_components,
                boundary_sizes,
                &multipliers,
                have_feasible,
                &best_sizes,
                best_area,
                best_gap,
                best_dual,
                stagnant,
                completed_schedule,
            ));
        }

        // On the infeasible exit `sizes` still holds the last LRS iterate.
        let (feasible, sizes) = if have_feasible {
            (true, best_sizes)
        } else {
            (false, sizes)
        };
        let extra_multipliers = multipliers.extra_blocks().to_vec();
        OgwsOutcome {
            sizes,
            feasible,
            converged,
            stop_reason,
            iterations,
            best_gap,
            beta: multipliers.beta,
            gamma: multipliers.gamma,
            extra_multipliers,
        }
    }

    /// Builds a [`Snapshot`] describing a completed-iteration boundary.
    /// Non-finite sentinel bounds map to `None` so the JSON form stays
    /// lossless (the serializer writes non-finite floats as `null`).
    #[allow(clippy::too_many_arguments)]
    fn make_snapshot(
        iterations_done: usize,
        num_components: usize,
        sizes: &SizeVector,
        multipliers: &Multipliers,
        have_feasible: bool,
        best_sizes: &SizeVector,
        best_area: f64,
        best_gap: f64,
        best_dual: f64,
        stagnant: usize,
        schedule: Option<ScheduleState>,
    ) -> Snapshot {
        Snapshot {
            format: SNAPSHOT_FORMAT,
            iterations_done,
            num_components,
            sizes: sizes.clone(),
            multipliers: multipliers.clone(),
            best_sizes: have_feasible.then(|| best_sizes.clone()),
            best_area: have_feasible.then_some(best_area),
            best_gap: best_gap.is_finite().then_some(best_gap),
            best_dual: best_dual.is_finite().then_some(best_dual),
            stagnant,
            schedule,
        }
    }

    /// A4 of Figure 9: move every multiplier along its constraint violation.
    /// `arrival` and `delays` are indexed by raw node index;
    /// `extra_violations` is flattened in family order (as produced by
    /// [`ConstraintSet::violations_into`](crate::ConstraintSet::violations_into)).
    /// The per-edge walk runs through `par` (flat chunks over the nodes):
    /// each node writes only its own fanin slots and reads only the fixed
    /// arrival/delay tables, so the distributed walk is bitwise identical
    /// to the sequential one at every thread count.
    #[allow(clippy::too_many_arguments)]
    fn update_multipliers(
        problem: &SizingProblem<'_>,
        index: &FlowIndex,
        multipliers: &mut Multipliers,
        arrival: &[f64],
        delays: &[f64],
        step: f64,
        power_violation: f64,
        crosstalk_violation: f64,
        extra_violations: &[f64],
        par: &ParRuntime,
    ) {
        let graph = problem.graph;
        let bounds = problem.bounds;
        let a0 = bounds.delay.max(1e-12);

        // Multiplicative form of the subgradient step: each multiplier moves
        // by a factor `1 + ρ_k · (normalized violation)`. The fixed points are
        // identical to the additive rule (a multiplier stops moving exactly
        // when its constraint is tight or it has decayed to zero), but the
        // relative step keeps multipliers of very different magnitudes stable
        // and avoids the zig-zag an absolute step produces on the piecewise
        // linear dual.
        let bumped = move |value: f64, relative_violation: f64| -> f64 {
            let factor = (1.0 + step * relative_violation).clamp(0.2, 5.0);
            (value * factor).max(1e-12)
        };

        // Walk the dense outer-loop index (flat kinds, fanin ids and
        // multiplier values) instead of chasing the per-node adjacency
        // `Vec`s; same traversal order and arithmetic as the graph walk.
        let kinds = index.kinds();
        let n = graph.num_nodes();
        let source = graph.source().index();
        assert_eq!(arrival.len(), n, "arrival must match the circuit");
        assert_eq!(delays.len(), n, "delays must match the circuit");
        {
            let (offsets, values) = multipliers.flat_mut();
            assert_eq!(offsets.len(), n + 1, "multipliers must match the circuit");
            let values_s = SharedMut::new(values);
            par.run_flat(par::flat_chunks(n), |chunk| {
                for i in par::flat_range(n, chunk) {
                    if i == source {
                        continue;
                    }
                    let kind = kinds[i];
                    let fanin = index.fanin_flat(i);
                    let base = offsets[i] as usize;
                    for (slot, &j) in fanin.iter().enumerate() {
                        let j = j as usize;
                        let violation = match kind {
                            NodeKind::Sink => arrival[j] - a0,
                            NodeKind::Gate(_) | NodeKind::Wire => {
                                if j == source {
                                    continue;
                                }
                                arrival[j] + delays[i] - arrival[i]
                            }
                            NodeKind::Driver => delays[i] - arrival[i],
                            NodeKind::Source => continue,
                        };
                        // SAFETY: slot `base + slot` belongs to node `i`'s
                        // fanin range, written by this chunk only.
                        unsafe {
                            values_s.set(
                                base + slot,
                                bumped(values_s.get(base + slot), violation / a0),
                            )
                        };
                    }
                }
            });
        }
        let bump = |value: &mut f64, relative_violation: f64| {
            *value = bumped(*value, relative_violation);
        };
        bump(
            &mut multipliers.beta,
            power_violation / bounds.total_capacitance.max(1e-12),
        );
        let x_ref = bounds.crosstalk.max(1e-12);
        bump(&mut multipliers.gamma, crosstalk_violation / x_ref);
        // The extra-family multipliers follow the same multiplicative rule,
        // each normalized by its own bound.
        let mut offset = 0;
        for (family, block) in problem
            .extras
            .families()
            .iter()
            .zip(multipliers.extra_blocks_mut())
        {
            for (k, mu) in block.iter_mut().enumerate() {
                bump(
                    mu,
                    family.relative_violation(k, extra_violations[offset + k]),
                );
            }
            offset += family.len();
        }
        multipliers.clamp_non_negative();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ConstraintBounds;
    use ncgws_circuit::{CircuitBuilder, CircuitGraph, GateKind, Technology, TimingAnalysis};
    use ncgws_coupling::{CouplingPair, CouplingSet, WirePairGeometry};

    /// A two-stage chain with a pair of coupled wires.
    fn setup() -> (CircuitGraph, CouplingSet) {
        let mut b = CircuitBuilder::new(Technology::dac99());
        let d = b.add_driver("d", 150.0).unwrap();
        let d2 = b.add_driver("d2", 150.0).unwrap();
        let w1 = b.add_wire("w1", 250.0).unwrap();
        let w2 = b.add_wire("w2", 250.0).unwrap();
        let g1 = b.add_gate("g1", GateKind::Nand).unwrap();
        let w3 = b.add_wire("w3", 300.0).unwrap();
        let g2 = b.add_gate("g2", GateKind::Inv).unwrap();
        let w4 = b.add_wire("w4", 200.0).unwrap();
        b.connect(d, w1).unwrap();
        b.connect(d2, w2).unwrap();
        b.connect(w1, g1).unwrap();
        b.connect(w2, g1).unwrap();
        b.connect(g1, w3).unwrap();
        b.connect(w3, g2).unwrap();
        b.connect(g2, w4).unwrap();
        b.connect_output(w4, 10.0).unwrap();
        let graph = b.build().unwrap();
        let w1 = graph.node_by_name("w1").unwrap();
        let w2 = graph.node_by_name("w2").unwrap();
        let geom = WirePairGeometry::new(200.0, 11.0, 0.03).unwrap();
        let coupling =
            CouplingSet::new(&graph, vec![CouplingPair::new(w1, w2, geom).unwrap()]).unwrap();
        (graph, coupling)
    }

    fn config(max_iterations: usize) -> OptimizerConfig {
        OptimizerConfig {
            max_iterations,
            ..OptimizerConfig::default()
        }
    }

    #[test]
    fn loose_bounds_drive_sizes_to_the_minimum() {
        let (graph, coupling) = setup();
        let bounds = ConstraintBounds {
            delay: 1e12,
            total_capacitance: 1e12,
            crosstalk: 1e12,
        };
        let problem = SizingProblem::new(&graph, &coupling, bounds).unwrap();
        let outcome = OgwsSolver::new(config(60)).solve(&problem);
        assert!(outcome.feasible);
        // With no binding constraint the optimal area is the minimum area.
        let min_area = problem.area(&graph.minimum_sizes());
        let area = problem.area(&outcome.sizes);
        assert!(
            area <= min_area * 1.05,
            "area {area} should approach the unconstrained minimum {min_area}"
        );
    }

    /// Critical-path delay under a uniform sizing (with coupling load).
    fn uniform_delay(graph: &CircuitGraph, coupling: &CouplingSet, size: f64) -> f64 {
        let sizes = graph.uniform_sizes(size);
        let extra = coupling.delay_load_per_node(graph, &sizes);
        TimingAnalysis::run(graph, &sizes, Some(&extra)).critical_path_delay
    }

    /// The fastest delay achievable by any uniform sizing — an achievable
    /// (hence feasible) delay target for the tests below.
    fn best_uniform_delay(graph: &CircuitGraph, coupling: &CouplingSet) -> f64 {
        [0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0]
            .into_iter()
            .map(|s| uniform_delay(graph, coupling, s))
            .fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn delay_bound_is_met_when_achievable() {
        let (graph, coupling) = setup();
        // A delay 5% above the best uniform sizing is certainly achievable.
        let target = best_uniform_delay(&graph, &coupling) * 1.05;

        let bounds = ConstraintBounds {
            delay: target,
            total_capacitance: 1e12,
            crosstalk: 1e12,
        };
        let problem = SizingProblem::new(&graph, &coupling, bounds).unwrap();
        let outcome = OgwsSolver::new(config(150)).solve(&problem);
        assert!(
            outcome.feasible,
            "a feasible sizing exists and must be found"
        );
        let extra = coupling.delay_load_per_node(&graph, &outcome.sizes);
        let achieved =
            TimingAnalysis::run(&graph, &outcome.sizes, Some(&extra)).critical_path_delay;
        // The solver declares feasibility up to FEASIBILITY_TOLERANCE, so the
        // achieved delay may exceed the bound by at most that fraction.
        assert!(
            achieved <= target * (1.0 + 2.0 * FEASIBILITY_TOLERANCE),
            "achieved {achieved} vs target {target}"
        );
        // And the solution should not be everything-at-maximum.
        assert!(problem.area(&outcome.sizes) < problem.area(&graph.maximum_sizes()) * 0.9);
    }

    #[test]
    fn iteration_records_are_populated() {
        let (graph, coupling) = setup();
        let bounds = ConstraintBounds {
            delay: 1e12,
            total_capacitance: 1e12,
            crosstalk: 1e12,
        };
        let problem = SizingProblem::new(&graph, &coupling, bounds).unwrap();
        let outcome = OgwsSolver::new(config(5)).solve(&problem);
        assert!(!outcome.iterations.is_empty());
        assert!(outcome.num_iterations() <= 5);
        for (i, record) in outcome.iterations.iter().enumerate() {
            assert_eq!(record.iteration, i + 1);
            assert!(record.primal_area > 0.0);
            assert!(record.lrs_sweeps >= 1);
            assert!(record.seconds >= 0.0);
        }
        assert!(outcome.seconds_per_iteration() >= 0.0);
        assert!(outcome.total_seconds() >= 0.0);
    }

    #[test]
    fn crosstalk_bound_reduces_noise_against_unconstrained_run() {
        let (graph, coupling) = setup();
        // A tight-but-achievable delay bound so the unconstrained solution
        // needs sizable wires (and therefore has crosstalk headroom to cut).
        let delay_bound = best_uniform_delay(&graph, &coupling) * 1.05;

        let loose = ConstraintBounds {
            delay: delay_bound,
            total_capacitance: 1e12,
            crosstalk: 1e12,
        };
        let problem = SizingProblem::new(&graph, &coupling, loose).unwrap();
        let reference = OgwsSolver::new(config(150)).solve(&problem);
        assert!(reference.feasible);
        let reference_noise = coupling.total_crosstalk(&graph, &reference.sizes);

        // Ask for a crosstalk bound between the minimum achievable and the
        // unconstrained solution's value, so it is feasible but binding.
        let min_noise = coupling.total_crosstalk(&graph, &graph.minimum_sizes());
        let bound = min_noise + 0.3 * (reference_noise - min_noise).max(0.0);
        if bound >= reference_noise {
            // The delay constraint already forces near-minimum coupling;
            // nothing further to verify on this instance.
            return;
        }
        let tight = ConstraintBounds {
            delay: delay_bound,
            total_capacitance: 1e12,
            crosstalk: bound,
        };
        let problem = SizingProblem::new(&graph, &coupling, tight).unwrap();
        let constrained = OgwsSolver::new(config(200)).solve(&problem);
        assert!(constrained.feasible);
        let constrained_noise = coupling.total_crosstalk(&graph, &constrained.sizes);
        assert!(
            constrained_noise <= bound * (1.0 + 1e-6),
            "constrained {constrained_noise} vs bound {bound}"
        );
    }
}
