//! Stage 1 of the two-stage flow: switching-aware wire ordering and
//! construction of the coupling model.
//!
//! Given a [`ProblemInstance`], this module
//!
//! 1. logic-simulates the circuit over the instance's input patterns,
//! 2. computes the switching-similarity matrix of every routing channel,
//! 3. orders the wires of each channel (WOSS by default),
//! 4. assigns the ordered wires to adjacent tracks at the channel pitch and
//!    builds one [`CouplingPair`] per adjacent pair — optionally carrying the
//!    Miller/anti-Miller switching factor,
//! 5. assembles the [`CouplingSet`] the sizing stage consumes.

use ncgws_circuit::NodeId;
use ncgws_coupling::{CouplingPair, CouplingSet, WirePairGeometry};
use ncgws_netlist::ProblemInstance;
use ncgws_ordering::{baselines, exact_ordering, woss, Adjacency, SsProblem, WireOrdering};
use ncgws_waveform::{miller_factor, LogicSimulator, SimilarityMatrix, SimulationTrace};
use serde::{Deserialize, Serialize};

use crate::error::CoreError;

/// Which algorithm orders the wires of each channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OrderingStrategy {
    /// The paper's WOSS heuristic (Figure 7).
    Woss,
    /// Keep the wires in netlist order (similarity-oblivious router).
    Identity,
    /// A reproducible random order.
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// Nearest-neighbor greedy tried from every start (ablation upper bound
    /// for greedy approaches).
    BestStartNearestNeighbor,
    /// Exact Held–Karp ordering; falls back to WOSS for channels larger than
    /// the exact solver's limit.
    Exact,
}

/// The result of stage 1: per-channel orderings, their total effective
/// loading, and the assembled coupling set.
#[derive(Debug, Clone)]
pub struct WireOrderingOutcome {
    /// One ordering per routing channel.
    pub orderings: Vec<WireOrdering>,
    /// Sum of the orderings' effective loading `Σ (1 − similarity)` over
    /// adjacent pairs — the objective of the SS problem.
    pub total_effective_loading: f64,
    /// The coupling set induced by the orderings.
    pub coupling: CouplingSet,
    /// The adjacency (`N(i)` / `I(i)`) induced by the orderings.
    pub adjacency: Adjacency,
}

fn solve_channel(problem: &SsProblem, strategy: OrderingStrategy) -> WireOrdering {
    match strategy {
        OrderingStrategy::Woss => woss(problem),
        OrderingStrategy::Identity => baselines::identity_ordering(problem),
        OrderingStrategy::Random { seed } => baselines::random_ordering(problem, seed),
        OrderingStrategy::BestStartNearestNeighbor => {
            baselines::best_start_nearest_neighbor(problem)
        }
        OrderingStrategy::Exact => exact_ordering(problem).unwrap_or_else(|_| woss(problem)),
    }
}

/// Runs stage 1 on a problem instance.
///
/// When `effective_coupling` is `true`, every coupling pair carries the
/// Miller factor `1 − similarity` so the sizing stage constrains *effective*
/// crosstalk; otherwise the factor is neutral (`1`) and the constraint is the
/// purely physical coupling, as in the paper's second stage.
///
/// # Errors
///
/// Returns a [`CoreError::Coupling`] if the induced coupling pairs are
/// geometrically invalid (e.g. the channel pitch cannot accommodate the
/// maximum wire widths).
pub fn build_coupling(
    instance: &ProblemInstance,
    strategy: OrderingStrategy,
    effective_coupling: bool,
) -> Result<WireOrderingOutcome, CoreError> {
    let graph = &instance.circuit;
    let simulator = LogicSimulator::new(graph);
    let trace = simulator.simulate(&instance.patterns);

    // Per-channel ordering is embarrassingly parallel: each channel only
    // reads the shared trace. With the `parallel` feature the channels are
    // fanned out across OS threads; results come back in channel order
    // either way, so the assembled coupling set is identical.
    let solved = order_channels(instance, &trace, strategy, effective_coupling);

    let mut orderings = Vec::with_capacity(solved.len());
    let mut pairs: Vec<CouplingPair> = Vec::new();
    let mut total_effective_loading = 0.0;

    for (similarity, ordering) in solved {
        total_effective_loading += ordering.cost();

        // Adjacent tracks couple; build one pair per adjacent position.
        for pair in ordering.sequence().windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let len_a = instance.wire_length(a);
            let len_b = instance.wire_length(b);
            let overlap = instance.geometry.overlap_length(len_a, len_b).max(1e-3);
            let geometry = WirePairGeometry::new(
                overlap,
                instance.geometry.pitch,
                instance.geometry.unit_fringing,
            )?;
            let mut coupling_pair = CouplingPair::new(a, b, geometry)?;
            if effective_coupling {
                let similarity = similarity
                    .as_ref()
                    .expect("similarity matrices are retained in effective mode")
                    .by_id(a, b)
                    .expect("both wires belong to the channel's similarity matrix");
                coupling_pair = coupling_pair.with_switching_factor(miller_factor(similarity));
            }
            pairs.push(coupling_pair);
        }
        orderings.push(ordering);
    }

    let coupling = CouplingSet::new(graph, pairs)?;
    let adjacency = Adjacency::from_orderings(orderings.iter());
    Ok(WireOrderingOutcome {
        orderings,
        total_effective_loading,
        coupling,
        adjacency,
    })
}

/// Solves the SS problem of one channel. The `O(k²)` similarity matrix is
/// returned only when the caller needs it afterwards (effective-coupling
/// mode); otherwise it is dropped here so peak memory stays at one channel's
/// matrix rather than the sum over all channels.
fn order_one(
    trace: &SimulationTrace,
    channel: &[NodeId],
    strategy: OrderingStrategy,
    keep_similarity: bool,
) -> (Option<SimilarityMatrix>, WireOrdering) {
    let similarity = SimilarityMatrix::from_trace(trace, channel);
    let problem = SsProblem::from_similarity(&similarity);
    let ordering = solve_channel(&problem, strategy);
    (keep_similarity.then_some(similarity), ordering)
}

/// Orders every non-empty channel, returning results in channel order.
#[cfg(not(feature = "parallel"))]
fn order_channels(
    instance: &ProblemInstance,
    trace: &SimulationTrace,
    strategy: OrderingStrategy,
    keep_similarity: bool,
) -> Vec<(Option<SimilarityMatrix>, WireOrdering)> {
    instance
        .channels
        .iter()
        .filter(|channel| !channel.is_empty())
        .map(|channel| order_one(trace, channel, strategy, keep_similarity))
        .collect()
}

/// Orders every non-empty channel, fanning the work out across OS threads
/// (`std::thread::scope`; a stand-in for a rayon pool while the build
/// environment cannot fetch crates). Results are reassembled in channel
/// order, so the output is bit-identical to the serial path.
#[cfg(feature = "parallel")]
fn order_channels(
    instance: &ProblemInstance,
    trace: &SimulationTrace,
    strategy: OrderingStrategy,
    keep_similarity: bool,
) -> Vec<(Option<SimilarityMatrix>, WireOrdering)> {
    let channels: Vec<&[NodeId]> = instance
        .channels
        .iter()
        .filter(|channel| !channel.is_empty())
        .map(Vec::as_slice)
        .collect();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = workers.min(channels.len()).max(1);
    if workers <= 1 {
        return channels
            .iter()
            .map(|channel| order_one(trace, channel, strategy, keep_similarity))
            .collect();
    }

    let mut slots: Vec<Option<(Option<SimilarityMatrix>, WireOrdering)>> = Vec::new();
    slots.resize_with(channels.len(), || None);
    let chunk = channels.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for (channel_chunk, slot_chunk) in channels.chunks(chunk).zip(slots.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (channel, slot) in channel_chunk.iter().zip(slot_chunk.iter_mut()) {
                    *slot = Some(order_one(trace, channel, strategy, keep_similarity));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every channel was ordered"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncgws_netlist::{CircuitSpec, SyntheticGenerator};

    fn instance() -> ProblemInstance {
        SyntheticGenerator::new(
            CircuitSpec::new("cb", 40, 90)
                .with_seed(21)
                .with_channel_size(6),
        )
        .generate()
        .unwrap()
    }

    #[test]
    fn builds_one_pair_per_adjacent_track() {
        let inst = instance();
        let outcome = build_coupling(&inst, OrderingStrategy::Woss, false).unwrap();
        let expected_pairs: usize = inst
            .channels
            .iter()
            .map(|c| c.len().saturating_sub(1))
            .sum();
        assert_eq!(outcome.coupling.len(), expected_pairs);
        assert_eq!(
            outcome.orderings.len(),
            inst.channels.iter().filter(|c| !c.is_empty()).count()
        );
        assert_eq!(outcome.adjacency.pairs().len(), expected_pairs);
    }

    #[test]
    fn woss_never_exceeds_identity_loading() {
        let inst = instance();
        let woss_outcome = build_coupling(&inst, OrderingStrategy::Woss, false).unwrap();
        let identity_outcome = build_coupling(&inst, OrderingStrategy::Identity, false).unwrap();
        // WOSS explicitly minimizes the effective loading; identity ignores it.
        assert!(
            woss_outcome.total_effective_loading <= identity_outcome.total_effective_loading + 1e-9
        );
    }

    #[test]
    fn orderings_permute_their_channels() {
        let inst = instance();
        let outcome = build_coupling(&inst, OrderingStrategy::Woss, false).unwrap();
        for (ordering, channel) in outcome.orderings.iter().zip(&inst.channels) {
            let mut expected: Vec<NodeId> = channel.clone();
            let mut actual: Vec<NodeId> = ordering.sequence().to_vec();
            expected.sort_unstable();
            actual.sort_unstable();
            assert_eq!(expected, actual);
        }
    }

    #[test]
    fn effective_mode_sets_switching_factors() {
        let inst = instance();
        let physical = build_coupling(&inst, OrderingStrategy::Woss, false).unwrap();
        assert!(physical
            .coupling
            .pairs()
            .iter()
            .all(|p| (p.switching_factor - 1.0).abs() < 1e-12));
        let effective = build_coupling(&inst, OrderingStrategy::Woss, true).unwrap();
        assert!(effective
            .coupling
            .pairs()
            .iter()
            .all(|p| (0.0..=2.0).contains(&p.switching_factor)));
        // At least one pair should deviate from the neutral factor.
        assert!(effective
            .coupling
            .pairs()
            .iter()
            .any(|p| (p.switching_factor - 1.0).abs() > 1e-6));
    }

    #[test]
    fn strategies_are_deterministic() {
        let inst = instance();
        for strategy in [
            OrderingStrategy::Woss,
            OrderingStrategy::Identity,
            OrderingStrategy::Random { seed: 5 },
            OrderingStrategy::BestStartNearestNeighbor,
            OrderingStrategy::Exact,
        ] {
            let a = build_coupling(&inst, strategy, false).unwrap();
            let b = build_coupling(&inst, strategy, false).unwrap();
            assert_eq!(
                a.total_effective_loading, b.total_effective_loading,
                "{strategy:?}"
            );
            assert_eq!(a.coupling.len(), b.coupling.len());
        }
    }
}
