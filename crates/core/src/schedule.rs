//! Adaptive solve schedules for the OGWS inner loop.
//!
//! The paper's Figure 8 restarts every LRS solve from the component lower
//! bounds and re-evaluates all `V` components, `E` stage couplings and `P`
//! coupling pairs on every coordinate sweep. That pays the `O(V + E + P)`
//! per-sweep bound in its most wasteful form: late in an OGWS run the
//! multipliers barely move between outer iterations, the previous iterate is
//! an excellent starting point, and the overwhelming majority of components
//! are either pinned to a size bound or already at their Theorem-5 fixed
//! point. This module makes the inner loop adaptive on three independent
//! axes, selected through [`SolveStrategy`] on
//! [`OptimizerConfig`](crate::OptimizerConfig):
//!
//! * **warm-started LRS** — each solve is seeded from the previous OGWS
//!   iterate instead of the lower bounds, so a steady-state solve converges
//!   in one or two sweeps instead of re-running the whole coordinate
//!   descent;
//! * **active-set sweeps** — the engine tracks the per-component relative
//!   change of every sweep and freezes components that have stayed below
//!   [`freeze_tolerance`](AdaptiveSchedule::freeze_tolerance) for
//!   [`freeze_after`](AdaptiveSchedule::freeze_after) consecutive sweeps;
//!   steady-state sweeps then touch only the active frontier. Every
//!   [`verify_every`](AdaptiveSchedule::verify_every)-th sweep is a full
//!   *verification sweep* that re-evaluates everything with exact (full
//!   rebuild) arithmetic, resizes every component, and unfreezes anything
//!   that moved;
//! * **sparse incremental evaluation** — between verification sweeps the
//!   downstream capacitances, λ-weighted upstream resistances and coupling
//!   loads are brought up to date by scattering the deltas of the resized
//!   components along the fanin/fanout DAG and the coupling-pair adjacency
//!   ([`DelayModel::downstream_caps_update`](ncgws_circuit::DelayModel::downstream_caps_update)),
//!   instead of rebuilding all three tables from scratch.
//!
//! [`SolveStrategy::Exact`] (the default) leaves the Figure-8 schedule
//! untouched — that path stays bitwise-pinned to [`crate::reference`]. The
//! adaptive path is validated by invariants instead of bitwise equality:
//! the final metrics land within tolerance of the exact schedule, the
//! reported duality gap is no worse, and the KKT residuals match — see the
//! `schedule_strategies` integration tests.
//!
//! Both schedules are orthogonal to the **parallel policy**
//! ([`crate::par`], [`OptimizerConfig::parallel`](crate::OptimizerConfig)):
//! under [`ParallelPolicy::Level`](crate::ParallelPolicy) the fused
//! Gauss–Seidel passes, the exact sweeps and the timing evaluations run
//! level-parallel over a fixed chunk grid, with outcomes bitwise identical
//! across thread counts (the `thread_determinism` integration tests pin
//! this, including the exact path's reference pinning).

use ncgws_circuit::{IncrementalWorkspace, SharedMut};
use serde::{Deserialize, Serialize};

use crate::error::CoreError;

/// How the OGWS inner loop schedules its LRS solves and coordinate sweeps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SolveStrategy {
    /// The paper's exact Figure-8 schedule: every solve restarts from the
    /// lower bounds and every sweep re-evaluates and resizes every
    /// component. Bitwise-pinned to [`crate::reference`].
    Exact,
    /// The adaptive schedule: warm starts, active-set sweeps and sparse
    /// incremental evaluation, as configured.
    Adaptive(AdaptiveSchedule),
}

// Not derived: `#[derive(Default)]` on an enum needs a `#[default]` variant
// attribute, which the vendored serde derive cannot parse past.
#[allow(clippy::derivable_impls)]
impl Default for SolveStrategy {
    fn default() -> Self {
        SolveStrategy::Exact
    }
}

impl SolveStrategy {
    /// The adaptive strategy with its default tuning.
    pub fn adaptive() -> Self {
        SolveStrategy::Adaptive(AdaptiveSchedule::default())
    }

    /// Whether this is the adaptive strategy.
    pub fn is_adaptive(&self) -> bool {
        matches!(self, SolveStrategy::Adaptive(_))
    }

    /// Validates the strategy's parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] naming the invalid field.
    pub fn validate(&self) -> Result<(), CoreError> {
        match self {
            SolveStrategy::Exact => Ok(()),
            SolveStrategy::Adaptive(schedule) => schedule.validate(),
        }
    }
}

/// Tuning of the adaptive solve schedule (see the module docs for the three
/// axes). The defaults favor throughput while keeping every invariant the
/// `schedule_strategies` tests check; tighten `freeze_tolerance` and
/// `verify_every` to track the exact schedule more closely.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveSchedule {
    /// Seed each LRS solve from the previous OGWS iterate instead of
    /// restarting at the lower bounds (Figure 8 step S1).
    pub warm_start: bool,
    /// Freeze components whose relative per-sweep change stays below
    /// [`freeze_tolerance`](Self::freeze_tolerance) for
    /// [`freeze_after`](Self::freeze_after) consecutive sweeps.
    pub active_set: bool,
    /// Relative size change below which a sweep counts as *calm* for a
    /// component.
    pub freeze_tolerance: f64,
    /// Number of consecutive calm sweeps after which a component is frozen.
    pub freeze_after: usize,
    /// Every `verify_every`-th sweep (counted across the whole OGWS run) is
    /// a full verification sweep: exact re-evaluation, every component
    /// resized, movers unfrozen.
    pub verify_every: usize,
    /// Use sparse incremental evaluation between verification sweeps
    /// (disable to re-evaluate fully while keeping the active-set resize).
    pub incremental: bool,
}

impl Default for AdaptiveSchedule {
    /// Defaults tuned on the Table-1 synthetic circuits: freezing a
    /// component after one sweep below 0.1 % relative change cuts the
    /// steady-state solve to a handful of passes, while the mandatory
    /// full re-check at the start of every solve and the periodic
    /// verification sweeps keep the final metrics within ~1e-5 relative of
    /// the exact schedule (the `schedule_strategies` tests pin the
    /// invariants; tighten `freeze_tolerance` to track the exact path more
    /// closely at a throughput cost).
    fn default() -> Self {
        AdaptiveSchedule {
            warm_start: true,
            active_set: true,
            freeze_tolerance: 1e-3,
            freeze_after: 1,
            verify_every: 8,
            incremental: true,
        }
    }
}

impl AdaptiveSchedule {
    /// Validates the schedule parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] naming the invalid field.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(self.freeze_tolerance.is_finite() && self.freeze_tolerance >= 0.0) {
            return Err(CoreError::InvalidConfig {
                name: "freeze_tolerance",
                reason: format!(
                    "must be non-negative and finite, got {}",
                    self.freeze_tolerance
                ),
            });
        }
        if self.freeze_after == 0 {
            return Err(CoreError::InvalidConfig {
                name: "freeze_after",
                reason: "must be at least 1".to_string(),
            });
        }
        if self.verify_every < 2 {
            return Err(CoreError::InvalidConfig {
                name: "verify_every",
                reason: "must be at least 2 (1 would make every sweep a full sweep)".to_string(),
            });
        }
        Ok(())
    }
}

/// Convergence and accounting statistics of one scheduled LRS solve
/// ([`LrsSolver::solve_scheduled`](crate::LrsSolver::solve_scheduled)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledStats {
    /// Number of coordinate sweeps performed.
    pub sweeps: usize,
    /// How many of those were full verification sweeps.
    pub full_sweeps: usize,
    /// Total component resize operations across all sweeps (a full sweep
    /// touches every component once).
    pub touched_components: usize,
    /// Components frozen at the end of the solve.
    pub frozen_components: usize,
    /// Whether the solve converged below the tolerance.
    pub converged: bool,
}

/// The serializable cross-solve state of the adaptive schedule — the part
/// of `ScheduleWorkspace` a [`Snapshot`](crate::Snapshot) must carry so a
/// resumed run keeps the freeze sets and the verification-sweep cadence of
/// the interrupted one. The cached electrical tables are deliberately *not*
/// captured: a restore leaves them unsynced, so the next solve rebuilds them
/// exactly from the snapshot sizes.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScheduleState {
    /// Consecutive calm sweeps per component.
    pub calm: Vec<u32>,
    /// Frozen flag per component.
    pub frozen: Vec<bool>,
    /// Sweeps performed across the run so far (the verification cadence
    /// counter).
    pub global_sweep: usize,
}

impl ScheduleState {
    /// Number of components the state covers.
    pub fn num_components(&self) -> usize {
        self.frozen.len()
    }

    /// Bytes held by the state's buffers.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        size_of::<Self>()
            + self.calm.capacity() * size_of::<u32>()
            + self.frozen.capacity() * size_of::<bool>()
    }
}

/// Per-engine mutable state of the adaptive schedule: the active/frozen
/// partition, calm-streak counters, dirty-set scratch for the sparse
/// incremental evaluation, and the `eval_sizes` snapshot the cached
/// electrical tables currently reflect.
///
/// Owned by [`SizingEngine`](crate::SizingEngine) so the buffers are sized
/// once per circuit and counted by
/// [`memory_bytes`](crate::SizingEngine::memory_bytes); persists across the
/// solves of one OGWS run (the cross-solve freeze state is the point) and is
/// reset by [`reset_schedule`](crate::SizingEngine::reset_schedule) at run
/// start.
#[derive(Debug, Clone)]
pub(crate) struct ScheduleWorkspace {
    /// Sizes the cached `extra_cap`/`charged`/`presented` tables reflect.
    pub(crate) eval_sizes: Vec<f64>,
    /// Whether those tables are in sync with `eval_sizes` at all.
    pub(crate) caps_synced: bool,
    /// Set after a fused Gauss–Seidel sweep: `charged`/`presented` already
    /// reflect the *current* sizes (the pass maintains them through every
    /// resize), so a following sparse update must skip the own-capacitance
    /// deltas of the changed components and apply only the coupling-load
    /// deltas.
    pub(crate) charged_fresh: bool,
    /// Components resized since the tables last reflected `eval_sizes`
    /// (unique — guarded by `changed_mark`).
    pub(crate) changed: Vec<u32>,
    /// Membership mask for `changed`, so passes that accumulate across two
    /// sweeps never record a component twice (a duplicate would scatter its
    /// coupling delta twice).
    pub(crate) changed_mark: Vec<bool>,
    /// Coupling-load deltas accumulated by the sparse pair scatter, as
    /// `(raw node index, delta)` pairs.
    pub(crate) extra_delta: Vec<(u32, f64)>,
    /// Consecutive calm sweeps per component.
    pub(crate) calm: Vec<u32>,
    /// Frozen flag per component.
    pub(crate) frozen: Vec<bool>,
    /// Dense indices of the active (not frozen) components, ascending.
    pub(crate) active: Vec<u32>,
    /// Number of frozen components (`== frozen.iter().filter(|f| **f).count()`).
    pub(crate) num_frozen: usize,
    /// Sweeps performed across the whole run (drives the verification
    /// cadence).
    pub(crate) global_sweep: usize,
    /// Delta-propagation scratch for the incremental model paths.
    pub(crate) inc: IncrementalWorkspace,
}

impl ScheduleWorkspace {
    /// Creates a workspace for a circuit with `num_nodes` nodes and
    /// `num_components` sizable components.
    pub(crate) fn new(num_nodes: usize, num_components: usize) -> Self {
        ScheduleWorkspace {
            eval_sizes: vec![0.0; num_components],
            caps_synced: false,
            charged_fresh: false,
            changed: Vec::with_capacity(num_components),
            changed_mark: vec![false; num_components],
            extra_delta: Vec::new(),
            calm: vec![0; num_components],
            frozen: vec![false; num_components],
            active: (0..num_components as u32).collect(),
            num_frozen: 0,
            global_sweep: 0,
            inc: IncrementalWorkspace::new(num_nodes),
        }
    }

    /// Resets to the run-start state: everything active, nothing cached.
    /// Records a resized component exactly once per sync window.
    #[inline(always)]
    pub(crate) fn push_changed(&mut self, comp: usize) {
        if !self.changed_mark[comp] {
            self.changed_mark[comp] = true;
            self.changed.push(comp as u32);
        }
    }

    /// Calm-streak bookkeeping after one component resize: a calm resize
    /// (relative change within the freeze tolerance) extends the streak and
    /// freezes the component once the streak reaches the threshold; a mover
    /// resets the streak and unfreezes.
    #[inline(always)]
    pub(crate) fn note_resize(&mut self, comp: usize, rel: f64, schedule: &AdaptiveSchedule) {
        // SAFETY: exclusive borrows of the whole arrays, single-threaded.
        unsafe {
            Self::note_resize_shared(
                SharedMut::new(&mut self.calm),
                SharedMut::new(&mut self.frozen),
                comp,
                rel,
                schedule,
            );
        }
    }

    /// The canonical calm/freeze rule behind
    /// [`note_resize`](Self::note_resize), over shared per-component views —
    /// the form the level-parallel fused sweeps use, where each chunk owns a
    /// disjoint component set. Kept in one place so the sequential and
    /// chunk-parallel schedules can never diverge.
    ///
    /// # Safety
    ///
    /// `comp` is in range and no other borrower concurrently accesses its
    /// `calm`/`frozen` entries (see [`SharedMut`]).
    #[inline(always)]
    pub(crate) unsafe fn note_resize_shared(
        calm: SharedMut<'_, u32>,
        frozen: SharedMut<'_, bool>,
        comp: usize,
        rel: f64,
        schedule: &AdaptiveSchedule,
    ) {
        if rel <= schedule.freeze_tolerance {
            let streak = calm.get(comp).saturating_add(1);
            calm.set(comp, streak);
            if schedule.active_set && streak as usize >= schedule.freeze_after {
                frozen.set(comp, true);
            }
        } else {
            calm.set(comp, 0);
            frozen.set(comp, false);
        }
    }

    /// Rebuilds the ascending active list and the frozen count from the
    /// per-component flags (linear; trivial next to a traversal pass).
    pub(crate) fn rebuild_active(&mut self) {
        self.active.clear();
        self.num_frozen = 0;
        for (comp, &frozen) in self.frozen.iter().enumerate() {
            if frozen {
                self.num_frozen += 1;
            } else {
                self.active.push(comp as u32);
            }
        }
    }

    /// Drops the pending dirty set (after the caches were brought up to
    /// date or fully rebuilt).
    pub(crate) fn clear_changed(&mut self) {
        for &comp in &self.changed {
            self.changed_mark[comp as usize] = false;
        }
        self.changed.clear();
        self.extra_delta.clear();
    }

    pub(crate) fn reset(&mut self) {
        self.caps_synced = false;
        self.charged_fresh = false;
        self.clear_changed();
        self.calm.fill(0);
        self.frozen.fill(false);
        self.active.clear();
        self.active.extend(0..self.frozen.len() as u32);
        self.num_frozen = 0;
        self.global_sweep = 0;
    }

    /// Captures the serializable cross-solve state (for snapshots).
    pub(crate) fn capture(&self) -> ScheduleState {
        ScheduleState {
            calm: self.calm.clone(),
            frozen: self.frozen.clone(),
            global_sweep: self.global_sweep,
        }
    }

    /// Restores a captured state: freeze sets and the sweep counter come
    /// back; the cached tables stay unsynced so the next solve re-derives
    /// them exactly from the restored sizes.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `state` covers a different component
    /// count (callers validate via
    /// [`Snapshot::validate_for`](crate::Snapshot::validate_for)).
    pub(crate) fn restore(&mut self, state: &ScheduleState) {
        debug_assert_eq!(state.frozen.len(), self.frozen.len());
        debug_assert_eq!(state.calm.len(), self.calm.len());
        self.reset();
        self.calm.copy_from_slice(&state.calm);
        self.frozen.copy_from_slice(&state.frozen);
        self.global_sweep = state.global_sweep;
        self.rebuild_active();
    }

    /// Bytes held by the schedule buffers (for the Figure 10(a) accounting).
    pub(crate) fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.eval_sizes.capacity() * size_of::<f64>()
            + self.changed.capacity() * size_of::<u32>()
            + self.changed_mark.capacity() * size_of::<bool>()
            + self.extra_delta.capacity() * size_of::<(u32, f64)>()
            + self.calm.capacity() * size_of::<u32>()
            + self.frozen.capacity() * size_of::<bool>()
            + self.active.capacity() * size_of::<u32>()
            + self.inc.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_strategy_is_exact() {
        assert_eq!(SolveStrategy::default(), SolveStrategy::Exact);
        assert!(!SolveStrategy::default().is_adaptive());
        assert!(SolveStrategy::adaptive().is_adaptive());
    }

    #[test]
    fn default_schedule_is_valid() {
        assert!(AdaptiveSchedule::default().validate().is_ok());
        assert!(SolveStrategy::adaptive().validate().is_ok());
        assert!(SolveStrategy::Exact.validate().is_ok());
    }

    #[test]
    fn invalid_schedules_are_rejected() {
        let bad = AdaptiveSchedule {
            freeze_tolerance: f64::NAN,
            ..AdaptiveSchedule::default()
        };
        assert!(bad.validate().is_err());
        let bad = AdaptiveSchedule {
            freeze_after: 0,
            ..AdaptiveSchedule::default()
        };
        assert!(bad.validate().is_err());
        let bad = AdaptiveSchedule {
            verify_every: 1,
            ..AdaptiveSchedule::default()
        };
        assert!(SolveStrategy::Adaptive(bad).validate().is_err());
    }

    #[test]
    fn strategy_serializes_with_its_tuning() {
        let json = serde_json::to_string(&SolveStrategy::Exact).unwrap();
        assert!(json.contains("Exact"));
        let json = serde_json::to_string(&SolveStrategy::adaptive()).unwrap();
        assert!(json.contains("Adaptive"));
        assert!(json.contains("freeze_tolerance"));
    }

    #[test]
    fn workspace_reset_restores_the_run_start_state() {
        let mut ws = ScheduleWorkspace::new(10, 4);
        ws.frozen[2] = true;
        ws.num_frozen = 1;
        ws.calm[1] = 7;
        ws.active.clear();
        ws.global_sweep = 42;
        ws.caps_synced = true;
        ws.changed.push(3);
        ws.reset();
        assert!(!ws.caps_synced);
        assert!(ws.changed.is_empty());
        assert_eq!(ws.num_frozen, 0);
        assert!(ws.frozen.iter().all(|f| !f));
        assert!(ws.calm.iter().all(|&c| c == 0));
        assert_eq!(ws.active, vec![0, 1, 2, 3]);
        assert_eq!(ws.global_sweep, 0);
        assert!(ws.memory_bytes() > 0);
    }
}
