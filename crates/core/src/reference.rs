//! Allocate-per-call reference implementations.
//!
//! This module preserves the original (pre-engine) evaluation style: every
//! sweep allocates fresh vectors for the coupling loads, downstream
//! capacitances and upstream resistances through the
//! [`ElmoreAnalyzer`] and [`CouplingSet`](ncgws_coupling::CouplingSet)
//! convenience APIs. It exists for two
//! reasons:
//!
//! * **equivalence oracle** — the `property_eval_engine` integration test
//!   checks that the workspace-reuse engine produces bitwise identical
//!   results on random instances;
//! * **benchmark baseline** — `elmore_bench` measures the per-sweep cost of
//!   the allocator against the engine path.
//!
//! Production code should use [`LrsSolver`](crate::LrsSolver) and
//! [`SizingEngine`](crate::SizingEngine) instead.

use ncgws_circuit::{ElmoreAnalyzer, NodeKind};

use crate::lagrangian::Multipliers;
use crate::lrs::LrsOutcome;
use crate::problem::SizingProblem;

/// Solves `LRS₂` with the original allocate-per-call sweep loop.
///
/// Semantically (and bitwise) identical to
/// [`LrsSolver::solve`](crate::LrsSolver::solve) with the same sweep limit
/// and tolerance.
pub fn lrs_solve(
    problem: &SizingProblem<'_>,
    multipliers: &Multipliers,
    max_sweeps: usize,
    tolerance: f64,
) -> LrsOutcome {
    let graph = problem.graph;
    let coupling = problem.coupling;
    let analyzer = ElmoreAnalyzer::new(graph);
    let lambda = multipliers.node_weights(graph);
    let max_sweeps = max_sweeps.max(1);
    let tolerance = tolerance.max(0.0);

    // S1: start at the lower bounds.
    let mut sizes = graph.minimum_sizes();
    let mut sweeps = 0;
    let mut converged = false;

    while sweeps < max_sweeps {
        sweeps += 1;
        let previous = sizes.clone();

        // S2: downstream capacitances C_i with the coupling load included.
        let extra = coupling.delay_load_per_node(graph, &sizes);
        let caps = analyzer.downstream_caps(&sizes, Some(&extra));
        // S3: λ-weighted upstream resistances R_i.
        let upstream = analyzer.weighted_upstream_resistance(&sizes, &lambda);

        // S4: greedy closed-form resize, updating in place so later
        // components see their neighbors' fresh widths.
        for id in graph.component_ids() {
            let dense = graph.component_index(id).expect("component id");
            let node = graph.node(id);
            let attrs = &node.attrs;
            let lambda_i = lambda[id.index()];
            let x_i = sizes[dense];

            // Numerator capacitance: C_i minus every term proportional to
            // x_i (own far-half capacitance and the x_i part of the
            // coupling), keeping the neighbor-width coupling term.
            let mut cap_num = caps.charged_of(id);
            if matches!(node.kind, NodeKind::Wire) {
                cap_num -= attrs.unit_capacitance * x_i / 2.0;
                cap_num -= coupling.linear_coefficient_sum_uncached(id) * x_i;
            }
            // Guard against tiny negative values from floating-point noise.
            if cap_num < 0.0 {
                cap_num = 0.0;
            }

            let coupling_sum = coupling.linear_coefficient_sum_uncached(id);
            let denominator = attrs.area_coefficient
                + (multipliers.beta + upstream[id.index()]) * attrs.unit_capacitance
                + multipliers.gamma * coupling_sum;
            let numerator = lambda_i * attrs.unit_resistance * cap_num;

            let opt = if denominator > 0.0 && numerator > 0.0 {
                (numerator / denominator).sqrt()
            } else {
                0.0
            };
            sizes[dense] = opt.clamp(attrs.lower_bound, attrs.upper_bound);
        }

        // S5: repeat until no improvement.
        if sizes.max_rel_diff(&previous) <= tolerance {
            converged = true;
            break;
        }
    }

    LrsOutcome {
        sizes,
        sweeps,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ConstraintBounds;
    use ncgws_circuit::{CircuitBuilder, CircuitGraph, GateKind, Technology};
    use ncgws_coupling::CouplingSet;

    fn chain() -> CircuitGraph {
        let mut b = CircuitBuilder::new(Technology::dac99());
        let d = b.add_driver("d", 150.0).unwrap();
        let w1 = b.add_wire("w1", 200.0).unwrap();
        let g1 = b.add_gate("g1", GateKind::Inv).unwrap();
        let w2 = b.add_wire("w2", 300.0).unwrap();
        b.connect(d, w1).unwrap();
        b.connect(w1, g1).unwrap();
        b.connect(g1, w2).unwrap();
        b.connect_output(w2, 10.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn reference_matches_engine_solver_bitwise() {
        let graph = chain();
        let coupling = CouplingSet::empty(&graph);
        let bounds = ConstraintBounds {
            delay: 1e12,
            total_capacitance: 1e12,
            crosstalk: 1e12,
        };
        let problem = SizingProblem::new(&graph, &coupling, bounds).unwrap();
        let multipliers = Multipliers::uniform(&graph, 0.02, 0.1);
        let reference = lrs_solve(&problem, &multipliers, 80, 1e-9);
        let engine = crate::LrsSolver::new(80, 1e-9).solve(&problem, &multipliers);
        assert_eq!(reference.sizes, engine.sizes);
        assert_eq!(reference.sweeps, engine.sweeps);
        assert_eq!(reference.converged, engine.converged);
    }
}
