//! Optimization reports: the data behind Table 1 and Figure 10.

use serde::{Deserialize, Serialize};

use crate::constraints::FamilySlack;
use crate::control::StopReason;
use crate::metrics::{CircuitMetrics, IterationRecord, MemoryBreakdown};

/// Relative improvements, computed as `(initial − final) / initial × 100 %`,
/// exactly as in the paper's `Impr(%)` row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Improvements {
    /// Noise (total crosstalk) improvement in percent.
    pub noise_pct: f64,
    /// Delay improvement in percent (can be negative when delay degrades).
    pub delay_pct: f64,
    /// Power improvement in percent.
    pub power_pct: f64,
    /// Area improvement in percent.
    pub area_pct: f64,
}

impl Improvements {
    /// Computes the improvements between two metric snapshots.
    pub fn between(initial: &CircuitMetrics, fin: &CircuitMetrics) -> Self {
        let pct = |init: f64, fin: f64| {
            if init.abs() < 1e-12 {
                0.0
            } else {
                (init - fin) / init * 100.0
            }
        };
        Improvements {
            noise_pct: pct(initial.noise_pf, fin.noise_pf),
            delay_pct: pct(initial.delay_ps, fin.delay_ps),
            power_pct: pct(initial.power_mw, fin.power_mw),
            area_pct: pct(initial.area_um2, fin.area_um2),
        }
    }
}

/// The complete record of one optimization run — one row of Table 1 plus the
/// scaling data of Figure 10.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct OptimizationReport {
    /// Benchmark name.
    pub name: String,
    /// Number of gates.
    pub num_gates: usize,
    /// Number of wires.
    pub num_wires: usize,
    /// Metrics before sizing (the paper's `Init` columns).
    pub initial_metrics: CircuitMetrics,
    /// Metrics after sizing (the paper's `Fin` columns).
    pub final_metrics: CircuitMetrics,
    /// Relative improvements.
    pub improvements: Improvements,
    /// Number of outer (OGWS) iterations (the paper's `ite` column).
    pub iterations: usize,
    /// Total runtime in seconds (the paper's `time` column).
    pub runtime_seconds: f64,
    /// Average runtime per outer iteration in seconds (Figure 10(b)).
    pub seconds_per_iteration: f64,
    /// Total inner LRS sweeps across the run.
    pub sweeps_total: usize,
    /// Average inner sweeps per LRS solve — the schedule win the adaptive
    /// strategy's warm starts buy (the exact schedule restarts the whole
    /// coordinate descent every solve).
    pub mean_sweeps_per_solve: f64,
    /// Average components touched (resized) per sweep — the circuit size
    /// under the exact schedule, the active frontier under the adaptive
    /// one.
    pub mean_touched_per_sweep: f64,
    /// Memory accounting (Figure 10(a); the paper's `mem` column).
    pub memory: MemoryBreakdown,
    /// Whether the returned sizing satisfies every constraint (the three
    /// global bounds and every extra family).
    pub feasible: bool,
    /// Per-family slack summary of the extra constraint system at the final
    /// sizing (empty for the paper's three-bound formulation).
    pub constraint_slacks: Vec<FamilySlack>,
    /// Whether the duality gap reached the configured tolerance.
    pub converged: bool,
    /// Why the OGWS outer loop stopped (convergence, stagnation, a limit,
    /// or a [`RunControl`](crate::RunControl) interruption).
    pub stop_reason: StopReason,
    /// Best duality gap observed.
    pub duality_gap: f64,
    /// Per-iteration progress records.
    pub iteration_records: Vec<IterationRecord>,
    /// Total effective loading of the stage-1 wire ordering.
    pub ordering_effective_loading: f64,
}

impl OptimizationReport {
    /// Total number of gates and wires (the paper's `tot` column).
    pub fn total_components(&self) -> usize {
        self.num_gates + self.num_wires
    }

    /// Renders the report as one row in the style of the paper's Table 1.
    pub fn table1_row(&self) -> String {
        format!(
            "{:<8} {:>6} {:>6} {:>6} {:>9.2} {:>8.2} {:>9.2} {:>9.2} {:>9.2} {:>8.2} {:>10.0} {:>9.0} {:>4} {:>8.1} {:>8.0}",
            self.name,
            self.num_gates,
            self.num_wires,
            self.total_components(),
            self.initial_metrics.noise_pf,
            self.final_metrics.noise_pf,
            self.initial_metrics.delay_ps,
            self.final_metrics.delay_ps,
            self.initial_metrics.power_mw,
            self.final_metrics.power_mw,
            self.initial_metrics.area_um2,
            self.final_metrics.area_um2,
            self.iterations,
            self.runtime_seconds,
            self.memory.total() as f64 / 1024.0,
        )
    }

    /// The header matching [`table1_row`](Self::table1_row).
    pub fn table1_header() -> String {
        format!(
            "{:<8} {:>6} {:>6} {:>6} {:>9} {:>8} {:>9} {:>9} {:>9} {:>8} {:>10} {:>9} {:>4} {:>8} {:>8}",
            "Ckt", "#G", "#W", "tot", "NoiseI", "NoiseF", "DelayI", "DelayF", "PowerI", "PowerF",
            "AreaI", "AreaF", "ite", "time(s)", "mem(KB)"
        )
    }
}

/// Averages the improvements of several reports (the paper's `Impr(%)` row).
pub fn average_improvements(reports: &[OptimizationReport]) -> Improvements {
    if reports.is_empty() {
        return Improvements {
            noise_pct: 0.0,
            delay_pct: 0.0,
            power_pct: 0.0,
            area_pct: 0.0,
        };
    }
    let n = reports.len() as f64;
    Improvements {
        noise_pct: reports
            .iter()
            .map(|r| r.improvements.noise_pct)
            .sum::<f64>()
            / n,
        delay_pct: reports
            .iter()
            .map(|r| r.improvements.delay_pct)
            .sum::<f64>()
            / n,
        power_pct: reports
            .iter()
            .map(|r| r.improvements.power_pct)
            .sum::<f64>()
            / n,
        area_pct: reports.iter().map(|r| r.improvements.area_pct).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(scale: f64) -> CircuitMetrics {
        CircuitMetrics {
            noise_pf: 10.0 * scale,
            delay_ps: 1000.0 * scale,
            power_mw: 100.0 * scale,
            area_um2: 50_000.0 * scale,
            crosstalk_ff: 10_000.0 * scale,
            delay_internal: 1_000_000.0 * scale,
            total_capacitance_ff: 40_000.0 * scale,
        }
    }

    fn report(name: &str, final_scale: f64) -> OptimizationReport {
        let initial = metrics(1.0);
        let fin = metrics(final_scale);
        OptimizationReport {
            name: name.to_string(),
            num_gates: 10,
            num_wires: 20,
            initial_metrics: initial,
            final_metrics: fin,
            improvements: Improvements::between(&initial, &fin),
            iterations: 7,
            runtime_seconds: 1.5,
            seconds_per_iteration: 0.2,
            sweeps_total: 21,
            mean_sweeps_per_solve: 3.0,
            mean_touched_per_sweep: 30.0,
            memory: MemoryBreakdown {
                circuit_bytes: 10,
                coupling_bytes: 10,
                multiplier_bytes: 10,
                working_bytes: 10,
            },
            feasible: true,
            constraint_slacks: Vec::new(),
            converged: true,
            stop_reason: StopReason::Converged,
            duality_gap: 0.005,
            iteration_records: Vec::new(),
            ordering_effective_loading: 3.0,
        }
    }

    #[test]
    fn improvements_match_the_paper_formula() {
        let initial = metrics(1.0);
        let fin = metrics(0.1);
        let imp = Improvements::between(&initial, &fin);
        assert!((imp.noise_pct - 90.0).abs() < 1e-9);
        assert!((imp.area_pct - 90.0).abs() < 1e-9);
        // A degradation shows as a negative improvement.
        let worse = metrics(1.2);
        let imp = Improvements::between(&initial, &worse);
        assert!(imp.delay_pct < 0.0);
    }

    #[test]
    fn zero_initial_values_do_not_divide_by_zero() {
        let mut initial = metrics(1.0);
        initial.noise_pf = 0.0;
        let imp = Improvements::between(&initial, &metrics(0.5));
        assert_eq!(imp.noise_pct, 0.0);
    }

    #[test]
    fn table_rendering_contains_the_key_numbers() {
        let r = report("c432", 0.2);
        let row = r.table1_row();
        assert!(row.contains("c432"));
        assert!(row.contains("30")); // total components
        let header = OptimizationReport::table1_header();
        assert_eq!(
            header.split_whitespace().count(),
            row.split_whitespace().count()
        );
    }

    #[test]
    fn averaging_improvements() {
        let reports = vec![report("a", 0.1), report("b", 0.3)];
        let avg = average_improvements(&reports);
        assert!((avg.noise_pct - 80.0).abs() < 1e-9);
        let empty = average_improvements(&[]);
        assert_eq!(empty.noise_pct, 0.0);
    }
}
