//! Run control for the OGWS outer loop: progress observers, cooperative
//! cancellation, iteration budgets and wall-clock deadlines.
//!
//! A [`RunControl`] is threaded through [`OgwsSolver`](crate::OgwsSolver)
//! (and from there into the inner [`LrsSolver`](crate::LrsSolver) sweeps) by
//! the [`flow`](crate::flow) pipeline and the
//! [`BatchRunner`](crate::BatchRunner). Every limit is *cooperative*: the
//! solver checks them between iterations (and between LRS sweeps), stops
//! cleanly, and records why it stopped as a [`StopReason`] in the
//! [`OgwsOutcome`](crate::OgwsOutcome) and
//! [`OptimizationReport`](crate::OptimizationReport).
//!
//! Observers receive one [`IterationEvent`] per outer iteration through a
//! `&self` method, so a single observer can watch many concurrent runs (the
//! batch runner shares one control across its worker threads); implementors
//! use interior mutability (atomics, mutexes) for their state.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::metrics::IterationRecord;
use crate::snapshot::Snapshot;

/// Why an OGWS run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum StopReason {
    /// The relative duality gap dropped below the configured tolerance with
    /// a feasible iterate in hand (A7 of Figure 9).
    Converged,
    /// Neither the primal nor the dual bound improved for a long stretch;
    /// the subgradient method stalled within its step resolution.
    Stagnated,
    /// The configured `max_iterations` were exhausted.
    IterationLimit,
    /// The [`RunControl`] iteration budget was exhausted.
    BudgetExhausted,
    /// The run was cancelled through a [`CancelFlag`].
    Cancelled,
    /// The [`RunControl`] wall-clock deadline expired.
    DeadlineExpired,
}

impl StopReason {
    /// `true` when the run was interrupted by its [`RunControl`] (cancelled,
    /// out of budget, or past the deadline) rather than by the solver's own
    /// stopping rules.
    pub fn is_interrupted(self) -> bool {
        matches!(
            self,
            StopReason::BudgetExhausted | StopReason::Cancelled | StopReason::DeadlineExpired
        )
    }
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StopReason::Converged => "converged",
            StopReason::Stagnated => "stagnated",
            StopReason::IterationLimit => "iteration-limit",
            StopReason::BudgetExhausted => "budget-exhausted",
            StopReason::Cancelled => "cancelled",
            StopReason::DeadlineExpired => "deadline-expired",
        };
        f.write_str(s)
    }
}

/// A cloneable, thread-safe cancellation flag.
///
/// Clones share one underlying flag: cancelling any clone cancels every run
/// holding one. Cancellation is sticky — there is deliberately no `reset`,
/// so a flag observed as cancelled stays cancelled for the rest of its life
/// (hand a fresh flag to a fresh run instead).
#[derive(Debug, Clone, Default)]
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    /// Creates a new, uncancelled flag.
    pub fn new() -> Self {
        CancelFlag::default()
    }

    /// Requests cancellation of every run sharing this flag.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// `true` once [`cancel`](Self::cancel) has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// One outer (OGWS) iteration, as seen by an [`Observer`].
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct IterationEvent<'a> {
    /// The full progress record of this iteration: iteration number, primal
    /// and dual values, duality gap, constraint violations, LRS sweeps and
    /// wall-clock time.
    pub record: &'a IterationRecord,
    /// The subgradient step size `ρ_k` used by this iteration.
    pub step: f64,
    /// Best (smallest) relative duality gap observed so far.
    pub best_gap: f64,
    /// Whether this iteration's LRS solution satisfies every constraint.
    pub feasible: bool,
}

/// Receives per-iteration progress events from an OGWS run.
///
/// Methods take `&self` so one observer can serve several concurrent runs
/// (see [`BatchRunner`](crate::BatchRunner)); the `Sync` supertrait makes
/// that sharing sound. Use interior mutability for any state.
pub trait Observer: Sync {
    /// Called after every outer iteration, in iteration order per run.
    fn on_iteration(&self, event: &IterationEvent<'_>);
}

/// An [`Observer`] that records `(iteration, duality gap)` snapshots —
/// handy for tests, examples and convergence plots.
#[derive(Debug, Default)]
pub struct CollectObserver {
    events: Mutex<Vec<(usize, f64)>>,
}

impl CollectObserver {
    /// Creates an empty collector.
    pub fn new() -> Self {
        CollectObserver::default()
    }

    /// Number of events observed so far.
    pub fn count(&self) -> usize {
        self.events.lock().expect("observer lock").len()
    }

    /// The `(iteration, gap)` snapshots observed so far.
    pub fn snapshots(&self) -> Vec<(usize, f64)> {
        self.events.lock().expect("observer lock").clone()
    }
}

impl Observer for CollectObserver {
    fn on_iteration(&self, event: &IterationEvent<'_>) {
        self.events
            .lock()
            .expect("observer lock")
            .push((event.record.iteration, event.record.gap));
    }
}

/// When the OGWS loop should capture a [`Snapshot`] for an attached
/// [`CheckpointSink`].
///
/// Snapshots are taken at completed-iteration boundaries: periodically
/// (`every_iterations`) and/or when the run is interrupted by its control
/// (`on_interrupt`, covering [`StopReason::Cancelled`],
/// [`StopReason::DeadlineExpired`] and [`StopReason::BudgetExhausted`]).
/// The default policy checkpoints only on interrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Capture a snapshot after every `n` completed outer iterations
    /// (counted globally, so a resumed run keeps the original cadence).
    /// `None` disables periodic capture.
    pub every_iterations: Option<usize>,
    /// Capture a final snapshot when the run stops with an interrupted
    /// [`StopReason`], so the caller can resume it later.
    pub on_interrupt: bool,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy {
            every_iterations: None,
            on_interrupt: true,
        }
    }
}

impl CheckpointPolicy {
    /// The default policy: no periodic capture, snapshot on interrupt.
    pub fn new() -> Self {
        CheckpointPolicy::default()
    }

    /// Enables periodic capture every `n` completed iterations.
    pub fn every(mut self, n: usize) -> Self {
        self.every_iterations = Some(n.max(1));
        self
    }

    /// Sets whether an interrupted run captures a final snapshot.
    pub fn on_interrupt(mut self, enabled: bool) -> Self {
        self.on_interrupt = enabled;
        self
    }
}

/// Receives [`Snapshot`]s captured by the OGWS loop under a
/// [`CheckpointPolicy`].
///
/// Like [`Observer`], methods take `&self` and the trait is `Sync`, so one
/// sink can serve many concurrent runs.
pub trait CheckpointSink: Sync {
    /// Called with each captured snapshot, in capture order per run.
    fn on_checkpoint(&self, snapshot: Snapshot);
}

/// A [`CheckpointSink`] that keeps the most recent [`Snapshot`] — the
/// building block of requeue-on-interrupt serving (see `ncgws-serve`).
#[derive(Debug, Default)]
pub struct SnapshotStore {
    latest: Mutex<Option<Snapshot>>,
    taken: AtomicUsize,
}

impl SnapshotStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        SnapshotStore::default()
    }

    /// A clone of the most recent snapshot, if any was captured.
    pub fn latest(&self) -> Option<Snapshot> {
        self.latest.lock().expect("snapshot store lock").clone()
    }

    /// Removes and returns the most recent snapshot.
    pub fn take(&self) -> Option<Snapshot> {
        self.latest.lock().expect("snapshot store lock").take()
    }

    /// Total snapshots delivered to this store over its lifetime.
    pub fn count(&self) -> usize {
        self.taken.load(Ordering::Relaxed)
    }

    /// Bytes held by the stored snapshot's buffers (0 when empty).
    pub fn memory_bytes(&self) -> usize {
        self.latest
            .lock()
            .expect("snapshot store lock")
            .as_ref()
            .map_or(0, Snapshot::memory_bytes)
    }
}

impl CheckpointSink for SnapshotStore {
    fn on_checkpoint(&self, snapshot: Snapshot) {
        *self.latest.lock().expect("snapshot store lock") = Some(snapshot);
        self.taken.fetch_add(1, Ordering::Relaxed);
    }
}

/// Cooperative limits and instrumentation for one (or many) OGWS runs.
///
/// The default control imposes nothing: no observer, no cancellation, no
/// budget, no deadline — a run under `RunControl::new()` behaves exactly
/// like one without any control.
///
/// ```
/// use std::time::Duration;
/// use ncgws_core::{CancelFlag, RunControl};
///
/// let flag = CancelFlag::new();
/// let control = RunControl::new()
///     .with_cancel_flag(flag.clone())
///     .with_iteration_budget(200)
///     .with_timeout(Duration::from_secs(5));
/// assert!(!control.interrupted());
/// flag.cancel();
/// assert!(control.interrupted());
/// ```
#[derive(Clone, Default)]
pub struct RunControl<'a> {
    observer: Option<&'a dyn Observer>,
    cancel: Option<CancelFlag>,
    iteration_budget: Option<usize>,
    deadline: Option<Instant>,
    checkpoint_sink: Option<&'a dyn CheckpointSink>,
    checkpoint_policy: CheckpointPolicy,
}

impl fmt::Debug for RunControl<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunControl")
            .field("observer", &self.observer.map(|_| "dyn Observer"))
            .field("cancel", &self.cancel)
            .field("iteration_budget", &self.iteration_budget)
            .field("deadline", &self.deadline)
            .field(
                "checkpoint_sink",
                &self.checkpoint_sink.map(|_| "dyn CheckpointSink"),
            )
            .field("checkpoint_policy", &self.checkpoint_policy)
            .finish()
    }
}

impl<'a> RunControl<'a> {
    /// A control that imposes no limits and reports to no one.
    pub fn new() -> Self {
        RunControl::default()
    }

    /// Attaches a progress observer.
    pub fn with_observer(mut self, observer: &'a dyn Observer) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Attaches a cancellation flag (typically a clone of a flag the caller
    /// keeps to cancel the run from another thread or an observer).
    pub fn with_cancel_flag(mut self, flag: CancelFlag) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Caps the number of outer iterations, on top of the configuration's
    /// `max_iterations`. Exceeding the budget stops the run with
    /// [`StopReason::BudgetExhausted`].
    pub fn with_iteration_budget(mut self, iterations: usize) -> Self {
        self.iteration_budget = Some(iterations);
        self
    }

    /// Sets an absolute wall-clock deadline. A run past the deadline stops
    /// with [`StopReason::DeadlineExpired`] before its next iteration (and
    /// between LRS sweeps within an iteration).
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the deadline `timeout` from now (see
    /// [`with_deadline`](Self::with_deadline)).
    pub fn with_timeout(self, timeout: Duration) -> Self {
        self.with_deadline(Instant::now() + timeout)
    }

    /// The attached cancellation flag, if any.
    pub fn cancel_flag(&self) -> Option<&CancelFlag> {
        self.cancel.as_ref()
    }

    /// The iteration budget, if any.
    pub fn iteration_budget(&self) -> Option<usize> {
        self.iteration_budget
    }

    /// The wall-clock deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// `true` once the attached flag has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelFlag::is_cancelled)
    }

    /// `true` once the deadline has passed. Reads the clock only when a
    /// deadline is set, so an unlimited control costs nothing.
    pub fn deadline_expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// `true` when the run should stop mid-iteration: cancelled or past the
    /// deadline (the iteration budget only applies at iteration boundaries).
    pub fn interrupted(&self) -> bool {
        self.is_cancelled() || self.deadline_expired()
    }

    /// Checks every limit before an iteration starts. `iterations_done` is
    /// the number of completed outer iterations.
    pub fn stop_before_iteration(&self, iterations_done: usize) -> Option<StopReason> {
        if self.is_cancelled() {
            return Some(StopReason::Cancelled);
        }
        if self.deadline_expired() {
            return Some(StopReason::DeadlineExpired);
        }
        if self
            .iteration_budget
            .is_some_and(|budget| iterations_done >= budget)
        {
            return Some(StopReason::BudgetExhausted);
        }
        None
    }

    /// Delivers an event to the observer, if one is attached.
    pub fn notify(&self, event: &IterationEvent<'_>) {
        if let Some(observer) = self.observer {
            observer.on_iteration(event);
        }
    }

    /// Attaches a checkpoint sink and its capture policy. The OGWS loop
    /// delivers [`Snapshot`]s per the policy; without a sink, no snapshot
    /// is ever built (checkpointing costs nothing when unused).
    pub fn with_checkpoints(
        mut self,
        sink: &'a dyn CheckpointSink,
        policy: CheckpointPolicy,
    ) -> Self {
        self.checkpoint_sink = Some(sink);
        self.checkpoint_policy = policy;
        self
    }

    /// The checkpoint capture policy (meaningful only with a sink attached).
    pub fn checkpoint_policy(&self) -> CheckpointPolicy {
        self.checkpoint_policy
    }

    /// `true` when a checkpoint sink is attached.
    pub fn has_checkpoint_sink(&self) -> bool {
        self.checkpoint_sink.is_some()
    }

    /// `true` when the policy asks for a periodic snapshot after completed
    /// (global) iteration `iterations_done`.
    pub fn checkpoint_due(&self, iterations_done: usize) -> bool {
        self.checkpoint_sink.is_some()
            && iterations_done > 0
            && self
                .checkpoint_policy
                .every_iterations
                .is_some_and(|n| iterations_done.is_multiple_of(n))
    }

    /// `true` when the policy asks for a final snapshot on an interrupted
    /// stop.
    pub fn checkpoint_on_interrupt(&self) -> bool {
        self.checkpoint_sink.is_some() && self.checkpoint_policy.on_interrupt
    }

    /// Delivers a snapshot to the sink, if one is attached.
    pub fn deliver_checkpoint(&self, snapshot: Snapshot) {
        if let Some(sink) = self.checkpoint_sink {
            sink.on_checkpoint(snapshot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(iteration: usize) -> IterationRecord {
        IterationRecord {
            iteration,
            primal_area: 1.0,
            dual_value: 0.5,
            gap: 0.5,
            delay_violation: 0.0,
            power_violation: 0.0,
            crosstalk_violation: 0.0,
            extra_violation: 0.0,
            seconds: 0.0,
            lrs_sweeps: 1,
            touched_components: 0,
            frozen_components: 0,
        }
    }

    #[test]
    fn default_control_imposes_nothing() {
        let control = RunControl::new();
        assert!(!control.interrupted());
        assert_eq!(control.stop_before_iteration(1_000_000), None);
        // Notifying without an observer is a no-op.
        let r = record(1);
        control.notify(&IterationEvent {
            record: &r,
            step: 0.1,
            best_gap: 0.5,
            feasible: false,
        });
    }

    #[test]
    fn cancel_flag_is_shared_and_sticky() {
        let flag = CancelFlag::new();
        let control = RunControl::new().with_cancel_flag(flag.clone());
        assert!(!control.is_cancelled());
        flag.cancel();
        assert!(control.is_cancelled());
        assert_eq!(
            control.stop_before_iteration(0),
            Some(StopReason::Cancelled)
        );
        assert!(control.interrupted());
    }

    #[test]
    fn budget_applies_at_iteration_boundaries() {
        let control = RunControl::new().with_iteration_budget(3);
        assert_eq!(control.stop_before_iteration(2), None);
        assert_eq!(
            control.stop_before_iteration(3),
            Some(StopReason::BudgetExhausted)
        );
        // The budget alone never interrupts mid-iteration.
        assert!(!control.interrupted());
    }

    #[test]
    fn expired_deadline_stops_and_interrupts() {
        let control = RunControl::new().with_deadline(Instant::now() - Duration::from_secs(1));
        assert!(control.deadline_expired());
        assert!(control.interrupted());
        assert_eq!(
            control.stop_before_iteration(0),
            Some(StopReason::DeadlineExpired)
        );
        // Cancellation takes precedence over the deadline.
        let flag = CancelFlag::new();
        flag.cancel();
        let control = control.with_cancel_flag(flag);
        assert_eq!(
            control.stop_before_iteration(0),
            Some(StopReason::Cancelled)
        );
    }

    #[test]
    fn collect_observer_records_events_in_order() {
        let collector = CollectObserver::new();
        let control = RunControl::new().with_observer(&collector);
        for k in 1..=3 {
            let r = record(k);
            control.notify(&IterationEvent {
                record: &r,
                step: 0.1,
                best_gap: 0.5,
                feasible: true,
            });
        }
        assert_eq!(collector.count(), 3);
        let iterations: Vec<usize> = collector.snapshots().iter().map(|&(k, _)| k).collect();
        assert_eq!(iterations, vec![1, 2, 3]);
    }

    #[test]
    fn stop_reason_display_and_interrupted() {
        assert_eq!(StopReason::Converged.to_string(), "converged");
        assert_eq!(StopReason::Cancelled.to_string(), "cancelled");
        assert!(StopReason::Cancelled.is_interrupted());
        assert!(StopReason::DeadlineExpired.is_interrupted());
        assert!(StopReason::BudgetExhausted.is_interrupted());
        assert!(!StopReason::Converged.is_interrupted());
        assert!(!StopReason::Stagnated.is_interrupted());
        assert!(!StopReason::IterationLimit.is_interrupted());
    }
}
