//! Projection of the edge multipliers onto the optimality (flow-conservation)
//! condition of Theorem 3.
//!
//! Theorem 3 states that at any dual-feasible point the multipliers must
//! satisfy, for every node `i` except the source and sink,
//!
//! ```text
//! Σ_{k ∈ output(i)} λ_{ik}  =  Σ_{j ∈ input(i)} λ_{ji}
//! ```
//!
//! — the analogue of Kirchhoff's current law the paper points out. After a
//! subgradient step the equality is generally violated; step A5 of OGWS
//! projects the multipliers back. We use the standard network-flow style
//! projection: traverse the nodes in reverse topological order and rescale
//! each node's incoming multipliers so that their sum matches the (already
//! final) outgoing sum; if all incoming multipliers are zero the outgoing sum
//! is distributed evenly. The sink's incoming multipliers are the free
//! variables of the flow and are left untouched.

use ncgws_circuit::{CircuitGraph, CircuitTopology, NodeKind, SharedMut};

use crate::lagrangian::Multipliers;
use crate::par::{LevelGrid, ParRuntime};

/// Precomputed dense view of the graph structure the OGWS outer loop walks
/// every iteration: for every node, the positions (in the
/// [`Multipliers::flat`] value array) of its *outgoing* edge multipliers
/// (its slot in each fanout node's fanin list), plus flat fanin node ids and
/// per-node kinds.
///
/// [`project_flow_conservation`] searches each fanin list for the fanout
/// slot on every call (`O(E · fanin)` per projection); building this index
/// once per run turns every projection — and the A4 subgradient update —
/// into a contiguous `O(V + E)` walk instead of a pointer chase through the
/// per-node adjacency `Vec`s and name-carrying `Node` structs.
#[derive(Debug, Clone)]
pub struct FlowIndex {
    /// CSR offsets into `out_pos`, one entry per node plus a trailing total.
    out_start: Vec<u32>,
    /// Flat-value positions of each node's outgoing edge multipliers, in
    /// fanout order.
    out_pos: Vec<u32>,
    /// CSR offsets into `fanin_flat`, one entry per node plus a trailing
    /// total — the same layout [`Multipliers::uniform`] gives the flat
    /// multiplier values, kept here so the index is self-contained.
    fanin_start: Vec<u32>,
    /// Concatenated fanin node indices, parallel to the flat multiplier
    /// slots.
    fanin_flat: Vec<u32>,
    /// Node kind per raw node index.
    kinds: Vec<NodeKind>,
}

impl FlowIndex {
    /// Builds the index for a circuit (one `O(E · fanin)` search, amortized
    /// over every projection of the run).
    pub fn new(graph: &CircuitGraph) -> Self {
        let n = graph.num_nodes();
        // Flat fanin offsets, exactly as `Multipliers::uniform` lays out.
        let mut offsets = Vec::with_capacity(n + 1);
        let mut total = 0u32;
        offsets.push(0u32);
        for id in graph.node_ids() {
            total += graph.fanin(id).len() as u32;
            offsets.push(total);
        }
        let mut out_start = Vec::with_capacity(n + 1);
        let mut out_pos = Vec::new();
        let mut fanin_flat = Vec::with_capacity(total as usize);
        let mut kinds = Vec::with_capacity(n);
        out_start.push(0u32);
        for id in graph.node_ids() {
            for &succ in graph.fanout(id) {
                let slot = graph
                    .fanin(succ)
                    .iter()
                    .position(|&p| p == id)
                    .expect("fanout/fanin lists are consistent");
                out_pos.push(offsets[succ.index()] + slot as u32);
            }
            out_start.push(out_pos.len() as u32);
            fanin_flat.extend(graph.fanin(id).iter().map(|p| p.index() as u32));
            kinds.push(graph.node(id).kind);
        }
        FlowIndex {
            out_start,
            out_pos,
            fanin_start: offsets,
            fanin_flat,
            kinds,
        }
    }

    /// Node kind per raw node index.
    pub fn kinds(&self) -> &[NodeKind] {
        &self.kinds
    }

    /// The fanin node indices of node `idx` (the slots parallel the node's
    /// flat multiplier values, see [`Multipliers::flat`]).
    pub fn fanin_flat(&self, idx: usize) -> &[u32] {
        &self.fanin_flat[self.fanin_start[idx] as usize..self.fanin_start[idx + 1] as usize]
    }

    /// Bytes held by the index (for memory accounting).
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.out_start.capacity()
            + self.out_pos.capacity()
            + self.fanin_start.capacity()
            + self.fanin_flat.capacity())
            * size_of::<u32>()
            + self.kinds.capacity() * size_of::<NodeKind>()
    }
}

/// Projects `multipliers` onto the flow-conservation condition, in place.
/// Runs in `O(V + E)`.
///
/// Only the **edge** (delay) multipliers participate in the flow condition;
/// the scalar multipliers `β`, `γ` and every extra-family block `μ` are
/// structurally unconstrained by Theorem 3 and are only clamped
/// non-negative here (condition (4) of Theorem 6), which is exactly the
/// projection of a scalar onto its feasible half-line.
pub fn project_flow_conservation(graph: &CircuitGraph, multipliers: &mut Multipliers) {
    let index = FlowIndex::new(graph);
    project_flow_conservation_indexed(graph, &index, multipliers);
}

/// [`project_flow_conservation`] with the fanout→slot cross-reference
/// precomputed (see [`FlowIndex`]): bitwise identical results (same
/// traversal and accumulation order), but every projection is a contiguous
/// walk of the flat multiplier array. The OGWS loop builds the index once
/// per run and projects every iteration through this entry point.
pub fn project_flow_conservation_indexed(
    graph: &CircuitGraph,
    index: &FlowIndex,
    multipliers: &mut Multipliers,
) {
    multipliers.clamp_non_negative();
    let sink = graph.sink().index();
    let source = graph.source().index();
    let n = graph.num_nodes();
    let (offsets, values) = multipliers.flat_mut();
    assert_eq!(offsets.len(), n + 1, "multipliers must match the circuit");
    assert_eq!(index.out_start.len(), n + 1, "index must match the circuit");
    // Reverse topological order; node indices are topological by construction.
    for idx in (0..n).rev() {
        if idx == sink || idx == source {
            continue;
        }
        // Outgoing sum over the precomputed flat positions (fanout order).
        let mut out_sum = 0.0;
        for &pos in &index.out_pos[index.out_start[idx] as usize..index.out_start[idx + 1] as usize]
        {
            out_sum += values[pos as usize];
        }
        let fanin = &mut values[offsets[idx] as usize..offsets[idx + 1] as usize];
        if fanin.is_empty() {
            continue;
        }
        let in_sum: f64 = fanin.iter().sum();
        if in_sum > 1e-300 {
            let scale = out_sum / in_sum;
            for value in fanin {
                *value *= scale;
            }
        } else {
            let share = out_sum / fanin.len() as f64;
            for value in fanin {
                *value = share;
            }
        }
    }
}

/// [`project_flow_conservation_indexed`] distributed over the level grid
/// (step A5 under [`ParallelPolicy::Level`](crate::ParallelPolicy)):
/// levels settle in reverse dependency order, and within a level each node
/// rescales only its own fanin slots while reading its fanout nodes'
/// already-settled slots — so chunks of one level never touch the same
/// multiplier and the per-node arithmetic (slot-order sums, the same
/// rescale expressions) is exactly the sequential walk's. Results are
/// bitwise identical to the sequential projection for every thread count.
pub(crate) fn project_flow_conservation_leveled(
    graph: &CircuitGraph,
    index: &FlowIndex,
    multipliers: &mut Multipliers,
    topo: &CircuitTopology,
    grid: &LevelGrid,
    par: &ParRuntime,
) {
    multipliers.clamp_non_negative();
    let sink = graph.sink().index();
    let source = graph.source().index();
    let n = graph.num_nodes();
    let (offsets, values) = multipliers.flat_mut();
    assert_eq!(offsets.len(), n + 1, "multipliers must match the circuit");
    assert_eq!(index.out_start.len(), n + 1, "index must match the circuit");
    assert_eq!(topo.num_nodes(), n, "topology must match the circuit");
    let values_s = SharedMut::new(values);
    par.run_leveled(grid, true, |l, c| {
        let level = topo.level(l);
        let range = grid.chunk_range(level.len(), c);
        for &idx in &level[range] {
            let idx = idx as usize;
            if idx == sink || idx == source {
                continue;
            }
            // SAFETY: this chunk owns node `idx`: its fanin slots
            // (`offsets[idx]..offsets[idx+1]`) are written by no other node,
            // and the out positions it reads are fanin slots of *fanout*
            // nodes — strictly higher levels, settled before this level
            // started and never written concurrently.
            unsafe {
                let mut out_sum = 0.0;
                for &pos in
                    &index.out_pos[index.out_start[idx] as usize..index.out_start[idx + 1] as usize]
                {
                    out_sum += values_s.get(pos as usize);
                }
                let lo = offsets[idx] as usize;
                let hi = offsets[idx + 1] as usize;
                if lo == hi {
                    continue;
                }
                let mut in_sum = 0.0;
                for slot in lo..hi {
                    in_sum += values_s.get(slot);
                }
                if in_sum > 1e-300 {
                    let scale = out_sum / in_sum;
                    for slot in lo..hi {
                        values_s.set(slot, values_s.get(slot) * scale);
                    }
                } else {
                    let share = out_sum / (hi - lo) as f64;
                    for slot in lo..hi {
                        values_s.set(slot, share);
                    }
                }
            }
        }
    });
}

/// Maximum absolute flow-conservation residual
/// `|Σ_out λ − Σ_in λ|` over all nodes except source and sink. Useful for
/// tests and KKT verification.
pub fn flow_conservation_residual(graph: &CircuitGraph, multipliers: &Multipliers) -> f64 {
    let mut worst: f64 = 0.0;
    for id in graph.node_ids() {
        if id == graph.source() || id == graph.sink() {
            continue;
        }
        let in_sum: f64 = multipliers.edges_of(id).iter().sum();
        let mut out_sum = 0.0;
        for &succ in graph.fanout(id) {
            let slot = graph
                .fanin(succ)
                .iter()
                .position(|&p| p == id)
                .expect("fanout/fanin lists are consistent");
            out_sum += multipliers.edge(succ, slot);
        }
        worst = worst.max((in_sum - out_sum).abs());
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncgws_circuit::{CircuitBuilder, GateKind, Technology};

    fn reconvergent() -> CircuitGraph {
        // d1 -> w1 -> g1 -> w3 ---\
        //                          g3 -> w5 -> out
        // d2 -> w2 -> g2 -> w4 ---/
        let mut b = CircuitBuilder::new(Technology::dac99());
        let d1 = b.add_driver("d1", 100.0).unwrap();
        let d2 = b.add_driver("d2", 100.0).unwrap();
        let w1 = b.add_wire("w1", 20.0).unwrap();
        let w2 = b.add_wire("w2", 20.0).unwrap();
        let g1 = b.add_gate("g1", GateKind::Inv).unwrap();
        let g2 = b.add_gate("g2", GateKind::Inv).unwrap();
        let w3 = b.add_wire("w3", 20.0).unwrap();
        let w4 = b.add_wire("w4", 20.0).unwrap();
        let g3 = b.add_gate("g3", GateKind::Nand).unwrap();
        let w5 = b.add_wire("w5", 20.0).unwrap();
        b.connect(d1, w1).unwrap();
        b.connect(d2, w2).unwrap();
        b.connect(w1, g1).unwrap();
        b.connect(w2, g2).unwrap();
        b.connect(g1, w3).unwrap();
        b.connect(g2, w4).unwrap();
        b.connect(w3, g3).unwrap();
        b.connect(w4, g3).unwrap();
        b.connect(g3, w5).unwrap();
        b.connect_output(w5, 5.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn projection_establishes_flow_conservation() {
        let g = reconvergent();
        // Start from a deliberately unbalanced state.
        let mut m = Multipliers::uniform(&g, 1.0, 1.0);
        let w3 = g.node_by_name("w3").unwrap();
        *m.edge_mut(w3, 0) = 7.0;
        let g3 = g.node_by_name("g3").unwrap();
        *m.edge_mut(g3, 0) = 0.25;
        assert!(flow_conservation_residual(&g, &m) > 0.1);
        project_flow_conservation(&g, &mut m);
        assert!(flow_conservation_residual(&g, &m) < 1e-9);
    }

    #[test]
    fn projection_is_idempotent() {
        let g = reconvergent();
        let mut m = Multipliers::uniform(&g, 0.7, 1.0);
        project_flow_conservation(&g, &mut m);
        let snapshot = m.clone();
        project_flow_conservation(&g, &mut m);
        for id in g.node_ids() {
            for slot in 0..g.fanin(id).len() {
                assert!((m.edge(id, slot) - snapshot.edge(id, slot)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn sink_multipliers_drive_the_total_flow() {
        let g = reconvergent();
        let mut m = Multipliers::uniform(&g, 1.0, 1.0);
        // Set the single sink edge multiplier to 3; after projection the flow
        // into every cut equals 3.
        let sink = g.sink();
        *m.edge_mut(sink, 0) = 3.0;
        project_flow_conservation(&g, &mut m);
        // Flow out of the source equals flow into the sink.
        let source_out: f64 = g
            .driver_ids()
            .map(|d| m.edges_of(d).iter().sum::<f64>())
            .sum();
        assert!((source_out - 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_incoming_multipliers_get_an_even_share() {
        let g = reconvergent();
        let mut m = Multipliers::uniform(&g, 0.0, 1.0);
        let sink = g.sink();
        *m.edge_mut(sink, 0) = 2.0;
        project_flow_conservation(&g, &mut m);
        assert!(flow_conservation_residual(&g, &m) < 1e-9);
        // The NAND gate g3 has two fanins; each should carry half of its flow.
        let g3 = g.node_by_name("g3").unwrap();
        let edges = m.edges_of(g3);
        assert!((edges[0] - edges[1]).abs() < 1e-9);
    }

    #[test]
    fn projection_clamps_negative_inputs_first() {
        let g = reconvergent();
        let mut m = Multipliers::uniform(&g, 1.0, 1.0);
        let w1 = g.node_by_name("w1").unwrap();
        *m.edge_mut(w1, 0) = -5.0;
        project_flow_conservation(&g, &mut m);
        assert!(m.edge(w1, 0) >= 0.0);
        assert!(flow_conservation_residual(&g, &m) < 1e-9);
    }
}
