//! Subgradient step-size schedules.
//!
//! OGWS requires a step size `ρ_k` with `lim ρ_k = 0` and `Σ ρ_k = ∞`
//! (a divergent-series rule), which guarantees convergence of the projected
//! subgradient method on the concave dual.

use serde::{Deserialize, Serialize};

/// A step-size schedule `ρ_k` for the OGWS outer loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StepSchedule {
    /// `ρ_k = c / k` — the classic divergent harmonic series.
    Harmonic {
        /// Scale constant `c`.
        scale: f64,
    },
    /// `ρ_k = c / √k` — slower decay, often faster in practice.
    SqrtDecay {
        /// Scale constant `c`.
        scale: f64,
    },
    /// `ρ_k = c` — constant step; does **not** satisfy the convergence
    /// conditions but is useful for ablation studies.
    Constant {
        /// The constant step.
        scale: f64,
    },
}

impl StepSchedule {
    /// The step size at (1-based) iteration `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`; iterations are 1-based as in the paper.
    pub fn value(&self, k: usize) -> f64 {
        assert!(k >= 1, "iterations are 1-based");
        match *self {
            StepSchedule::Harmonic { scale } => scale / k as f64,
            StepSchedule::SqrtDecay { scale } => scale / (k as f64).sqrt(),
            StepSchedule::Constant { scale } => scale,
        }
    }

    /// The scale constant of the schedule.
    pub fn scale(&self) -> f64 {
        match *self {
            StepSchedule::Harmonic { scale }
            | StepSchedule::SqrtDecay { scale }
            | StepSchedule::Constant { scale } => scale,
        }
    }

    /// Returns `true` when the schedule satisfies the divergent-series
    /// convergence conditions (`ρ_k → 0`, `Σ ρ_k = ∞`).
    pub fn is_convergent(&self) -> bool {
        !matches!(self, StepSchedule::Constant { .. })
    }
}

impl Default for StepSchedule {
    fn default() -> Self {
        StepSchedule::SqrtDecay { scale: 8.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_decays_like_one_over_k() {
        let s = StepSchedule::Harmonic { scale: 2.0 };
        assert!((s.value(1) - 2.0).abs() < 1e-12);
        assert!((s.value(4) - 0.5).abs() < 1e-12);
        assert!(s.is_convergent());
    }

    #[test]
    fn sqrt_decay() {
        let s = StepSchedule::SqrtDecay { scale: 3.0 };
        assert!((s.value(9) - 1.0).abs() < 1e-12);
        assert!(s.is_convergent());
        assert_eq!(s.scale(), 3.0);
    }

    #[test]
    fn constant_is_flagged_nonconvergent() {
        let s = StepSchedule::Constant { scale: 0.1 };
        assert_eq!(s.value(1), s.value(100));
        assert!(!s.is_convergent());
    }

    #[test]
    fn schedules_decrease_monotonically() {
        for s in [
            StepSchedule::Harmonic { scale: 1.0 },
            StepSchedule::SqrtDecay { scale: 8.0 },
        ] {
            let mut last = f64::INFINITY;
            for k in 1..50 {
                let v = s.value(k);
                assert!(v <= last);
                assert!(v > 0.0);
                last = v;
            }
        }
    }

    #[test]
    #[should_panic]
    fn zeroth_iteration_panics() {
        let _ = StepSchedule::default().value(0);
    }
}
