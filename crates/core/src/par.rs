//! Deterministic level-parallel execution for the stage-2 inner loop.
//!
//! The paper's per-sweep work is `O(V + E + P)` with *component-separable*
//! closed-form resizes (Theorem 5), and the cached level partition of
//! [`CircuitTopology`](ncgws_circuit::CircuitTopology) proves that nodes of
//! one topological level share no fanin/fanout edge. This module turns that
//! structure into multi-threaded traversals whose results are **bitwise
//! identical across every thread count** (1, 2, 8, …):
//!
//! * the work grid is *fixed by the data*, never by the thread count: every
//!   level is split into fixed-width chunks (`CHUNK_NODES`, 256 nodes), so
//!   chunk boundaries — and therefore every per-chunk accumulation — are
//!   the same no matter how many workers exist;
//! * threads only change *which worker* executes a chunk (an atomic
//!   work-queue hands chunks out), never the arithmetic: per-node values
//!   depend only on settled earlier levels plus the node's own CSR lists,
//!   and all cross-chunk reductions (worst relative change, touched counts,
//!   dirty-frontier merges) are combined by the caller **in fixed chunk
//!   order** after the pass;
//! * with the `parallel` feature disabled — or `threads = 1` — the runners
//!   walk the identical chunk grid sequentially, so a serial build is a
//!   bit-for-bit oracle for the threaded one.
//!
//! [`ParallelPolicy`] selects between the PR-4 sequential traversals
//! (`Sequential`, the default) and the level-parallel grid (`Level`); the
//! policy is threaded from [`OptimizerConfig`](crate::OptimizerConfig)
//! through [`SizingEngine`](crate::SizingEngine) into every sweep. The
//! worker pool is a tiny condvar-based fan-out over `std::thread` (no new
//! dependencies); barriers separate dependent levels, and runs of
//! single-chunk levels are folded into one barrier step so deep, narrow
//! circuit regions do not pay one synchronization per level.

use serde::{Deserialize, Serialize};
use std::sync::atomic::AtomicU32;
#[cfg(feature = "parallel")]
use std::sync::atomic::Ordering;

use crate::error::CoreError;

/// Fixed chunk width (in nodes / components) of the deterministic work
/// grid. Chosen so a chunk amortizes the work-queue pop while leaving
/// enough chunks per wide level to balance across workers; results never
/// depend on this value's relation to the thread count, only perf does.
///
/// Pinned to the circuit crate's [`ncgws_circuit::MAX_CHUNK_NODES`] lane
/// granule (a whole number of [`ncgws_circuit::LANES`]-wide f64 blocks):
/// the phased lane kernels stage one chunk's candidates in fixed
/// `MAX_CHUNK_NODES`-sized on-stack slabs, so every grid chunk must fit in
/// one granule.
pub(crate) const CHUNK_NODES: usize = ncgws_circuit::MAX_CHUNK_NODES;
const _: () = assert!(
    CHUNK_NODES.is_multiple_of(ncgws_circuit::LANES),
    "grid chunks must decompose into whole lane blocks"
);

/// How the stage-2 inner loop distributes its traversals across threads.
///
/// Selected via [`OptimizerConfig::parallel`](crate::OptimizerConfig) (or
/// [`OptimizerConfigBuilder::threads`](crate::OptimizerConfigBuilder::threads)).
/// The `Level` policy is deterministic by construction: outcomes are
/// bitwise identical for every `threads` value, and with
/// [`SolveStrategy::Exact`](crate::SolveStrategy) they remain bitwise
/// pinned to [`crate::reference`] — the per-node arithmetic is unchanged,
/// only its distribution across workers varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParallelPolicy {
    /// The sequential whole-circuit traversals (the default).
    Sequential,
    /// Level-parallel traversals over the fixed chunk grid.
    Level {
        /// Worker count; `0` resolves to the machine's available
        /// parallelism. `1` runs the identical grid on the calling thread.
        /// Without the `parallel` feature every value runs sequentially —
        /// same grid, same results.
        threads: usize,
    },
}

// Not derived: `#[derive(Default)]` on an enum needs a `#[default]` variant
// attribute, which the vendored serde derive cannot parse past.
#[allow(clippy::derivable_impls)]
impl Default for ParallelPolicy {
    fn default() -> Self {
        ParallelPolicy::Sequential
    }
}

impl ParallelPolicy {
    /// The level-parallel policy with `threads` workers (`0` = auto).
    pub fn threads(threads: usize) -> Self {
        ParallelPolicy::Level { threads }
    }

    /// Whether this is the level-parallel policy.
    pub fn is_level(&self) -> bool {
        matches!(self, ParallelPolicy::Level { .. })
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an absurd worker count.
    pub fn validate(&self) -> Result<(), CoreError> {
        if let ParallelPolicy::Level { threads } = self {
            if *threads > 4096 {
                return Err(CoreError::InvalidConfig {
                    name: "parallel.threads",
                    reason: format!("{threads} workers is beyond any machine this targets"),
                });
            }
        }
        Ok(())
    }

    /// The resolved worker count (participants including the caller).
    pub(crate) fn worker_count(&self) -> usize {
        match self {
            ParallelPolicy::Sequential => 1,
            ParallelPolicy::Level { threads: 0 } => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            ParallelPolicy::Level { threads } => *threads,
        }
    }
}

/// One barrier step of a leveled pass: the levels `lo..hi`. A step is
/// either one *wide* level (more than one chunk, distributed through the
/// work queue) or a run of consecutive single-chunk levels executed by one
/// worker between two barriers.
#[derive(Debug, Clone, Copy)]
#[cfg_attr(not(feature = "parallel"), allow(dead_code))]
struct Step {
    lo: u32,
    hi: u32,
}

/// The deterministic chunk grid over a topology's level partition: per
/// level a chunk count and a global chunk-id base (for indexing per-chunk
/// reduction slots), plus the barrier steps. Built once per engine; empty
/// when the backend exposes no dense topology.
#[derive(Debug, Clone, Default)]
pub(crate) struct LevelGrid {
    /// Per level: global chunk-id base (prefix sum of `chunks`).
    chunk_base: Vec<u32>,
    /// Per level: number of chunks.
    chunks: Vec<u32>,
    /// Per level: global *node-position* base (prefix sum of level sizes) —
    /// the offset of the level's first node in a level-ordered scratch
    /// array, used to give each chunk a disjoint scratch segment.
    node_base: Vec<u32>,
    /// Barrier steps, in forward level order.
    steps: Vec<Step>,
    total_chunks: usize,
}

impl LevelGrid {
    /// Builds the grid for the given per-level node counts.
    pub(crate) fn new(level_sizes: impl Iterator<Item = usize>) -> Self {
        let mut chunk_base = Vec::new();
        let mut chunks = Vec::new();
        let mut node_base = Vec::new();
        let mut total = 0u32;
        let mut nodes = 0u32;
        for len in level_sizes {
            chunk_base.push(total);
            node_base.push(nodes);
            let c = len.div_ceil(CHUNK_NODES).max(1) as u32;
            chunks.push(c);
            total += c;
            nodes += len as u32;
        }
        // Fold runs of single-chunk levels into one barrier step.
        let mut steps = Vec::new();
        let mut l = 0usize;
        while l < chunks.len() {
            if chunks[l] > 1 {
                steps.push(Step {
                    lo: l as u32,
                    hi: l as u32 + 1,
                });
                l += 1;
            } else {
                let lo = l;
                while l < chunks.len() && chunks[l] == 1 {
                    l += 1;
                }
                steps.push(Step {
                    lo: lo as u32,
                    hi: l as u32,
                });
            }
        }
        LevelGrid {
            chunk_base,
            chunks,
            node_base,
            steps,
            total_chunks: total as usize,
        }
    }

    /// Number of levels in the grid.
    pub(crate) fn num_levels(&self) -> usize {
        self.chunks.len()
    }

    /// Total number of chunks across all levels.
    pub(crate) fn total_chunks(&self) -> usize {
        self.total_chunks
    }

    /// Number of chunks of level `l`.
    pub(crate) fn chunks_in(&self, l: usize) -> usize {
        self.chunks[l] as usize
    }

    /// Global chunk id of chunk `c` of level `l` (indexes per-chunk
    /// reduction slots).
    pub(crate) fn chunk_id(&self, l: usize, c: usize) -> usize {
        self.chunk_base[l] as usize + c
    }

    /// The sub-range of a level's node list covered by chunk `c`.
    pub(crate) fn chunk_range(&self, level_len: usize, c: usize) -> std::ops::Range<usize> {
        let lo = c * CHUNK_NODES;
        lo..((c + 1) * CHUNK_NODES).min(level_len)
    }

    /// Global node-position base of level `l` (see the field docs).
    pub(crate) fn node_base(&self, l: usize) -> usize {
        self.node_base[l] as usize
    }

    /// Bytes held by the grid (for memory accounting).
    pub(crate) fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.chunk_base.capacity() + self.chunks.capacity() + self.node_base.capacity())
            * size_of::<u32>()
            + self.steps.capacity() * size_of::<Step>()
    }
}

/// Number of fixed-width chunks of a flat (level-free) pass over `n` items.
pub(crate) fn flat_chunks(n: usize) -> usize {
    n.div_ceil(CHUNK_NODES).max(1)
}

/// The flat-chunk sub-range of `0..n` covered by chunk `c`.
pub(crate) fn flat_range(n: usize, c: usize) -> std::ops::Range<usize> {
    (c * CHUNK_NODES)..((c + 1) * CHUNK_NODES).min(n)
}

/// The per-engine parallel runtime: the resolved policy, the reusable
/// per-level work-queue counters, and (with the `parallel` feature) the
/// persistent worker pool. `run_flat`/`run_leveled` take `&self` so passes
/// can run while other engine fields are mutably split-borrowed; all
/// mutation goes through atomics or the pool's own synchronization.
pub(crate) struct ParRuntime {
    policy: ParallelPolicy,
    workers: usize,
    /// One work-queue head per level, reset by the caller before each pass.
    counters: Vec<AtomicU32>,
    /// Work-queue head of flat passes.
    flat_counter: AtomicU32,
    #[cfg(feature = "parallel")]
    pool: Option<pool::WorkerPool>,
}

impl std::fmt::Debug for ParRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParRuntime")
            .field("policy", &self.policy)
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

impl Clone for ParRuntime {
    /// Clones the configuration, not the OS threads: the clone starts
    /// pool-less and is re-armed by the next
    /// [`configure`](Self::configure) call. Results are unaffected either
    /// way — a pool-less runtime walks the identical chunk grid serially.
    fn clone(&self) -> Self {
        ParRuntime {
            policy: self.policy,
            workers: self.workers,
            counters: (0..self.counters.len())
                .map(|_| AtomicU32::new(0))
                .collect(),
            flat_counter: AtomicU32::new(0),
            #[cfg(feature = "parallel")]
            pool: None,
        }
    }
}

impl Default for ParRuntime {
    fn default() -> Self {
        ParRuntime::new()
    }
}

impl ParRuntime {
    /// A sequential runtime (the engine's initial state).
    pub(crate) fn new() -> Self {
        ParRuntime {
            policy: ParallelPolicy::Sequential,
            workers: 1,
            counters: Vec::new(),
            flat_counter: AtomicU32::new(0),
            #[cfg(feature = "parallel")]
            pool: None,
        }
    }

    /// The active policy.
    pub(crate) fn policy(&self) -> ParallelPolicy {
        self.policy
    }

    /// Bytes held by the runtime's work-queue counters (for the engine's
    /// Figure-10(a) memory accounting; the pool's thread stacks are OS
    /// resources, not engine-owned heap).
    pub(crate) fn memory_bytes(&self) -> usize {
        self.counters.capacity() * std::mem::size_of::<AtomicU32>() + std::mem::size_of::<Self>()
    }

    /// Whether the level-parallel grid is selected (regardless of worker
    /// count or feature — the grid itself is what fixes the arithmetic).
    pub(crate) fn active(&self) -> bool {
        self.policy.is_level()
    }

    /// Applies a policy and sizes the per-level counters for `num_levels`.
    /// Spawns (or drops) the worker pool to match; idempotent and cheap
    /// when nothing changed, so callers apply it once per solve.
    pub(crate) fn configure(&mut self, policy: ParallelPolicy, num_levels: usize) {
        self.policy = policy;
        self.workers = policy.worker_count();
        if self.counters.len() < num_levels {
            self.counters = (0..num_levels).map(|_| AtomicU32::new(0)).collect();
        }
        #[cfg(feature = "parallel")]
        {
            let want = if self.policy.is_level() && self.workers > 1 {
                Some(self.workers)
            } else {
                None
            };
            let have = self.pool.as_ref().map(pool::WorkerPool::participants);
            if want != have {
                self.pool = want.map(pool::WorkerPool::new);
            }
        }
    }

    /// Runs `body(chunk)` for every chunk of a flat pass over `chunks`
    /// chunks. Chunks are independent; the caller merges any per-chunk
    /// reductions in chunk order afterwards.
    pub(crate) fn run_flat<F: Fn(usize) + Sync>(&self, chunks: usize, body: F) {
        // Under race-check every chunk body runs inside a claim context, so
        // SharedMut writes are attributed to their owning chunk and an
        // overlap within this pass panics (sequential path included — the
        // grid, not the thread count, defines ownership).
        #[cfg(feature = "race-check")]
        let pass = ncgws_circuit::race::begin_pass();
        #[cfg(feature = "race-check")]
        let body = move |c: usize| {
            let owner = ncgws_circuit::race::owner_id(u32::MAX, c as u32);
            let _ctx = ncgws_circuit::race::enter(pass, owner);
            body(c);
        };
        #[cfg(feature = "parallel")]
        if let Some(pool) = self.pool.as_ref().filter(|_| chunks > 1) {
            self.flat_counter.store(0, Ordering::Relaxed);
            let counter = &self.flat_counter;
            pool.run(&|_worker| loop {
                let c = counter.fetch_add(1, Ordering::Relaxed) as usize;
                if c >= chunks {
                    break;
                }
                body(c);
            });
            return;
        }
        let _ = &self.flat_counter;
        for c in 0..chunks {
            body(c);
        }
    }

    /// Runs `body(level, chunk)` for every chunk of every level of `grid`,
    /// levels settled in forward (or, with `reverse`, backward) dependency
    /// order. Chunks of one level may run concurrently — the level
    /// partition guarantees their node sets are independent — and a barrier
    /// separates dependent steps.
    pub(crate) fn run_leveled<F: Fn(usize, usize) + Sync>(
        &self,
        grid: &LevelGrid,
        reverse: bool,
        body: F,
    ) {
        let num_levels = grid.num_levels();
        // One claim pass per level: chunks of a level race each other (the
        // level partition must keep their writes disjoint), while writes
        // from different levels are barrier-ordered and thus never races.
        #[cfg(feature = "race-check")]
        let pass_base = ncgws_circuit::race::begin_passes(num_levels as u64);
        #[cfg(feature = "race-check")]
        let body = move |l: usize, c: usize| {
            let owner = ncgws_circuit::race::owner_id(l as u32, c as u32);
            let _ctx = ncgws_circuit::race::enter(pass_base + l as u64, owner);
            body(l, c);
        };
        #[cfg(feature = "parallel")]
        if let Some(pool) = self
            .pool
            .as_ref()
            .filter(|_| num_levels > 0 && grid.total_chunks() > num_levels)
        {
            debug_assert!(self.counters.len() >= num_levels);
            for counter in &self.counters[..num_levels] {
                counter.store(0, Ordering::Relaxed);
            }
            let counters = &self.counters;
            let barrier = pool.barrier();
            let steps = &grid.steps;
            pool.run(&|worker| {
                let mut pos = 0usize;
                while pos < steps.len() {
                    let step = if reverse {
                        steps[steps.len() - 1 - pos]
                    } else {
                        steps[pos]
                    };
                    let wide = step.hi == step.lo + 1 && grid.chunks_in(step.lo as usize) > 1;
                    if wide {
                        let l = step.lo as usize;
                        let chunks = grid.chunks_in(l);
                        let counter = &counters[l];
                        loop {
                            let c = counter.fetch_add(1, Ordering::Relaxed) as usize;
                            if c >= chunks {
                                break;
                            }
                            body(l, c);
                        }
                    } else if worker == 0 {
                        // A run of single-chunk levels: one worker settles
                        // them in dependency order under a single barrier.
                        let levels = step.lo as usize..step.hi as usize;
                        if reverse {
                            for l in levels.rev() {
                                body(l, 0);
                            }
                        } else {
                            for l in levels {
                                body(l, 0);
                            }
                        }
                    }
                    barrier.wait();
                    pos += 1;
                }
            });
            return;
        }
        // Sequential walk of the identical grid (also the `threads = 1`
        // and feature-disabled path): same chunks, same per-chunk
        // arithmetic, hence bitwise-identical results.
        let _ = &self.counters;
        if reverse {
            for l in (0..num_levels).rev() {
                for c in 0..grid.chunks_in(l) {
                    body(l, c);
                }
            }
        } else {
            for l in 0..num_levels {
                for c in 0..grid.chunks_in(l) {
                    body(l, c);
                }
            }
        }
    }
}

/// The persistent worker pool: `participants - 1` parked OS threads plus
/// the calling thread. Jobs are published as type-erased `Fn(worker)`
/// borrows; [`WorkerPool::run`] does not return until every worker finished
/// the job, which is what makes handing out a stack borrow sound.
#[cfg(feature = "parallel")]
mod pool {
    use std::sync::{Arc, Barrier, Condvar, Mutex};

    /// Type-erased pointer to the caller's job closure. Only ever
    /// dereferenced between `run`'s publish and its completion wait, while
    /// the underlying closure is alive on the caller's stack.
    #[derive(Copy, Clone)]
    struct Job(*const (dyn Fn(usize) + Sync + 'static));
    // SAFETY: the pointee is `Sync` and `run` keeps it alive for the whole
    // execution; sending the pointer to workers is then sound.
    unsafe impl Send for Job {}

    struct State {
        seq: u64,
        job: Option<Job>,
        remaining: usize,
        shutdown: bool,
    }

    struct Shared {
        state: Mutex<State>,
        start: Condvar,
        done: Condvar,
    }

    pub(crate) struct WorkerPool {
        shared: Arc<Shared>,
        handles: Vec<std::thread::JoinHandle<()>>,
        barrier: Arc<Barrier>,
        participants: usize,
    }

    impl std::fmt::Debug for WorkerPool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("WorkerPool")
                .field("participants", &self.participants)
                .finish()
        }
    }

    impl WorkerPool {
        /// Spawns a pool with `participants` total workers (the calling
        /// thread is worker 0; `participants - 1` threads are spawned).
        pub(crate) fn new(participants: usize) -> Self {
            let participants = participants.max(2);
            let shared = Arc::new(Shared {
                state: Mutex::new(State {
                    seq: 0,
                    job: None,
                    remaining: 0,
                    shutdown: false,
                }),
                start: Condvar::new(),
                done: Condvar::new(),
            });
            let handles = (1..participants)
                .map(|worker| {
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name(format!("ncgws-par-{worker}"))
                        .spawn(move || worker_loop(&shared, worker))
                        .expect("spawning a pool worker succeeds")
                })
                .collect();
            WorkerPool {
                shared,
                handles,
                barrier: Arc::new(Barrier::new(participants)),
                participants,
            }
        }

        /// Total participants (including the calling thread).
        pub(crate) fn participants(&self) -> usize {
            self.participants
        }

        /// The barrier shared by all participants of a job (sized to
        /// [`participants`](Self::participants); every participant runs
        /// every job exactly once, so per-step waits line up).
        pub(crate) fn barrier(&self) -> &Barrier {
            &self.barrier
        }

        /// Executes `job` on every participant and returns once all are
        /// done. The calling thread is participant 0.
        pub(crate) fn run(&self, job: &(dyn Fn(usize) + Sync)) {
            // SAFETY: `run` blocks until `remaining == 0`, so the borrow
            // outlives every dereference (a panic inside the job aborts the
            // process — see `run_job` — so no unwind path can return from
            // `run` while a worker still holds the pointer); the transmute
            // only erases the lifetime.
            let erased = Job(unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(usize) + Sync),
                    *const (dyn Fn(usize) + Sync + 'static),
                >(job as *const _)
            });
            {
                let mut state = self.shared.state.lock().expect("pool lock");
                state.job = Some(erased);
                state.remaining = self.participants - 1;
                state.seq += 1;
                self.shared.start.notify_all();
            }
            run_job(&|| job(0));
            let mut state = self.shared.state.lock().expect("pool lock");
            while state.remaining > 0 {
                state = self.shared.done.wait(state).expect("pool lock");
            }
            state.job = None;
        }
    }

    /// Executes one participant's share of a job, aborting the process if it
    /// panics. An unwinding participant cannot be tolerated here: the other
    /// participants are blocked on the step [`Barrier`] it will never reach
    /// (deadlock), and on the calling thread the unwind would drop the
    /// engine state the lifetime-erased [`Job`] pointer still borrows
    /// (use-after-free on the workers). Pass bodies are pure arithmetic over
    /// pre-validated tables — a panic there is a bug, and a loud abort beats
    /// either failure mode.
    fn run_job(body: &dyn Fn()) {
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(body)).is_err() {
            eprintln!("ncgws-core: panic inside a level-parallel pass; aborting");
            std::process::abort();
        }
    }

    impl Drop for WorkerPool {
        fn drop(&mut self) {
            {
                let mut state = self.shared.state.lock().expect("pool lock");
                state.shutdown = true;
                self.shared.start.notify_all();
            }
            for handle in self.handles.drain(..) {
                let _ = handle.join();
            }
        }
    }

    fn worker_loop(shared: &Shared, worker: usize) {
        let mut seen = 0u64;
        loop {
            let job = {
                let mut state = shared.state.lock().expect("pool lock");
                loop {
                    if state.shutdown {
                        return;
                    }
                    if state.seq != seen {
                        break;
                    }
                    state = shared.start.wait(state).expect("pool lock");
                }
                seen = state.seq;
                state.job.expect("published job")
            };
            // SAFETY: `WorkerPool::run` keeps the closure alive until every
            // worker reports completion below (panics abort, so completion
            // is the only way out of `run_job`).
            run_job(&|| (unsafe { &*job.0 })(worker));
            let mut state = shared.state.lock().expect("pool lock");
            state.remaining -= 1;
            if state.remaining == 0 {
                shared.done.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn policy_resolution_and_validation() {
        assert_eq!(ParallelPolicy::default(), ParallelPolicy::Sequential);
        assert_eq!(ParallelPolicy::Sequential.worker_count(), 1);
        assert_eq!(ParallelPolicy::threads(3).worker_count(), 3);
        assert!(ParallelPolicy::threads(0).worker_count() >= 1);
        assert!(ParallelPolicy::threads(8).validate().is_ok());
        assert!(ParallelPolicy::Sequential.validate().is_ok());
        assert!(ParallelPolicy::threads(100_000).validate().is_err());
        assert!(ParallelPolicy::threads(2).is_level());
        assert!(!ParallelPolicy::Sequential.is_level());
    }

    #[test]
    fn grid_chunks_cover_every_level_exactly() {
        let sizes = [1usize, CHUNK_NODES, CHUNK_NODES + 1, 3, 2 * CHUNK_NODES];
        let grid = LevelGrid::new(sizes.iter().copied());
        assert_eq!(grid.num_levels(), sizes.len());
        let mut total = 0;
        for (l, &len) in sizes.iter().enumerate() {
            let chunks = grid.chunks_in(l);
            assert_eq!(chunks, len.div_ceil(CHUNK_NODES).max(1));
            let mut covered = 0;
            for c in 0..chunks {
                let range = grid.chunk_range(len, c);
                assert_eq!(range.start, covered);
                covered = range.end;
                assert_eq!(grid.chunk_id(l, c), total + c);
            }
            assert_eq!(covered, len);
            total += chunks;
        }
        assert_eq!(grid.total_chunks(), total);
        assert!(grid.memory_bytes() > 0);
    }

    #[test]
    fn leveled_runner_visits_every_chunk_in_dependency_order() {
        let sizes = [2usize, CHUNK_NODES * 2, 1, 1, CHUNK_NODES + 1];
        let grid = LevelGrid::new(sizes.iter().copied());
        for threads in [1usize, 3] {
            for reverse in [false, true] {
                let mut runtime = ParRuntime::new();
                runtime.configure(ParallelPolicy::threads(threads), grid.num_levels());
                let visited: Vec<AtomicUsize> = (0..grid.total_chunks())
                    .map(|_| AtomicUsize::new(0))
                    .collect();
                let stamp = AtomicUsize::new(1);
                runtime.run_leveled(&grid, reverse, |l, c| {
                    visited[grid.chunk_id(l, c)]
                        .store(stamp.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
                });
                // Every chunk ran exactly once...
                assert!(visited.iter().all(|v| v.load(Ordering::Relaxed) > 0));
                // ...and levels settled in dependency order: every chunk of
                // a level ran before any chunk of the next level in the
                // traversal direction.
                let level_max = |l: usize| {
                    (0..grid.chunks_in(l))
                        .map(|c| visited[grid.chunk_id(l, c)].load(Ordering::Relaxed))
                        .max()
                        .unwrap()
                };
                let level_min = |l: usize| {
                    (0..grid.chunks_in(l))
                        .map(|c| visited[grid.chunk_id(l, c)].load(Ordering::Relaxed))
                        .min()
                        .unwrap()
                };
                for l in 1..grid.num_levels() {
                    let (earlier, later) = if reverse { (l, l - 1) } else { (l - 1, l) };
                    assert!(
                        level_max(earlier) < level_min(later),
                        "level {earlier} must settle before level {later} (reverse={reverse})"
                    );
                }
            }
        }
    }

    #[test]
    fn flat_runner_visits_every_chunk_once() {
        for threads in [1usize, 4] {
            let mut runtime = ParRuntime::new();
            runtime.configure(ParallelPolicy::threads(threads), 0);
            let chunks = 37;
            let hits: Vec<AtomicUsize> = (0..chunks).map(|_| AtomicUsize::new(0)).collect();
            runtime.run_flat(chunks, |c| {
                hits[c].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn runtime_clone_drops_the_pool_but_keeps_the_policy() {
        let mut runtime = ParRuntime::new();
        runtime.configure(ParallelPolicy::threads(2), 4);
        let clone = runtime.clone();
        assert_eq!(clone.policy(), ParallelPolicy::threads(2));
        assert!(clone.active());
        // A cloned (pool-less) runtime still runs the full grid.
        let grid = LevelGrid::new([3usize, CHUNK_NODES + 1].into_iter());
        let count = AtomicUsize::new(0);
        clone.run_leveled(&grid, false, |_, _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), grid.total_chunks());
    }
}
